"""Mini-Chapel frontend: lexer, parser, AST, types, and scopes.

This package is the substitute for the Chapel compiler frontend the
paper builds on (see DESIGN.md §2).  It covers the language subset the
paper's benchmarks exercise: records, tuples, domains/arrays with
aliasing slices, ``forall``/``coforall``, zippered iteration, domain
remapping, ``param`` loops, and ``select``-``when``.
"""

from .ast_nodes import Program
from .errors import ChapelError, LexError, NameError_, ParseError, TypeError_
from .lexer import Lexer, tokenize
from .parser import Parser, parse
from .symbols import Scope, Symbol
from .tokens import SourceLocation, Token, TokenKind

__all__ = [
    "ChapelError",
    "LexError",
    "Lexer",
    "NameError_",
    "ParseError",
    "Parser",
    "Program",
    "Scope",
    "SourceLocation",
    "Symbol",
    "Token",
    "TokenKind",
    "TypeError_",
    "parse",
    "tokenize",
]
