"""Explicit data-flow analysis: abstract storage roots and write sets.

This is the first half of the paper's static analysis (§IV.A): for each
function we resolve every address-like value to the *source variables*
(and field paths) it can refer to, flow-insensitively, and collect the
write set ``W(v)`` the blame definition needs.

Key modelling decisions (each mirrors a paper observation):

* **Aliases.** Loading a variable that holds an array slice/reindex
  view yields the roots of both the alias variable and the sliced base
  (Chapel slices alias; MiniMD's ``RealPos`` inherits ``Pos``'s data).
* **Descriptor writes.** Slice/reindex/domain-derivation operations
  count as *writes* to their base array/domain variables — the
  bookkeeping writes "not at the source code level, but at the llvm
  instruction level" that give MiniMD's ``Count`` (54.9 %) and
  ``binSpace`` (49.4 %) their blame.
* **Calls write their address arguments.**  A call passing a ``ref``
  arg may write it; the callsite joins the arg roots' write sets, which
  is also what lets return/exit-var blame bubble (§IV.A's transfer
  functions consume the per-callsite root map recorded here).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..chapel.types import Type
from ..ir import instructions as I
from ..ir.module import Function, Module

# A path element: ("field", name) or ("index",).  Paths render like the
# paper's Table IV rows: partArray -> [i] -> .zoneArray -> [j] -> .value.
PathElem = tuple
Path = tuple[PathElem, ...]

#: Maximum materialized hierarchical path depth.
MAX_PATH_DEPTH = 4


def is_pointer_like(t: object) -> bool:
    """Types with reference semantics when passed "in": arrays, domains,
    class instances — the "incoming parameters that are pointers" of the
    paper's exit-variable definition."""
    from ..chapel.types import ArrayType, DomainType, RecordType

    if isinstance(t, ArrayType) or isinstance(t, DomainType):
        return True
    return isinstance(t, RecordType) and t.is_class


@dataclass(frozen=True)
class VarKey:
    """Identity of one abstract storage root within a function scope.

    kinds: "local" (ident is the alloca iid), "formal" (ident is the
    parameter name), "global" (ident is the global name), "ret" (the
    return-value pseudo-variable).
    """

    kind: str
    ident: object

    def __repr__(self) -> str:
        return f"{self.kind}:{self.ident}"


RET_KEY = VarKey("ret", "$ret")


def render_path(path: Path) -> str:
    """Human form of a path, using i/j/k/l for successive indices."""
    letters = "ijkl"
    out = []
    depth = 0
    for elem in path:
        if elem[0] in ("field", "cfield"):
            out.append(f".{elem[1]}")
        else:
            out.append(f"[{letters[min(depth, len(letters) - 1)]}]")
            depth += 1
    return "".join(out)


@dataclass
class VarMeta:
    """Display metadata for a root variable."""

    key: VarKey
    name: str
    type: Type | None
    is_temp: bool
    context: str  # defining function source name, or "main" for globals


Root = tuple[VarKey, Path]


class DataFlow:
    """Flow-insensitive roots/writes analysis for one function."""

    #: Ops that derive a view/domain and count as descriptor writes.
    _DESCRIPTOR_DOMAIN_OPS = frozenset({"expand", "translate", "interior", "domain"})

    def __init__(
        self,
        function: Function,
        module: Module,
        global_aliases: dict[VarKey, frozenset[Root]] | None = None,
        options: "object | None" = None,
    ) -> None:
        from .options import FULL

        self.function = function
        self.module = module
        self.options = options or FULL
        if not self.options.alias_tracking:
            global_aliases = None
        #: register rid → set of (VarKey, Path) roots
        self.roots: dict[int, frozenset[Root]] = {}
        #: VarKey → roots of values stored into it (alias propagation).
        #: Seeded with module-wide global alias facts (e.g. MiniMD's
        #: RealPos = Pos[...] established in module init must be visible
        #: to every function that writes through RealPos).
        self.stored_roots: dict[VarKey, set[Root]] = {
            k: set(v) for k, v in (global_aliases or {}).items()
        }
        #: VarKey → set of write instructions (stores, descriptor writes,
        #: calls-with-address-args)
        self.writes: dict[VarKey, set[I.Instruction]] = {}
        #: (VarKey, Path) → write instructions with that path prefix
        self.path_writes: dict[Root, set[I.Instruction]] = {}
        #: iids of *deep* writes (real stores): their full backward
        #: slice joins the BlameSet. Shallow writes (callsites writing
        #: ref args, descriptor bookkeeping) contribute only themselves:
        #: the written value is produced elsewhere (in the callee / the
        #: runtime), so the local operand chain is not part of the work
        #: that computed it.
        self.deep_write_iids: set[int] = set()
        #: callsite iid → {param_name: roots of the address argument}
        self.call_arg_roots: dict[int, dict[str, frozenset[Root]]] = {}
        #: metadata for every root variable seen
        self.var_meta: dict[VarKey, VarMeta] = {}
        self._analyze()

    # -- public helpers ----------------------------------------------------

    def roots_of(self, value: I.Value) -> frozenset[Root]:
        if isinstance(value, I.Register):
            return self.roots.get(value.rid, frozenset())
        if isinstance(value, I.GlobalRef):
            key = VarKey("global", value.name)
            self._note_global(key, value)
            return frozenset({(key, ())})
        return frozenset()

    # -- construction --------------------------------------------------------

    def _note_global(self, key: VarKey, ref: I.GlobalRef) -> None:
        if key not in self.var_meta:
            g = self.module.globals.get(ref.name)
            self.var_meta[key] = VarMeta(
                key=key,
                name=ref.name,
                type=g.type if g else ref.type,
                is_temp=g.is_temp if g else False,
                context="main",
            )

    def _meta_for_formal(self, name: str) -> VarKey:
        key = VarKey("formal", name)
        if key not in self.var_meta:
            ptype = None
            for p in self.function.params:
                if p.name == name:
                    ptype = p.type
                    break
            self.var_meta[key] = VarMeta(
                key=key,
                name=name,
                type=ptype,
                is_temp=name.startswith("_"),
                context=self.function.source_name,
            )
        return key

    def _analyze(self) -> None:
        fn = self.function
        instrs = list(fn.instructions())

        # Ref formals are address roots from entry.
        for p in fn.params:
            if p.intent == "ref":
                key = self._meta_for_formal(p.name)
                self.roots[p.register.rid] = frozenset({(key, ())})

        # Iterate to fixpoint: root sets grow through load→store alias
        # propagation (bounded: sets only grow, keys are finite).
        changed = True
        iterations = 0
        while changed:
            changed = False
            iterations += 1
            if iterations > 50:
                break  # defensive bound; real programs converge in 2-4
            for instr in instrs:
                if self._flow_instr(instr):
                    changed = True

        # Second pass: collect writes (needs final root sets).
        for instr in instrs:
            self._collect_writes(instr)

    def _set_roots(self, reg: I.Register | None, roots: frozenset[Root]) -> bool:
        if reg is None:
            return False
        old = self.roots.get(reg.rid, frozenset())
        new = old | roots
        if new != old:
            self.roots[reg.rid] = new
            return True
        return False

    def _extend(self, roots: frozenset[Root], elem: PathElem | None) -> frozenset[Root]:
        if elem is None:
            return roots
        out = set()
        for key, path in roots:
            if len(path) < MAX_PATH_DEPTH:
                out.add((key, path + (elem,)))
            else:
                out.add((key, path))
        return frozenset(out)

    def _flow_instr(self, instr: I.Instruction) -> bool:
        if isinstance(instr, I.Alloca):
            # The home slot of an "in" formal identifies with the formal
            # itself (pointer-like "in" formals are exit variables).
            if instr.formal_home is not None:
                key = self._meta_for_formal(instr.formal_home)
            else:
                key = VarKey("local", instr.iid)
            if key not in self.var_meta:
                self.var_meta[key] = VarMeta(
                    key=key,
                    name=instr.var_name,
                    type=instr.alloc_type,
                    is_temp=instr.is_temp,
                    context=self.function.source_name,
                )
            return self._set_roots(instr.result, frozenset({(key, ())}))
        if isinstance(instr, I.Load):
            base = self.roots_of(instr.addr)
            extra: set[Root] = set()
            for key, _path in base:
                extra.update(self.stored_roots.get(key, ()))
            return self._set_roots(instr.result, base | frozenset(extra))
        if isinstance(instr, I.Store):
            # Track *alias* facts: roots flow into a variable only when
            # the stored value is itself a reference — an array/domain/
            # class descriptor, or an element address yielded by array
            # iteration. Scalar value flow is NOT aliasing (writing y
            # after y = x does not write x).
            value = instr.value
            is_reference = is_pointer_like(getattr(value, "type", None)) or (
                isinstance(value, I.Register)
                and isinstance(value.producer, I.IterValue)
            )
            if not is_reference or not self.options.alias_tracking:
                return False
            value_roots = self.roots_of(value)
            if not value_roots:
                return False
            changed = False
            for key, _path in self.roots_of(instr.addr):
                bucket = self.stored_roots.setdefault(key, set())
                before = len(bucket)
                bucket.update(value_roots)
                if len(bucket) != before:
                    changed = True
            return changed
        if isinstance(instr, I.FieldAddr):
            # Class fields live *behind a dereference*: mark them with a
            # distinct element so a load of the pointer slot (path ())
            # does not alias stores to the pointee's fields.
            from ..chapel.types import RecordType

            bt = getattr(instr.base, "type", None)
            kind = (
                "cfield"
                if isinstance(bt, RecordType) and bt.is_class
                else "field"
            )
            roots = self._extend(self.roots_of(instr.base), (kind, instr.field_name))
            return self._set_roots(instr.result, roots)
        if isinstance(instr, I.ElemAddr):
            roots = self._extend(self.roots_of(instr.base), ("index",))
            return self._set_roots(instr.result, roots)
        if isinstance(instr, I.TupleElemAddr):
            # Tuple elements are reported as the whole tuple variable
            # (Table VI reports hgfx, not hgfx[3]).
            return self._set_roots(instr.result, self.roots_of(instr.base))
        if isinstance(instr, (I.ArraySlice, I.ArrayReindex)):
            return self._set_roots(instr.result, self.roots_of(instr.base))
        if isinstance(instr, I.MakeSparseDomain):
            # A sparse subdomain is derived from (and registered with)
            # its parent — same descriptor-derivation aliasing as
            # expand/translate/interior.
            return self._set_roots(instr.result, self.roots_of(instr.parent_domain))
        if isinstance(instr, I.DomainOp):
            if instr.op in self._DESCRIPTOR_DOMAIN_OPS:
                return self._set_roots(instr.result, self.roots_of(instr.base))
            return False
        if isinstance(instr, I.IterInit):
            return self._set_roots(instr.result, self.roots_of(instr.iterable))
        if isinstance(instr, I.IterValue):
            # Element addresses yielded by array iteration.
            roots = self._extend(self.roots_of(instr.state), ("index",))
            return self._set_roots(instr.result, roots)
        return False

    # -- write collection ------------------------------------------------------

    def _add_write(self, root: Root, instr: I.Instruction, deep: bool = False) -> None:
        key, path = root
        self.writes.setdefault(key, set()).add(instr)
        if deep:
            self.deep_write_iids.add(instr.iid)
        # Every path prefix is a reportable sub-variable (unless the
        # hierarchy ablation is on).
        if self.options.hierarchical_paths:
            for k in range(1, len(path) + 1):
                self.path_writes.setdefault((key, path[:k]), set()).add(instr)

    def _collect_writes(self, instr: I.Instruction) -> None:
        if isinstance(instr, I.Store):
            for root in self.roots_of(instr.addr):
                self._add_write(root, instr, deep=True)
            return
        if isinstance(instr, (I.ArraySlice, I.ArrayReindex)):
            if not self.options.descriptor_writes:
                return
            # Descriptor bookkeeping writes to base and domain.
            for root in self.roots_of(instr.ops[0]):
                self._add_write(root, instr)
            for root in self.roots_of(instr.ops[1]):
                self._add_write(root, instr)
            return
        if isinstance(instr, I.DomainOp) and instr.op in self._DESCRIPTOR_DOMAIN_OPS:
            if not self.options.descriptor_writes:
                return
            for root in self.roots_of(instr.base):
                self._add_write(root, instr)
            return
        if isinstance(instr, I.DomainOp) and instr.op == "insert":
            # `spD += idx` mutates the domain (and every array declared
            # over it) — a genuine source-level write, hence deep.
            for root in self.roots_of(instr.base):
                self._add_write(root, instr, deep=True)
            return
        if isinstance(instr, I.MakeSparseDomain):
            if not self.options.descriptor_writes:
                return
            # Sparse subdomains register with their parent domain.
            for root in self.roots_of(instr.parent_domain):
                self._add_write(root, instr)
            return
        if isinstance(instr, I.MakeArray):
            if not self.options.descriptor_writes:
                return
            # Arrays register with their domain (a descriptor write).
            for root in self.roots_of(instr.domain):
                self._add_write(root, instr)
            return
        if isinstance(instr, (I.IterInit, I.IterNext)):
            if not self.options.descriptor_writes:
                return
            # Iterator setup/advance touches the iterand's descriptor
            # (reference counting, follower-iterator state) — the
            # "written not at the source code level, but at the llvm
            # instruction level" effect the paper describes for Count
            # and binSpace (§V.A).
            base = instr.ops[0]
            for root in self.roots_of(base):
                self._add_write(root, instr)
            return
        if isinstance(instr, I.Ret):
            if instr.value is not None:
                self.writes.setdefault(RET_KEY, set()).add(instr)
                self.deep_write_iids.add(instr.iid)
            return
        if isinstance(instr, I.Call) and not instr.is_builtin:
            callee = self.module.get_function(instr.callee)
            arg_map: dict[str, frozenset[Root]] = {}
            params = callee.params if callee else []
            for p, a in zip(params, instr.args):
                roots = self.roots_of(a)
                # ref formals AND pointer-like "in" formals (arrays,
                # class instances, domains: Chapel reference semantics)
                # may be written by the callee. Call sites are *deep*
                # writes: the value handed back through a ref argument
                # embodies the work of everything feeding the call —
                # this is how LULESH's hgfx inherits the hourglass
                # block's samples through CalcElemFBHourglassForce
                # (paper Table VI).
                if roots and (p.intent == "ref" or is_pointer_like(p.type)):
                    arg_map[p.name] = roots
                    for root in roots:
                        self._add_write(root, instr, deep=True)
            self.call_arg_roots[instr.iid] = arg_map
            return
        if isinstance(instr, I.SpawnJoin):
            outlined = self.module.get_function(instr.outlined)
            arg_map = {}
            if outlined is not None:
                # Iterable (chunk) formals: spawning registers per-task
                # iterators over them — a descriptor write — and the
                # outlined body's iterator traffic on the chunk formal
                # bubbles back to the spawned-over domain/array.
                it_params = outlined.params[: instr.n_iterables]
                for p, a in zip(it_params, instr.iterables):
                    roots = self.roots_of(a)
                    if roots:
                        arg_map[p.name] = roots
                        for root in roots:
                            self._add_write(root, instr)
                cap_params = outlined.params[instr.n_iterables :]
                for p, a in zip(cap_params, instr.captures):
                    roots = self.roots_of(a)
                    if roots:
                        arg_map[p.name] = roots
                        for root in roots:
                            self._add_write(root, instr)
            self.call_arg_roots[instr.iid] = arg_map
            return
