"""Sparse MTTKRP — matricized tensor times Khatri-Rao product.

The second irregular workload of the communication-advisor suite: a
COO 3-mode tensor contracted against two dense factor matrices,

    out[mode1[e], r] += val[e] * B[mode2[e], r] * C[mode3[e], r]

for every nonzero ``e`` and rank column ``r``.  The edge-parallel
original exhibits *all three* advisor anti-patterns at once:

* indirect gathers of ``B``/``C`` rows feeding arithmetic
  (remote-access-batching),
* scattered read-modify-writes into ``out`` through ``mode1``
  (aggregation-candidate),
* the ``mode1[e]``/``mode2[e]``/``mode3[e]`` loads re-executed every
  iteration of the inner rank loop although ``e`` is fixed there
  (indirection-hoist).

The **optimized** variant applies the corresponding rewrites: factor
rows are bulk-gathered into edge order once per call (with the mode
indices hoisted into scalars), and the compute loop walks CSR-style
row windows accumulating locally, finishing with a direct store.  The
advisor must be silent on it.

Tensor data is arithmetic — ``mode1`` sorted with ``nnzPerSlice``
nonzeros per slice — so the slice pointers are computable in-program
and edge chunks align to slice boundaries whenever ``n`` divides the
task count (deterministic edge-parallel scatter).
"""

from __future__ import annotations

# Keep n a multiple of the bench harness's task counts so edge chunks
# align to mode-1 slices.
DEFAULT_CONFIG: dict[str, object] = {
    "n": 48,
    "m": 32,
    "nnzPerSlice": 4,
    "fRank": 6,
    "iters": 2,
}

_PRELUDE = """
// MTTKRP (mini-Chapel port) -- sparse tensor times Khatri-Rao product
config const n: int = 48;
config const m: int = 32;
config const nnzPerSlice: int = 4;
config const fRank: int = 6;
config const iters: int = 2;

var Dn: domain(1) = {1..n};
var Dn1: domain(1) = {1..n+1};
var De: domain(1) = {1..n*nnzPerSlice};
var Dm: domain(1) = {1..m};
var DB: domain(2) = {1..m, 1..fRank};
var Dout: domain(2) = {1..n, 1..fRank};

var mode1: [De] int;
var mode2: [De] int;
var mode3: [De] int;
var tval: [De] real;
var B: [DB] real;
var C: [DB] real;
var outm: [Dout] real;

// Irregular-domain prologue: the set of distinct mode-2 fibers seen,
// as an associative domain with a per-fiber nonzero count.
var fibers: domain(int);
var fiberNnz: [fibers] int;

proc initData() {
  forall e in De {
    mode1[e] = (e - 1) / nnzPerSlice + 1;
    mode2[e] = ((e * 7) % m) + 1;
    mode3[e] = ((e * 11) % m) + 1;
    tval[e] = 0.01 * ((e % 5) + 1);
  }
  forall i in Dm {
    for r in 1..fRank {
      B[i, r] = 0.1 * i + 0.01 * r;
      C[i, r] = 0.05 * i + 0.02 * r;
    }
  }
  forall i in Dn {
    for r in 1..fRank {
      outm[i, r] = 0.0;
    }
  }
}

proc fiberStats(): int {
  for e in 1..n*nnzPerSlice {
    fibers += ((e * 7) % m) + 1;
    fiberNnz[((e * 7) % m) + 1] += 1;
  }
  var s = 0;
  forall f in fibers with (+ reduce s) {
    s += fiberNnz[f];
  }
  return s + fibers.size();
}

proc checksum(): real {
  var s = 0.0;
  for i in 1..n {
    for r in 1..fRank {
      s += outm[i, r] * (i + r);
    }
  }
  return s;
}
"""

_KERNEL_ORIGINAL = """
proc mttkrp() {
  forall i in Dn {
    for r in 1..fRank {
      outm[i, r] = 0.0;
    }
  }
  // edge-parallel COO scatter: the mode index loads repeat inside the
  // rank loop, the factor-row reads are per-element gathers, and the
  // output update is a scattered read-modify-write
  forall e in De {
    for r in 1..fRank {
      outm[mode1[e], r] += tval[e] * B[mode2[e], r] * C[mode3[e], r];
    }
  }
}

proc setup() {
}
"""

_KERNEL_OPTIMIZED = """
var slicePtr: [Dn1] int;
var DeR: domain(2) = {1..n*nnzPerSlice, 1..fRank};
var BgR: [DeR] real;
var CgR: [DeR] real;

proc setup() {
  // mode1 is sorted with a fixed stride by construction: the slice
  // pointers are arithmetic
  forall i in Dn1 {
    slicePtr[i] = (i - 1) * nnzPerSlice + 1;
  }
}

proc gatherFactors() {
  // inspector-executor: hoist each mode index once, then bulk-gather
  // the factor rows into edge order (pure gathers -- not findings)
  forall e in De {
    var m2 = mode2[e];
    var m3 = mode3[e];
    for r in 1..fRank {
      BgR[e, r] = B[m2, r];
      CgR[e, r] = C[m3, r];
    }
  }
}

proc mttkrp() {
  gatherFactors();
  // slice-parallel CSR: contiguous edge window per output row, local
  // accumulator, one direct store per (row, rank) cell
  forall i in Dn {
    for r in 1..fRank {
      var acc = 0.0;
      for e in slicePtr[i]..slicePtr[i+1]-1 {
        acc += tval[e] * BgR[e, r] * CgR[e, r];
      }
      outm[i, r] = acc;
    }
  }
}
"""

_MAIN = """
proc main() {
  initData();
  var fs = fiberStats();
  setup();
  for it in 1..iters {
    mttkrp();
  }
  writeln("checksum", checksum());
  writeln("fibers", fs);
}
"""

VARIANTS = ("original", "optimized")


def build_source(variant: str = "original", optimized: bool = False) -> str:
    """Returns mini-Chapel source for the requested MTTKRP variant."""
    if optimized:
        variant = "optimized"
    if variant not in VARIANTS:
        raise ValueError(
            f"unknown mttkrp variant {variant!r} (want {'|'.join(VARIANTS)})"
        )
    kernel = {
        "original": _KERNEL_ORIGINAL,
        "optimized": _KERNEL_OPTIMIZED,
    }[variant]
    return "\n".join([_PRELUDE, kernel, _MAIN])


def config_for(
    n: int | None = None,
    m: int | None = None,
    nnz_per_slice: int | None = None,
    f_rank: int | None = None,
    iters: int | None = None,
) -> dict[str, object]:
    cfg = dict(DEFAULT_CONFIG)
    if n is not None:
        cfg["n"] = n
    if m is not None:
        cfg["m"] = m
    if nnz_per_slice is not None:
        cfg["nnzPerSlice"] = nnz_per_slice
    if f_rank is not None:
        cfg["fRank"] = f_rank
    if iters is not None:
        cfg["iters"] = iters
    return cfg
