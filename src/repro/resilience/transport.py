"""Transport-seam fault decisions and the CRC result envelope.

The sample-stream injector (:mod:`repro.resilience.inject`) degrades
*telemetry*; this module degrades the *transport* under it — the worker
pool that ships shard tasks out and results back.  Decisions are pure
functions of ``(plan.seed, task_index, dispatch)``, so a fault schedule
replays exactly: the same plan against the same shard count crashes,
hangs and corrupts the same dispatches every run, which is what lets
the supervisor tests assert byte-identical recovery.

Two pieces live here:

* :func:`directives_for` — the per-dispatch fault decision, evaluated
  in the *parent* and shipped to the worker inside the task payload
  (workers stay deterministic; they never roll dice).
* the result envelope — ``seal``/``unseal`` wrap a task result in
  ``(tag, crc32, pickled-bytes)`` so in-flight corruption is *detected*
  on the parent side rather than trusted.  The envelope costs a second
  pickle pass, so the supervisor only turns it on when the plan can
  actually corrupt payloads (:attr:`FaultPlan.has_payload_faults`);
  the clean path ships raw results exactly as before.
"""

from __future__ import annotations

import pickle
import random
import zlib
from dataclasses import dataclass

from ..errors import PayloadCorruptError

#: First element of a sealed result tuple (versioned envelope tag).
ENVELOPE_TAG = "cbp-env1"


@dataclass(frozen=True)
class TaskDirectives:
    """What the transport does to one dispatch of one task."""

    crash: bool = False
    kill: bool = False
    hang: bool = False
    corrupt: bool = False
    hang_seconds: float = 0.0

    @property
    def any(self) -> bool:
        return self.crash or self.kill or self.hang or self.corrupt


#: The no-fault directives (shared instance: the common case allocates
#: nothing).
CLEAN_DIRECTIVES = TaskDirectives()


def _roll(plan, kind: str, task_index: int, dispatch: int, rate: float) -> bool:
    if rate <= 0.0:
        return False
    rng = random.Random(f"{plan.seed}:transport:{kind}:{task_index}:{dispatch}")
    return rng.random() < rate


def directives_for(plan, task_index: int, dispatch: int) -> TaskDirectives:
    """The deterministic fault decision for 0-based ``dispatch`` of
    ``task_index``.  List-based faults fire on the first dispatch only
    (a retry lands on a healthy worker); rate-based faults roll a
    decorrelated die per dispatch; ``worker_dead_tasks`` crash every
    dispatch — the only way a shard exhausts its retries."""
    if plan is None or not plan.has_transport_faults:
        return CLEAN_DIRECTIVES
    first = dispatch == 0
    crash = (
        (first and task_index in plan.worker_crash_tasks)
        or task_index in plan.worker_dead_tasks
        or _roll(plan, "crash", task_index, dispatch, plan.worker_crash_rate)
    )
    kill = first and task_index in plan.worker_kill_tasks
    hang = (first and task_index in plan.worker_hang_tasks) or _roll(
        plan, "hang", task_index, dispatch, plan.worker_hang_rate
    )
    corrupt = (first and task_index in plan.payload_corrupt_tasks) or _roll(
        plan, "corrupt", task_index, dispatch, plan.payload_corrupt_rate
    )
    if not (crash or kill or hang or corrupt):
        return CLEAN_DIRECTIVES
    return TaskDirectives(
        crash=crash,
        kill=kill,
        hang=hang,
        corrupt=corrupt,
        hang_seconds=plan.hang_seconds if hang else 0.0,
    )


# -- result envelope ----------------------------------------------------------


def seal(result, corrupt: bool = False, seed: int = 0) -> tuple:
    """Wraps ``result`` as ``(ENVELOPE_TAG, crc32, payload-bytes)``.

    With ``corrupt=True`` the payload is deterministically damaged
    (seeded byte flip, or truncation for tiny payloads) *after* the CRC
    is computed — exactly what a torn write looks like to the reader.
    """
    payload = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
    crc = zlib.crc32(payload)
    if corrupt:
        payload = _damage(payload, seed)
    return (ENVELOPE_TAG, crc, payload)


def unseal(sealed):
    """Verifies and unpacks a sealed result; raises
    :class:`~repro.errors.PayloadCorruptError` on CRC mismatch or
    unpicklable bytes.  A result that is not an envelope at all is also
    corruption (the tag is part of the contract)."""
    if (
        not isinstance(sealed, tuple)
        or len(sealed) != 3
        or sealed[0] != ENVELOPE_TAG
    ):
        raise PayloadCorruptError(
            "task result is not a sealed envelope "
            f"(got {type(sealed).__name__})"
        )
    _tag, crc, payload = sealed
    if zlib.crc32(payload) != crc:
        raise PayloadCorruptError(
            f"task result payload failed CRC check "
            f"({len(payload)} bytes, expected crc {crc:#010x})"
        )
    try:
        return pickle.loads(payload)
    except Exception as exc:
        raise PayloadCorruptError(
            f"task result payload would not unpickle: {exc}"
        ) from exc


def _damage(payload: bytes, seed: int) -> bytes:
    """Deterministic payload damage: flip one seeded byte, or truncate
    when there is almost nothing to flip."""
    if len(payload) < 4:
        return payload[: len(payload) // 2]
    rng = random.Random(f"{seed}:payload-damage:{len(payload)}")
    i = rng.randrange(len(payload))
    return payload[:i] + bytes([payload[i] ^ 0xFF]) + payload[i + 1 :]
