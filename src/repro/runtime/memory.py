"""Simulated heap with allocation-site tracking.

The blame tool itself doesn't need a heap model — but the HPCToolkit
data-centric *baseline* (paper §II.B) attributes samples only to static
variables and heap allocations larger than 4 KB, so the runtime records
every allocation's site, size, and lifetime.  Sizes are estimated at 8
bytes per scalar slot.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..chapel.tokens import SourceLocation

BYTES_PER_SLOT = 8


@dataclass
class Allocation:
    """One heap allocation event."""

    heap_id: int
    kind: str  # "array" | "object"
    size_bytes: int
    site: SourceLocation
    func: str
    #: Source variable the allocation was first stored into, when known;
    #: filled post-hoc by the baseline attribution.
    bound_var: str | None = None


class Heap:
    """Allocation registry for one program run."""

    def __init__(self) -> None:
        # Plain-int allocator (not itertools.count): heap ids are part
        # of the run state a collection checkpoint snapshots, so the
        # next id must survive a pickle round-trip exactly.
        self._next_id = 1
        self.allocations: dict[int, Allocation] = {}
        self.total_bytes = 0
        self.peak_bytes = 0
        self._live_bytes = 0

    def allocate(
        self, kind: str, n_slots: int, site: SourceLocation, func: str
    ) -> Allocation:
        heap_id = self._next_id
        self._next_id += 1
        size = n_slots * BYTES_PER_SLOT
        alloc = Allocation(heap_id, kind, size, site, func)
        self.allocations[heap_id] = alloc
        self.total_bytes += size
        self._live_bytes += size
        self.peak_bytes = max(self.peak_bytes, self._live_bytes)
        return alloc

    def free(self, heap_id: int) -> None:
        alloc = self.allocations.get(heap_id)
        if alloc is not None:
            self._live_bytes -= alloc.size_bytes

    def large_allocations(self, threshold_bytes: int = 4096) -> list[Allocation]:
        """Allocations the HPCToolkit-style baseline would track."""
        return [
            a for a in self.allocations.values() if a.size_bytes > threshold_bytes
        ]

    @property
    def allocation_count(self) -> int:
        return len(self.allocations)
