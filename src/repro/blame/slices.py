"""Backward slicing and BlameSet computation (paper §III).

``BlameSet(v, W) = ∪_{w∈W} BackwardsSlice(w)``: the slice closure walks

* operand (use-def) edges,
* memory edges — a ``load`` of variable v depends, flow-insensitively,
  on every ``store`` to v in the function (this is how the paper's
  Table I gives ``c`` both writes to ``a``),
* control-dependence edges — every instruction depends on the branches
  controlling its block *and their condition producers* (Table I's
  line 18 in ``a``'s and ``c``'s blame lines).

The result is inverted into ``iid → {variables}`` so the dynamic side
can answer ``isBlamed(v, s)`` with one set lookup per sample frame.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..ir import instructions as I
from ..ir.module import Function, Module
from .control_deps import instruction_control_deps
from .dataflow import DataFlow, Path, Root, VarKey


def paths_may_alias(a: Path, b: Path) -> bool:
    """Field-sensitive may-alias on access paths: fields must match
    name-for-name, indices match any index, and a prefix aliases an
    extension only when the extension does not cross a class
    dereference ("cfield") — a pointer *slot* is separate memory from
    the pointee's fields.  Keeps ``p.residue`` loads from depending on
    stores to ``p.zoneArray[j].value`` (which would otherwise drag
    CLOMP's whole hot loop into residue's BlameSet)."""
    n = min(len(a), len(b))
    for ea, eb in zip(a, b):
        ka, kb = ea[0], eb[0]
        if (ka == "index") != (kb == "index"):
            return False
        if ka != "index" and (ka != kb or ea[1] != eb[1]):
            return False
    longer = a if len(a) > len(b) else b
    if len(longer) > n and longer[n][0] == "cfield":
        return False
    return True


class SliceGraph:
    """Backward dependency edges (iid → dep iids) for one function."""

    def __init__(self, function: Function, dataflow: DataFlow) -> None:
        self.function = function
        self.df = dataflow
        self.deps: dict[int, set[int]] = {}
        self._build()

    @property
    def options(self):
        return self.df.options

    def _build(self) -> None:
        fn = self.function
        df = self.df
        # Stores to each root variable (for load→store memory edges),
        # keeping the access path for field-sensitive aliasing.
        stores_by_var: dict[VarKey, list[tuple[Path, int]]] = {}
        for instr in fn.instructions():
            if isinstance(instr, I.Store):
                for key, path in df.roots_of(instr.addr):
                    stores_by_var.setdefault(key, []).append((path, instr.iid))

        control = instruction_control_deps(fn)

        for instr in fn.instructions():
            deps = self.deps.setdefault(instr.iid, set())
            # Operand (explicit data) edges.
            for op in instr.operands():
                if isinstance(op, I.Register) and op.producer is not None:
                    deps.add(op.producer.iid)
            # Memory edges: loads depend on the stores to the same root
            # whose paths may alias (flow-insensitive otherwise — the
            # paper's Table I gives c both writes to a).
            if isinstance(instr, I.Load):
                for key, path in df.roots_of(instr.addr):
                    for spath, siid in stores_by_var.get(key, ()):
                        if paths_may_alias(path, spath):
                            deps.add(siid)
            # Implicit (control) edges: the controlling branches and,
            # through their operand edges, the condition producers.
            if df.options.implicit_control:
                for cbr in control.get(instr.iid, ()):
                    if cbr.iid != instr.iid:
                        deps.add(cbr.iid)

    def backward_slice(self, seeds: set[int]) -> frozenset[int]:
        """Multi-source backward closure from ``seeds``."""
        seen: set[int] = set(seeds)
        queue = deque(seeds)
        while queue:
            iid = queue.popleft()
            for dep in self.deps.get(iid, ()):
                if dep not in seen:
                    seen.add(dep)
                    queue.append(dep)
        return frozenset(seen)


@dataclass
class BlameSets:
    """Per-function blame sets, both directions.

    ``by_var[(key, path)]`` is the BlameSet (iids) of a variable or a
    hierarchical sub-variable; ``by_iid[iid]`` is the set of roots
    blamed when a sample lands on that instruction.
    """

    by_var: dict[Root, frozenset[int]]
    by_iid: dict[int, frozenset[Root]]

    def blamed_at(self, iid: int) -> frozenset[Root]:
        return self.by_iid.get(iid, frozenset())


def _cbr_iterable_roots(
    cbr: I.CBr, dataflow: DataFlow
) -> frozenset[Root]:
    """Roots of the iterands whose iterator feeds this branch condition
    (chasing through the &&-conjunction of zippered loops)."""
    roots: set[Root] = set()
    stack: list[I.Value] = [cbr.cond]
    seen: set[int] = set()
    while stack:
        v = stack.pop()
        if not isinstance(v, I.Register) or v.rid in seen:
            continue
        seen.add(v.rid)
        producer = v.producer
        if isinstance(producer, I.IterNext):
            for key, _path in dataflow.roots_of(producer.state):
                roots.add((key, ()))
        elif isinstance(producer, I.BinOp) and producer.op in ("&&", "||"):
            stack.extend(producer.operands())
        elif isinstance(producer, I.Load):
            stack.append(producer.addr)
    return frozenset(roots)


def _implicit_iterable_blame(
    function: Function, dataflow: DataFlow
) -> dict[Root, frozenset[int]]:
    """Maps iterand roots to the body instructions they implicitly blame
    (innermost enclosing loop only)."""
    imm = instruction_control_deps(function, transitive=False)
    cbr_roots: dict[int, frozenset[Root]] = {}
    out: dict[Root, set[int]] = {}
    for instr in function.instructions():
        for cbr in imm.get(instr.iid, ()):
            if not isinstance(cbr, I.CBr):
                continue
            roots = cbr_roots.get(cbr.iid)
            if roots is None:
                roots = _cbr_iterable_roots(cbr, dataflow)
                cbr_roots[cbr.iid] = roots
            for root in roots:
                out.setdefault(root, set()).add(instr.iid)
    return {root: frozenset(iids) for root, iids in out.items()}


def compute_blame_sets(function: Function, dataflow: DataFlow) -> BlameSets:
    """BlameSets of every root variable (and materialized field path)
    of one function.

    Deep writes (real stores, returns) contribute their full backward
    slice; shallow writes (ref-arg callsites, descriptor bookkeeping)
    contribute only themselves — the written value is computed in the
    callee / runtime, so the caller-side operand chain is not the work
    that produced it (it is attributed through the callee's own blame
    sets plus the transfer function instead).
    """
    graph = SliceGraph(function, dataflow)
    by_var: dict[Root, frozenset[int]] = {}
    deep = dataflow.deep_write_iids

    def blame_set(writes) -> frozenset[int]:
        deep_seeds = {w.iid for w in writes if w.iid in deep}
        shallow = {w.iid for w in writes if w.iid not in deep}
        return graph.backward_slice(deep_seeds) | frozenset(shallow)

    for key, writes in dataflow.writes.items():
        by_var[(key, ())] = blame_set(writes)
    for root, writes in dataflow.path_writes.items():
        by_var[root] = blame_set(writes)

    # Implicit iterable blame (paper §IV.A): "all variables within the
    # loop body inherit blame from the index variable" — generalized to
    # the domain/array *driving* the loop: instructions in a loop body
    # join the BlameSet of the innermost loop's iterands (how MiniMD's
    # binSpace earns 49 % without a single source-level write).
    if dataflow.options.implicit_iterable:
        iterable_extra = _implicit_iterable_blame(function, dataflow)
        for root, iids in iterable_extra.items():
            by_var[root] = by_var.get(root, frozenset()) | iids

    by_iid: dict[int, set[Root]] = {}
    for root, iids in by_var.items():
        for iid in iids:
            by_iid.setdefault(iid, set()).add(root)

    return BlameSets(
        by_var=by_var,
        by_iid={iid: frozenset(roots) for iid, roots in by_iid.items()},
    )
