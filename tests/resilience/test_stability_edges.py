"""Stability-metric edge cases the fault sweep never hits: tied blame
shares, empty and singleton reports, and fully disjoint variable sets.
The adaptive stopping rule consumes these metrics at checkpoints where
any of those shapes can genuinely occur (first rounds, heavy
quarantine), so the boundary behaviour is load-bearing."""

from __future__ import annotations

from repro.blame.report import UNKNOWN_BUCKET, BlameReport, BlameRow, RunStats
from repro.resilience.stability import (
    compare_reports,
    kendall_tau,
    ranking,
    top_n_overlap,
)


def _report(rows_spec):
    """rows_spec: list of (name, samples) — blame derived, order kept."""
    total = sum(s for _, s in rows_spec) or 1
    rows = [
        BlameRow(
            name=name,
            type_str="real",
            context="main",
            samples=samples,
            blame=samples / total,
            is_path=False,
        )
        for name, samples in rows_spec
    ]
    return BlameReport(
        program="t.chpl",
        rows=rows,
        stats=RunStats(total_raw_samples=total, user_samples=total),
    )


EMPTY = _report([])
SINGLETON = _report([("only", 10)])


class TestTiedShares:
    """Rows with identical blame: the report's display order decides the
    ranking, and the metrics must stay well-defined (no division by the
    number of resolved pairs)."""

    def test_tied_rows_keep_report_order(self):
        rep = _report([("a", 10), ("b", 10), ("c", 10)])
        assert ranking(rep) == ["main::a", "main::b", "main::c"]

    def test_tie_reorder_keeps_overlap(self):
        a = _report([("a", 10), ("b", 10), ("c", 10)])
        b = _report([("c", 10), ("a", 10), ("b", 10)])
        assert top_n_overlap(a, b, n=3) == 1.0

    def test_tie_reorder_moves_plain_tau(self):
        # Plain tau-a does penalize reordered ties — exactly why the
        # adaptive bench gates on resolved_kendall_tau instead.
        a = _report([("a", 10), ("b", 10)])
        b = _report([("b", 10), ("a", 10)])
        assert kendall_tau(a, b) == -1.0

    def test_all_tied_compare_reports_is_finite(self):
        a = _report([("a", 10), ("b", 10)])
        point = compare_reports("drop", 0.1, a, a)
        assert point.top5_overlap == 1.0
        assert point.kendall_tau == 1.0


class TestEmptyAndSingleton:
    def test_empty_vs_empty(self):
        assert top_n_overlap(EMPTY, EMPTY) == 1.0
        assert kendall_tau(EMPTY, EMPTY) == 1.0
        assert ranking(EMPTY) == []

    def test_empty_clean_vs_populated(self):
        rep = _report([("a", 10)])
        # No clean rows: nothing to lose — vacuous full overlap.
        assert top_n_overlap(EMPTY, rep) == 1.0

    def test_populated_clean_vs_empty(self):
        rep = _report([("a", 10)])
        assert top_n_overlap(rep, EMPTY) == 0.0
        assert kendall_tau(rep, EMPTY) == 1.0  # < 2 shared rows

    def test_singleton_agreement_is_neutral(self):
        other = _report([("only", 25)])
        assert top_n_overlap(SINGLETON, other) == 1.0
        assert kendall_tau(SINGLETON, other) == 1.0

    def test_unknown_only_report_ranks_empty(self):
        rep = _report([(UNKNOWN_BUCKET, 10)])
        assert ranking(rep) == []
        assert top_n_overlap(rep, SINGLETON) == 1.0


class TestDisjointSets:
    def test_fully_disjoint_overlap_zero(self):
        a = _report([("a", 10), ("b", 5)])
        b = _report([("x", 10), ("y", 5)])
        assert top_n_overlap(a, b) == 0.0

    def test_fully_disjoint_tau_neutral(self):
        a = _report([("a", 10), ("b", 5)])
        b = _report([("x", 10), ("y", 5)])
        # No shared rows: tau has no evidence of disagreement.
        assert kendall_tau(a, b) == 1.0

    def test_disjoint_compare_reports_completes(self):
        a = _report([("a", 10)])
        b = _report([("x", 10)])
        point = compare_reports("strip", 0.3, a, b)
        assert point.completed
        assert point.top5_overlap == 0.0
        assert point.kendall_tau == 1.0

    def test_context_distinguishes_same_name(self):
        # Same variable name in different contexts is a different key.
        a = _report([("v", 10)])
        b_rows = [
            BlameRow(
                name="v",
                type_str="real",
                context="helper",
                samples=10,
                blame=1.0,
                is_path=False,
            )
        ]
        b = BlameReport(
            program="t.chpl",
            rows=b_rows,
            stats=RunStats(total_raw_samples=10, user_samples=10),
        )
        assert top_n_overlap(a, b) == 0.0
