"""Function inlining (the pass that makes functions "removed or renamed"
under --fast, per the paper's footnote).

Conservatively inlines *single-block* callees below a size threshold:
the callee's instructions are cloned into the caller with fresh
registers, formals are substituted with actuals (``ref`` formals receive
the caller's address value directly), and the return value replaces the
call result.  Fully-inlined functions are dropped from the module —
together with their debug bindings.
"""

from __future__ import annotations

from ...ir import instructions as I
from ...ir.module import Function, Module

#: Maximum callee size (instructions) eligible for inlining.
INLINE_THRESHOLD = 48


def _eligible(fn: Function) -> bool:
    if len(fn.blocks) != 1:
        return False
    if fn.is_artificial or fn.outlined_from is not None:
        return False
    if fn.name == "main":
        return False
    instrs = fn.blocks[0].instructions
    if len(instrs) > INLINE_THRESHOLD:
        return False
    if not isinstance(instrs[-1], I.Ret):
        return False
    # No self-calls (recursion) and no spawns.
    for instr in instrs:
        if isinstance(instr, I.Call) and instr.callee == fn.name:
            return False
        if isinstance(instr, I.SpawnJoin):
            return False
    return True


def _clone_body(
    callee: Function, args: list[I.Value]
) -> tuple[list[I.Instruction], I.Value | None]:
    """Clones the single-block body, substituting formals with actuals.
    Returns (instructions, return value)."""
    mapping: dict[int, I.Value] = {}
    for p, a in zip(callee.params, args):
        mapping[p.register.rid] = a

    def sub(v: I.Value) -> I.Value:
        if isinstance(v, I.Register):
            return mapping.get(v.rid, v)
        return v

    out: list[I.Instruction] = []
    ret_value: I.Value | None = None
    for instr in callee.blocks[0].instructions:
        if isinstance(instr, I.Ret):
            ret_value = sub(instr.value) if instr.value is not None else None
            break
        clone = _clone_instr(instr, sub)
        if instr.result is not None:
            assert clone.result is not None
            mapping[instr.result.rid] = clone.result
        out.append(clone)
    return out, ret_value


def _clone_instr(instr: I.Instruction, sub) -> I.Instruction:
    loc = instr.loc
    res = (
        I.Register(instr.result.type, hint=instr.result.hint)
        if instr.result is not None
        else None
    )
    if isinstance(instr, I.Alloca):
        assert res is not None
        return I.Alloca(
            loc, res, instr.alloc_type, instr.var_name, instr.is_temp,
            formal_home=instr.formal_home,
        )
    if isinstance(instr, I.Load):
        return I.Load(loc, res, sub(instr.addr))  # type: ignore[arg-type]
    if isinstance(instr, I.Store):
        return I.Store(loc, sub(instr.value), sub(instr.addr))
    if isinstance(instr, I.FieldAddr):
        return I.FieldAddr(loc, res, sub(instr.base), instr.index, instr.field_name)  # type: ignore[arg-type]
    if isinstance(instr, I.ElemAddr):
        return I.ElemAddr(loc, res, sub(instr.base), [sub(x) for x in instr.indices])  # type: ignore[arg-type]
    if isinstance(instr, I.TupleElemAddr):
        return I.TupleElemAddr(loc, res, sub(instr.base), sub(instr.index))  # type: ignore[arg-type]
    if isinstance(instr, I.BinOp):
        return I.BinOp(loc, res, instr.op, sub(instr.lhs), sub(instr.rhs))  # type: ignore[arg-type]
    if isinstance(instr, I.UnOp):
        return I.UnOp(loc, res, instr.op, sub(instr.operand))  # type: ignore[arg-type]
    if isinstance(instr, I.Cast):
        return I.Cast(loc, res, sub(instr.value))  # type: ignore[arg-type]
    if isinstance(instr, I.Call):
        return I.Call(loc, res, instr.callee, [sub(a) for a in instr.args], instr.is_builtin)
    if isinstance(instr, I.MakeRange):
        return I.MakeRange(
            loc, res, sub(instr.ops[0]), sub(instr.ops[1]), sub(instr.ops[2]), instr.counted  # type: ignore[arg-type]
        )
    if isinstance(instr, I.MakeDomain):
        return I.MakeDomain(loc, res, [sub(d) for d in instr.ops])  # type: ignore[arg-type]
    if isinstance(instr, I.MakeArray):
        return I.MakeArray(loc, res, sub(instr.domain), instr.elem_type)  # type: ignore[arg-type]
    if isinstance(instr, I.ArraySlice):
        return I.ArraySlice(loc, res, sub(instr.base), sub(instr.domain))  # type: ignore[arg-type]
    if isinstance(instr, I.ArrayReindex):
        return I.ArrayReindex(loc, res, sub(instr.base), sub(instr.domain))  # type: ignore[arg-type]
    if isinstance(instr, I.DomainOp):
        return I.DomainOp(loc, res, instr.op, sub(instr.base), [sub(a) for a in instr.ops[1:]])  # type: ignore[arg-type]
    if isinstance(instr, I.MakeTuple):
        return I.MakeTuple(loc, res, [sub(e) for e in instr.ops])  # type: ignore[arg-type]
    if isinstance(instr, I.TupleGet):
        return I.TupleGet(loc, res, sub(instr.tup), sub(instr.index))  # type: ignore[arg-type]
    if isinstance(instr, I.NewObject):
        return I.NewObject(loc, res, instr.type_name, [sub(a) for a in instr.ops])  # type: ignore[arg-type]
    if isinstance(instr, I.IterInit):
        return I.IterInit(loc, res, sub(instr.iterable), instr.zippered)  # type: ignore[arg-type]
    if isinstance(instr, I.IterNext):
        return I.IterNext(loc, res, sub(instr.state))  # type: ignore[arg-type]
    if isinstance(instr, I.IterValue):
        return I.IterValue(loc, res, sub(instr.state))  # type: ignore[arg-type]
    raise AssertionError(f"cannot clone {instr.opname}")


def inline_small_functions(module: Module) -> bool:
    eligible = {name for name, fn in module.functions.items() if _eligible(fn)}
    if not eligible:
        return False
    changed = False
    for fn in module.functions.values():
        for block in fn.blocks:
            i = 0
            while i < len(block.instructions):
                instr = block.instructions[i]
                if (
                    isinstance(instr, I.Call)
                    and not instr.is_builtin
                    and instr.callee in eligible
                    and instr.callee != fn.name
                ):
                    callee = module.functions[instr.callee]
                    body, ret_value = _clone_body(callee, list(instr.args))
                    for clone in body:
                        clone.parent = block
                    block.instructions[i : i + 1] = body
                    i += len(body)
                    if instr.result is not None:
                        # Replace uses of the call result everywhere.
                        replacement = (
                            ret_value
                            if ret_value is not None
                            else I.Constant(instr.result.type, 0)
                        )
                        _replace_uses(fn, instr.result, replacement)
                    changed = True
                    continue
                i += 1

    if changed:
        _drop_dead_functions(module, eligible)
    return changed


def _replace_uses(fn: Function, old: I.Register, new: I.Value) -> None:
    for block in fn.blocks:
        for instr in block.instructions:
            for op in list(instr.operands()):
                if isinstance(op, I.Register) and op.rid == old.rid:
                    instr.replace_operand(op, new)


def _drop_dead_functions(module: Module, candidates: set[str]) -> None:
    """Removes fully-inlined functions with no remaining call sites —
    they vanish from profiles, as the paper observed under --fast."""
    called: set[str] = set()
    for _f, instr in module.all_instructions():
        if isinstance(instr, I.Call) and not instr.is_builtin:
            called.add(instr.callee)
        if isinstance(instr, I.SpawnJoin):
            called.add(instr.outlined)
    for name in candidates:
        if name not in called and name != "main":
            module.functions.pop(name, None)
