"""Sharded parallel collection: pool-of-workers post-mortem, attribution
and static analysis with a bit-identity guarantee (paper §IV.C).

The paper observes that post-mortem processing and blame attribution are
embarrassingly parallel once the sample stream is split — per-variable
blame combines by pure row-count summation.  This module is that split:

1. the parent collects (and, when injecting, degrades) one locale's
   stream exactly as the serial path does;
2. the stream is split into contiguous shards
   (:mod:`repro.sampling.sharding`) and each shard's consolidation +
   attribution runs in a pool worker (phase 1).  Workers stop *before*
   resolving degraded candidates — recovery evidence spans the whole
   stream — and ship back a
   :class:`~repro.blame.postmortem.ShardState`;
3. the parent merges the per-shard evidence in stream order and
   resolves every held-back candidate against it (phase 2), which
   reproduces the serial recovery outcome exactly;
4. per-shard partial :class:`~repro.artifact.model.ProfileSnapshot`\\ s
   (plus one "tail" snapshot carrying the phase-2 outcome and the
   run-level counters) are reassembled with
   :func:`~repro.artifact.merge.merge_snapshots` — the same merge
   contract the multi-locale harness uses — into a snapshot that is
   **bit-identical** to the serial path's artifact.

Pool backends
-------------

``process``
    :class:`concurrent.futures.ProcessPoolExecutor`; worker state
    (module, static info, options) ships once per worker through a
    pickled initializer blob.
``interpreter``
    :class:`concurrent.futures.InterpreterPoolExecutor` — one
    subinterpreter per worker, cheaper than processes.  Capability-gated:
    only available on Python >= 3.14; requesting it earlier raises
    :class:`~repro.errors.ParallelError`.
``inline``
    sequential in-process execution of the identical shard tasks (no
    pickling, no pool).  This is the determinism witness used by the
    equivalence tests and the critical-path benchmark — with
    supervision it also simulates the transport seam (crashes, hangs,
    corrupt payloads) deterministically and without sleeping.
``auto``
    ``interpreter`` when available, else ``process``.

Transport faults — a worker crashing, hanging, or shipping back a
corrupted result — are handled by the
:class:`~repro.pipeline.supervisor.ShardSupervisor`: every pool
submission runs under a per-task state machine with bounded retry,
per-task timeouts, optional speculation, and pool rebuild after
``BrokenProcessPool``.  A shard that exhausts its retries degrades
gracefully into the ``<unknown>`` blame bucket with ``worker-failed``
provenance instead of aborting the run.

Why the result is bit-identical, not merely equivalent: shards are
contiguous, so concatenating per-shard outputs preserves stream order;
evidence merging is first-occurrence-wins in shard order, matching the
serial consumer's ``setdefault``; candidates are resolved in global
stream order against that evidence (which serial recovery never lets
recovered paths feed back into); and blame rows combine by integer
sample counts over the same denominator, so even the floating-point
fractions come out identical.
"""

from __future__ import annotations

import pickle
import time
from concurrent import futures as _cf
from dataclasses import dataclass, field

from ..artifact.merge import merge_snapshots
from ..artifact.model import (
    ArtifactMeta,
    FunctionCatalog,
    ProfileSnapshot,
    SnapshotPostmortem,
    relabel,
    _tool_version,
)
from ..blame.attribution import (
    AttributionResult,
    BlameAttributor,
    merge_attributions,
)
from ..blame.postmortem import (
    REASON_WORKER_FAILED,
    DegradedSample,
    PostmortemConsumer,
    PostmortemResult,
    ShardEvidence,
)
from ..blame.report import UNKNOWN_BUCKET
from ..errors import ParallelError
from ..sampling.sharding import shard_stream, shard_stream_weighted
from ..sampling.stackwalk import StackResolver
from .stages import aggregate_stage
from .supervisor import ShardSupervisor, SupervisorConfig

#: Worker-pool backends `resolve_backend` understands.
BACKENDS = ("auto", "process", "interpreter", "inline")


def postmortem_cost(sample) -> int:
    """Relative post-mortem + attribution cost of one raw sample — the
    weight the splitter balances shards by.

    Measured on the paper workloads: a sample carrying a spawn tag
    (a worker-task sample whose call path gets glued through the
    recorded pre-spawn continuation) costs roughly four times an
    ungled one; everything else (idle, runtime, plain user samples) is
    near-uniform.  The proxy only has to *rank* work well — shards stay
    contiguous either way, so a mediocre estimate costs balance, never
    correctness."""
    return 1 + 3 * (sample.spawn_tag is not None)


def interpreter_pool_available() -> bool:
    """True when this Python ships ``InterpreterPoolExecutor``
    (subinterpreter workers, PEP 734 — Python >= 3.14)."""
    return hasattr(_cf, "InterpreterPoolExecutor")


def resolve_backend(backend: str = "auto") -> str:
    """Maps a requested backend to a concrete one, capability-gated."""
    if backend not in BACKENDS:
        raise ParallelError(
            f"unknown parallel backend {backend!r} "
            f"(want one of {'|'.join(BACKENDS)})"
        )
    if backend == "auto":
        return "interpreter" if interpreter_pool_available() else "process"
    if backend == "interpreter" and not interpreter_pool_available():
        raise ParallelError(
            "the interpreter backend needs "
            "concurrent.futures.InterpreterPoolExecutor (Python >= 3.14); "
            "use --parallel-backend process or auto"
        )
    return backend


# -- worker side --------------------------------------------------------------
#
# Worker state is module-level so pool tasks (which must be picklable
# top-level functions) can reach it.  Process/interpreter pools populate
# it via the initializer below, once per worker; the inline backend sets
# it directly in the parent process.

_WORKER: dict = {}


def _set_worker_state(
    module, static_info, options, global_aliases, collect_options=None
) -> None:
    _WORKER["module"] = module
    _WORKER["static"] = static_info
    _WORKER["options"] = options
    _WORKER["aliases"] = global_aliases
    _WORKER["collect"] = collect_options
    # Indexing the module's instructions is per-module work, not
    # per-shard work: build the resolver once per worker (alongside the
    # unpickle) and let every shard's consumer share it.  Collection
    # workers never walk samples post-mortem, so they skip the index.
    _WORKER["resolver"] = (
        None if collect_options is not None else StackResolver(module)
    )


def _init_worker(blob: bytes) -> None:
    """Pool initializer: unpickles the shared per-worker state once, so
    individual shard tasks only ever ship samples."""
    _set_worker_state(*pickle.loads(blob))


def _postmortem_shard(payload):
    """Phase 1, in a worker: consolidate one shard and attribute its
    intact instances.  Degraded candidates stay unresolved in the
    returned :class:`~repro.blame.postmortem.ShardState`."""
    shard_index, samples = payload
    t0 = time.perf_counter()
    consumer = PostmortemConsumer(
        _WORKER["module"],
        options=_WORKER["options"],
        tolerant=True,
        resolver=_WORKER["resolver"],
    )
    consumer.feed(samples)
    state = consumer.shard_state()
    attribution = BlameAttributor(_WORKER["static"]).attribute(state.instances)
    return shard_index, state, attribution, time.perf_counter() - t0


def _collect_slice(payload):
    """Collection fan-out task: execute one simulated-time slice of the
    run under a fresh interpreter + per-slice monitor.

    ``payload`` is ``(slice_index, checkpoint blob | None, start, stop)``
    — slice 0 starts fresh, later slices resume from the census
    checkpoint captured at their start position; ``stop`` is the global
    accepted-sample count to unwind at (None runs to completion).
    Returns the sealed CRC-framed slice stream, the monitor's counters,
    and the :class:`~repro.runtime.interpreter.RunResult` when this
    slice finished the program (exactly the last slice, since every
    other stop count was census-observed and is therefore reached).
    """
    from ..runtime.interpreter import Interpreter
    from ..sampling.monitor import Monitor
    from ..sampling.pmu import PMUConfig

    slice_index, blob, start, stop = payload
    opts = _WORKER["collect"]
    t0 = time.perf_counter()
    monitor = Monitor(
        PMUConfig(threshold=opts["threshold"]), index_base=start
    )
    if blob is None:
        interp = Interpreter(
            _WORKER["module"],
            config=opts["config"],
            num_threads=opts["num_threads"],
            cost_model=opts["cost_model"],
            monitor=monitor,
            sample_threshold=opts["threshold"],
            skid=opts["skid"],
            skid_compensation=opts["skid_compensation"],
        )
        run_result = interp.run_sliced(stop)
    else:
        interp = Interpreter.resume(
            blob,
            monitor=monitor,
            sample_threshold=opts["threshold"],
            cost_model=opts["cost_model"],
            skid=opts["skid"],
            skid_compensation=opts["skid_compensation"],
        )
        run_result = interp.continue_sliced(stop)
    counters = {
        "n_accepted": monitor.n_accepted,
        "dataset_bytes": monitor.dataset_size_bytes(),
        "stackwalk_cycles": monitor.overhead.stackwalk_cycles_total,
        "overhead_samples": monitor.overhead.n_samples,
        "quarantined": list(monitor.quarantined),
    }
    return (
        slice_index,
        monitor.sealed_stream(),
        counters,
        run_result,
        time.perf_counter() - t0,
    )


def _analyze_shard(names: "list[str]"):
    """Static-analysis fan-out task: full per-function analyses for the
    named functions, against the worker's module copy and the parent's
    alias facts."""
    from ..blame.static_info import analyze_function

    module = _WORKER["module"]
    aliases = _WORKER["aliases"]
    options = _WORKER["options"]
    return {
        name: analyze_function(
            module.functions[name], module, aliases, options
        )
        for name in names
    }


def _run_pool(
    backend,
    workers,
    state,
    task,
    payloads,
    supervision: "SupervisorConfig | None" = None,
    allow_degraded: bool = False,
):
    """Runs ``task`` over ``payloads`` on the chosen backend, returning
    ``(results, supervision outcome, pool wall time)`` with results in
    payload order.

    With ``supervision`` every dispatch runs under the
    :class:`~repro.pipeline.supervisor.ShardSupervisor` state machine
    (retry/timeout/speculation/degradation); without it this is the
    historical unsupervised fast path (one ``pool.map``, no retries) —
    kept for the supervision-overhead benchmark's baseline.
    """
    t0 = time.perf_counter()
    if supervision is not None:
        sup = ShardSupervisor(
            backend,
            workers,
            state,
            config=supervision,
            setup_inline=_set_worker_state,
        )
        outcome = sup.map(task, payloads, allow_degraded=allow_degraded)
        return outcome.results, outcome, time.perf_counter() - t0
    if backend == "inline":
        _set_worker_state(*state)
        results = [task(p) for p in payloads]
    else:
        blob = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
        pool_cls = (
            _cf.ProcessPoolExecutor
            if backend == "process"
            else _cf.InterpreterPoolExecutor
        )
        with pool_cls(
            max_workers=max(1, min(workers, len(payloads))),
            initializer=_init_worker,
            initargs=(blob,),
        ) as pool:
            results = list(pool.map(task, payloads))
    return results, None, time.perf_counter() - t0


# -- parent side --------------------------------------------------------------


@dataclass
class ParallelPostmortem:
    """Everything the sharded post-mortem produced.

    ``postmortem`` / ``attribution`` are exactly what the serial
    ``postmortem_stage`` → ``attribute_stage`` pair would have produced
    on the unsharded stream; ``snapshot`` is the merged artifact model
    (reassembled from ``shard_snapshots`` + a tail snapshot via
    ``merge_snapshots``), byte-identical to the serial artifact once
    timings are canonicalized.
    """

    postmortem: PostmortemResult
    attribution: AttributionResult
    snapshot: ProfileSnapshot
    #: Per-shard partial profiles (what ``--shard-artifacts`` persists).
    shard_snapshots: "list[ProfileSnapshot]" = field(default_factory=list)
    #: The phase-2 partial profile: recovered instances, the whole
    #: ``<unknown>`` bucket, ingest quarantine and run-level counters.
    #: ``merge_snapshots(shard_snapshots + [tail_snapshot])`` is exactly
    #: how ``snapshot`` was assembled.
    tail_snapshot: "ProfileSnapshot | None" = None
    #: Worker-measured seconds per shard (phase 1).
    shard_seconds: "list[float]" = field(default_factory=list)
    shard_sizes: "list[int]" = field(default_factory=list)
    #: Parent-side phase-2 post-mortem/attribution work: evidence merge,
    #: candidate resolution, tail attribution, attribution merge.
    resolve_seconds: float = 0.0
    #: Parent-side artifact assembly (partial snapshots + merge) — work
    #: the serial path also does outside its post-mortem timing, so it
    #: stays out of the scaling metric below.
    assemble_seconds: float = 0.0
    #: Wall time of the phase-1 fan-out as seen by the parent.
    pool_seconds: float = 0.0
    backend: str = ""
    workers: int = 0
    #: Supervision accounting when the fan-out ran supervised
    #: (:class:`~repro.pipeline.supervisor.SupervisionStats`; None on
    #: the unsupervised fast path).
    supervision: "object | None" = None
    #: Shard indices that exhausted their retry budget and were folded
    #: into ``<unknown>`` with ``worker-failed`` provenance.
    degraded_shards: tuple[int, ...] = ()

    @property
    def critical_path_seconds(self) -> float:
        """Modeled parallel post-mortem + attribution time: the slowest
        shard plus the serial phase-2 work — what the wall clock would
        show with one idle core per worker (the scaling number the
        benchmark reports honestly on hosts with fewer cores than
        workers).  Apples-to-apples with a serial ``postmortem_stage`` +
        ``attribute_stage`` timing: artifact assembly is excluded on
        both sides (see ``assemble_seconds``)."""
        return max(self.shard_seconds, default=0.0) + self.resolve_seconds


def parallel_postmortem(
    module,
    static_info,
    samples,
    workers: int,
    backend: str = "auto",
    options=None,
    program: str = "program.chpl",
    wall_seconds: float = 0.0,
    dataset_bytes: int = 0,
    stackwalk_cycles: float = 0.0,
    monitor_quarantine: "dict[str, int] | None" = None,
    monitor_quarantine_provenance: "list[tuple[str, int]] | None" = None,
    min_blame: float = 0.0,
    include_temps: bool = False,
    source_sha256: "str | None" = None,
    threshold: int = 0,
    num_threads: int = 0,
    locale_id: int = 0,
    fault_stats: "dict | None" = None,
    supervision: "SupervisorConfig | None" = None,
) -> ParallelPostmortem:
    """Sharded post-mortem + attribution over one locale's (already
    degraded) sample stream, reassembled through ``merge_snapshots``.

    The caller passes the run-level context a serial
    ``snapshot_from_result`` would have pulled off the live result
    (monitor quarantine, dataset size, run identity); the degraded
    stream must be the same bytes the serial path would consume —
    degrade *before* sharding, never per-shard.
    """
    if workers < 1:
        raise ParallelError(f"need at least one worker (got {workers})")
    backend = resolve_backend(backend)
    if options is None:
        options = static_info.options

    # Contiguous shards balanced by estimated post-mortem cost — the
    # cut points move with the weights, the contiguity invariant (and
    # with it bit-identity) does not.
    shards = shard_stream_weighted(samples, workers, postmortem_cost)
    state = (module, static_info, options, None)
    results, sup_outcome, pool_seconds = _run_pool(
        backend, workers, state, _postmortem_shard,
        [(i, shard) for i, shard in enumerate(shards)],
        supervision=supervision, allow_degraded=True,
    )
    # A supervised run may leave None holes: shards whose worker
    # exhausted its retry budget.  Phase 2 works off the surviving
    # shard states; the lost shards fold into <unknown> below.
    degraded = tuple(i for i, r in enumerate(results) if r is None)
    ok = sorted((r for r in results if r is not None), key=lambda r: r[0])
    states = [r[1] for r in ok]
    shard_attrs = [r[2] for r in ok]
    shard_seconds = [r[3] for r in ok]

    # Phase 2 (parent): merge evidence in shard (= stream) order, then
    # resolve every held-back candidate in global stream order.  The
    # stack resolver is built outside the timed region for the same
    # reason the workers build theirs at pool setup: it is per-module
    # work, not per-stream work.
    parent_resolver = StackResolver(module)
    t0 = time.perf_counter()
    evidence = ShardEvidence.merge([st.evidence for st in states])
    candidates = [c for st in states for c in st.candidates]
    recovered, unknown, n_late = PostmortemConsumer.resolve_with_evidence(
        module, candidates, evidence, options=options,
        stack_resolver=parent_resolver,
    )

    # Graceful shard-level degradation: a lost shard's samples are not
    # silently dropped — idle samples are classified parent-side
    # (``is_idle`` is a record field, no worker work involved) and
    # every busy sample joins ``<unknown>`` with ``worker-failed``
    # provenance, so the blame denominator stays honest and the views'
    # degradation footer can report exactly what was lost.
    degraded_unknown: list = []
    degraded_runtime: list = []
    for di in degraded:
        for s in shards[di]:
            if s.is_idle:
                degraded_runtime.append(s)
            else:
                degraded_unknown.append(
                    DegradedSample(s, REASON_WORKER_FAILED)
                )

    # The exact serial PostmortemResult (plus any degraded-shard fold):
    # intact instances in stream order, then recovered instances in
    # candidate order — the order finish() emits them.
    postmortem = PostmortemResult(
        instances=[i for st in states for i in st.instances] + recovered,
        runtime_samples=[s for st in states for s in st.runtime_samples]
        + degraded_runtime,
        n_raw=sum(st.n_raw for st in states)
        + sum(len(shards[di]) for di in degraded),
        unknown=unknown + degraded_unknown,
        quarantined=[d for st in states for d in st.quarantined],
        n_recovered=sum(st.n_repaired for st in states) + n_late,
        n_runtime=sum(st.n_runtime for st in states) + len(degraded_runtime),
    )
    tail_attr = BlameAttributor(static_info).attribute(recovered)
    attribution = merge_attributions(shard_attrs + [tail_attr])
    resolve_seconds = time.perf_counter() - t0

    # Partial snapshots: one per shard (intact instances, shard-local
    # counters) plus a tail snapshot carrying the phase-2 outcome
    # (recovered instances, the whole <unknown> bucket), the ingest
    # quarantine, and the run-level scalars (dataset bytes, stackwalk
    # cycles) exactly once.  Every snapshot records the run's simulated
    # wall clock — merge takes the max, so it passes through unchanged.
    t0 = time.perf_counter()
    catalog = FunctionCatalog.from_module(module)
    meta = ArtifactMeta(
        program=program,
        source_sha256=source_sha256,
        threshold=threshold,
        num_threads=num_threads,
        locale_id=locale_id,
        kind="profile",
        created_by=f"repro {_tool_version()}",
    )
    shard_snapshots = []
    for st, attr, secs in zip(states, shard_attrs, shard_seconds):
        shard_pm = PostmortemResult(
            instances=st.instances,
            runtime_samples=st.runtime_samples,
            n_raw=st.n_raw,
            unknown=[],
            quarantined=st.quarantined,
            n_recovered=st.n_repaired,
            n_runtime=st.n_runtime,
        )
        shard_snapshots.append(
            _partial_snapshot(
                meta, catalog, shard_pm, attr,
                program=program, wall_seconds=wall_seconds,
                postmortem_seconds=secs, include_temps=include_temps,
            )
        )
    # The tail also carries everything the degraded shards left behind
    # (their raw-sample counts, idle classification and <unknown>
    # entries) — surviving shards' partials stay untouched, so a
    # degraded run still reassembles through the same merge.
    tail_pm = PostmortemResult(
        instances=recovered,
        runtime_samples=degraded_runtime,
        n_raw=sum(len(shards[di]) for di in degraded),
        unknown=unknown + degraded_unknown,
        quarantined=[],
        n_recovered=n_late,
        n_runtime=len(degraded_runtime),
    )
    tail = _partial_snapshot(
        meta, catalog, tail_pm, tail_attr,
        program=program, wall_seconds=wall_seconds,
        dataset_bytes=dataset_bytes, stackwalk_cycles=stackwalk_cycles,
        postmortem_seconds=resolve_seconds,
        monitor_quarantine=monitor_quarantine,
        monitor_quarantine_provenance=monitor_quarantine_provenance,
        include_temps=include_temps,
    )

    merged = merge_snapshots(shard_snapshots + [tail], program=program)
    assemble_seconds = time.perf_counter() - t0
    # The merge labels its output as a cross-run merge; this one
    # reassembles a single run, so restore the serial identity.
    merged.meta = relabel(merged.meta, kind="profile", locale_id=locale_id)
    merged.report.locale_id = locale_id
    # Supervision counters join the persisted fault-stats record ONLY
    # when shards were actually lost: a supervised run whose retries
    # all succeeded must stay byte-identical to the serial artifact
    # (the counters still reach the stderr summary via
    # ``ParallelPostmortem.supervision``).
    if sup_outcome is not None and degraded:
        sup_outcome.stats.degraded_samples = sum(
            len(shards[di]) for di in degraded
        )
        fs = dict(fault_stats or {})
        fs.update(sup_outcome.stats.as_fault_stats())
        fault_stats = fs
    merged.fault_stats = fault_stats
    if min_blame > 0.0:
        # min_blame does not commute with sharding (the threshold is a
        # fraction of the *run* denominator), so it is applied once,
        # post-merge — same filter build_rows applies serially.
        merged.report.rows = [
            r
            for r in merged.report.rows
            if r.name == UNKNOWN_BUCKET or not r.blame < min_blame
        ]

    return ParallelPostmortem(
        postmortem=postmortem,
        attribution=attribution,
        snapshot=merged,
        shard_snapshots=shard_snapshots,
        tail_snapshot=tail,
        shard_seconds=shard_seconds,
        shard_sizes=[len(s) for s in shards],
        resolve_seconds=resolve_seconds,
        assemble_seconds=assemble_seconds,
        pool_seconds=pool_seconds,
        backend=backend,
        workers=workers,
        supervision=sup_outcome.stats if sup_outcome is not None else None,
        degraded_shards=degraded,
    )


def _partial_snapshot(
    meta: ArtifactMeta,
    catalog: FunctionCatalog,
    pm: PostmortemResult,
    attribution: AttributionResult,
    program: str,
    wall_seconds: float,
    dataset_bytes: int = 0,
    stackwalk_cycles: float = 0.0,
    postmortem_seconds: float = 0.0,
    monitor_quarantine: "dict[str, int] | None" = None,
    monitor_quarantine_provenance: "list[tuple[str, int]] | None" = None,
    include_temps: bool = False,
) -> ProfileSnapshot:
    """One partial (per-shard or tail) snapshot: the shard's own report
    aggregated with ``min_blame=0`` (filtering happens post-merge) and
    provenance pairs in the same order ``snapshot_from_result`` records
    them (post-mortem quarantine first, ingest quarantine last)."""
    report = aggregate_stage(
        program,
        pm,
        attribution,
        wall_seconds=wall_seconds,
        dataset_bytes=dataset_bytes,
        stackwalk_cycles=stackwalk_cycles,
        postmortem_seconds=postmortem_seconds,
        monitor_quarantine=monitor_quarantine,
        min_blame=0.0,
        include_temps=include_temps,
    )
    quarantine_provenance = [
        (d.reason, d.sample.index) for d in pm.quarantined
    ] + list(monitor_quarantine_provenance or ())
    return ProfileSnapshot(
        meta=meta,
        report=report,
        catalog=catalog,
        postmortem=SnapshotPostmortem(
            instances=list(pm.instances),
            n_raw=pm.n_raw,
            n_runtime=pm.n_runtime,
            n_recovered=pm.n_recovered,
            unknown_provenance=[
                (d.reason, d.sample.index) for d in pm.unknown
            ],
            quarantine_provenance=quarantine_provenance,
        ),
        fault_stats=None,
    )


def parallel_analyze(
    module,
    options=None,
    workers: int = 1,
    backend: str = "auto",
    supervision: "SupervisorConfig | None" = None,
):
    """Static blame analysis with the per-function phase fanned out
    across pool workers (the analyses of distinct functions share only
    read-only context).

    The global-alias fixpoint (cheap, whole-module) runs serially in the
    parent; per-function results come back content-identical to serial
    ones (blame sets are keyed by instruction ids, which pickling
    preserves) and land in the same content-hash caches, so serial and
    parallel analyses reuse each other's work.
    """
    from ..blame import cache as _cache
    from ..blame.cache import cached_module_blame_info
    from ..blame.options import FULL
    from ..blame.static_info import ModuleBlameInfo, compute_global_aliases

    opts = options or FULL
    if workers <= 1:
        return cached_module_blame_info(module, options=opts)
    backend = resolve_backend(backend)
    fp = _cache.module_fingerprint(module)
    cached = _cache.cached_module_info(module, opts, fp)
    if cached is not None:
        return cached

    aliases = compute_global_aliases(module, opts)
    sig_fp = _cache.module_signatures_fingerprint(module)
    aliases_fp = _cache.aliases_fingerprint(aliases)
    functions: dict = {}
    missing: dict[str, tuple] = {}
    for name, fn in module.functions.items():
        key = (_cache.function_fingerprint(fn), sig_fp, aliases_fp, opts)
        hit = _cache.cached_function_info(fn, key)
        if hit is None:
            missing[name] = key
        else:
            functions[name] = hit

    if missing:
        name_shards = [
            s for s in shard_stream(list(missing), workers) if s
        ]
        state = (module, None, opts, aliases)
        # Analysis has no <unknown> bucket to degrade into: a batch
        # that exhausts its retries re-raises the transport error.
        parts, _outcome, _secs = _run_pool(
            backend, workers, state, _analyze_shard, name_shards,
            supervision=supervision, allow_degraded=False,
        )
        for part in parts:
            for name, fn_info in part.items():
                _cache.store_function_info(
                    module.functions[name], missing[name], fn_info
                )
                functions[name] = fn_info

    info = ModuleBlameInfo.from_parts(
        module,
        opts,
        aliases,
        {name: functions[name] for name in module.functions},
    )
    _cache.store_module_info(module, opts, fp, info)
    return info


# -- sliced parallel collection ------------------------------------------------


@dataclass
class CollectedInterpreterState:
    """Stand-in for ``ProfileResult.interpreter`` on sliced-collection
    runs: the final slice's interpreter lives (and dies) in a pool
    worker, so only the run-level facts downstream consumers actually
    read — the thread count and the completed run's heap — survive the
    transport."""

    num_threads: int
    heap: object


@dataclass
class ParallelCollection:
    """Outcome of slicing one run's collection across pool workers.

    ``monitor`` is a real :class:`~repro.sampling.monitor.Monitor`
    reassembled in the parent — decoded concatenated stream, summed
    counters — so every downstream consumer (post-mortem, artifact
    snapshot, CLI summary, ``--save-samples``) sees exactly what the
    single-monitor run's monitor would have held.  ``sealed_stream`` is
    the byte-level identity witness: the concatenation of the per-slice
    CRC-framed streams, equal to the serial monitor's
    ``sealed_stream()`` byte for byte.
    """

    monitor: "object"
    run_result: "object"
    interpreter: CollectedInterpreterState
    #: Per-slice sealed CRC-framed streams, in virtual-time order.
    slice_streams: "list[bytes]" = field(default_factory=list)
    sealed_stream: bytes = b""
    slice_counts: "list[int]" = field(default_factory=list)
    #: Worker-measured seconds per slice.
    slice_seconds: "list[float]" = field(default_factory=list)
    #: Host seconds of the boundary census (0.0 when the plan was cached
    #: — the run-once/analyze-many warm path).
    census_seconds: float = 0.0
    census_cached: bool = False
    #: Parent-side concat/decode/reassembly seconds.
    merge_seconds: float = 0.0
    pool_seconds: float = 0.0
    backend: str = ""
    workers: int = 0
    #: Supervision accounting when the fan-out ran supervised.
    supervision: "object | None" = None
    #: Slice indices whose workers exhausted their retry budget and were
    #: re-collected inline by the parent.  Unlike a lost post-mortem
    #: shard, a lost collection slice cannot degrade into ``<unknown>``
    #: — its samples were never generated — so the parent replays it
    #: from the same checkpoint (pure, deterministic) and the stream
    #: stays complete and identical.
    recovered_slices: tuple[int, ...] = ()

    @property
    def critical_path_seconds(self) -> float:
        """Modeled parallel collection time on the warm (cached-census)
        path: the slowest slice plus the parent's reassembly — what the
        wall clock would show with one idle core per slice worker.
        Reported *as* modeled, never passed off as wall time."""
        return max(self.slice_seconds, default=0.0) + self.merge_seconds


def parallel_collect(
    module,
    workers: int,
    backend: str = "auto",
    config=None,
    num_threads: int = 12,
    threshold: int = 0,
    cost_model=None,
    skid: int = 0,
    skid_compensation: bool = False,
    supervision: "SupervisorConfig | None" = None,
    use_census_cache: bool = True,
) -> ParallelCollection:
    """Collects one run's sample stream as ``workers`` simulated-time
    slices, each executed by its own interpreter + monitor in a pool
    worker, concatenated in virtual-time order.

    Boundary planning (the census) runs in the parent
    (:func:`repro.runtime.checkpoint.plan_slices`, cached per module ×
    knobs); each slice ships as a checkpoint blob + stop count and runs
    under the shard supervisor when ``supervision`` is given, inheriting
    retry/timeout/speculation and the transport fault injector.  See
    :class:`ParallelCollection` for the identity guarantees.
    """
    from ..runtime.checkpoint import plan_slices
    from ..sampling.monitor import Monitor, unseal_samples
    from ..sampling.pmu import PMUConfig

    if workers < 1:
        raise ParallelError(f"need at least one worker (got {workers})")
    if threshold <= 0:
        raise ParallelError(
            f"parallel collection needs a positive threshold (got {threshold})"
        )
    backend = resolve_backend(backend)
    plan = plan_slices(
        module,
        workers,
        config=config,
        num_threads=num_threads,
        threshold=threshold,
        cost_model=cost_model,
        skid=skid,
        skid_compensation=skid_compensation,
        use_cache=use_census_cache,
    )
    blobs = [None] + [b for _, b in plan.checkpoints]
    payloads = [
        (k, blobs[k], start, stop)
        for k, (start, stop) in enumerate(zip(plan.starts, plan.stops))
    ]
    collect_options = {
        "config": config,
        "num_threads": num_threads,
        "threshold": threshold,
        "cost_model": cost_model,
        "skid": skid,
        "skid_compensation": skid_compensation,
    }
    state = (module, None, None, None, collect_options)
    results, sup_outcome, pool_seconds = _run_pool(
        backend, workers, state, _collect_slice, payloads,
        supervision=supervision, allow_degraded=True,
    )
    # Transport-exhausted slices are replayed inline from their
    # checkpoints — collection has no <unknown> bucket to degrade into.
    recovered = tuple(i for i, r in enumerate(results) if r is None)
    if recovered:
        _set_worker_state(*state)
        for i in recovered:
            results[i] = _collect_slice(payloads[i])

    t0 = time.perf_counter()
    ordered = sorted(results, key=lambda r: r[0])
    slice_streams = [r[1] for r in ordered]
    slice_counts = [r[2]["n_accepted"] for r in ordered]
    slice_seconds = [r[4] for r in ordered]
    sealed = b"".join(slice_streams)
    run_results = [r[3] for r in ordered if r[3] is not None]
    if len(run_results) != 1:
        raise ParallelError(
            f"expected exactly one slice to finish the program "
            f"(got {len(run_results)} of {len(ordered)})"
        )
    run_result = run_results[0]

    monitor = Monitor(PMUConfig(threshold=threshold))
    monitor.samples = unseal_samples(sealed)
    monitor.n_accepted = sum(slice_counts)
    monitor._dataset_bytes = sum(r[2]["dataset_bytes"] for r in ordered)
    monitor.overhead.stackwalk_cycles_total = sum(
        r[2]["stackwalk_cycles"] for r in ordered
    )
    monitor.overhead.n_samples = sum(
        r[2]["overhead_samples"] for r in ordered
    )
    monitor.quarantined = [q for r in ordered for q in r[2]["quarantined"]]
    merge_seconds = time.perf_counter() - t0

    return ParallelCollection(
        monitor=monitor,
        run_result=run_result,
        interpreter=CollectedInterpreterState(
            num_threads=num_threads, heap=run_result.heap
        ),
        slice_streams=slice_streams,
        sealed_stream=sealed,
        slice_counts=slice_counts,
        slice_seconds=slice_seconds,
        census_seconds=plan.census_seconds,
        census_cached=plan.cache_hit,
        merge_seconds=merge_seconds,
        pool_seconds=pool_seconds,
        backend=backend,
        workers=workers,
        supervision=sup_outcome.stats if sup_outcome is not None else None,
        recovered_slices=recovered,
    )
