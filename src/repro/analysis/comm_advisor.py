"""Communication advisor: batching, aggregation, and hoisting passes.

Rolinger et al. showed that the dominant cost of sparse/irregular
Chapel kernels on multiple locales is fine-grained communication from
indirection-addressed accesses, and that three source rewrites recover
most of it: inspector-executor *remote-access batching* (gather the
indirectly-addressed elements in bulk, compute from a local buffer),
per-locale *aggregation* of scattered read-modify-writes, and
*hoisting* indirection loads out of inner loops.  These passes detect
the corresponding anti-patterns over the locality classification
(:mod:`repro.analysis.locality`) and go quiet on the optimized shapes:

* a pure gather loop (indirect loads feeding only stores) is the
  *fix* for batching, not a finding;
* a read-modify-write whose destination is merely remote but directly
  addressed (CSR-style ``out[i, r] +=``) needs no aggregation;
* an indirection load whose own index varies with its innermost loop
  cannot be hoisted from it.

Like the rest of the advisor, findings join per-variable blame through
the ranker: the indirection arrays (``row``, ``col``, ...) are listed
in ``variables`` precisely so a measured profile can attach the blame
share the paper's data-centric attribution assigns them.
"""

from __future__ import annotations

from collections import defaultdict

from ..ir import instructions as I
from ..ir.module import BasicBlock, Function
from .context import AnalysisContext
from .diagnostics import Finding, Severity
from .locality import AccessClass, Locality
from .passes import AnalysisPass, register_pass

#: Operators that count as "computing with" a loaded value.
_ARITH_OPS = frozenset({"+", "-", "*", "/", "%", "**"})
#: Operators accepted as the combining step of a read-modify-write.
_RMW_OPS = frozenset({"+", "-", "*", "/"})


def _iter_blocks(fn: Function):
    for block in fn.blocks:
        for instr in block.instructions:
            yield block, instr


def _elem_producer(value: I.Value) -> I.ElemAddr | None:
    if isinstance(value, I.Register) and isinstance(value.producer, I.ElemAddr):
        return value.producer
    return None


def _names(*groups: tuple[str, ...]) -> list[str]:
    """Merged user-visible names, placeholders (``<array>``) dropped."""
    out: set[str] = set()
    for g in groups:
        out.update(n for n in g if not n.startswith("<"))
    return sorted(out)


@register_pass
class RemoteAccessBatchingPass(AnalysisPass):
    """Indirect reads feeding arithmetic inside a parallel loop body:
    each task issues one fine-grained remote get per element instead
    of one bulk transfer."""

    name = "remote-access-batching"
    description = "indirect gathers feeding arithmetic in parallel loops"

    def run(self, ctx: AnalysisContext) -> list[Finding]:
        findings: list[Finding] = []
        locality = ctx.locality()
        for fn in ctx.module.functions.values():
            if fn.outlined_from is None:
                continue
            groups: dict[
                tuple[str, int], list[tuple[AccessClass, I.ElemAddr, I.Load]]
            ]
            groups = defaultdict(list)
            for _block, instr in _iter_blocks(fn):
                if not isinstance(instr, I.Load):
                    continue
                ea = _elem_producer(instr.addr)
                if ea is None:
                    continue
                acc = locality.accesses.get(ea.iid)
                if acc is None or acc.locality is not Locality.INDIRECT:
                    continue
                if not self._feeds_arithmetic(fn, instr.result):
                    continue  # pure gather: the inspector-executor fix
                groups[(instr.loc.filename, instr.loc.line)].append(
                    (acc, ea, instr)
                )
            for (fname, line), items in groups.items():
                arrays = _names(*(a.arrays for a, _, _ in items))
                sources = _names(*(a.index_sources for a, _, _ in items))
                findings.append(
                    Finding(
                        rule=self.name,
                        severity=Severity.WARNING,
                        message=(
                            f"{len(items)} indirection-addressed read(s) of "
                            f"{', '.join(arrays) or 'remote data'} (indices "
                            f"from {', '.join(sources) or 'array contents'}) "
                            "feed arithmetic in this parallel loop: every "
                            "task issues fine-grained remote gets"
                        ),
                        file=fname,
                        line=line,
                        function=ctx.source_context(fn),
                        variables=tuple(_names(tuple(arrays), tuple(sources))),
                        remediation=(
                            "split the loop inspector-executor style: "
                            "gather the indirectly-addressed elements into "
                            "a local buffer in one bulk pass, then compute "
                            "from the buffer"
                        ),
                        iids=tuple(
                            sorted({i.iid for _, ea, ld in items for i in (ea, ld)})
                        ),
                    )
                )
        return findings

    @classmethod
    def _feeds_arithmetic(cls, fn: Function, reg: I.Register | None) -> bool:
        if reg is None:
            return False
        for instr in fn.instructions():
            if (
                isinstance(instr, I.BinOp)
                and instr.op in _ARITH_OPS
                and (instr.lhs is reg or instr.rhs is reg)
            ):
                return True
            if isinstance(instr, I.Cast) and instr.value is reg:
                if cls._feeds_arithmetic(fn, instr.result):
                    return True
        return False


@register_pass
class AggregationCandidatePass(AnalysisPass):
    """Read-modify-writes scattered through an indirection-determined
    destination inside a parallel loop: the canonical per-locale
    aggregation (buffer-and-flush) candidate."""

    name = "aggregation-candidate"
    description = "scattered RMW through indirect destinations"

    def run(self, ctx: AnalysisContext) -> list[Finding]:
        findings: list[Finding] = []
        locality = ctx.locality()
        for fn in ctx.module.functions.values():
            if fn.outlined_from is None:
                continue
            groups: dict[
                tuple[str, int], list[tuple[AccessClass, I.ElemAddr, I.Store]]
            ]
            groups = defaultdict(list)
            for _block, instr in _iter_blocks(fn):
                if not isinstance(instr, I.Store):
                    continue
                ea = _elem_producer(instr.addr)
                if ea is None:
                    continue
                acc = locality.accesses.get(ea.iid)
                if acc is None or acc.locality is not Locality.INDIRECT:
                    continue
                if not self._is_rmw(instr):
                    continue
                groups[(instr.loc.filename, instr.loc.line)].append(
                    (acc, ea, instr)
                )
            for (fname, line), items in groups.items():
                arrays = _names(*(a.arrays for a, _, _ in items))
                sources = _names(*(a.index_sources for a, _, _ in items))
                findings.append(
                    Finding(
                        rule=self.name,
                        severity=Severity.WARNING,
                        message=(
                            f"read-modify-write into "
                            f"{', '.join(arrays) or 'a remote array'} at an "
                            f"index taken from "
                            f"{', '.join(sources) or 'array contents'}: "
                            "each update is a remote get + put to a "
                            "data-dependent locale"
                        ),
                        file=fname,
                        line=line,
                        function=ctx.source_context(fn),
                        variables=tuple(_names(tuple(arrays), tuple(sources))),
                        remediation=(
                            "aggregate the updates per destination locale "
                            "(buffer locally, flush in bulk), or restructure "
                            "so each task owns its output rows (CSR-style)"
                        ),
                        iids=tuple(
                            sorted({i.iid for _, ea, st in items for i in (ea, st)})
                        ),
                    )
                )
        return findings

    @staticmethod
    def _is_rmw(store: I.Store) -> bool:
        """The stored value combines a load of the same element address
        (the lowering of ``A[idx] op= v`` reuses one elemaddr)."""
        v = store.value
        p = v.producer if isinstance(v, I.Register) else None
        if not (isinstance(p, I.BinOp) and p.op in _RMW_OPS):
            return False
        for op in (p.lhs, p.rhs):
            lp = op.producer if isinstance(op, I.Register) else None
            if isinstance(lp, I.Load) and lp.addr is store.addr:
                return True
        return False


@register_pass
class IndirectionHoistPass(AnalysisPass):
    """Indirection loads re-executed every iteration of an inner loop
    although their index only depends on outer-loop state."""

    name = "indirection-hoist"
    description = "loop-invariant indirection loads in inner loops"

    def run(self, ctx: AnalysisContext) -> list[Finding]:
        findings: list[Finding] = []
        locality = ctx.locality()
        for fn in ctx.module.functions.values():
            if fn.is_artificial:
                continue
            df = ctx.dataflow(fn)
            index_feeders = self._index_feeding_regs(fn)
            groups: dict[tuple[str, int], list[tuple[I.ElemAddr, I.Load]]]
            groups = defaultdict(list)
            for block, instr in _iter_blocks(fn):
                if not isinstance(instr, I.Load):
                    continue
                ea = _elem_producer(instr.addr)
                if ea is None or instr.result not in index_feeders:
                    continue
                inner = self._innermost_loop(ctx, fn, block)
                if inner is None:
                    continue
                chain: set[I.Instruction] = set()
                for ix in ea.indices:
                    chain.update(locality.index_chain(fn, ix))
                if any(c.parent in inner.blocks for c in chain):
                    continue  # index varies with this loop: not hoistable
                groups[(instr.loc.filename, instr.loc.line)].append(
                    (ea, instr)
                )
            for (fname, line), items in groups.items():
                arrays = _names(
                    *(
                        tuple(locality._element_names(df, ea.base))
                        for ea, _ in items
                    )
                )
                findings.append(
                    Finding(
                        rule=self.name,
                        severity=Severity.WARNING,
                        message=(
                            f"{len(items)} indirection load(s) of "
                            f"{', '.join(arrays) or 'index arrays'} repeat "
                            "every inner-loop iteration although the index "
                            "only depends on outer-loop state: the same "
                            "remote element is fetched again and again"
                        ),
                        file=fname,
                        line=line,
                        function=ctx.source_context(fn),
                        variables=tuple(arrays),
                        remediation=(
                            "hoist the load before the inner loop "
                            "(`const m = idx[e];`) and index through the "
                            "local copy"
                        ),
                        iids=tuple(
                            sorted({i.iid for ea, ld in items for i in (ea, ld)})
                        ),
                    )
                )
        return findings

    @staticmethod
    def _index_feeding_regs(fn: Function) -> set[I.Register]:
        """Registers used as an element-address index somewhere in
        ``fn`` — the loads that *define* an indirection."""
        regs: set[I.Register] = set()
        for instr in fn.instructions():
            if isinstance(instr, I.ElemAddr):
                regs.update(
                    ix for ix in instr.indices if isinstance(ix, I.Register)
                )
        return regs

    @staticmethod
    def _innermost_loop(ctx: AnalysisContext, fn: Function, block: BasicBlock):
        candidates = [
            loop for loop in ctx.loops(fn) if block in loop.blocks
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda loop: len(loop.blocks))
