"""Experiment harness: runs the benchmark variants and regenerates the
paper's tables (timings, speedups, blame profiles).

Every benchmark in ``benchmarks/`` is a thin wrapper over these
functions, so the tables can also be produced interactively::

    from repro.bench import harness
    print(harness.render_speedup_table(harness.minimd_speedups()))
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..compiler.lower import compile_source
from ..runtime.costmodel import CostModel
from ..tooling.profiler import ProfileResult, Profiler, run_only
from ..views.tables import render_table
from .programs import clomp, lulesh, minimd

#: Worker threads for all experiments (the paper's 12-core Xeon).
NUM_THREADS = 12

#: PMU overflow threshold (prime) used by the blame-profile experiments.
PROFILE_THRESHOLD = 4999


def available_cpus() -> int:
    """CPUs this process may actually run on.

    ``os.cpu_count()`` reports the machine's core count, which inside a
    cpuset-restricted container (CI runners, cgroup limits) can be
    wildly wrong in either direction — the affinity mask is what bounds
    real parallelism.  Every benchmark records its host metadata through
    this one helper so the JSON artifacts agree on the number.
    """
    import os

    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # non-Linux: no affinity API
        return os.cpu_count() or 1


def host_info() -> dict:
    """The ``host`` block benchmarks stamp into their result JSON."""
    import sys

    return {
        "cpu_count": available_cpus(),
        "python": sys.version.split()[0],
    }


@dataclass
class TimingRow:
    """One timed configuration."""

    label: str
    seconds: float

    def speedup_vs(self, base: "TimingRow") -> float:
        return base.seconds / self.seconds if self.seconds else float("inf")


@dataclass
class SpeedupResult:
    """Original-vs-optimized timings, with and without --fast."""

    benchmark: str
    rows: dict[str, TimingRow] = field(default_factory=dict)

    def speedup(self, optimized: str, original: str) -> float:
        return self.rows[optimized].speedup_vs(self.rows[original])


def time_variant(
    source: str,
    name: str,
    config: dict[str, object] | None = None,
    fast: bool = False,
    num_threads: int = NUM_THREADS,
    cost_model: CostModel | None = None,
) -> float:
    """Simulated seconds of one run.

    Prefers the benchmark's own "elapsed" self-timer line (which, like
    the paper's benchmarks, excludes initialization); falls back to the
    whole-run wall clock.
    """
    result = run_only(
        source,
        filename=name,
        config=config,
        num_threads=num_threads,
        cost_model=cost_model,
        fast=fast,
    )
    for line in reversed(result.output):
        if line.startswith("elapsed"):
            return float(line.split()[-1])
    return result.wall_seconds


def profile_variant(
    source: str,
    name: str,
    config: dict[str, object] | None = None,
    fast: bool = False,
    num_threads: int = NUM_THREADS,
    threshold: int = PROFILE_THRESHOLD,
) -> ProfileResult:
    """Full blame profile of one run."""
    return Profiler(
        source,
        filename=name,
        config=config,
        num_threads=num_threads,
        threshold=threshold,
        fast=fast,
    ).profile()


# ---------------------------------------------------------------------------
# MiniMD (Tables II and III)
# ---------------------------------------------------------------------------


def minimd_profile(optimized: bool = False, **cfg) -> ProfileResult:
    source = minimd.build_source(optimized=optimized)
    return profile_variant(source, "minimd.chpl", config=minimd.config_for(**cfg))


def minimd_speedups(**cfg) -> SpeedupResult:
    """Paper Table III: original vs optimized, ± --fast."""
    config = minimd.config_for(**cfg)
    out = SpeedupResult("MiniMD")
    for fast in (False, True):
        for optimized in (False, True):
            label = f"{'opt' if optimized else 'orig'}{'/fast' if fast else ''}"
            src = minimd.build_source(optimized=optimized)
            out.rows[label] = TimingRow(
                label, time_variant(src, "minimd.chpl", config=config, fast=fast)
            )
    return out


# ---------------------------------------------------------------------------
# CLOMP (Tables IV and V)
# ---------------------------------------------------------------------------


def clomp_profile(optimized: bool = False, **cfg) -> ProfileResult:
    source = clomp.build_source(optimized=optimized)
    return profile_variant(source, "clomp.chpl", config=clomp.config_for(**cfg))


def clomp_speedups_for_shape(
    num_parts: int, zones_per_part: int, timesteps: int = 1
) -> SpeedupResult:
    config = clomp.config_for(num_parts, zones_per_part, timesteps)
    out = SpeedupResult(f"CLOMP {num_parts}/{zones_per_part}")
    for fast in (False, True):
        for optimized in (False, True):
            label = f"{'opt' if optimized else 'orig'}{'/fast' if fast else ''}"
            src = clomp.build_source(optimized=optimized)
            out.rows[label] = TimingRow(
                label, time_variant(src, "clomp.chpl", config=config, fast=fast)
            )
    return out


def clomp_table_v() -> list[tuple[str, int, int, SpeedupResult]]:
    """Paper Table V: four problem shapes × ±fast × orig/opt."""
    out = []
    for paper_label, parts, zones in clomp.TABLE_V_SHAPES:
        out.append((paper_label, parts, zones, clomp_speedups_for_shape(parts, zones)))
    return out


# ---------------------------------------------------------------------------
# LULESH (Fig. 4, Tables VI–IX)
# ---------------------------------------------------------------------------


def lulesh_profile(
    variant: lulesh.LuleshVariant | None = None, **cfg
) -> ProfileResult:
    source = lulesh.build_source(variant)
    return profile_variant(source, "lulesh.chpl", config=lulesh.config_for(**cfg))


def lulesh_time(
    variant: lulesh.LuleshVariant | None = None, fast: bool = False, **cfg
) -> float:
    source = lulesh.build_source(variant)
    return time_variant(
        source, "lulesh.chpl", config=lulesh.config_for(**cfg), fast=fast
    )


def lulesh_table_vii(**cfg) -> list[tuple[str, float, float]]:
    """Paper Table VII: the 11 unrolling configurations.

    Returns (tag, seconds, speedup-vs-original) rows.
    """
    rows: list[tuple[str, float, float]] = []
    original_time: float | None = None
    for tag, variant in lulesh.TABLE_VII_VARIANTS:
        t = lulesh_time(variant, **cfg)
        if tag == "Original":
            original_time = t
        assert original_time is not None
        rows.append((tag, t, original_time / t))
    return rows


def lulesh_table_ix(**cfg) -> dict[str, dict[str, float]]:
    """Paper Table IX: Original / P1 / VG / CENN / Best, ± --fast.

    Returns {tag: {"time": s, "speedup": x, "time_fast": s, "speedup_fast": x}}.
    """
    variants = {
        "Original": lulesh.ORIGINAL,
        "P 1": lulesh.P1_ONLY,
        "VG": lulesh.VG_ONLY,
        "CENN": lulesh.CENN_ONLY,
        "Best Case": lulesh.BEST_CASE,
    }
    times = {
        tag: {
            "time": lulesh_time(v, fast=False, **cfg),
            "time_fast": lulesh_time(v, fast=True, **cfg),
        }
        for tag, v in variants.items()
    }
    base = times["Original"]
    return {
        tag: {
            "time": t["time"],
            "speedup": base["time"] / t["time"],
            "time_fast": t["time_fast"],
            "speedup_fast": base["time_fast"] / t["time_fast"],
        }
        for tag, t in times.items()
    }


def lulesh_table_viii(**cfg) -> dict[str, dict[str, float]]:
    """Paper Table VIII: blame of the key variables under Original, P1,
    VG, CENN.  Returns {variant: {variable: blame_fraction}}."""
    variants = {
        "Original": lulesh.ORIGINAL,
        "P1": lulesh.P1_ONLY,
        "VG": lulesh.VG_ONLY,
        "CENN": lulesh.CENN_ONLY,
    }
    watched = [
        "hgfx", "hgfy", "hgfz", "shx", "shy", "shz", "hx", "hy", "hz",
        "hourgam", "hourmodx", "hourmody", "hourmodz",
        "dvdx", "dvdy", "dvdz", "determ", "b_x", "b_y", "b_z",
    ]
    out: dict[str, dict[str, float]] = {}
    for tag, variant in variants.items():
        prof = lulesh_profile(variant, **cfg)
        blames: dict[str, float] = {}
        for name in watched:
            b = prof.report.blame_of(name)
            if b == 0.0 and tag == "VG":
                # VG renames determ/dvdx to their global spellings.
                b = prof.report.blame_of(name + "G")
            blames[name] = b
        out[tag] = blames
    return out


# ---------------------------------------------------------------------------
# Rendering helpers (paper-style tables)
# ---------------------------------------------------------------------------


def render_speedup_table(result: SpeedupResult) -> str:
    rows = [
        [
            "w/o --fast",
            f"{result.rows['orig'].seconds:.4f}",
            f"{result.rows['opt'].seconds:.4f}",
            f"{result.speedup('opt', 'orig'):.2f}",
        ],
        [
            "w/ --fast",
            f"{result.rows['orig/fast'].seconds:.4f}",
            f"{result.rows['opt/fast'].seconds:.4f}",
            f"{result.speedup('opt/fast', 'orig/fast'):.2f}",
        ],
    ]
    return render_table(
        ["", "Original(s)", "Optimized(s)", "Speedup"],
        rows,
        title=f"{result.benchmark}: original vs optimized",
        aligns=["l", "r", "r", "r"],
    )


def render_blame_table(result: ProfileResult, top: int = 10, min_blame: float = 0.01) -> str:
    from ..views.data_centric import render_data_centric

    return render_data_centric(result.report, top=top, min_blame=min_blame)
