"""Tour of the communication advisor on the irregular workloads
(SpMV and sparse MTTKRP):

1. classify every array access in the COO SpMV kernel — provably
   LOCAL, conservatively REMOTE, or INDIRECT (index computed from
   array contents);
2. run the communication passes over the original: the edge-parallel
   scatter draws remote-access-batching and aggregation-candidate
   advice, blame-ranked against a measured profile so the indirection
   arrays the profile fingers come first;
3. apply the inspector-executor/CSR rewrite the advice describes and
   show the findings disappear;
4. cross-check the LOCAL labels dynamically: replay the run under a
   simulated block distribution and confirm no LOCAL access ever
   executed away from its data (the exactness guarantee);
5. repeat the fire/quiet story on MTTKRP, where all three passes fire
   at once (including indirection-hoist in the rank loop).

Run:  python examples/irregular_advisor_tour.py
"""

from repro.analysis import AnalysisContext, Locality, analyze_module, rank_findings
from repro.bench.programs import mttkrp, spmv
from repro.compiler.lower import compile_source
from repro.runtime.locales import LocaleObserver
from repro.tooling.profiler import Profiler

COMM_RULES = {
    "remote-access-batching",
    "aggregation-candidate",
    "indirection-hoist",
}


def banner(title: str) -> None:
    print("=" * 72)
    print(title)
    print("=" * 72)


def comm_findings(module):
    return [f for f in analyze_module(module) if f.rule in COMM_RULES]


def main() -> None:
    banner("1) Locality classification of the COO SpMV kernel")
    original = spmv.build_source("original")
    module = compile_source(original, "spmv.chpl")
    loc = AnalysisContext(module).locality()
    for verdict in Locality:
        hits = sorted(
            {
                f"{'/'.join(a.arrays) or '<temp>'}"
                for a in loc.accesses.values()
                if a.locality is verdict
            }
        )
        print(f"  {verdict.value:8s} {', '.join(hits)}")

    print()
    banner("2) Communication advice on the original, blame-ranked")
    findings = comm_findings(module)
    result = Profiler(
        original,
        filename="spmv.chpl",
        config=spmv.config_for(iters=6),
        num_threads=8,
        threshold=997,
    ).profile()
    for f in rank_findings(findings, result.report):
        pct = (
            f"{f.blame_percent:5.1f}% blame"
            if f.blame is not None
            else "unmeasured"
        )
        print(f"  {pct:14s} [{f.rule}] {f.where}  vars={','.join(f.variables)}")
        print(f"                 fix: {f.remediation}")

    print()
    banner("3) After the inspector-executor/CSR rewrite")
    optimized = compile_source(spmv.build_source("optimized"), "spmv.chpl")
    print(f"  communication findings: {len(comm_findings(optimized))}")

    print()
    banner("4) Dynamic cross-check of the LOCAL labels (4 locales)")
    obs = LocaleObserver(
        module, config=spmv.config_for(), num_threads=8, num_locales=4
    )
    obs.run()
    local_iids = {
        iid
        for iid, a in loc.accesses.items()
        if a.locality is Locality.LOCAL
    }
    violations = sum(
        1
        for iid in local_iids
        for e, o in obs.observed.get(iid, ())
        if e != o
    )
    remote_pairs = sum(
        1
        for iid, pairs in obs.observed.items()
        if iid not in local_iids
        for e, o in pairs
        if e != o
    )
    print(f"  LOCAL accesses observed off-locale: {violations} (must be 0)")
    print(f"  non-LOCAL (executing, owner) mismatches seen: {remote_pairs}")

    print()
    banner("5) MTTKRP: all three passes fire, then go quiet")
    for variant in ("original", "optimized"):
        m = compile_source(mttkrp.build_source(variant), "mttkrp.chpl")
        rules = sorted({f.rule for f in comm_findings(m)})
        print(f"  {variant:9s} -> {', '.join(rules) or 'quiet'}")


if __name__ == "__main__":
    main()
