"""Runtime value model for the IR interpreter.

Value kinds and their Python carriers:

* scalars — ``int`` / ``float`` / ``bool`` / ``str``;
* tuples — :class:`TupleValue` (mutable, value semantics on store);
* records — :class:`RecordValue` (value semantics) and
  :class:`ClassValue` (heap reference semantics);
* ranges/domains — immutable :class:`RangeValue` / :class:`DomainValue`;
* arrays — :class:`ArrayValue`: flat storage + strides, with aliasing
  *views* for slices (same coordinates) and reindexed views (translated
  coordinates, paying a per-access cost — the paper's expensive
  "domain remapping");
* addresses — plain ``(container_list, index)`` tuples for speed: a
  store is ``container[index] = value``.

Chunk values (:class:`DomainChunk`, :class:`ArrayChunk`,
:class:`RangeValue` sub-ranges) carry a contiguous block of a parallel
loop's iteration space into a worker task.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from functools import cached_property
from typing import Iterator

from ..chapel.types import (
    ArrayType,
    BoolType,
    IntType,
    RealType,
    RecordType,
    StringType,
    TupleType,
    Type,
)


class RuntimeError_(Exception):
    """Runtime failure in simulated program execution (bounds, halt...)."""


# ---------------------------------------------------------------------------
# Ranges and domains
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RangeValue:
    """``lo..hi by step`` with inclusive bounds (Chapel semantics)."""

    lo: int
    hi: int
    step: int = 1

    def __post_init__(self) -> None:
        if self.step == 0:
            raise RuntimeError_("range step cannot be zero")

    @cached_property
    def size(self) -> int:
        # cached: ranges are immutable and size is read per iteration
        # step (IterInit bounds, coords_of) in the interpreter hot path.
        if self.step > 0:
            if self.hi < self.lo:
                return 0
            return (self.hi - self.lo) // self.step + 1
        if self.lo < self.hi:
            return 0
        return (self.lo - self.hi) // (-self.step) + 1

    def indices(self) -> range:
        if self.step > 0:
            return range(self.lo, self.hi + 1, self.step)
        return range(self.lo, self.hi - 1, self.step)

    def nth(self, k: int) -> int:
        return self.lo + k * self.step

    def position_of(self, value: int) -> int:
        return (value - self.lo) // self.step

    def contains(self, value: int) -> bool:
        if self.step > 0:
            ok = self.lo <= value <= self.hi
        else:
            ok = self.hi <= value <= self.lo
        return ok and (value - self.lo) % self.step == 0

    def subrange_by_position(self, lo_pos: int, hi_pos: int) -> "RangeValue":
        """Positions are inclusive; used for forall chunking."""
        return RangeValue(self.nth(lo_pos), self.nth(hi_pos), self.step)

    def __str__(self) -> str:
        s = f"{self.lo}..{self.hi}"
        return s if self.step == 1 else f"{s} by {self.step}"


@dataclass(frozen=True)
class DomainValue:
    """Rectangular domain: one range per dimension, row-major order."""

    dims: tuple[RangeValue, ...]

    @property
    def rank(self) -> int:
        return len(self.dims)

    @cached_property
    def size(self) -> int:
        n = 1
        for d in self.dims:
            n *= d.size
        return n

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(d.size for d in self.dims)

    def expand(self, amounts: tuple[int, ...]) -> "DomainValue":
        """Chapel ``D.expand(k...)``: grow each dimension by k at both
        ends (MiniMD's ``DistSpace = binSpace.expand(...)``)."""
        if len(amounts) == 1 and self.rank > 1:
            amounts = amounts * self.rank
        dims = tuple(
            RangeValue(d.lo - a * abs(d.step), d.hi + a * abs(d.step), d.step)
            for d, a in zip(self.dims, amounts)
        )
        return DomainValue(dims)

    def translate(self, amounts: tuple[int, ...]) -> "DomainValue":
        if len(amounts) == 1 and self.rank > 1:
            amounts = amounts * self.rank
        dims = tuple(
            RangeValue(d.lo + a, d.hi + a, d.step) for d, a in zip(self.dims, amounts)
        )
        return DomainValue(dims)

    def interior(self, amounts: tuple[int, ...]) -> "DomainValue":
        if len(amounts) == 1 and self.rank > 1:
            amounts = amounts * self.rank
        dims = tuple(
            RangeValue(d.lo + a, d.hi - a, d.step) for d, a in zip(self.dims, amounts)
        )
        return DomainValue(dims)

    def contains(self, coords: tuple[int, ...]) -> bool:
        dims = self.dims
        if len(dims) == 1:
            return dims[0].contains(coords[0])
        return all(d.contains(c) for d, c in zip(dims, coords))

    def flat_of(self, coords: tuple[int, ...]) -> int:
        """Row-major linearization of a coordinate."""
        dims = self.dims
        if len(dims) == 1:
            # Rank-1 unit-step: the dominant array layout in the
            # benchmarks — one compare pair and a subtraction.
            d = dims[0]
            c = coords[0]
            if d.step == 1:
                if d.lo <= c <= d.hi:
                    return c - d.lo
            elif d.contains(c):
                return d.position_of(c)
            raise RuntimeError_(
                f"index {coords} out of bounds for domain "
                f"{{{', '.join(map(str, dims))}}}"
            )
        flat = 0
        for d, c in zip(dims, coords):
            if not d.contains(c):
                raise RuntimeError_(
                    f"index {coords} out of bounds for domain "
                    f"{{{', '.join(map(str, self.dims))}}}"
                )
            flat = flat * d.size + d.position_of(c)
        return flat

    def coords_of(self, flat: int) -> tuple[int, ...]:
        dims = self.dims
        if len(dims) == 1:
            d = dims[0]
            return (d.lo + (flat % d.size) * d.step,)
        coords: list[int] = []
        for d in reversed(dims):
            coords.append(d.nth(flat % d.size))
            flat //= d.size
        coords.reverse()
        return tuple(coords)

    def iter_coords(self) -> Iterator[tuple[int, ...]]:
        for flat in range(self.size):
            yield self.coords_of(flat)

    def __str__(self) -> str:
        return "{" + ", ".join(str(d) for d in self.dims) + "}"


class SparseDomainValue:
    """Sparse subdomain of a rectangular parent domain.

    Holds an explicit *sorted* (row-major coordinate order) subset of
    the parent's indices.  Mutable: ``insert`` adds an index, and every
    array declared over the domain grows in place (a default-valued
    element slides into the new position) — Chapel's sparse-domain
    ``+=`` semantics.  Iteration order is the sorted coordinate order,
    so runs are deterministic regardless of insertion order.
    """

    __slots__ = ("parent", "_coords", "_pos", "_arrays")

    def __init__(self, parent: DomainValue) -> None:
        self.parent = parent
        self._coords: list[tuple[int, ...]] = []
        self._pos: dict[tuple[int, ...], int] = {}
        #: Arrays declared over this domain (grown on insert).
        self._arrays: list[ArrayValue] = []

    @property
    def rank(self) -> int:
        return self.parent.rank

    @property
    def size(self) -> int:
        return len(self._coords)

    def register_array(self, arr: "ArrayValue") -> None:
        self._arrays.append(arr)

    def contains(self, coords: tuple[int, ...]) -> bool:
        return coords in self._pos

    def insert(self, coords: tuple[int, ...]) -> int:
        """Adds an index (no-op for duplicates); returns the new size."""
        if len(coords) != self.rank:
            raise RuntimeError_(
                f"rank-{self.rank} sparse domain given index {coords}"
            )
        if not self.parent.contains(coords):
            raise RuntimeError_(
                f"index {coords} outside parent domain {self.parent}"
            )
        if coords in self._pos:
            return len(self._coords)
        p = bisect.bisect_left(self._coords, coords)
        self._coords.insert(p, coords)
        for i in range(p, len(self._coords)):
            self._pos[self._coords[i]] = i
        for arr in self._arrays:
            arr.data.insert(p, default_value(arr.elem_type))
        return len(self._coords)

    def flat_of(self, coords: tuple[int, ...]) -> int:
        pos = self._pos.get(coords)
        if pos is None:
            raise RuntimeError_(
                f"index {coords} not a member of sparse domain "
                f"(parent {self.parent})"
            )
        return pos

    def coords_of(self, flat: int) -> tuple[int, ...]:
        return self._coords[flat]

    def iter_coords(self) -> Iterator[tuple[int, ...]]:
        return iter(self._coords)

    def __str__(self) -> str:
        return f"sparse({self.size} of {self.parent})"


class AssociativeDomainValue:
    """Associative domain keyed by int (``domain(int)``).

    An append-only insertion-ordered key set; arrays declared over it
    grow by appending a default element per new key.  Rank is always 1.
    """

    __slots__ = ("_keys", "_pos", "_arrays")

    rank = 1

    def __init__(self) -> None:
        self._keys: list[int] = []
        self._pos: dict[int, int] = {}
        self._arrays: list[ArrayValue] = []

    @property
    def size(self) -> int:
        return len(self._keys)

    def register_array(self, arr: "ArrayValue") -> None:
        self._arrays.append(arr)

    def contains(self, coords: tuple[int, ...]) -> bool:
        return coords[0] in self._pos

    def insert(self, key: int) -> int:
        """Adds a key (no-op for duplicates); returns the new size."""
        if key not in self._pos:
            self._pos[key] = len(self._keys)
            self._keys.append(key)
            for arr in self._arrays:
                arr.data.append(default_value(arr.elem_type))
        return len(self._keys)

    def flat_of(self, coords: tuple[int, ...]) -> int:
        pos = self._pos.get(coords[0])
        if pos is None:
            raise RuntimeError_(
                f"key {coords[0]} not a member of associative domain"
            )
        return pos

    def coords_of(self, flat: int) -> tuple[int, ...]:
        return (self._keys[flat],)

    def iter_coords(self) -> Iterator[tuple[int, ...]]:
        for k in self._keys:
            yield (k,)

    def __str__(self) -> str:
        return f"assoc({self.size} keys)"


@dataclass(frozen=True)
class DomainChunk:
    """A contiguous block (by linear position) of a domain's iteration
    space — a worker task's share of a forall."""

    domain: DomainValue
    lo: int  # inclusive linear positions
    hi: int

    @property
    def size(self) -> int:
        return max(0, self.hi - self.lo + 1)


# ---------------------------------------------------------------------------
# Tuples / records / classes
# ---------------------------------------------------------------------------


class TupleValue:
    """Mutable fixed-size tuple; stores copy (value semantics)."""

    __slots__ = ("elems",)

    def __init__(self, elems: list) -> None:
        self.elems = elems

    def copy(self) -> "TupleValue":
        return TupleValue([copy_value(e) for e in self.elems])

    @property
    def size(self) -> int:
        return len(self.elems)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TupleValue) and self.elems == other.elems

    def __repr__(self) -> str:
        return "(" + ", ".join(_fmt(e) for e in self.elems) + ")"


class RecordValue:
    """A record (value-semantics) instance; fields by position."""

    __slots__ = ("type", "fields")

    def __init__(self, rtype: RecordType, fields: list) -> None:
        self.type = rtype
        self.fields = fields

    def copy(self) -> "RecordValue":
        return RecordValue(self.type, [copy_value(f) for f in self.fields])

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{name} = {_fmt(v)}" for (name, _), v in zip(self.type.fields, self.fields)
        )
        return f"({inner})"


class ClassValue:
    """A heap class instance (reference semantics); tracked by the
    simulated heap for the HPCToolkit-style baseline."""

    __slots__ = ("type", "fields", "heap_id")

    def __init__(self, rtype: RecordType, fields: list, heap_id: int = -1) -> None:
        self.type = rtype
        self.fields = fields
        self.heap_id = heap_id

    def __repr__(self) -> str:
        return f"<{self.type.name}#{self.heap_id}>"


# ---------------------------------------------------------------------------
# Arrays
# ---------------------------------------------------------------------------


class ArrayValue:
    """Array over a domain.

    A *root* array owns flat ``data``.  A *view* shares the root's data:

    * slice view (``A[D]``): same coordinates, restricted domain;
    * reindex view (``A.reindex(D)``): coordinates translated by a
      per-dimension delta; every access pays translation cost.
    """

    __slots__ = ("domain", "elem_type", "data", "root", "deltas", "is_reindex", "heap_id")

    def __init__(
        self,
        domain: DomainValue,
        elem_type: Type,
        data: list | None = None,
        root: "ArrayValue | None" = None,
        deltas: tuple[int, ...] | None = None,
        is_reindex: bool = False,
        heap_id: int = -1,
    ) -> None:
        self.domain = domain
        self.elem_type = elem_type
        self.root = root if root is not None else self
        self.data = data if data is not None else self.root.data
        #: Per-dim coordinate delta view→root (reindex views only).
        self.deltas = deltas
        self.is_reindex = is_reindex
        self.heap_id = heap_id

    @property
    def is_view(self) -> bool:
        return self.root is not self

    @property
    def size(self) -> int:
        return self.domain.size

    def root_coords(self, coords: tuple[int, ...]) -> tuple[int, ...]:
        if self.deltas is None:
            return coords
        return tuple(c + d for c, d in zip(coords, self.deltas))

    def flat_of(self, coords: tuple[int, ...]) -> int:
        """Flat index into the root's data for view coordinates."""
        root = self.root
        if root is self:
            # Root array: the view domain IS the storage domain and
            # there is no coordinate translation, so a single bounds
            # check (inside the domain's flat_of) suffices.  The
            # out-of-bounds message is textually identical to the view
            # path's.  Irregular domains (sparse/associative) have no
            # ``dims`` and take the generic flat_of path.
            dom = self.domain
            dims = getattr(dom, "dims", None)
            if dims is not None and len(dims) == 1:
                d = dims[0]
                c = coords[0]
                if d.step == 1 and d.lo <= c <= d.hi:
                    return c - d.lo
            return dom.flat_of(coords)
        if not self.domain.contains(coords):
            raise RuntimeError_(
                f"index {coords} out of bounds for domain {self.domain}"
            )
        return root.domain.flat_of(self.root_coords(coords))

    def elem_address(self, coords: tuple[int, ...]) -> tuple[list, int]:
        return (self.root.data, self.flat_of(coords))

    def slice(self, domain: DomainValue) -> "ArrayValue":
        """Aliasing slice keeping coordinates (Chapel ``A[D]``)."""
        return ArrayValue(
            domain,
            self.elem_type,
            root=self.root,
            deltas=self.deltas,
            is_reindex=self.is_reindex,
        )

    def reindex(self, domain: DomainValue) -> "ArrayValue":
        """Aliasing view with translated coordinates."""
        if domain.shape != self.domain.shape:
            raise RuntimeError_(
                f"reindex domain shape {domain.shape} != array shape "
                f"{self.domain.shape}"
            )
        base_deltas = self.deltas or tuple(0 for _ in range(self.domain.rank))
        deltas = tuple(
            old.lo - new.lo + bd
            for old, new, bd in zip(self.domain.dims, domain.dims, base_deltas)
        )
        return ArrayValue(
            domain, self.elem_type, root=self.root, deltas=deltas, is_reindex=True
        )

    def __repr__(self) -> str:
        kind = "view" if self.is_view else "array"
        return f"<{kind} {self.domain} of {self.elem_type}>"


@dataclass(frozen=True)
class ArrayChunk:
    """A contiguous block (by linear position within the view's domain)
    of an array's elements — a worker task's share of ``forall a in A``."""

    array: ArrayValue
    lo: int
    hi: int

    @property
    def size(self) -> int:
        return max(0, self.hi - self.lo + 1)


# ---------------------------------------------------------------------------
# Construction / copying / formatting
# ---------------------------------------------------------------------------


def default_value(ty: Type) -> object:
    """Zero value of a type (Chapel default-initialization)."""
    if isinstance(ty, IntType):
        return 0
    if isinstance(ty, RealType):
        return 0.0
    if isinstance(ty, BoolType):
        return False
    if isinstance(ty, StringType):
        return ""
    if isinstance(ty, TupleType):
        return TupleValue([default_value(e) for e in ty.elems])
    if isinstance(ty, RecordType):
        if ty.is_class:
            return None  # nil
        return RecordValue(ty, [default_value(ft) for _, ft in ty.fields])
    if isinstance(ty, ArrayType):
        return None  # uninitialized descriptor
    raise RuntimeError_(f"no default value for type {ty}")


def copy_value(v: object) -> object:
    """Value-semantics copy: tuples and records deep-copy; arrays,
    classes, ranges, domains and scalars pass through."""
    if isinstance(v, TupleValue):
        return v.copy()
    if isinstance(v, RecordValue):
        return v.copy()
    return v


def value_slots(v: object) -> int:
    """Scalar-slot footprint of a value (cost-model input for tuple and
    record construction/copy)."""
    if isinstance(v, TupleValue):
        return sum(value_slots(e) for e in v.elems)
    if isinstance(v, (RecordValue, ClassValue)):
        return sum(value_slots(f) for f in v.fields)
    return 1


def _fmt(v: object) -> str:
    if isinstance(v, bool):
        return "true" if v else "false"
    if isinstance(v, float):
        return repr(v)
    return str(v)


def format_value(v: object) -> str:
    """Chapel-ish writeln formatting."""
    if isinstance(v, ArrayValue):
        return " ".join(format_value(v.data[v.flat_of(c)]) for c in v.domain.iter_coords())
    return _fmt(v)
