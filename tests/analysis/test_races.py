"""Static race detector tests: seeded races are flagged, reduce
intents and index-disjoint addressing are respected, and the shipped
benchmarks are race-free in every variant."""

import pytest

from repro.analysis import Severity, analyze_module
from repro.bench.programs import clomp, lulesh, minimd, mttkrp, spmv
from repro.compiler.lower import compile_source


def races_in(source, filename="test.chpl"):
    module = compile_source(source, filename)
    return [
        f
        for f in analyze_module(module, passes=["forall-race"])
        if f.rule == "forall-race"
    ]


class TestSeededRaces:
    def test_global_scalar_race(self):
        src = """
var total: int;
proc main() {
  forall i in 1..100 {
    total = total + i;
  }
  writeln(total);
}
"""
        (f,) = races_in(src)
        assert f.severity is Severity.ERROR
        assert f.variables == ("total",)
        assert "reduce" in f.remediation

    def test_ref_captured_local_race(self):
        src = """
proc main() {
  var acc = 0;
  forall i in 1..100 {
    acc = acc + i;
  }
  writeln(acc);
}
"""
        (f,) = races_in(src)
        assert f.variables == ("acc",)

    def test_non_disjoint_element_race(self):
        src = """
var A: [0..9] int;
proc main() {
  forall i in 1..100 {
    A[0] = i;
  }
  writeln(A[0]);
}
"""
        (f,) = races_in(src)
        assert f.variables == ("A",)

    def test_race_through_callee_global_write(self):
        src = """
var counter: int;
proc bump() {
  counter = counter + 1;
}
proc main() {
  forall i in 1..100 {
    bump();
  }
  writeln(counter);
}
"""
        (f,) = races_in(src)
        assert f.variables == ("counter",)

    def test_coforall_race(self):
        src = """
var flag: int;
proc main() {
  coforall t in 1..4 {
    flag = t;
  }
  writeln(flag);
}
"""
        (f,) = races_in(src)
        assert "coforall" in f.message


class TestSafePatterns:
    def test_index_disjoint_write(self):
        src = """
var A: [1..100] int;
proc main() {
  forall i in 1..100 {
    A[i] = i;
  }
  writeln(A[1]);
}
"""
        assert races_in(src) == []

    def test_reduce_intent_protects(self):
        src = """
var total: int;
proc main() {
  forall i in 1..100 with (+ reduce total) {
    total = total + i;
  }
  writeln(total);
}
"""
        assert races_in(src) == []

    def test_task_private_locals_are_fine(self):
        src = """
var A: [1..100] int;
proc main() {
  forall i in 1..100 {
    var tmp = i * 2;
    A[i] = tmp;
  }
  writeln(A[1]);
}
"""
        assert races_in(src) == []

    def test_derived_index_write_is_disjoint(self):
        src = """
var A: [2..101] int;
proc main() {
  forall i in 1..100 {
    A[i + 1] = i;
  }
  writeln(A[2]);
}
"""
        assert races_in(src) == []

    def test_callee_writing_formal_at_index_is_disjoint(self):
        src = """
var A: [1..100] int;
proc put(ref buf: [?] int, at: int) {
  buf[at] = at;
}
proc main() {
  forall i in 1..100 {
    put(A, i);
  }
  writeln(A[1]);
}
"""
        assert races_in(src) == []

    def test_callee_global_write_at_bound_index_is_disjoint(self):
        src = """
var A: [1..100] int;
proc put(at: int) {
  A[at] = at;
}
proc main() {
  forall i in 1..100 {
    put(i);
  }
  writeln(A[1]);
}
"""
        assert races_in(src) == []

    def test_reads_never_race(self):
        src = """
var A: [1..100] int;
var B: [1..100] int;
proc main() {
  forall i in 1..100 {
    B[i] = A[1] + A[2];
  }
  writeln(B[1]);
}
"""
        assert races_in(src) == []


class TestIrregularDomainForalls:
    """The detector's judgments carry over to the irregular domains:
    index-disjoint writes over associative/sparse domains stay clean,
    shared-scalar accumulation still fires, reduce intents protect."""

    def test_assoc_domain_index_disjoint_write_is_clean(self):
        src = """
var keys: domain(int);
var histo: [keys] int;
proc main() {
  for k in 1..8 {
    keys += k;
  }
  forall k in keys {
    histo[k] = k * 2;
  }
  writeln(histo[3]);
}
"""
        assert races_in(src) == []

    def test_assoc_domain_shared_scalar_race_fires(self):
        src = """
var keys: domain(int);
var total: int;
proc main() {
  for k in 1..8 {
    keys += k;
  }
  forall k in keys {
    total = total + k;
  }
  writeln(total);
}
"""
        (f,) = races_in(src)
        assert f.variables == ("total",)

    def test_assoc_domain_reduce_intent_protects(self):
        src = """
var keys: domain(int);
var total: int;
proc main() {
  for k in 1..8 {
    keys += k;
  }
  forall k in keys with (+ reduce total) {
    total += k;
  }
  writeln(total);
}
"""
        assert races_in(src) == []

    def test_sparse_domain_forall_with_reduce_is_clean(self):
        src = """
var P: domain(2) = {1..8, 1..8};
var spD: sparse subdomain(P);
var s: int;
proc main() {
  for k in 1..8 {
    spD += (k, k);
  }
  forall idx in spD with (+ reduce s) {
    s += idx[0] + idx[1];
  }
  writeln(s);
}
"""
        assert races_in(src) == []


class TestBenchmarksAreClean:
    """Acceptance: zero races on every shipped benchmark variant."""

    @pytest.mark.parametrize("optimized", [False, True])
    def test_minimd(self, optimized):
        src = minimd.build_source(optimized=optimized)
        assert races_in(src, "minimd.chpl") == []

    @pytest.mark.parametrize("optimized", [False, True])
    def test_clomp(self, optimized):
        src = clomp.build_source(optimized=optimized)
        assert races_in(src, "clomp.chpl") == []

    @pytest.mark.parametrize(
        "variant",
        [lulesh.ORIGINAL, lulesh.BEST_CASE, lulesh.CENN_ONLY, lulesh.VG_ONLY],
        ids=["original", "best", "cenn", "vg"],
    )
    def test_lulesh(self, variant):
        src = lulesh.build_source(variant)
        assert races_in(src, "lulesh.chpl") == []

    @pytest.mark.parametrize("variant", ["original", "optimized", "dense"])
    def test_spmv(self, variant):
        src = spmv.build_source(variant)
        assert races_in(src, "spmv.chpl") == []

    @pytest.mark.parametrize("variant", ["original", "optimized"])
    def test_mttkrp(self, variant):
        src = mttkrp.build_source(variant)
        assert races_in(src, "mttkrp.chpl") == []
