"""Blame report structures — what the presentation layer consumes.

A :class:`BlameReport` is the paper's final per-run artifact: ranked
variable rows (name, type, blame percentage, context — the columns of
Tables II/IV/VI), plus run statistics for the overhead discussion.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..chapel.types import ArrayType, RecordType, TupleType, Type
from .attribution import AttributionResult, VariableBlame
from .dataflow import Path


def path_type(root_type: Type | None, path: Path) -> Type | None:
    """Static type at the end of a field path (Table IV's Type column
    for ``->`` rows)."""
    t = root_type
    for elem in path:
        if t is None:
            return None
        if elem[0] == "index":
            if isinstance(t, ArrayType):
                t = t.elem
            elif isinstance(t, TupleType):
                t = t.elems[0] if t.elems else None
            else:
                return None
        else:  # field / cfield
            if isinstance(t, RecordType):
                t = t.field_type(elem[1])
            else:
                return None
    return t


@dataclass(frozen=True)
class BlameRow:
    """One display row of the data-centric view."""

    name: str
    type_str: str
    blame: float  # fraction of user samples
    context: str
    samples: int
    is_path: bool

    @property
    def percent(self) -> float:
        return 100.0 * self.blame


@dataclass
class RunStats:
    """Run-level statistics for the report header / overhead bench."""

    total_raw_samples: int = 0
    user_samples: int = 0
    runtime_samples: int = 0
    wall_seconds: float = 0.0
    dataset_bytes: int = 0
    stackwalk_cycles: float = 0.0
    postmortem_seconds: float = 0.0
    #: Degradation accounting (all zero on a clean run).
    unknown_samples: int = 0
    quarantined_samples: int = 0
    recovered_samples: int = 0


#: Display name/context of the unattributable-cycles bucket.
UNKNOWN_BUCKET = "<unknown>"


@dataclass
class BlameReport:
    """Final data-centric profile of one run (one locale)."""

    program: str
    rows: list[BlameRow]
    stats: RunStats
    locale_id: int = 0
    #: Unattributable samples by provenance reason (tolerant pipeline).
    unknown_by_reason: dict[str, int] = field(default_factory=dict)
    #: Ingest/postmortem rejections by reason.
    quarantine_by_reason: dict[str, int] = field(default_factory=dict)
    #: Locales absent from a merged report (crashed / timed out).
    missing_locales: tuple[int, ...] = ()

    def top(self, n: int = 10) -> list[BlameRow]:
        return self.rows[:n]

    def blame_of(self, name: str, context: str | None = None) -> float:
        for row in self.rows:
            if row.name == name and (context is None or row.context == context):
                return row.blame
        return 0.0

    def row_for(self, name: str) -> BlameRow | None:
        for row in self.rows:
            if row.name == name:
                return row
        return None


def build_rows(
    attribution: AttributionResult,
    min_blame: float = 0.0,
    include_temps: bool = False,
    unknown_samples: int = 0,
) -> list[BlameRow]:
    """Converts attribution counts into ranked display rows.

    ``unknown_samples`` (degraded runs only) joins the denominator so
    blame percentages stay honest — the attributed rows shrink by
    exactly the share the ``<unknown>`` bucket row claims, keeping the
    flat view's accounting at 100 % of user-code cycles.
    """
    total = attribution.total_samples + unknown_samples
    rows: list[BlameRow] = []
    for vb in attribution.sorted_rows(include_temps=include_temps):
        frac = vb.percentage(total)
        if frac < min_blame:
            continue
        rows.append(
            BlameRow(
                name=vb.name,
                type_str=str(vb.type) if vb.type is not None else "",
                blame=frac,
                context=vb.context,
                samples=vb.samples,
                is_path=vb.is_path,
            )
        )
    if unknown_samples > 0:
        rows.append(
            BlameRow(
                name=UNKNOWN_BUCKET,
                type_str="",
                blame=unknown_samples / total if total else 0.0,
                context=UNKNOWN_BUCKET,
                samples=unknown_samples,
                is_path=False,
            )
        )
        rows.sort(key=lambda r: (-r.samples, r.context, r.name))
    return rows
