"""Ablation-switch tests: each BlameOptions flag produces the expected
strictly-weaker analysis."""

import pytest

from repro.blame.options import ABLATIONS, FULL, BlameOptions
from repro.tooling.profiler import Profiler

import sys, os
sys.path.insert(0, os.path.dirname(os.path.dirname(__file__)))
from conftest import compile_src

ALIAS_SRC = """
var A: [0..29] real;
var View = A[0..29];
proc main() {
  for t in 1..6 {
    forall i in 0..29 { View[i] = View[i] + sqrt(i * 1.0); }
  }
}
"""

HIER_SRC = """
record Z { var v: real; }
var zs: [0..19] Z;
proc main() {
  for t in 1..8 {
    forall i in 0..19 { zs[i].v = zs[i].v + i; }
  }
}
"""

CONTROL_SRC = """
proc main() {
  var flag = true;
  var x = 0.0;
  for i in 1..600 {
    if flag {
      x += i * 1.0;
    }
  }
  writeln(x);
}
"""


def prof(src, options=None, threshold=307):
    return Profiler(
        src, num_threads=4, threshold=threshold, blame_options=options
    ).profile()


class TestOptions:
    def test_default_is_full(self):
        assert BlameOptions() == FULL
        assert FULL.implicit_control and FULL.alias_tracking

    def test_without_builder(self):
        o = FULL.without(alias_tracking=False, stack_gluing=False)
        assert not o.alias_tracking and not o.stack_gluing
        assert o.implicit_control  # untouched flags stay on

    def test_ablations_registry_complete(self):
        assert "full" in ABLATIONS
        assert ABLATIONS["full"] == FULL
        for tag, opts in ABLATIONS.items():
            if tag == "full":
                continue
            assert opts != FULL

    def test_no_alias_tracking_severs_view_to_base(self):
        full = prof(ALIAS_SRC)
        ablated = prof(ALIAS_SRC, FULL.without(alias_tracking=False))
        assert full.report.blame_of("A") > 0.3
        assert ablated.report.blame_of("A") < full.report.blame_of("A") * 0.5
        # the view itself keeps its direct blame either way
        assert ablated.report.blame_of("View") > 0.2

    def test_no_hierarchy_drops_arrow_rows(self):
        full = prof(HIER_SRC)
        ablated = prof(HIER_SRC, FULL.without(hierarchical_paths=False))
        assert any(r.name.startswith("->") for r in full.report.rows)
        assert not any(r.name.startswith("->") for r in ablated.report.rows)
        # whole-variable rows survive
        assert ablated.report.blame_of("zs") > 0.3

    def test_no_implicit_control_shrinks_blame_sets(self):
        from repro.blame.static_info import ModuleBlameInfo

        m = compile_src(CONTROL_SRC)
        full_map = ModuleBlameInfo(m).variable_lines_map("main")
        ablated_map = ModuleBlameInfo(
            m, options=FULL.without(implicit_control=False)
        ).variable_lines_map("main")
        # the controlling `if flag` line (6) leaves x's blame lines;
        # line 5 (the loop: i feeds x explicitly) stays either way.
        assert full_map["x"] >= ablated_map["x"]
        assert 6 in full_map["x"]  # line of `if flag {`
        assert 6 not in ablated_map["x"]
        assert 5 in ablated_map["x"]  # explicit data flow via i

    def test_no_gluing_reduces_or_preserves_user_samples(self):
        src = """
var A: [0..39] real;
proc main() {
  forall i in 0..39 { A[i] = i * 2.0 + sqrt(i + 1.0); }
}
"""
        full = prof(src)
        ablated = prof(src, FULL.without(stack_gluing=False))
        assert ablated.report.stats.user_samples <= full.report.stats.user_samples
        # worker samples still resolve (post stacks have user frames),
        # but their call paths stop at the outlined frame
        assert all(not i.was_glued for i in ablated.postmortem.instances)
