"""Stability metrics: ranking, top-N overlap, Kendall-tau."""

from repro.blame.report import BlameReport, BlameRow, RunStats, UNKNOWN_BUCKET
from repro.resilience.stability import (
    compare_reports,
    kendall_tau,
    ranking,
    top_n_overlap,
)


def _report(names, unknown=0, total=100):
    rows = [
        BlameRow(
            name=n,
            type_str="real",
            context="main",
            samples=total - 5 * i,
            blame=(total - 5 * i) / total,
            is_path=False,
        )
        for i, n in enumerate(names)
    ]
    if unknown:
        rows.append(
            BlameRow(
                name=UNKNOWN_BUCKET,
                type_str="-",
                context=UNKNOWN_BUCKET,
                samples=unknown,
                blame=unknown / total,
                is_path=False,
            )
        )
    return BlameReport(
        program="t.chpl",
        rows=rows,
        stats=RunStats(
            total_raw_samples=total,
            user_samples=total - unknown,
            runtime_samples=0,
            wall_seconds=0.0,
            dataset_bytes=0,
            stackwalk_cycles=0.0,
            unknown_samples=unknown,
        ),
    )


class TestRanking:
    def test_unknown_bucket_excluded(self):
        rep = _report(["a", "b"], unknown=40)
        assert ranking(rep) == ["main::a", "main::b"]

    def test_limit(self):
        rep = _report(["a", "b", "c", "d"])
        assert ranking(rep, 2) == ["main::a", "main::b"]


class TestOverlap:
    def test_identical(self):
        a = _report(["a", "b", "c", "d", "e"])
        assert top_n_overlap(a, a) == 1.0

    def test_disjoint(self):
        a = _report(["a", "b", "c", "d", "e"])
        b = _report(["v", "w", "x", "y", "z"])
        assert top_n_overlap(a, b) == 0.0

    def test_partial(self):
        a = _report(["a", "b", "c", "d", "e"])
        b = _report(["a", "b", "c", "y", "z"])
        assert top_n_overlap(a, b) == 0.6

    def test_empty_clean_report(self):
        assert top_n_overlap(_report([]), _report(["a"])) == 1.0


class TestKendallTau:
    def test_same_order(self):
        a = _report(["a", "b", "c", "d"])
        assert kendall_tau(a, a) == 1.0

    def test_reversed_order(self):
        a = _report(["a", "b", "c", "d"])
        b = _report(["d", "c", "b", "a"])
        assert kendall_tau(a, b) == -1.0

    def test_single_common_row_is_neutral(self):
        a = _report(["a", "b"])
        b = _report(["a", "z"])
        assert kendall_tau(a, b) == 1.0

    def test_one_swap(self):
        a = _report(["a", "b", "c"])
        b = _report(["b", "a", "c"])
        # 3 pairs, 1 discordant: (2 - 1) / 3
        assert abs(kendall_tau(a, b) - 1 / 3) < 1e-9


class TestComparePoints:
    def test_point_fields(self):
        clean = _report(["a", "b", "c", "d", "e"])
        degraded = _report(["a", "b", "c", "d", "z"], unknown=10)
        p = compare_reports("drop", 0.1, clean, degraded)
        assert p.fault == "drop" and p.rate == 0.1 and p.completed
        assert p.top5_overlap == 0.8
        assert p.unknown_rate == 10 / 100
        d = p.as_dict()
        assert d["fault"] == "drop" and d["top5_overlap"] == 0.8
