"""CLOMP — Livermore OpenMP benchmark (paper §V.B), mini-Chapel port.

Structure per the paper: after initialization, ``main`` calls
``do_parallel_version``, whose only callee ``parallel_cycle`` invokes
``parallel_module1..4`` (differing in how many parallel forall sweeps
each performs); every sweep calls ``update_part`` per part, which loops
that part's zones updating ``zoneArray[j].value`` plus a per-part
``residue`` via the local ``remaining_deposit``.  ``calc_deposit`` is
the small serial portion between sweeps.

Variants:

* **original** — nested dynamic structures: ``partArray`` holds class
  instances whose ``zoneArray`` field holds the zones (every zone
  access dereferences two levels — the cost the blame table exposes);
* **optimized** — Johnson & Hollingsworth's flattening: "use a large 2D
  array to hold those values"; zone values live in one global 2-D
  array indexed ``[part, zone]`` (residues stay per-part).  Paper
  Table V: up to 2.13× w/o --fast.
"""

from __future__ import annotations

from dataclasses import dataclass

DEFAULT_CONFIG: dict[str, object] = {
    "numParts": 16,
    "zonesPerPart": 40,
    "timesteps": 2,
}

_PRELUDE = """
// CLOMP (mini-Chapel port) -- Livermore OpenMP overhead benchmark
config const numParts: int = 16;
config const zonesPerPart: int = 40;
config const timesteps: int = 2;
config const flopScale: real = 1.0;

record Zone {
  var value: real;
}

class Part {
  var residue: real;
  var deposit_ratio: real;
  var zoneArray: [?] Zone;
}

var partDomain: domain(1) = {0..numParts-1};
var partArray: [partDomain] Part;
"""

_OPT_GLOBALS = """
// optimized layout: one large 2D array for all zone values
var zoneValues: [0..numParts-1, 0..zonesPerPart-1] real;
"""

_INIT_ORIGINAL = """
proc initParts() {
  for i in 0..numParts-1 {
    var zones: [0..zonesPerPart-1] Zone;
    partArray[i] = new Part(0.0, 0.95 + 0.0001 * i, zones);
    for j in 0..zonesPerPart-1 {
      partArray[i].zoneArray[j].value = 0.0;
    }
  }
}
"""

_INIT_OPTIMIZED = """
proc initParts() {
  for i in 0..numParts-1 {
    var zones: [0..0] Zone;
    partArray[i] = new Part(0.0, 0.95 + 0.0001 * i, zones);
    for j in 0..zonesPerPart-1 {
      zoneValues[i, j] = 0.0;
    }
  }
}
"""

_UPDATE_ORIGINAL = """
proc update_part(p: Part, deposit: real) {
  var remaining_deposit: real = deposit;
  for j in 0..zonesPerPart-1 {
    var dep = remaining_deposit * 0.5 * flopScale;
    var scaled = p.zoneArray[j].value * 0.5 + dep * 0.3;
    p.zoneArray[j].value = scaled * (1.0 - 0.001 * flopScale) + dep * 0.7;
    remaining_deposit = remaining_deposit - dep;
  }
  p.residue = p.residue + remaining_deposit;
}
"""

_UPDATE_OPTIMIZED = """
proc update_part(p: Part, i: int, deposit: real) {
  var remaining_deposit: real = deposit;
  for j in 0..zonesPerPart-1 {
    var dep = remaining_deposit * 0.5 * flopScale;
    var scaled = zoneValues[i, j] * 0.5 + dep * 0.3;
    zoneValues[i, j] = scaled * (1.0 - 0.001 * flopScale) + dep * 0.7;
    remaining_deposit = remaining_deposit - dep;
  }
  p.residue = p.residue + remaining_deposit;
}
"""

_MODULES_ORIGINAL = """
proc calc_deposit(): real {
  var total = 0.0;
  for i in 0..numParts-1 {
    total += partArray[i].residue * 0.001;
  }
  return 0.5 + total / (numParts * 1.0);
}

proc parallel_module1() {
  var dep = calc_deposit();
  forall i in partDomain {
    update_part(partArray[i], dep);
  }
}

proc parallel_module2() {
  var dep = calc_deposit();
  forall i in partDomain {
    update_part(partArray[i], dep * 0.5);
  }
  dep = calc_deposit();
  forall i in partDomain {
    update_part(partArray[i], dep * 0.5);
  }
}

proc parallel_module3() {
  var dep = calc_deposit();
  forall i in partDomain {
    update_part(partArray[i], dep / 3.0);
  }
  dep = calc_deposit();
  forall i in partDomain {
    update_part(partArray[i], dep / 3.0);
  }
  dep = calc_deposit();
  forall i in partDomain {
    update_part(partArray[i], dep / 3.0);
  }
}

proc parallel_module4() {
  for r in 1..4 {
    var dep = calc_deposit();
    forall i in partDomain {
      update_part(partArray[i], dep * 0.25);
    }
  }
}
"""

_MODULES_OPTIMIZED = """
proc calc_deposit(): real {
  var total = 0.0;
  for i in 0..numParts-1 {
    total += partArray[i].residue * 0.001;
  }
  return 0.5 + total / (numParts * 1.0);
}

proc parallel_module1() {
  var dep = calc_deposit();
  forall i in partDomain {
    update_part(partArray[i], i, dep);
  }
}

proc parallel_module2() {
  var dep = calc_deposit();
  forall i in partDomain {
    update_part(partArray[i], i, dep * 0.5);
  }
  dep = calc_deposit();
  forall i in partDomain {
    update_part(partArray[i], i, dep * 0.5);
  }
}

proc parallel_module3() {
  var dep = calc_deposit();
  forall i in partDomain {
    update_part(partArray[i], i, dep / 3.0);
  }
  dep = calc_deposit();
  forall i in partDomain {
    update_part(partArray[i], i, dep / 3.0);
  }
  dep = calc_deposit();
  forall i in partDomain {
    update_part(partArray[i], i, dep / 3.0);
  }
}

proc parallel_module4() {
  for r in 1..4 {
    var dep = calc_deposit();
    forall i in partDomain {
      update_part(partArray[i], i, dep * 0.25);
    }
  }
}
"""

_MAIN = """
proc parallel_cycle() {
  parallel_module1();
  parallel_module2();
  parallel_module3();
  parallel_module4();
}

proc do_parallel_version() {
  for t in 1..timesteps {
    parallel_cycle();
  }
}

proc checksum(): real {
  var total = 0.0;
  for i in 0..numParts-1 {
    total += partArray[i].residue;
  }
  return total;
}

proc main() {
  initParts();
  var t0 = getCurrentTime();
  do_parallel_version();
  var t1 = getCurrentTime();
  writeln("residue total", checksum());
  writeln("elapsed", t1 - t0);
}
"""


@dataclass(frozen=True)
class ClompVariant:
    optimized: bool = False


def build_source(variant: ClompVariant | None = None, optimized: bool = False) -> str:
    if variant is not None:
        optimized = variant.optimized
    parts = [_PRELUDE]
    if optimized:
        parts.append(_OPT_GLOBALS)
        parts.append(_INIT_OPTIMIZED)
        parts.append(_UPDATE_OPTIMIZED)
        parts.append(_MODULES_OPTIMIZED)
    else:
        parts.append(_INIT_ORIGINAL)
        parts.append(_UPDATE_ORIGINAL)
        parts.append(_MODULES_ORIGINAL)
    parts.append(_MAIN)
    return "\n".join(parts)


#: The paper's Table V problem shapes (numParts, zonesPerPart), scaled
#: down for the interpreter while keeping the contrasts that drive the
#: paper's pattern: zone-dominated shapes (rows 1 and 3) fit in cache
#: and see the full flattening win; part-heavy shapes (rows 2 and 4)
#: overflow the simulated LLC, so both versions stall on memory and the
#: speedup compresses toward 1.
TABLE_V_SHAPES: list[tuple[str, int, int]] = [
    ("1024/64,000", 16, 250),
    ("65536/10", 2048, 3),
    ("12/640,000", 4, 1200),
    ("65536/6400", 512, 40),
]


def config_for(
    num_parts: int | None = None,
    zones_per_part: int | None = None,
    timesteps: int | None = None,
) -> dict[str, object]:
    cfg = dict(DEFAULT_CONFIG)
    if num_parts is not None:
        cfg["numParts"] = num_parts
    if zones_per_part is not None:
        cfg["zonesPerPart"] = zones_per_part
    if timesteps is not None:
        cfg["timesteps"] = timesteps
    return cfg
