"""The end-to-end tool: the four-step pipeline of paper Fig. 2.

1. static analysis  → :class:`~repro.blame.ModuleBlameInfo`
2. execution w/ sampling → :class:`~repro.sampling.Monitor` raw samples
3. post-mortem processing → instances → attribution
4. data presentation → :class:`~repro.blame.BlameReport` (+ views)

Typical use::

    from repro.tooling import Profiler
    result = Profiler(source, config={"n": 8}).profile()
    for row in result.report.top(5):
        print(row.name, f"{row.percent:.1f}%", row.context)
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..blame.attribution import AttributionResult, BlameAttributor
from ..blame.cache import cached_module_blame_info
from ..blame.postmortem import PostmortemResult, process_samples
from ..blame.report import BlameReport, RunStats, build_rows
from ..blame.static_info import ModuleBlameInfo
from ..compiler.lower import compile_source
from ..ir.module import Module
from ..runtime.costmodel import CostModel
from ..runtime.interpreter import Interpreter, RunResult
from ..sampling.monitor import Monitor
from ..sampling.pmu import DEFAULT_THRESHOLD, PMUConfig

#: (source, filename, fast) → compiled (and fast-lowered) Module.
#: Profiling the same program repeatedly — benchmark sweeps, the warm
#: paths in the perf suite — reuses one Module object, which both skips
#: recompilation and keeps instruction ids identical across runs so the
#: on-module analysis caches stay hot.  Bounded FIFO.
_COMPILE_CACHE: dict[tuple[str, str, bool], Module] = {}
_COMPILE_CACHE_MAX = 32


def _compile_cached(source: str, filename: str, fast: bool) -> Module:
    key = (source, filename, fast)
    module = _COMPILE_CACHE.get(key)
    if module is None:
        module = compile_source(source, filename)
        if fast:
            from ..compiler.passes import run_fast_pipeline

            run_fast_pipeline(module)
        if len(_COMPILE_CACHE) >= _COMPILE_CACHE_MAX:
            _COMPILE_CACHE.pop(next(iter(_COMPILE_CACHE)))
        _COMPILE_CACHE[key] = module
    return module


@dataclass
class ProfileResult:
    """Everything one profiled run produced."""

    module: Module
    static_info: ModuleBlameInfo
    monitor: Monitor
    run_result: RunResult
    postmortem: PostmortemResult
    attribution: AttributionResult
    report: BlameReport
    #: The interpreter that executed the run (exposes globals_store and
    #: the heap — the HPCToolkit baseline reads allocation sizes there).
    interpreter: "Interpreter | None" = None
    #: What fault injection did to this run (None on clean runs).
    fault_stats: "object | None" = None

    @property
    def wall_seconds(self) -> float:
        return self.run_result.wall_seconds

    @property
    def quarantine_rate(self) -> float:
        """Rejected samples as a fraction of everything the monitor saw."""
        total = (
            self.report.stats.total_raw_samples
            + self.report.stats.quarantined_samples
        )
        return self.report.stats.quarantined_samples / total if total else 0.0


class Profiler:
    """Configurable front door to the blame pipeline.

    Parameters mirror the paper's experimental knobs: the PMU overflow
    ``threshold``, the worker-thread count (their 12-core Xeon), and the
    compilation mode (``fast=True`` approximates ``--fast``; the paper
    profiles *without* it — see §V's discussion of why).
    """

    def __init__(
        self,
        source: str | Module,
        filename: str = "program.chpl",
        config: dict[str, object] | None = None,
        num_threads: int = 12,
        threshold: int = DEFAULT_THRESHOLD,
        cost_model: CostModel | None = None,
        fast: bool = False,
        include_temps: bool = False,
        min_blame: float = 0.0,
        blame_options: "object | None" = None,
        skid: int = 0,
        skid_compensation: bool = False,
        faults: "object | str | None" = None,
    ) -> None:
        if isinstance(source, Module):
            self.module = source
            self.program_name = source.name
            if fast:
                from ..compiler.passes import run_fast_pipeline

                run_fast_pipeline(self.module)
        else:
            self.module = _compile_cached(source, filename, fast)
            self.program_name = filename
        self.config = config or {}
        self.num_threads = num_threads
        self.threshold = threshold
        self.cost_model = cost_model
        self.include_temps = include_temps
        self.min_blame = min_blame
        self.blame_options = blame_options
        self.skid = skid
        self.skid_compensation = skid_compensation
        if isinstance(faults, str):
            from ..resilience.faults import FaultPlan

            faults = FaultPlan.parse(faults)
        self.faults = faults

    def profile(self) -> ProfileResult:
        # Step 1 — static analysis (pre-run, sample-independent; cached
        # on the module, keyed by a content hash of its IR).
        static_info = cached_module_blame_info(
            self.module, options=self.blame_options
        )

        # Step 2 — execution under the monitor.
        monitor = Monitor(PMUConfig(threshold=self.threshold))
        interp = Interpreter(
            self.module,
            config=self.config,
            num_threads=self.num_threads,
            cost_model=self.cost_model,
            monitor=monitor,
            sample_threshold=self.threshold,
            skid=self.skid,
            skid_compensation=self.skid_compensation,
        )
        run_result = interp.run()

        # Optional fault injection between steps 2 and 3: the monitor's
        # stream stays pristine; post-mortem sees the degraded copy.
        injector = None
        samples = monitor.samples
        if self.faults is not None and not getattr(self.faults, "is_clean", True):
            from ..resilience.inject import FaultInjector

            injector = FaultInjector(self.faults, module=self.module)
            samples = injector.degrade_samples(samples)

        # Step 3 — post-mortem processing (tolerant: degraded telemetry
        # is bucketed/quarantined, never raised; a no-op when clean).
        t0 = time.perf_counter()
        pm = process_samples(
            self.module, samples, options=static_info.options, tolerant=True
        )
        attribution = BlameAttributor(static_info).attribute(pm.instances)
        postmortem_seconds = time.perf_counter() - t0

        # Step 4 — report assembly.
        n_quarantined = len(pm.quarantined) + monitor.n_quarantined
        stats = RunStats(
            total_raw_samples=len(samples),
            user_samples=pm.n_user,
            runtime_samples=len(pm.runtime_samples),
            wall_seconds=run_result.wall_seconds,
            dataset_bytes=monitor.dataset_size_bytes(),
            stackwalk_cycles=monitor.overhead.stackwalk_cycles_total,
            postmortem_seconds=postmortem_seconds,
            unknown_samples=pm.n_unknown,
            quarantined_samples=n_quarantined,
            recovered_samples=pm.n_recovered,
        )
        quarantine_reasons = pm.quarantine_by_reason()
        for reason, n in monitor.quarantine_by_reason().items():
            quarantine_reasons[reason] = quarantine_reasons.get(reason, 0) + n
        report = BlameReport(
            program=self.program_name,
            rows=build_rows(
                attribution,
                min_blame=self.min_blame,
                include_temps=self.include_temps,
                unknown_samples=pm.n_unknown,
            ),
            stats=stats,
            unknown_by_reason=pm.unknown_by_reason(),
            quarantine_by_reason=quarantine_reasons,
        )
        return ProfileResult(
            module=self.module,
            static_info=static_info,
            monitor=monitor,
            run_result=run_result,
            postmortem=pm,
            attribution=attribution,
            report=report,
            interpreter=interp,
            fault_stats=injector.stats if injector is not None else None,
        )


def run_only(
    source: str | Module,
    filename: str = "program.chpl",
    config: dict[str, object] | None = None,
    num_threads: int = 12,
    cost_model: CostModel | None = None,
    fast: bool = False,
) -> RunResult:
    """Executes a program without profiling (for timing comparisons —
    the paper's original-vs-optimized speedup tables)."""
    if isinstance(source, Module):
        module = source
        if fast:
            from ..compiler.passes import run_fast_pipeline

            run_fast_pipeline(module)
    else:
        module = _compile_cached(source, filename, fast)
    interp = Interpreter(
        module, config=config, num_threads=num_threads, cost_model=cost_model
    )
    return interp.run()
