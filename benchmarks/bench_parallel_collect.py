"""P1 — Sharded post-mortem/attribution scaling (the --workers path).

Measures, per paper workload, over one collected sample stream:

* ``serial_seconds``   — the unsharded post-mortem + attribution pass;
* per worker count N   — the sharded two-phase pipeline
  (:func:`repro.pipeline.parallel.parallel_postmortem`, inline backend),
  recording each shard's worker-measured time, the parent's phase-2
  resolve/assembly time, and the **modeled critical-path speedup**
  ``serial / (max(shard_seconds) + resolve_seconds)`` — what the wall
  clock would show with one idle core per worker.

The modeled number is reported *as* modeled, never passed off as wall
time: CI hosts (and the recording host — see ``host.cpu_count`` in
``BENCH_parallel.json``) may have fewer cores than workers, where real
pool wall time measures contention, not the algorithm.  The inline
backend runs the identical shard tasks without transport, so the shard
timings are the honest per-worker costs and the bit-identity assertion
below exercises every seam except pickling (covered by the tier-1
process-backend tests).

Every measured configuration also asserts exact equality with the
serial post-mortem on the same stream — a scaling number for a wrong
answer would be worthless.

Results land in ``BENCH_parallel.json`` at the repository root.  Run
directly (``python benchmarks/bench_parallel_collect.py``) or via
pytest; the pytest smoke asserts bit-identity always, and only a
generous speedup floor so shared CI hosts never flake — representative
numbers live in the JSON.
"""

from __future__ import annotations

import json
import os
import time

from repro.bench.harness import host_info
from repro.bench.programs import lulesh, minimd
from repro.pipeline import (
    analyze_stage,
    attribute_stage,
    collect_stage,
    compile_stage,
    parallel_postmortem,
    postmortem_stage,
)

NUM_THREADS = 12
THRESHOLD = 4999
WORKER_COUNTS = (1, 2, 4, 8)
ROUNDS = 5

RESULT_PATH = os.path.join(
    os.path.dirname(__file__), "..", "BENCH_parallel.json"
)

WORKLOADS = {
    "minimd": ("minimd.chpl", lambda: minimd.build_source(), minimd.config_for),
    "lulesh": ("lulesh.chpl", lambda: lulesh.build_source(), lulesh.config_for),
}


def _timed(fn) -> tuple[float, object]:
    t0 = time.perf_counter()
    out = fn()
    return time.perf_counter() - t0, out


def _best_of(fn) -> tuple[float, object]:
    best, keep = float("inf"), None
    for _ in range(ROUNDS):
        t, out = _timed(fn)
        if t < best:
            best, keep = t, out
    return best, keep


def measure_workload(name: str) -> dict:
    filename, build, config_for = WORKLOADS[name]
    module = compile_stage(build(), filename)
    static = analyze_stage(module)
    coll = collect_stage(
        module,
        config=config_for(),
        num_threads=NUM_THREADS,
        threshold=THRESHOLD,
    )
    samples = coll.monitor.samples
    wall = coll.run_result.wall_seconds

    def serial_pass():
        pm = postmortem_stage(module, samples, options=static.options)
        return pm, attribute_stage(static, pm)

    serial_seconds, (serial_pm, serial_attr) = _best_of(serial_pass)

    sweep = {}
    for workers in WORKER_COUNTS:
        best = None
        for _ in range(ROUNDS):
            par = parallel_postmortem(
                module, static, samples,
                workers=workers, backend="inline", wall_seconds=wall,
            )
            # A scaling number for a wrong answer would be worthless.
            assert par.postmortem == serial_pm, f"{name} w={workers}"
            assert par.attribution == serial_attr, f"{name} w={workers}"
            if best is None or (
                par.critical_path_seconds < best.critical_path_seconds
            ):
                best = par
        sweep[str(workers)] = {
            "shard_sizes": best.shard_sizes,
            "max_shard_seconds": round(max(best.shard_seconds), 5),
            "resolve_seconds": round(best.resolve_seconds, 5),
            "assemble_seconds": round(best.assemble_seconds, 5),
            "critical_path_seconds": round(best.critical_path_seconds, 5),
            "inline_pool_wall_seconds": round(best.pool_seconds, 5),
            "modeled_speedup": round(
                serial_seconds / max(best.critical_path_seconds, 1e-9), 2
            ),
        }
    return {
        "n_samples": len(samples),
        "serial_seconds": round(serial_seconds, 5),
        "workers": sweep,
    }


def run_parallel_bench() -> dict:
    results = {
        "config": {
            "num_threads": NUM_THREADS,
            "threshold": THRESHOLD,
            "backend": "inline",
            "metric": (
                "modeled critical-path speedup: serial /"
                " (max worker-measured shard time + parent resolve);"
                " see module docstring"
            ),
        },
        "host": host_info(),
        "workloads": {name: measure_workload(name) for name in WORKLOADS},
    }
    with open(os.path.abspath(RESULT_PATH), "w") as f:
        json.dump(results, f, indent=2)
        f.write("\n")
    return results


def render(results: dict) -> str:
    lines = [
        "sharded post-mortem scaling (modeled critical-path speedup, "
        f"host cores: {results['host']['cpu_count']})"
    ]
    for name, r in results["workloads"].items():
        lines.append(
            f"  {name:7s} {r['n_samples']:6d} samples  "
            f"serial {r['serial_seconds']:.3f}s"
        )
        for w, s in r["workers"].items():
            lines.append(
                f"    w={w}: critical path {s['critical_path_seconds']:.3f}s"
                f" (max shard {s['max_shard_seconds']:.3f}s"
                f" + resolve {s['resolve_seconds']:.3f}s)"
                f"  -> {s['modeled_speedup']:.2f}x"
            )
    return "\n".join(lines)


def test_parallel_scaling():
    results = run_parallel_bench()
    print("\n" + render(results))
    for name, r in results["workloads"].items():
        # Generous CI floor; representative numbers live in the JSON
        # (>= 2.5x at 4 workers on LULESH on the recording host).
        w4 = r["workers"]["4"]["modeled_speedup"]
        assert w4 > 1.8, f"{name}: {w4}x at 4 workers"


if __name__ == "__main__":
    print(render(run_parallel_bench()))
