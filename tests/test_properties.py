"""Cross-cutting property-based tests (hypothesis): parser totality over
generated programs, interpreter determinism, blame invariants."""

import os
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

sys.path.insert(0, os.path.dirname(__file__))
from conftest import compile_src, profile_src, run_src

from repro.blame.dataflow import DataFlow
from repro.blame.slices import compute_blame_sets
from repro.chapel.lexer import tokenize
from repro.chapel.parser import parse
from repro.chapel.tokens import TokenKind

# ---------------------------------------------------------------------------
# Expression generator: random arithmetic programs that must lex, parse,
# compile and run without crashing (and deterministically).
# ---------------------------------------------------------------------------

names = st.sampled_from(["a", "b", "c"])
int_lits = st.integers(min_value=0, max_value=99).map(str)
real_lits = st.floats(
    min_value=0.1, max_value=99.0, allow_nan=False, allow_infinity=False
).map(lambda f: f"{f:.3f}")


def exprs(depth):
    if depth <= 0:
        return st.one_of(names, int_lits.map(lambda s: s + " * 1"), real_lits)
    sub = exprs(depth - 1)
    return st.one_of(
        names,
        real_lits,
        st.tuples(sub, st.sampled_from(["+", "-", "*"]), sub).map(
            lambda t: f"({t[0]} {t[1]} {t[2]})"
        ),
        st.tuples(sub, sub, sub).map(
            lambda t: f"(if ({t[0]}) < ({t[1]}) then ({t[2]}) else ({t[0]}))"
        ),
    )


@st.composite
def programs(draw):
    e1 = draw(exprs(2))
    e2 = draw(exprs(2))
    n = draw(st.integers(min_value=1, max_value=6))
    return f"""
proc main() {{
  var a = 1.5;
  var b = 2.5;
  var c = 0.5;
  for i in 1..{n} {{
    a = {e1};
    c = {e2};
  }}
  writeln(a + b + c);
}}
"""


@given(programs())
@settings(max_examples=40, deadline=None)
def test_generated_programs_compile_and_run(src):
    r1 = run_src(src, num_threads=2)
    r2 = run_src(src, num_threads=2)
    assert len(r1.output) == 1
    assert r1.output == r2.output


@given(programs())
@settings(max_examples=20, deadline=None)
def test_fast_pipeline_preserves_generated_semantics(src):
    from repro.compiler.lower import compile_source
    from repro.compiler.passes import run_fast_pipeline
    from repro.runtime.interpreter import Interpreter

    m_plain = compile_source(src, "p.chpl")
    m_fast = compile_source(src, "p.chpl")
    run_fast_pipeline(m_fast)
    out_plain = Interpreter(m_plain, num_threads=2).run().output
    out_fast = Interpreter(m_fast, num_threads=2).run().output
    assert out_plain == out_fast


# ---------------------------------------------------------------------------
# Lexer totality: printable input either tokenizes or raises LexError.
# ---------------------------------------------------------------------------


@given(st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=60))
@settings(max_examples=120, deadline=None)
def test_lexer_total(text):
    from repro.chapel.errors import LexError

    try:
        toks = tokenize(text)
    except LexError:
        return
    assert toks[-1].kind is TokenKind.EOF
    # locations are monotone
    positions = [(t.loc.line, t.loc.column) for t in toks]
    assert positions == sorted(positions)


# ---------------------------------------------------------------------------
# Blame invariants on a family of small programs.
# ---------------------------------------------------------------------------

ARRAY_PROGRAM = """
var A: [0..{n}] real;
var B: [0..{n}] real;
proc main() {{
  forall i in 0..{n} {{
    A[i] = i * 1.0;
    B[i] = A[i] * {k}.0;
  }}
}}
"""


@given(st.integers(min_value=10, max_value=40), st.integers(min_value=1, max_value=5))
@settings(max_examples=10, deadline=None)
def test_blame_fractions_in_unit_interval(n, k):
    res = profile_src(ARRAY_PROGRAM.format(n=n, k=k), threshold=307)
    for row in res.report.rows:
        assert 0.0 <= row.blame <= 1.0
        assert row.samples <= res.report.stats.user_samples


@given(st.integers(min_value=10, max_value=30))
@settings(max_examples=8, deadline=None)
def test_dependent_variable_blame_dominates(n):
    """B = f(A): every sample blaming A's writes inside the loop also
    feeds B, so blame(B) >= blame(A) - epsilon (B's set contains A's
    loop writes)."""
    res = profile_src(ARRAY_PROGRAM.format(n=n, k=2), threshold=307)
    a, b = res.report.blame_of("A"), res.report.blame_of("B")
    assert b >= a * 0.6


@given(st.integers(min_value=2, max_value=12))
@settings(max_examples=10, deadline=None)
def test_blame_sets_monotone_under_extra_writes(n):
    """Adding more writes to a variable can only grow its blame set."""
    base = """
proc main() {{
  var x = 0.0;
  var y = 0.0;
  for i in 1..{n} {{
    y = y + i;
  }}
  {extra}
}}
"""
    m1 = compile_src(base.format(n=n, extra=""))
    m2 = compile_src(base.format(n=n, extra="x = y;"))

    def xset(m):
        fn = m.functions["main"]
        df = DataFlow(fn, m)
        bs = compute_blame_sets(fn, df)
        for (key, path), iids in bs.by_var.items():
            meta = df.var_meta.get(key)
            if meta and meta.name == "x" and not path:
                return {m.functions["main"].find_instruction(i).loc.line for i in iids}
        return set()

    # line-level comparison (iids differ between compiles)
    assert xset(m1) <= xset(m2)
