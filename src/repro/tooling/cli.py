"""Command-line entry point: the staged profiling pipeline as subcommands.

Usage::

    repro-profile profile program.chpl [-o run.cbp] [--streaming]
        [--adaptive [--confidence C] [--ci-width W]]
        [--threads N] [--threshold P] [--fast] [--view data|code|hybrid|all]
        [--config name=value ...]
    repro-profile view run.cbp [--view data|code|hybrid|all] [--html PATH]
    repro-profile merge merged.cbp shard0.cbp shard1.cbp ...
    repro-profile diff before.cbp after.cbp
    repro-profile advise program.chpl [--profile] [--json]
    repro-profile --version

``profile`` runs a program once and can persist everything the
presentation layer needs as a versioned ``.cbp`` artifact; ``view``
re-renders any window from such an artifact — byte-identical to the
live render — without re-running anything; ``merge`` combines
per-locale/per-run artifacts; ``diff`` prints the blame-shift table
between two artifacts (paper Table VIII).  The ``advise`` subcommand
runs the static analysis suite (optimization advisor + forall race
detector) and exits nonzero when any error-severity finding is
reported, so it can gate CI.

The historical single-command form (``repro-profile program.chpl ...``)
still works: a first argument that names a file (or an option) is
treated as ``profile``.
"""

from __future__ import annotations

import argparse
import os
import sys

from ..errors import ArtifactError, ParallelError
from ..pipeline.stages import render_stage
from .profiler import Profiler

#: Subcommands `main` dispatches on.
SUBCOMMANDS = ("profile", "view", "merge", "diff", "advise")

_USAGE = """\
usage: repro-profile <command> [options]

commands:
  profile SOURCE [-o ART.cbp]   run a program, print views, save an artifact
                                (--adaptive stops collection early once the
                                blame ranking settles; tune with --confidence,
                                --ci-width, --stability-window, --round-samples)
  view ART.cbp                  re-render views from a saved artifact
  merge OUT.cbp IN.cbp...       merge per-locale/per-run artifacts
  diff A.cbp B.cbp              blame-shift table between two artifacts
  advise SOURCE                 static optimization advisor + race detector

  repro-profile --version       print the tool version
  repro-profile <command> -h    per-command options

(legacy form: `repro-profile SOURCE [options]` == `profile SOURCE ...`)
"""


def tool_version() -> str:
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:  # not installed (src checkout on PYTHONPATH)
        from .. import __version__

        return __version__


def _parse_config(pairs: list[str]) -> dict[str, object]:
    out: dict[str, object] = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"bad --config entry {pair!r} (want name=value)")
        name, raw = pair.split("=", 1)
        value: object
        try:
            value = int(raw)
        except ValueError:
            try:
                value = float(raw)
            except ValueError:
                value = {"true": True, "false": False}.get(raw.lower(), raw)
        out[name] = value
    return out


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] in ("--version", "-V"):
        print(f"repro {tool_version()}")
        return 0
    if not argv:
        print(_USAGE, file=sys.stderr, end="")
        return 2
    head, rest = argv[0], argv[1:]
    if head == "advise":
        return advise_main(rest)
    if head == "profile":
        return profile_main(rest)
    if head == "view":
        return view_main(rest)
    if head == "merge":
        return merge_main(rest)
    if head == "diff":
        return diff_main(rest)
    # Legacy single-command form: anything that looks like a source file
    # or an option goes to `profile` unchanged.
    if head.startswith("-") or os.path.exists(head) or "." in head or "/" in head:
        return profile_main(argv)
    print(f"repro-profile: unknown command {head!r}\n", file=sys.stderr)
    print(_USAGE, file=sys.stderr, end="")
    return 2


def _load_artifact(path: str):
    """Reads one artifact, mapping failures to clean exits (no traceback)."""
    from ..artifact import read_artifact

    try:
        return read_artifact(path)
    except FileNotFoundError:
        print(f"repro-profile: no such artifact: {path}", file=sys.stderr)
        raise SystemExit(2) from None
    except ArtifactError as exc:
        print(f"repro-profile: {path}: {exc}", file=sys.stderr)
        raise SystemExit(1) from None


def _print_views(profile, view: str, top: int) -> None:
    """The shared presentation path: `profile` and `view` both print
    through here, which is what keeps artifact renders byte-identical
    to live ones."""
    if view in ("data", "all"):
        print(render_stage(profile, "data", top=top))
        print()
    if view in ("code", "all"):
        print(render_stage(profile, "code", top=top))
        print()
    if view in ("hybrid", "all"):
        print(render_stage(profile, "hybrid"))
        print()


def profile_main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(
        prog="repro-profile profile",
        description="Data-centric (variable blame) profiler for mini-Chapel",
    )
    ap.add_argument("source", help="mini-Chapel source file")
    ap.add_argument("--threads", type=int, default=12, help="worker threads")
    ap.add_argument("--threshold", type=int, default=20011, help="PMU overflow threshold")
    ap.add_argument("--fast", action="store_true", help="compile with --fast pipeline")
    ap.add_argument(
        "--view",
        choices=["data", "code", "hybrid", "all", "none"],
        default="data",
        help="which window to print (none: only write the artifact)",
    )
    ap.add_argument("--top", type=int, default=20, help="rows to display")
    ap.add_argument(
        "--config", nargs="*", default=[], help="config overrides: name=value"
    )
    ap.add_argument(
        "--show-output", action="store_true", help="echo program writeln output"
    )
    ap.add_argument(
        "-o",
        "--output",
        metavar="ART",
        help="write the profile artifact (.cbp) — render/merge/diff it "
        "later with the view/merge/diff subcommands, no re-run needed",
    )
    ap.add_argument(
        "--streaming",
        action="store_true",
        help="bounded-memory collection: post-mortem consumes sample "
        "batches as they fill instead of the whole run at once",
    )
    ap.add_argument(
        "--batch-size",
        type=int,
        default=256,
        metavar="N",
        help="samples per batch with --streaming (peak resident bound)",
    )
    ap.add_argument(
        "--save-samples",
        metavar="PATH",
        help="write the raw sample dataset (JSONL) for offline analysis "
        "with python -m repro.tooling.analyze",
    )
    ap.add_argument(
        "--html",
        metavar="PATH",
        help="also write a self-contained HTML report (the GUI analogue)",
    )
    ap.add_argument(
        "--journal",
        action="store_true",
        help="with --save-samples: write the checksummed journal format "
        "(per-record CRC, resumable after a torn write)",
    )
    ap.add_argument(
        "--inject-faults",
        metavar="SPEC",
        help="degrade the sample stream before post-mortem, e.g. "
        "drop=0.1,truncate=0.1:3,tagloss=0.05,strip=0.1,seed=42",
    )
    ap.add_argument(
        "--fail-on-quarantine-rate",
        type=float,
        metavar="X",
        help="exit 3 when more than fraction X of samples were "
        "quarantined (telemetry-health gate for CI)",
    )
    ap.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="shard post-mortem + attribution (and per-function static "
        "analysis) across N pool workers; results are bit-identical "
        "to --workers 1 (default: 1, the serial path)",
    )
    ap.add_argument(
        "--collect-workers",
        type=int,
        default=1,
        metavar="N",
        help="partition the run's virtual clock into N simulated-time "
        "slices and collect each under its own interpreter+monitor in "
        "a pool worker; the reassembled stream (and every downstream "
        "artifact/view) is byte-identical to --collect-workers 1 "
        "(default: 1, one monitor for the whole run)",
    )
    ap.add_argument(
        "--parallel-backend",
        choices=["auto", "process", "interpreter", "inline"],
        default="auto",
        help="worker pool for --workers N: process pool, subinterpreter "
        "pool (Python >= 3.14), or inline (sequential in-process; "
        "mainly for testing). auto picks the best available",
    )
    ap.add_argument(
        "--worker-timeout",
        type=float,
        default=None,
        metavar="S",
        help="with --workers N: per-shard-task wall-clock budget in "
        "seconds; a task over budget is retried (or raced, with "
        "--speculate)",
    )
    ap.add_argument(
        "--worker-retries",
        type=int,
        default=2,
        metavar="N",
        help="with --workers N: attempts beyond the first before a "
        "shard degrades into <unknown> with worker-failed provenance "
        "(default: 2)",
    )
    ap.add_argument(
        "--speculate",
        action="store_true",
        help="with --worker-timeout: race a timed-out task against a "
        "fresh copy instead of abandoning it — first completed result "
        "wins, the loser is cancelled",
    )
    ap.add_argument(
        "--fail-on-degraded-shards",
        action="store_true",
        help="exit 4 when any shard exhausted its retries and was "
        "folded into <unknown> (worker-health gate for CI)",
    )
    ap.add_argument(
        "--shard-artifacts",
        metavar="DIR",
        help="with --workers N: also write each worker's partial "
        "profile as DIR/shard-K.cbp plus DIR/tail.cbp (the phase-2 "
        "recoveries and run-level counters); merging all of them "
        "reproduces the main artifact",
    )
    ap.add_argument(
        "--adaptive",
        action="store_true",
        help="confidence-driven collection: profile in checkpointed "
        "rounds and halt the run early once the blame ranking is "
        "statistically settled (the decision trail rides in the "
        "artifact and the views)",
    )
    ap.add_argument(
        "--confidence",
        type=float,
        default=0.95,
        metavar="C",
        help="confidence level for the blame-share intervals, "
        "exclusive (0, 1) (default: 0.95)",
    )
    ap.add_argument(
        "--ci-width",
        type=float,
        default=0.02,
        metavar="W",
        help="stop once every top-N interval's half-width is at most "
        "W, exclusive (0, 1) (default: 0.02)",
    )
    ap.add_argument(
        "--stability-window",
        type=int,
        default=3,
        metavar="K",
        help="checkpoints in a row that must agree before stopping "
        "(default: 3)",
    )
    ap.add_argument(
        "--round-samples",
        type=int,
        default=256,
        metavar="N",
        help="samples collected per adaptive round (default: 256)",
    )
    args = ap.parse_args(argv)

    if args.streaming and args.save_samples:
        ap.error("--save-samples needs the retained stream (drop --streaming)")
    if args.workers < 1:
        ap.error(f"--workers must be >= 1 (got {args.workers})")
    if args.streaming and args.workers > 1:
        ap.error("--streaming is incompatible with --workers > 1")
    if args.shard_artifacts and args.workers <= 1:
        ap.error("--shard-artifacts needs --workers > 1")
    if args.worker_retries < 0:
        ap.error(f"--worker-retries must be >= 0 (got {args.worker_retries})")
    if args.worker_timeout is not None and args.worker_timeout <= 0.0:
        ap.error(f"--worker-timeout must be > 0 (got {args.worker_timeout})")
    if (args.worker_timeout is not None and args.workers <= 1
            and args.collect_workers <= 1):
        ap.error("--worker-timeout needs --workers or "
                 "--collect-workers > 1")
    if args.speculate and args.worker_timeout is None:
        ap.error("--speculate needs --worker-timeout (it races the "
                 "tasks that exceed it)")
    if args.fail_on_degraded_shards and args.workers <= 1:
        ap.error("--fail-on-degraded-shards needs --workers > 1")
    if args.collect_workers < 1:
        ap.error(f"--collect-workers must be >= 1 (got {args.collect_workers})")
    if args.adaptive and args.collect_workers > 1:
        ap.error(
            "--collect-workers is incompatible with --adaptive: the "
            "adaptive stopping decision depends on the sample stream "
            "collected so far, so time slices cannot run independently "
            "(drop one of the two)"
        )
    if args.streaming and args.collect_workers > 1:
        ap.error("--streaming is incompatible with --collect-workers > 1")
    if not 0.0 < args.confidence < 1.0:
        ap.error(f"--confidence must be in (0, 1) exclusive (got {args.confidence})")
    if not 0.0 < args.ci_width < 1.0:
        ap.error(f"--ci-width must be in (0, 1) exclusive (got {args.ci_width})")
    if args.adaptive and args.streaming:
        ap.error("--adaptive already streams in rounds (drop --streaming)")
    if args.adaptive and args.save_samples:
        ap.error("--save-samples needs the full stream (drop --adaptive)")
    if args.adaptive and args.shard_artifacts:
        ap.error("--shard-artifacts shards the materialized stream "
                 "(incompatible with --adaptive)")
    if args.stability_window < 1:
        ap.error(f"--stability-window must be >= 1 (got {args.stability_window})")
    if args.round_samples < 1:
        ap.error(f"--round-samples must be >= 1 (got {args.round_samples})")

    try:
        with open(args.source) as f:
            source = f.read()
    except OSError as exc:
        print(f"repro-profile: {exc}", file=sys.stderr)
        return 2

    if args.save_samples:
        # Deterministic ids so the dataset is re-analyzable offline.
        from ..compiler.lower import compile_source

        program = compile_source(source, args.source, fresh_ids=True)
    else:
        program = source

    profiler = Profiler(
        program,
        filename=args.source,
        config=_parse_config(args.config),
        num_threads=args.threads,
        threshold=args.threshold,
        fast=args.fast,
        faults=args.inject_faults,
        workers=args.workers,
        parallel_backend=args.parallel_backend,
        worker_timeout=args.worker_timeout,
        worker_retries=args.worker_retries,
        speculate=args.speculate,
        collect_workers=args.collect_workers,
    )
    adaptive = None
    if args.adaptive:
        from ..sampling.adaptive import AdaptiveConfig

        adaptive = AdaptiveConfig(
            confidence=args.confidence,
            ci_width=args.ci_width,
            stability_window=args.stability_window,
            round_samples=args.round_samples,
        )
    try:
        result = profiler.profile(
            streaming=args.streaming,
            batch_size=args.batch_size,
            adaptive=adaptive,
        )
    except ParallelError as exc:
        print(f"repro-profile: {exc}", file=sys.stderr)
        return 2

    if args.save_samples:
        from ..sampling.dataset import (
            DatasetHeader,
            DatasetJournal,
            save_samples,
            source_digest,
        )

        header = DatasetHeader(
            program=args.source,
            source_sha256=source_digest(source),
            threshold=args.threshold,
            num_threads=args.threads,
        )
        if args.journal:
            with DatasetJournal(args.save_samples, header) as journal:
                journal.extend(result.monitor.samples)
            print(f"[journaled samples saved to {args.save_samples}]")
        else:
            save_samples(args.save_samples, header, result.monitor.samples)
            print(f"[raw samples saved to {args.save_samples}]")

    if args.output or args.shard_artifacts:
        from ..artifact import write_artifact
        from ..artifact.model import (
            canonicalize_timings,
            relabel,
            snapshot_from_result,
        )
        from ..sampling.dataset import source_digest

        digest = source_digest(source)
        if result.parallel is not None:
            # The sharded pipeline already reassembled its snapshot
            # through merge_snapshots; stamp the run identity the serial
            # path records and canonicalize host-measured timings so the
            # bytes match --workers 1 exactly.
            snapshot = result.parallel.snapshot
            snapshot.meta = relabel(
                snapshot.meta, source_sha256=digest, num_threads=args.threads
            )
            snapshot = canonicalize_timings(snapshot)
        else:
            snapshot = snapshot_from_result(
                result,
                source_sha256=digest,
                num_threads=args.threads,
                canonical_timings=True,
            )
        if args.output:
            write_artifact(args.output, snapshot)
            print(f"[profile artifact written to {args.output}]")
        if args.shard_artifacts:
            os.makedirs(args.shard_artifacts, exist_ok=True)
            partials = [
                (f"shard-{k}.cbp", shard)
                for k, shard in enumerate(result.parallel.shard_snapshots)
            ] + [("tail.cbp", result.parallel.tail_snapshot)]
            for fname, shard in partials:
                shard.meta = relabel(
                    shard.meta, source_sha256=digest, num_threads=args.threads
                )
                path = os.path.join(args.shard_artifacts, fname)
                write_artifact(path, canonicalize_timings(shard))
            print(
                f"[{len(partials)} partial artifacts "
                f"(shards + tail) written to {args.shard_artifacts}]"
            )

    if args.show_output:
        for line in result.run_result.output:
            print(line)
        print()

    _print_views(result, args.view, args.top)
    if args.html:
        from ..views.html import write_html_report

        write_html_report(args.html, result, top=args.top)
        print(f"[HTML report written to {args.html}]")
    print(
        f"[run: {result.run_result.wall_seconds:.4f}s simulated, "
        f"{result.monitor.n_samples} samples "
        f"({result.postmortem.n_user} user)]"
    )
    if result.adaptive is not None:
        trail = result.adaptive
        verdict = "stopped early" if trail.stopped_early else "ran to completion"
        print(
            f"[adaptive: {verdict} after {len(trail.rounds)} rounds, "
            f"{trail.samples_collected} samples ({trail.stop_reason})]"
        )
    _print_degradation(result)
    if result.collect_parallel is not None:
        pc = result.collect_parallel
        census = (
            "census cached"
            if pc.census_cached
            else f"census {pc.census_seconds:.2f}s"
        )
        recovered = (
            f", recovered slices {list(pc.recovered_slices)}"
            if pc.recovered_slices
            else ""
        )
        # stderr, so stdout stays byte-comparable across --collect-workers N.
        print(
            f"[collect: {pc.workers} slice workers via {pc.backend}, "
            f"slices {pc.slice_counts}, {census}{recovered}]",
            file=sys.stderr,
        )
    if result.parallel is not None:
        par = result.parallel
        # stderr, so stdout stays byte-comparable across --workers N.
        print(
            f"[parallel: {par.workers} workers via {par.backend}, "
            f"shards {par.shard_sizes}]",
            file=sys.stderr,
        )
        if par.supervision is not None:
            print(
                f"[supervision: {par.supervision.summary()}]",
                file=sys.stderr,
            )
    gate = _quarantine_gate(result, args.fail_on_quarantine_rate)
    if gate:
        return gate
    return _degraded_shard_gate(result, args.fail_on_degraded_shards)


def view_main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(
        prog="repro-profile view",
        description="Re-render views from a saved .cbp profile artifact",
    )
    ap.add_argument("artifact", help="profile artifact (.cbp)")
    ap.add_argument(
        "--view",
        choices=["data", "code", "hybrid", "all"],
        default="data",
        help="which window to print",
    )
    ap.add_argument("--top", type=int, default=20, help="rows to display")
    ap.add_argument(
        "--html",
        metavar="PATH",
        help="also write a self-contained HTML report",
    )
    ap.add_argument(
        "--meta", action="store_true", help="print artifact metadata first"
    )
    args = ap.parse_args(argv)

    snapshot = _load_artifact(args.artifact)
    if args.meta:
        m = snapshot.meta
        print(
            f"[{args.artifact}: {m.kind} of {m.program}, "
            f"locale {m.locale_id}, threads {m.num_threads}, "
            f"threshold {m.threshold}, written by {m.created_by or '?'}]"
        )
    _print_views(snapshot, args.view, args.top)
    if args.html:
        from ..views.html import write_html_report

        write_html_report(args.html, snapshot, top=args.top)
        print(f"[HTML report written to {args.html}]")
    return 0


def merge_main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(
        prog="repro-profile merge",
        description="Merge per-locale/per-run .cbp artifacts into one",
    )
    ap.add_argument("output", help="merged artifact to write")
    ap.add_argument("inputs", nargs="+", help="artifacts to merge")
    ap.add_argument(
        "--program", help="program name for the merged report (default: first)"
    )
    ap.add_argument(
        "--missing-locales",
        metavar="L1,L2",
        default="",
        help="locale ids that produced no artifact (recorded as coverage "
        "gaps in the merged report)",
    )
    ap.add_argument(
        "--view",
        choices=["data", "code", "hybrid", "all", "none"],
        default="none",
        help="also print this window of the merged profile",
    )
    ap.add_argument("--top", type=int, default=20, help="rows to display")
    args = ap.parse_args(argv)

    from ..artifact import merge_snapshots, write_artifact

    missing = tuple(
        int(tok) for tok in args.missing_locales.split(",") if tok.strip()
    )
    snapshots = [_load_artifact(p) for p in args.inputs]
    try:
        merged = merge_snapshots(
            snapshots, program=args.program, missing_locales=missing
        )
    except ArtifactError as exc:
        print(f"repro-profile: {exc}", file=sys.stderr)
        return 1
    write_artifact(args.output, merged)
    print(
        f"[merged {len(snapshots)} artifact(s) -> {args.output}: "
        f"{merged.report.stats.user_samples} user samples"
        + (f", missing locales {sorted(missing)}" if missing else "")
        + "]"
    )
    if args.view != "none":
        _print_views(merged, args.view, args.top)
    return 0


def diff_main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(
        prog="repro-profile diff",
        description="Blame-shift table between two .cbp artifacts "
        "(paper Table VIII)",
    )
    ap.add_argument("before", help="baseline artifact")
    ap.add_argument("after", help="comparison artifact")
    ap.add_argument("--top", type=int, default=20, help="rows to display")
    ap.add_argument(
        "--min-delta",
        type=float,
        default=0.0,
        metavar="X",
        help="hide shifts smaller than this blame fraction",
    )
    ap.add_argument("--label-a", default=None, help="column label for BEFORE")
    ap.add_argument("--label-b", default=None, help="column label for AFTER")
    args = ap.parse_args(argv)

    from ..artifact import diff_snapshots, render_blame_diff

    a = _load_artifact(args.before)
    b = _load_artifact(args.after)
    rows = diff_snapshots(a, b, min_delta=args.min_delta)
    print(
        render_blame_diff(
            rows,
            label_a=args.label_a or os.path.basename(args.before),
            label_b=args.label_b or os.path.basename(args.after),
            top=args.top,
        )
    )
    return 0


def _print_degradation(result) -> None:
    """One summary line per degradation channel (silent when clean)."""
    stats = result.report.stats
    if result.fault_stats is not None:
        fs = result.fault_stats
        print(
            f"[injected faults: {fs.total_faults} over {fs.examined} "
            f"samples (dropped {fs.dropped}, corrupted {fs.corrupted}, "
            f"truncated {fs.truncated}, tags lost {fs.tags_lost}, "
            f"stripped {fs.stripped})]"
        )
    if stats.quarantined_samples:
        reasons = ", ".join(
            f"{r}: {n}"
            for r, n in sorted(result.report.quarantine_by_reason.items())
        )
        print(
            f"[quarantined {stats.quarantined_samples} malformed "
            f"samples ({reasons})]"
        )
    if stats.recovered_samples:
        print(f"[recovered {stats.recovered_samples} degraded call paths]")
    if stats.unknown_samples:
        reasons = ", ".join(
            f"{r}: {n}"
            for r, n in sorted(result.report.unknown_by_reason.items())
        )
        print(
            f"[unattributable: {stats.unknown_samples} samples in the "
            f"<unknown> bucket ({reasons})]"
        )


def _quarantine_gate(result, limit: float | None) -> int:
    """Exit 3 when the quarantine rate exceeds the CI gate."""
    if limit is None:
        return 0
    rate = result.quarantine_rate
    if rate > limit:
        print(
            f"quarantine rate {rate:.3f} exceeds --fail-on-quarantine-rate "
            f"{limit:.3f}",
            file=sys.stderr,
        )
        return 3
    return 0


def _degraded_shard_gate(result, enabled: bool) -> int:
    """Exit 4 when shards were folded into ``<unknown>`` and the
    worker-health gate is armed."""
    if not enabled or result.parallel is None:
        return 0
    degraded = result.parallel.degraded_shards
    if degraded:
        ids = ", ".join(str(i) for i in degraded)
        print(
            f"shard(s) {ids} degraded after exhausting worker retries "
            f"(--fail-on-degraded-shards)",
            file=sys.stderr,
        )
        return 4
    return 0


def _benchmark_source(spec: str) -> tuple[str, str]:
    """Resolves ``name[:variant]`` to (source text, display filename).

    Variants: ``original`` (default) and ``optimized`` for every
    benchmark; LULESH additionally accepts ``cenn`` and ``vg`` for the
    single-optimization variants, SpMV a ``dense`` baseline.
    """
    name, _, variant = spec.partition(":")
    variant = variant or "original"
    if name in ("spmv", "mttkrp"):
        if name == "spmv":
            from ..bench.programs import spmv as irr
        else:
            from ..bench.programs import mttkrp as irr
        if variant not in irr.VARIANTS:
            raise SystemExit(
                f"unknown {name} variant {variant!r} "
                f"(want {'|'.join(irr.VARIANTS)})"
            )
        return irr.build_source(variant), f"{name}.chpl"
    if name in ("minimd", "clomp"):
        if variant not in ("original", "optimized"):
            raise SystemExit(
                f"unknown {name} variant {variant!r} (want original|optimized)"
            )
        if name == "minimd":
            from ..bench.programs import minimd as prog
        else:
            from ..bench.programs import clomp as prog
        return (
            prog.build_source(optimized=(variant == "optimized")),
            f"{name}.chpl",
        )
    if name == "lulesh":
        from ..bench.programs import lulesh

        variants = {
            "original": lulesh.ORIGINAL,
            "optimized": lulesh.BEST_CASE,
            "cenn": lulesh.CENN_ONLY,
            "vg": lulesh.VG_ONLY,
        }
        if variant not in variants:
            raise SystemExit(
                f"unknown lulesh variant {variant!r} "
                f"(want {'|'.join(variants)})"
            )
        return lulesh.build_source(variants[variant]), "lulesh.chpl"
    raise SystemExit(
        f"unknown benchmark {name!r} (want minimd|clomp|lulesh|spmv|mttkrp)"
    )


def advise_main(argv: list[str] | None = None) -> int:
    """``advise`` subcommand: static analysis, optionally blame-ranked.

    Exit status: 0 when no error-severity findings, 1 when the race
    detector (or any error-level rule) fires — the CI-gate contract —
    and 2 when the module fails IR verification.
    """
    from ..analysis import (
        Severity,
        analyze_module,
        findings_to_json,
        rank_findings,
        render_findings,
    )
    from ..ir.verifier import VerificationError

    ap = argparse.ArgumentParser(
        prog="repro-advise",
        description="Blame-guided static optimization advisor + race detector",
    )
    ap.add_argument(
        "source", nargs="?", help="mini-Chapel source file to analyze"
    )
    ap.add_argument(
        "--benchmark",
        metavar="NAME[:VARIANT]",
        help="analyze a built-in benchmark (minimd|clomp|lulesh|spmv|mttkrp, "
        "variants original|optimized; lulesh also cenn|vg, spmv also dense) "
        "instead of a file",
    )
    ap.add_argument(
        "--profile",
        action="store_true",
        help="also run the profiler and rank findings by measured blame",
    )
    ap.add_argument(
        "--json", action="store_true", help="emit findings as JSON"
    )
    ap.add_argument(
        "--rules",
        nargs="*",
        default=None,
        metavar="RULE",
        help="run only these rules (default: all registered passes)",
    )
    ap.add_argument(
        "--min-severity",
        default="info",
        choices=["info", "warning", "error"],
        help="hide findings below this severity (exit status still "
        "reflects all findings)",
    )
    ap.add_argument("--threads", type=int, default=12, help="worker threads for --profile")
    ap.add_argument("--threshold", type=int, default=20011, help="PMU overflow threshold for --profile")
    ap.add_argument(
        "--config", nargs="*", default=[], help="config overrides: name=value"
    )
    ap.add_argument(
        "--inject-faults",
        metavar="SPEC",
        help="with --profile: degrade the sample stream before "
        "post-mortem (see repro-profile --inject-faults)",
    )
    ap.add_argument(
        "--fail-on-quarantine-rate",
        type=float,
        metavar="X",
        help="with --profile: exit 3 when more than fraction X of "
        "samples were quarantined",
    )
    args = ap.parse_args(argv)

    if (args.source is None) == (args.benchmark is None):
        ap.error("give exactly one of SOURCE or --benchmark")
    if args.benchmark:
        source, filename = _benchmark_source(args.benchmark)
    else:
        with open(args.source) as f:
            source = f.read()
        filename = args.source

    report = None
    result = None
    try:
        if args.profile:
            profiler = Profiler(
                source,
                filename=filename,
                config=_parse_config(args.config),
                num_threads=args.threads,
                threshold=args.threshold,
                faults=args.inject_faults,
            )
            result = profiler.profile()
            module = result.module
            report = result.report
        else:
            from ..compiler.lower import compile_source

            module = compile_source(source, filename)
        findings = analyze_module(module, passes=args.rules)
    except VerificationError as exc:
        print(f"IR verification failed: {exc}", file=sys.stderr)
        return 2
    if report is not None:
        findings = rank_findings(findings, report)

    floor = Severity.parse(args.min_severity)
    shown = [f for f in findings if f.severity >= floor]
    if args.json:
        print(findings_to_json(shown))
    else:
        if report is not None:
            print(render_stage(result, "hybrid", findings=shown))
            print()
        print(render_findings(shown, title=f"Advisor report: {filename}"))
    if result is not None:
        _print_degradation(result)
        gate = _quarantine_gate(result, args.fail_on_quarantine_rate)
        if gate:
            return gate
    has_errors = any(f.severity >= Severity.ERROR for f in findings)
    return 1 if has_errors else 0


if __name__ == "__main__":
    sys.exit(main())
