"""E5 — Paper Table V: CLOMP flattening speedups over four problem
shapes, ± --fast.

Paper (w/o --fast): 1024/64,000 → 1.84; 65536/10 → 1.09;
12/640,000 → 2.13; 65536/6400 → 1.10.  The pattern: zone-dominated
shapes get the full nested-structure-elimination win; part-heavy shapes
are memory-bound either way, and the speedup compresses toward 1.
Our shapes are interpreter-scale analogues (see clomp.TABLE_V_SHAPES).
"""

from conftest import record_result, run_once

from repro.bench import harness
from repro.views.tables import render_table

PAPER_WO = {"1024/64,000": 1.84, "65536/10": 1.09, "12/640,000": 2.13, "65536/6400": 1.10}
PAPER_W = {"1024/64,000": 2.59, "65536/10": 2.40, "12/640,000": 2.65, "65536/6400": 1.96}


def measure():
    return harness.clomp_table_v()


def test_table5_clomp_speedups(benchmark, record):
    results = run_once(benchmark, measure)
    by_label = {}
    rows = []
    for label, parts, zones, r in results:
        wo = r.speedup("opt", "orig")
        w = r.speedup("opt/fast", "orig/fast")
        by_label[label] = (wo, w)
        rows.append(
            [
                label,
                f"{parts}/{zones}",
                f"{wo:.2f}",
                f"{PAPER_WO[label]:.2f}",
                f"{w:.2f}",
                f"{PAPER_W[label]:.2f}",
            ]
        )

    # Zone-dominated shapes (rows 1, 3): the big win.
    assert by_label["1024/64,000"][0] > 1.5
    assert by_label["12/640,000"][0] > 1.5
    # Part-heavy shapes (rows 2, 4): compressed toward 1 (paper ~1.1).
    assert by_label["65536/10"][0] < 1.35
    assert by_label["65536/6400"][0] < 1.45
    # Crossover preserved: zone-heavy beats part-heavy decisively.
    assert by_label["12/640,000"][0] > by_label["65536/10"][0] + 0.3
    # Optimization survives --fast everywhere.
    for label, (wo, w) in by_label.items():
        assert w > 0.8 * wo

    record(
        "table5_clomp_speedup",
        render_table(
            ["Paper shape", "Our shape", "w/o fast", "paper", "w/ fast", "paper"],
            rows,
            title="Table V — CLOMP speedups by problem shape",
            aligns=["l", "l", "r", "r", "r", "r"],
        ),
    )
