"""Virtual-clock checkpointing: snapshot/resume one run's state so
collection can be partitioned into simulated-time slices.

The interpreter is fully deterministic (min-clock scheduling, FIFO run
queue, exact PMU arithmetic), so a run is a pure function of its start
state.  That makes collection sliceable: capture the complete run state
at a *safe point* — the top of the event loop, where no instruction is
mid-flight and every PMU counter is drained below the threshold — and a
fresh interpreter resumed from that snapshot replays the remainder of
the run instruction-for-instruction, sample-for-sample.

Slice-boundary contract
-----------------------

Boundaries are **accepted-sample counts**, not clock values: cut *c*
means "the first safe point at which the monitor's global stream
position has reached *c* accepted samples".  Both sides of a cut
evaluate the identical deterministic condition —

* the census pass snapshots a checkpoint at the first safe point where
  ``n_accepted >= c`` (recording the *actual* count there, which may
  exceed the nominal ``c`` when one quantum drains several overflows);
* the worker for the preceding slice arms
  :class:`SliceStop` to unwind at the first safe point where its
  monitor's ``index_base + n_accepted`` reaches that recorded count —

so the worker's stop coincides exactly with the next checkpoint's
capture point, and concatenating per-slice streams in boundary order
reproduces the serial stream byte-for-byte.  Identity holds for *any*
monotone boundary set; boundary placement only affects load balance.

Checkpoint format
-----------------

One pickle blob of a :class:`RuntimeCheckpoint`: the module and every
piece of mutable run state (heap, scheduler with its plain-int tag/id
allocators, globals store, output, spawn records, pending entries and
skidded samples) serialized *together*, so frames, blocks, tasks and
values come back as one consistent object graph.  The interpreter
object itself is never pickled — its dispatch tables and fast-engine
plans are rebuilt by :func:`restore` — and the monitor is deliberately
excluded: a slice worker brings its own monitor, seeded only with the
checkpoint's stream position (``n_stream``).
"""

from __future__ import annotations

import pickle
import time
from dataclasses import dataclass

from ..sampling.monitor import Monitor
from ..sampling.pmu import PMUConfig, counters_drained
from .values import RuntimeError_

#: Bumped when RuntimeCheckpoint's layout changes incompatibly.
CHECKPOINT_VERSION = 1


class SliceStop(Exception):
    """Unwinds the event loop at a slice boundary.

    Deliberately *not* a ``RuntimeError_`` subclass (same reasoning as
    ``StopSampling``): instruction handlers catch and re-wrap runtime
    errors, and this must pass through them untouched so the run state
    it leaves behind is exactly the safe-point state.
    """


class CheckpointError(RuntimeError_):
    """An invalid snapshot or resume request."""


@dataclass
class RuntimeCheckpoint:
    """Complete resumable state of one run at an event-loop safe point."""

    version: int
    #: Global stream position (accepted samples so far) at the capture
    #: point — the resumed slice's monitor ``index_base``.
    n_stream: int
    module: object
    config: dict
    num_threads: int
    heap: object
    scheduler: object
    output: list
    last_write_complete: bool
    globals_store: dict
    instructions_executed: int
    spawn_records: dict
    main_task: object
    pending_entry: list
    pending_skid: dict


def snapshot(interp) -> bytes:
    """Pickles ``interp``'s resumable state (see module docstring).

    Validates the safe-point invariant first: PMU counters must all be
    drained below the threshold, which only holds between scheduler
    iterations — the slice hook's capture point.
    """
    if interp._main_task is None:
        raise CheckpointError("nothing to checkpoint: the run has not started")
    if not counters_drained(
        (t.pmu_counter for t in interp.scheduler.threads),
        interp.sample_threshold,
    ):
        raise CheckpointError(
            "checkpoint requested mid-quantum: a PMU counter is at or past "
            "the threshold (snapshot only at the event-loop safe point)"
        )
    monitor = interp.monitor
    n_stream = int(getattr(monitor, "stream_index", 0)) if monitor is not None else 0
    ckpt = RuntimeCheckpoint(
        version=CHECKPOINT_VERSION,
        n_stream=n_stream,
        module=interp.module,
        config=interp.config,
        num_threads=interp.num_threads,
        heap=interp.heap,
        scheduler=interp.scheduler,
        output=interp.output,
        last_write_complete=interp._last_write_complete,
        globals_store=interp.globals_store,
        instructions_executed=interp.instructions_executed,
        spawn_records=interp._spawn_records,
        main_task=interp._main_task,
        pending_entry=interp._pending_entry,
        pending_skid=interp._pending_skid,
    )
    # One dumps call over the whole graph: shared references (a task in
    # the run queue that is also a spawn record's waiter, frames whose
    # blocks belong to the module) stay shared on the other side.
    return pickle.dumps(ckpt, protocol=pickle.HIGHEST_PROTOCOL)


def restore(
    blob: bytes,
    monitor=None,
    sample_threshold=None,
    cost_model=None,
    quantum: int = 64,
    skid: int = 0,
    skid_compensation: bool = False,
    engine: str = "fast",
):
    """Builds a fresh interpreter positioned exactly at the blob's safe
    point.  Continue it with ``continue_sliced(stop_at)``."""
    from .interpreter import Interpreter

    ckpt = pickle.loads(blob)
    if not isinstance(ckpt, RuntimeCheckpoint):
        raise CheckpointError(
            f"not a runtime checkpoint (got {type(ckpt).__name__})"
        )
    if ckpt.version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint version {ckpt.version} != {CHECKPOINT_VERSION}"
        )
    interp = Interpreter(
        ckpt.module,
        config=ckpt.config,
        num_threads=ckpt.num_threads,
        cost_model=cost_model,
        monitor=monitor,
        sample_threshold=sample_threshold,
        quantum=quantum,
        skid=skid,
        skid_compensation=skid_compensation,
        engine=engine,
    )
    interp.heap = ckpt.heap
    interp.scheduler = ckpt.scheduler
    interp.output = ckpt.output
    interp._last_write_complete = ckpt.last_write_complete
    interp.globals_store = ckpt.globals_store
    interp.instructions_executed = ckpt.instructions_executed
    interp._spawn_records = ckpt.spawn_records
    interp._main_task = ckpt.main_task
    interp._pending_entry = ckpt.pending_entry
    interp._pending_skid = ckpt.pending_skid
    if interp._fast_engine is not None:
        # The fast engine's operand getters bind globals_store at plan
        # build time; rebuild it against the restored store before any
        # plan exists.
        from .engine import FastEngine

        interp._fast_engine = FastEngine(interp)
    if not counters_drained(
        (t.pmu_counter for t in interp.scheduler.threads), sample_threshold
    ):
        raise CheckpointError(
            "restored PMU counters violate the drained invariant — the "
            "blob was captured under a different sampling threshold"
        )
    return interp


# -- slice planning: census passes over the full run --------------------------


@dataclass
class SlicePlan:
    """Boundary plan for slicing one run's collection."""

    #: Accepted samples in the full serial run.
    total_samples: int
    #: ``(actual count at capture, checkpoint blob)`` per interior cut,
    #: in stream order.  Slice *k* starts from checkpoint *k-1* (slice 0
    #: starts fresh) and stops at checkpoint *k*'s count.
    checkpoints: list
    #: Host seconds the census passes cost (0.0 on a cache hit).
    census_seconds: float = 0.0
    cache_hit: bool = False

    @property
    def starts(self) -> list:
        return [0] + [c for c, _ in self.checkpoints]

    @property
    def stops(self) -> list:
        return [c for c, _ in self.checkpoints] + [None]


def _census_interpreter(module, monitor, *, config, num_threads, threshold,
                        cost_model, skid, skid_compensation):
    from .interpreter import Interpreter

    return Interpreter(
        module,
        config=config,
        num_threads=num_threads,
        cost_model=cost_model,
        monitor=monitor,
        sample_threshold=threshold,
        skid=skid,
        skid_compensation=skid_compensation,
    )


def _discard(_batch) -> None:
    pass


def census_stream(module, *, config=None, num_threads=12, threshold,
                  cost_model=None, skid=0, skid_compensation=False):
    """Census pass 1: the full run's accepted-sample count plus its
    *work curve* — ``(accepted count, instructions executed)`` at the
    first safe point after each accepted sample.

    Runs under a real monitor (so stack-walk overhead charges clocks
    exactly as a collecting run would) but sinks samples to a discard
    batch, retaining nothing.  The curve is what lets the planner place
    cuts by equal interpreter *work* rather than equal sample count:
    sample density over host time is far from uniform (setup phases
    emit samples across cheap, instruction-sparse quanta), and host
    cost tracks instructions executed, not samples accepted.
    """
    monitor = Monitor(
        PMUConfig(threshold=threshold), sink=_discard, batch_size=4096
    )
    interp = _census_interpreter(
        module, monitor, config=config, num_threads=num_threads,
        threshold=threshold, cost_model=cost_model, skid=skid,
        skid_compensation=skid_compensation,
    )
    curve: list = []
    last = {"n": 0}

    def hook(it, _mon=monitor, _last=last, _curve=curve):
        n = _mon.n_accepted
        if n > _last["n"]:
            _last["n"] = n
            _curve.append((n, it.instructions_executed))

    interp._slice_hook = hook
    try:
        interp.run()
    finally:
        interp._slice_hook = None
    monitor.flush()
    return monitor.n_accepted, curve


def count_stream(module, **knobs) -> int:
    """Accepted-sample count of the full run (census pass 1 without the
    work curve — kept as the simple counting entry point)."""
    total, _curve = census_stream(module, **knobs)
    return total


def work_balanced_cuts(curve, total_samples: int, num_slices: int) -> list:
    """Interior cut counts placing slice boundaries at equal
    *instructions-executed* quantiles of the census work curve.

    Every returned cut is a count the census actually observed at a
    safe point, so the capture pass snapshots at exactly these
    positions.  Falls back to the count-balanced ``slice_points``
    arithmetic when the curve carries no work signal.  Like any other
    monotone cut set, placement affects balance only — never identity.
    """
    if num_slices <= 1 or total_samples <= 0:
        return []
    total_work = curve[-1][1] if curve else 0
    if total_work <= 0:
        from ..sampling.sharding import slice_points

        return slice_points(total_samples, num_slices)
    cuts = []
    j = 0
    for i in range(1, num_slices):
        target = total_work * i  # compare work * k >= total_work * i
        while j < len(curve) and curve[j][1] * num_slices < target:
            j += 1
        if j < len(curve):
            cuts.append(curve[j][0])
    return sorted({c for c in cuts if 0 < c < total_samples})


def capture_checkpoints(module, cuts, *, config=None, num_threads=12,
                        threshold, cost_model=None, skid=0,
                        skid_compensation=False) -> list:
    """Census pass 2: replay the run, snapshotting at each cut.

    ``cuts`` are nominal accepted-sample counts, strictly increasing.
    Returns ``(actual count, blob)`` pairs; cuts that coincide at one
    safe point collapse into a single checkpoint (the slice between
    them would be empty), and cuts past the end of the stream are
    dropped — both keep the boundary contract intact.
    """
    cuts = sorted(set(int(c) for c in cuts))
    if any(c <= 0 for c in cuts):
        raise CheckpointError(f"slice cuts must be positive (got {cuts})")
    if not cuts:
        return []
    monitor = Monitor(
        PMUConfig(threshold=threshold), sink=_discard, batch_size=4096
    )
    interp = _census_interpreter(
        module, monitor, config=config, num_threads=num_threads,
        threshold=threshold, cost_model=cost_model, skid=skid,
        skid_compensation=skid_compensation,
    )
    out: list = []
    state = {"i": 0}

    def hook(it, _mon=monitor, _cuts=cuts, _state=state, _out=out):
        i = _state["i"]
        if i < len(_cuts) and _mon.n_accepted >= _cuts[i]:
            count = _mon.n_accepted
            _out.append((count, snapshot(it)))
            while i < len(_cuts) and _cuts[i] <= count:
                i += 1
            _state["i"] = i

    interp._slice_hook = hook
    try:
        interp.run()
    finally:
        interp._slice_hook = None
    monitor.flush()
    return out


#: (id(module), knobs…) → (module pin, SlicePlan).  Pinning the module
#: keeps its id from being reused while the entry lives.  Bounded FIFO.
_PLAN_CACHE: dict = {}
_PLAN_CACHE_MAX = 16


def _plan_key(module, num_slices, config, num_threads, threshold,
              cost_model, skid, skid_compensation):
    return (
        id(module),
        num_slices,
        repr(sorted((config or {}).items())),
        num_threads,
        threshold,
        repr(cost_model),
        skid,
        skid_compensation,
    )


def plan_slices(module, num_slices, *, config=None, num_threads=12,
                threshold, cost_model=None, skid=0,
                skid_compensation=False, use_cache=True) -> SlicePlan:
    """Plans ``num_slices`` boundaries over one run's stream: census the
    total accepted-sample count plus the work curve, place interior
    cuts at equal instructions-executed quantiles (sample density over
    host time is far from uniform, so count-balanced cuts would leave
    one worker holding most of the wall clock), and capture a
    checkpoint at each.

    The plan is cached per (module identity, knobs): the pipeline is
    run-once/analyze-many, so repeat profiles of the same program reuse
    the census — that warm path is what the collection benchmark's
    modeled speedup measures.
    """
    if num_slices < 1:
        raise CheckpointError(f"need at least one slice (got {num_slices})")
    key = _plan_key(module, num_slices, config, num_threads, threshold,
                    cost_model, skid, skid_compensation)
    if use_cache:
        hit = _PLAN_CACHE.get(key)
        if hit is not None:
            plan = hit[1]
            return SlicePlan(
                total_samples=plan.total_samples,
                checkpoints=plan.checkpoints,
                census_seconds=0.0,
                cache_hit=True,
            )
    t0 = time.perf_counter()
    knobs = dict(config=config, num_threads=num_threads, threshold=threshold,
                 cost_model=cost_model, skid=skid,
                 skid_compensation=skid_compensation)
    total, curve = census_stream(module, **knobs)
    cuts = work_balanced_cuts(curve, total, num_slices)
    checkpoints = capture_checkpoints(module, cuts, **knobs) if cuts else []
    plan = SlicePlan(
        total_samples=total,
        checkpoints=checkpoints,
        census_seconds=time.perf_counter() - t0,
        cache_hit=False,
    )
    if use_cache:
        if len(_PLAN_CACHE) >= _PLAN_CACHE_MAX:
            _PLAN_CACHE.pop(next(iter(_PLAN_CACHE)))
        _PLAN_CACHE[key] = (module, plan)
    return plan
