"""Static data-flow tests: root resolution, aliasing, write sets,
descriptor writes, transfer maps."""

import pytest

from repro.blame.dataflow import RET_KEY, DataFlow, VarKey, is_pointer_like, render_path
from repro.blame.static_info import ModuleBlameInfo
from repro.chapel.types import INT, REAL, ArrayType, DomainType, RecordType
from repro.ir import instructions as I

import sys, os
sys.path.insert(0, os.path.dirname(os.path.dirname(__file__)))
from conftest import compile_src


def df_of(src, fn="main"):
    m = compile_src(src)
    return m, DataFlow(m.functions[fn], m)


def writes_by_name(df):
    out = {}
    for key, ws in df.writes.items():
        meta = df.var_meta.get(key)
        # Alias-seeded global roots may lack local metadata; fall back
        # to the global's own name.
        name = meta.name if meta else (str(key.ident) if key.kind == "global" else str(key))
        out.setdefault(name, set()).update(w.iid for w in ws)
    return out


class TestRoots:
    def test_local_store(self):
        m, df = df_of("proc main() { var x: int = 1; x = 2; }")
        w = writes_by_name(df)
        assert len(w["x"]) == 2  # init + assignment

    def test_global_store(self):
        src = "var g: int = 0;\nproc main() { g = 5; }"
        m, df = df_of(src)
        assert VarKey("global", "g") in df.writes

    def test_array_element_store_has_index_path(self):
        src = "var A: [0..3] real;\nproc main() { A[2] = 1.0; }"
        m, df = df_of(src)
        key = VarKey("global", "A")
        assert key in df.writes
        assert (key, (("index",),)) in df.path_writes

    def test_record_field_path(self):
        src = (
            "record P { var x: real; }\nvar ps: [0..3] P;\n"
            "proc main() { ps[1].x = 2.0; }"
        )
        m, df = df_of(src)
        key = VarKey("global", "ps")
        paths = {p for k, p in df.path_writes if k == key}
        assert (("index",), ("field", "x")) in paths

    def test_class_field_uses_cfield(self):
        src = (
            "class C { var v: real; }\nvar c: C = new C(0.0);\n"
            "proc main() { c.v = 1.0; }"
        )
        m, df = df_of(src)
        key = VarKey("global", "c")
        paths = {p for k, p in df.path_writes if k == key}
        assert (("cfield", "v"),) in paths

    def test_ref_formal_root(self):
        src = "proc f(ref out1: real) { out1 = 3.0; }"
        m = compile_src(src)
        df = DataFlow(m.functions["f"], m)
        assert VarKey("formal", "out1") in df.writes

    def test_in_formal_home_identifies_with_formal(self):
        src = "proc f(x: int): int { return x + 1; }"
        m = compile_src(src)
        df = DataFlow(m.functions["f"], m)
        # the incoming-value store registers as a write to the formal
        assert VarKey("formal", "x") in df.writes

    def test_return_pseudo_var(self):
        src = "proc f(): int { return 42; }"
        m = compile_src(src)
        df = DataFlow(m.functions["f"], m)
        assert RET_KEY in df.writes


class TestAliasing:
    def test_slice_alias_within_function(self):
        src = """
var A: [0..9] real;
proc main() {
  var S = A[2..5];
  S[3] = 1.0;
}
"""
        m, df = df_of(src)
        w = writes_by_name(df)
        # the element store through S blames both S and A
        store_iids = {
            i.iid
            for i in m.functions["main"].instructions()
            if isinstance(i, I.Store)
        }
        assert w["S"] & store_iids
        assert w["A"] & w["S"]

    def test_cross_function_alias_needs_module_info(self):
        src = """
var A: [0..9] real;
var Alias = A[0..9];
proc touch() { Alias[3] = 1.0; }
proc main() { touch(); }
"""
        m = compile_src(src)
        info = ModuleBlameInfo(m)
        df = info.functions["touch"].dataflow
        w = writes_by_name(df)
        assert "A" in w and "Alias" in w
        assert w["A"] == w["Alias"]

    def test_scalar_stores_do_not_alias(self):
        src = """
proc main() {
  var x: real = 1.0;
  var y = x;
  y = 2.0;
}
"""
        m, df = df_of(src)
        w = writes_by_name(df)
        # writes to y are not writes to x
        assert not (w.get("x", set()) & w["y"] - {min(w["y"])})
        y_final = [i for i in m.functions["main"].instructions()
                   if isinstance(i, I.Store)][-1]
        assert y_final.iid not in w.get("x", set())


class TestDescriptorWrites:
    def test_slice_writes_base_and_domain_roots(self):
        src = """
var D: domain(1) = {0..9};
var A: [D] real;
proc main() {
  var S = A[D];
}
"""
        m, df = df_of(src)
        w = writes_by_name(df)
        slice_iids = {
            i.iid
            for i in m.functions["main"].instructions()
            if isinstance(i, I.ArraySlice)
        }
        assert slice_iids & w["A"]
        assert slice_iids & w["D"]

    def test_expand_writes_domain(self):
        src = """
var D: domain(1) = {0..9};
proc main() { var E = D.expand(1); }
"""
        m, df = df_of(src)
        assert VarKey("global", "D") in df.writes

    def test_iterator_writes_iterable_descriptor(self):
        src = """
var A: [0..9] real;
proc main() {
  var s = 0.0;
  for a in A { s += a; }
}
"""
        m, df = df_of(src)
        w = writes_by_name(df)
        iter_iids = {
            i.iid
            for i in m.functions["main"].instructions()
            if isinstance(i, (I.IterInit, I.IterNext))
        }
        assert iter_iids & w["A"]

    def test_descriptor_writes_are_shallow(self):
        src = """
var D: domain(1) = {0..9};
var A: [D] real;
proc main() { var S = A[D]; }
"""
        m, df = df_of(src)
        slice_iids = {
            i.iid
            for i in m.functions["main"].instructions()
            if isinstance(i, I.ArraySlice)
        }
        assert not (slice_iids & df.deep_write_iids)


class TestCallTransfer:
    def test_ref_arg_roots_recorded(self):
        src = """
proc callee(ref t: real) { t = 1.0; }
proc main() {
  var target: real = 0.0;
  callee(target);
}
"""
        m, df = df_of(src)
        call = next(
            i
            for i in m.functions["main"].instructions()
            if isinstance(i, I.Call) and i.callee == "callee"
        )
        arg_map = df.call_arg_roots[call.iid]
        keys = {k for roots in arg_map.values() for k, p in roots}
        names = {df.var_meta[k].name for k in keys}
        assert names == {"target"}

    def test_callsite_is_deep_write_to_ref_args(self):
        src = """
proc callee(ref t: real) { t = 1.0; }
proc main() {
  var target: real = 0.0;
  callee(target);
}
"""
        m, df = df_of(src)
        call = next(
            i for i in m.functions["main"].instructions()
            if isinstance(i, I.Call) and i.callee == "callee"
        )
        assert call.iid in df.deep_write_iids

    def test_pointer_like_in_formal_transfers(self):
        src = """
class C { var v: real; }
proc mutate(c: C) { c.v = 1.0; }
var g: C = new C(0.0);
proc main() { mutate(g); }
"""
        m, df = df_of(src)
        call = next(
            i for i in m.functions["main"].instructions()
            if isinstance(i, I.Call) and i.callee == "mutate"
        )
        assert "c" in df.call_arg_roots[call.iid]

    def test_spawn_arg_map_covers_iterables_and_captures(self):
        src = """
var D: domain(1) = {0..7};
proc main() {
  var acc: real = 0.0;
  forall i in D { acc = acc + i; }
}
"""
        m, df = df_of(src)
        spawn = next(
            i for i in m.functions["main"].instructions()
            if isinstance(i, I.SpawnJoin)
        )
        arg_map = df.call_arg_roots[spawn.iid]
        assert "_chunk0" in arg_map
        assert "acc" in arg_map


class TestHelpers:
    def test_is_pointer_like(self):
        assert is_pointer_like(ArrayType(REAL, 1))
        assert is_pointer_like(DomainType(1))
        assert is_pointer_like(RecordType("C", (), is_class=True))
        assert not is_pointer_like(RecordType("R", ()))
        assert not is_pointer_like(INT)

    def test_render_path(self):
        p = (("index",), ("field", "zoneArray"), ("index",), ("cfield", "value"))
        assert render_path(p) == "[i].zoneArray[j].value"
