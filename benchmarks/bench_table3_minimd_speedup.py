"""E3 — Paper Table III: MiniMD original vs de-zippered, ± --fast.

Paper: 2.26× speedup w/o --fast (20.87 s → 9.23 s), 2.56× w/ --fast
(6.41 s → 2.50 s).  Reproduced shape: ~2× either way, and the manual
optimization's win survives compilation with --fast.
"""

from conftest import record_result, run_once

from repro.bench import harness


def measure():
    return harness.minimd_speedups()


def test_table3_minimd_speedup(benchmark, record):
    result = run_once(benchmark, measure)
    plain = result.speedup("opt", "orig")
    fast = result.speedup("opt/fast", "orig/fast")

    # The optimized version wins decisively, both ways (paper: 2.26/2.56).
    assert plain > 1.6
    assert fast > 1.6
    # --fast does not erase the manual optimization (paper's point).
    assert fast > 0.75 * plain

    record(
        "table3_minimd_speedup",
        harness.render_speedup_table(result)
        + f"\n(paper: 2.26 w/o --fast, 2.56 w/ --fast)",
    )
