"""Lowering tests: AST → IR shape and semantics checks."""

import pytest

from repro.chapel.errors import NameError_, TypeError_
from repro.compiler.lower import compile_source
from repro.ir import instructions as I

import sys, os
sys.path.insert(0, os.path.dirname(os.path.dirname(__file__)))
from conftest import output_of, run_src


def instrs_of(module, fn_name):
    return list(module.functions[fn_name].instructions())


class TestModuleStructure:
    def test_globals_registered(self):
        m = compile_source("var g: int = 1;\nconfig const n: int = 4;")
        assert "g" in m.globals
        assert m.globals["n"].is_config

    def test_module_init_exists_and_is_artificial(self):
        m = compile_source("var g: int = 1;")
        assert m.global_init is not None
        assert m.global_init.is_artificial

    def test_main_detected(self):
        m = compile_source("proc main() { }")
        assert m.main is m.functions["main"]

    def test_records_registered(self):
        m = compile_source("record R { var a: int; }\nclass C { var b: real; }")
        assert not m.records["R"].is_class
        assert m.records["C"].is_class

    def test_source_stored(self):
        m = compile_source("var x: int = 1;", "prog.chpl")
        assert "prog.chpl" in m.sources


class TestDebugBindings:
    def test_alloca_carries_variable_name(self):
        m = compile_source("proc main() { var counter: int = 0; }")
        allocas = [i for i in instrs_of(m, "main") if isinstance(i, I.Alloca)]
        assert any(a.var_name == "counter" and not a.is_temp for a in allocas)

    def test_temporaries_flagged(self):
        m = compile_source(
            "proc main() { var x = 1; select x { when 1 { } } }"
        )
        allocas = [i for i in instrs_of(m, "main") if isinstance(i, I.Alloca)]
        assert any(a.is_temp for a in allocas)

    def test_formal_home_marked(self):
        m = compile_source("proc f(x: int): int { return x; }")
        allocas = [i for i in instrs_of(m, "f") if isinstance(i, I.Alloca)]
        assert any(a.formal_home == "x" for a in allocas)

    def test_line_numbers_preserved(self):
        src = "proc main() {\nvar a: int = 1;\nvar b: int = 2;\n}"
        m = compile_source(src)
        lines = {i.loc.line for i in instrs_of(m, "main")}
        assert {2, 3} <= lines


class TestOutlining:
    def test_forall_outlined(self):
        m = compile_source(
            "var D: domain(1) = {0..7};\n"
            "var A: [D] real;\n"
            "proc main() { forall i in D { A[i] = 1.0; } }"
        )
        outlined = [f for f in m.functions.values() if f.outlined_from == "main"]
        assert len(outlined) == 1
        assert outlined[0].name.startswith("forall_fn_chpl")
        spawns = [i for i in instrs_of(m, "main") if isinstance(i, I.SpawnJoin)]
        assert len(spawns) == 1
        assert spawns[0].kind == "forall"

    def test_coforall_kind(self):
        m = compile_source("proc main() { coforall t in 0..3 { } }")
        spawns = [i for i in instrs_of(m, "main") if isinstance(i, I.SpawnJoin)]
        assert spawns[0].kind == "coforall"

    def test_captures_become_ref_params(self):
        m = compile_source(
            "var D: domain(1) = {0..3};\n"
            "proc main() { var total: real = 0.0; forall i in D { total = total + i; } }"
        )
        outlined = next(f for f in m.functions.values() if f.outlined_from == "main")
        cap = [p for p in outlined.params if p.name == "total"]
        assert cap and cap[0].intent == "ref"

    def test_globals_not_captured(self):
        m = compile_source(
            "var D: domain(1) = {0..3};\nvar G: [D] real;\n"
            "proc main() { forall i in D { G[i] = 1.0; } }"
        )
        outlined = next(f for f in m.functions.values() if f.outlined_from == "main")
        assert all(p.name != "G" for p in outlined.params)


class TestParamLoops:
    def test_param_loop_unrolled(self):
        m = compile_source(
            "proc main() { var t: 4*real; for param i in 0..3 { t[i] = 1.0; } }"
        )
        # No branches from the unrolled loop: main has a single block.
        cbrs = [i for i in instrs_of(m, "main") if isinstance(i, I.CBr)]
        assert not cbrs
        # Four distinct constant-index tuple stores.
        addrs = [i for i in instrs_of(m, "main") if isinstance(i, I.TupleElemAddr)]
        consts = {a.index.value for a in addrs if isinstance(a.index, I.Constant)}
        assert consts == {0, 1, 2, 3}

    def test_param_loop_requires_const_bounds(self):
        with pytest.raises(TypeError_):
            compile_source(
                "proc main() { var n = 3; for param i in 0..n { } }"
            )


class TestTypeChecking:
    @pytest.mark.parametrize(
        "src,err",
        [
            ("proc main() { var x: int = 1; x = true; }", TypeError_),
            ("proc main() { undefined_thing(); }", NameError_),
            ("proc main() { var y = nothere; }", NameError_),
            ("proc main() { if 3 { } }", TypeError_),
            ("proc f(x) { }", TypeError_),  # untyped param
            ("proc f(): int { }", TypeError_),  # falls off end
            ("proc main() { var t: 3*real; t[0] = 1.0; t = 2; }", TypeError_),
            ("proc main() { break; }", TypeError_),
            ("proc main() { var x = 1; x[0] = 2; }", TypeError_),
            ("record R { var a: int; }\nproc main() { var r: R; r.nope = 1; }", TypeError_),
            ("proc f(x: int) { }\nproc main() { f(1, 2); }", TypeError_),
            ("proc main() { param p = 3; p = 4; }", TypeError_),
        ],
    )
    def test_rejected(self, src, err):
        with pytest.raises(err):
            compile_source(src)

    def test_nested_proc_capture_rejected(self):
        src = (
            "proc outer() { var secret = 1; "
            "proc inner(): int { return secret; } }"
        )
        with pytest.raises(TypeError_, match="captures"):
            compile_source(src)

    def test_int_to_real_coercion_ok(self):
        m = compile_source("proc main() { var r: real = 3; }")
        assert m is not None

    def test_duplicate_proc_rejected(self):
        with pytest.raises(NameError_):
            compile_source("proc f() { }\nproc f() { }")

    def test_duplicate_global_rejected(self):
        with pytest.raises(NameError_):
            compile_source("var g: int = 1;\nvar g: int = 2;")


class TestSemantics:
    """Lowered-and-executed behavior checks (semantics via output)."""

    def test_arithmetic_and_precedence(self):
        assert output_of("proc main() { writeln(2 + 3 * 4); }") == ["14"]
        assert output_of("proc main() { writeln((2 + 3) * 4); }") == ["20"]
        assert output_of("proc main() { writeln(2 ** 3 ** 2); }") == ["512"]

    def test_integer_division_truncates(self):
        assert output_of("proc main() { writeln(7 / 2); }") == ["3"]
        assert output_of("proc main() { writeln(-7 / 2); }") == ["-3"]
        assert output_of("proc main() { writeln(7 % 3); }") == ["1"]

    def test_real_division(self):
        assert output_of("proc main() { writeln(7.0 / 2.0); }") == ["3.5"]

    def test_short_circuit_and(self):
        src = """
proc sideEffect(): bool {
  writeln("evaluated");
  return true;
}
proc main() {
  if false && sideEffect() { writeln("yes"); }
  writeln("done");
}
"""
        assert output_of(src) == ["done"]

    def test_short_circuit_or(self):
        src = """
proc sideEffect(): bool {
  writeln("evaluated");
  return false;
}
proc main() {
  if true || sideEffect() { writeln("yes"); }
}
"""
        assert output_of(src) == ["yes"]

    def test_if_expr(self):
        assert output_of(
            "proc main() { var x = 5; writeln(if x > 3 then 10 else 20); }"
        ) == ["10"]

    def test_while_loop(self):
        src = "proc main() { var i = 0; while i < 5 { i += 1; } writeln(i); }"
        assert output_of(src) == ["5"]

    def test_select_when(self):
        src = """
proc classify(x: int): int {
  select x {
    when 1 do return 100;
    when 2, 3 do return 200;
    otherwise return 300;
  }
  return 0;
}
proc main() {
  writeln(classify(1), classify(2), classify(3), classify(9));
}
"""
        assert output_of(src) == ["100 200 200 300"]

    def test_break_continue(self):
        src = """
proc main() {
  var s = 0;
  for i in 1..10 {
    if i == 3 then continue;
    if i == 6 then break;
    s += i;
  }
  writeln(s);
}
"""
        # 1+2+4+5 = 12
        assert output_of(src) == ["12"]

    def test_range_by_step(self):
        src = "proc main() { var s = 0; for i in 0..10 by 2 { s += i; } writeln(s); }"
        assert output_of(src) == ["30"]

    def test_counted_range(self):
        src = "proc main() { var s = 0; for i in 5..#3 { s += i; } writeln(s); }"
        assert output_of(src) == ["18"]  # 5+6+7

    def test_recursion(self):
        src = """
proc fib(n: int): int {
  if n < 2 then return n;
  return fib(n - 1) + fib(n - 2);
}
proc main() { writeln(fib(10)); }
"""
        assert output_of(src) == ["55"]

    def test_ref_param_writes_through(self):
        src = """
proc bump(ref x: int, amount: int) { x += amount; }
proc main() { var v = 10; bump(v, 5); writeln(v); }
"""
        assert output_of(src) == ["15"]

    def test_out_intent(self):
        src = """
proc produce(out r: real) { r = 2.5; }
proc main() { var v = 0.0; produce(v); writeln(v); }
"""
        assert output_of(src) == ["2.5"]

    def test_module_level_statements_run_before_main(self):
        src = """
var g: int = 7;
writeln("init", g);
proc main() { writeln("main", g); }
"""
        assert output_of(src) == ["init 7", "main 7"]

    def test_reduce_sum_product_minmax(self):
        src = """
var A: [0..4] int;
proc main() {
  for i in 0..4 { A[i] = i + 1; }
  writeln(+ reduce A);
  writeln(* reduce A);
  writeln(min reduce A, max reduce A);
}
"""
        assert output_of(src) == ["15", "120", "1 5"]

    def test_config_override(self):
        src = "config const n: int = 3;\nproc main() { writeln(n); }"
        assert output_of(src) == ["3"]
        assert output_of(src, config={"n": 11}) == ["11"]

    def test_config_real_and_bool(self):
        src = (
            "config const s: real = 1.5;\nconfig const flag: bool = false;\n"
            "proc main() { writeln(s, flag); }"
        )
        assert output_of(src, config={"s": 2.5, "flag": True}) == ["2.5 true"]
