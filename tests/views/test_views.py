"""Presentation-layer tests: the three GUI windows as text."""

import pytest

from repro.views.code_centric import build_code_centric, render_code_centric
from repro.views.data_centric import render_data_centric
from repro.views.hybrid import build_blame_points, render_hybrid
from repro.views.tables import pct, render_table

import sys, os
sys.path.insert(0, os.path.dirname(os.path.dirname(__file__)))
from conftest import profile_src

SRC = """
var A: [0..49] real;
proc helper(i: int): real {
  return sqrt(i * 1.0) + i * 0.5;
}
proc compute() {
  forall i in 0..49 { A[i] = helper(i); }
}
proc main() { compute(); }
"""


@pytest.fixture(scope="module")
def res():
    return profile_src(SRC, threshold=211)


class TestTables:
    def test_render_table_alignment(self):
        out = render_table(
            ["Name", "Val"],
            [["alpha", "1"], ["b", "22"]],
            title="T",
            aligns=["l", "r"],
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "Name" in lines[1]
        # right-aligned value column
        assert lines[3].endswith(" 1") or lines[3].endswith("  1")

    def test_pct(self):
        assert pct(0.5) == "50.0%"
        assert pct(0.12345, 2) == "12.35%"


class TestDataCentric:
    def test_contains_columns_and_rows(self, res):
        out = render_data_centric(res.report, top=5)
        assert "Name" in out and "Blame" in out and "Context" in out
        assert "A" in out

    def test_top_limits_rows(self, res):
        short = render_data_centric(res.report, top=2)
        longer = render_data_centric(res.report, top=20)
        assert len(short.splitlines()) < len(longer.splitlines())

    def test_min_blame_filters(self, res):
        out = render_data_centric(res.report, min_blame=0.99)
        assert len(out.splitlines()) <= 3  # header only


class TestCodeCentric:
    def test_outlined_frames_merge_into_user_functions(self, res):
        profiles = build_code_centric(res.module, res.postmortem)
        names = {p.name for p in profiles}
        assert not any(n.startswith("forall_fn") for n in names)
        assert "compute" in names

    def test_cumulative_ge_flat(self, res):
        for p in build_code_centric(res.module, res.postmortem):
            assert p.cumulative >= p.flat

    def test_main_cumulative_covers_its_samples(self, res):
        profiles = {p.name: p for p in build_code_centric(res.module, res.postmortem)}
        rooted_in_main = sum(
            1 for i in res.postmortem.instances if i.frames[-1][0] == "main"
        )
        assert profiles["main"].cumulative == rooted_in_main
        # everything else is module initialization
        assert rooted_in_main + sum(
            1
            for i in res.postmortem.instances
            if i.frames[-1][0] == "__module_init"
        ) == res.postmortem.n_user

    def test_render(self, res):
        out = render_code_centric(res.module, res.postmortem, top=5)
        assert "Flat" in out and "Cum" in out
        assert "stacks glued" in out


class TestHybrid:
    def test_main_blame_point_first(self, res):
        points = build_blame_points(res.report)
        assert points[0].context == "main"

    def test_all_rows_grouped(self, res):
        points = build_blame_points(res.report, min_blame=0.0)
        total_rows = sum(len(p.rows) for p in points)
        assert total_rows == len(res.report.rows)

    def test_render(self, res):
        out = render_hybrid(res.report)
        assert "blame point: main" in out


class TestHtmlReport:
    def test_html_contains_all_panes(self, res, tmp_path):
        from repro.views.html import render_html_report, write_html_report

        text = render_html_report(res)
        assert "<!DOCTYPE html>" in text
        assert "data-centric (variable blame)" in text
        assert "code-centric (stacks glued)" in text
        assert "blame point: main" in text
        assert "A" in text

    def test_html_escapes_names(self, res):
        from repro.views.html import render_html_report

        # arrow rows contain no raw '<' breakage; all tags balanced
        text = render_html_report(res)
        assert "<script" not in text

    def test_write_html_report(self, res, tmp_path):
        from repro.views.html import write_html_report

        path = write_html_report(str(tmp_path / "r.html"), res)
        content = open(path).read()
        assert "</html>" in content
