"""HPCToolkit-style data-centric baseline (paper §II.B).

The real HPCToolkit data-centric extension attributes samples to data
objects by interposing on allocation: it "only tracks the memory
allocation and deallocation of static variables and heap-allocated
variables that have a size of over 4K bytes.  Local variables are
completely omitted.  Additionally, after the Chapel compiler's
translation, the global variables in Chapel source code aren't properly
treated" — so most Chapel samples land in **unknown data** (96.88 % for
CLOMP, 95.1 % for LULESH).

The simulation of those rules here:

* a sample is attributable only if its leaf instruction is a direct
  memory access (load/store/element address) whose address resolves to
  exactly one plainly-named global array — no views (slices/reindexes
  lose the allocation identity through Chapel's descriptor indirection),
  no record-field paths (nested class indirection), no locals/formals;
* the backing allocation must be a heap block larger than the 4 KB
  tracking threshold;
* everything else — scalar computation, tuple locals, class-field
  chains, view accesses — is "unknown data".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..blame.dataflow import DataFlow
from ..ir import instructions as I
from ..ir.module import Module
from ..runtime.interpreter import Interpreter
from ..runtime.values import ArrayValue
from ..sampling.records import RawSample

TRACKING_THRESHOLD_BYTES = 4096


@dataclass
class HpctkResult:
    """Attribution outcome in HPCToolkit-style categories."""

    attributed: dict[str, int] = field(default_factory=dict)
    unknown: int = 0
    total: int = 0

    @property
    def unknown_fraction(self) -> float:
        return self.unknown / self.total if self.total else 0.0

    def fraction_of(self, var: str) -> float:
        return self.attributed.get(var, 0) / self.total if self.total else 0.0


class HpctkAttributor:
    """Attributes raw samples under HPCToolkit's tracking rules."""

    def __init__(self, module: Module, interpreter: Interpreter) -> None:
        self.module = module
        self.interpreter = interpreter
        self._dataflow: dict[str, DataFlow] = {}
        self._tracked = self._tracked_globals()

    def _tracked_globals(self) -> set[str]:
        """Globals whose backing store is a heap array > 4 KB."""
        tracked: set[str] = set()
        for name, box in self.interpreter.globals_store.items():
            v = box[0]
            if isinstance(v, ArrayValue) and not v.is_view:
                alloc = self.interpreter.heap.allocations.get(v.heap_id)
                if alloc is not None and alloc.size_bytes > TRACKING_THRESHOLD_BYTES:
                    tracked.add(name)
        return tracked

    def _df(self, func_name: str) -> DataFlow | None:
        df = self._dataflow.get(func_name)
        if df is None:
            fn = self.module.get_function(func_name)
            if fn is None:
                return None
            df = DataFlow(fn, self.module)
            self._dataflow[func_name] = df
        return df

    def _attribute_leaf(self, func: str, iid: int) -> str | None:
        fn = self.module.get_function(func)
        if fn is None:
            return None
        instr = fn.find_instruction(iid)
        if instr is None:
            return None
        if isinstance(instr, I.Store):
            addr = instr.addr
        elif isinstance(instr, I.Load):
            addr = instr.addr
        elif isinstance(instr, I.ElemAddr):
            addr = instr.base
        else:
            return None  # not a memory access: unknown
        df = self._df(func)
        if df is None:
            return None
        roots = df.roots_of(addr)
        # Exactly one root, a global, accessed as a plain element (one
        # index step, no record fields) — otherwise the allocation
        # identity is lost behind Chapel's descriptors.
        if len(roots) != 1:
            return None
        (key, path), = roots
        if key.kind != "global":
            return None
        if any(elem[0] in ("field", "cfield") for elem in path) or len(path) > 1:
            return None
        name = str(key.ident)
        if name not in self._tracked:
            return None
        return name

    def attribute(self, samples: list[RawSample]) -> HpctkResult:
        result = HpctkResult()
        for s in samples:
            if s.is_idle:
                continue
            result.total += 1
            var = self._attribute_leaf(s.stack[0][0], s.leaf_iid) if s.stack else None
            if var is None:
                result.unknown += 1
            else:
                result.attributed[var] = result.attributed.get(var, 0) + 1
        return result


def render_hpctk(result: HpctkResult, program: str) -> str:
    lines = [
        f"HPCToolkit-style data-centric attribution: {program}",
        f"  total samples: {result.total}",
        f"  unknown data : {100.0 * result.unknown_fraction:.2f}%",
    ]
    for name, n in sorted(result.attributed.items(), key=lambda kv: -kv[1]):
        lines.append(f"  {name:20s} {100.0 * n / result.total:6.2f}%")
    return "\n".join(lines)
