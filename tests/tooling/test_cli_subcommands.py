"""The subcommand CLI: profile/view/merge/diff wiring, --version, and
graceful failure on unknown commands and damaged artifacts."""

from __future__ import annotations

import pytest

from repro.tooling.cli import main as cli_main

SOURCE = """
config const n = 150;
var A: [0..#n] real;
forall i in 0..#n {
  A[i] = i * 2.0;
}
var total = 0.0;
for i in 0..#n {
  total += A[i];
}
"""

FAST_ARGS = ["--threads", "2", "--threshold", "997"]


@pytest.fixture()
def source_file(tmp_path):
    f = tmp_path / "prog.chpl"
    f.write_text(SOURCE)
    return str(f)


@pytest.fixture()
def artifact(source_file, tmp_path, capsys):
    path = tmp_path / "run.cbp"
    rc = cli_main(
        ["profile", source_file, "-o", str(path), "--view", "none", *FAST_ARGS]
    )
    assert rc == 0
    capsys.readouterr()
    return str(path)


class TestDispatch:
    def test_version_flag(self, capsys):
        assert cli_main(["--version"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("repro ")

    def test_no_args_prints_usage(self, capsys):
        assert cli_main([]) == 2
        assert "usage:" in capsys.readouterr().err

    def test_unknown_command_exits_2_with_usage(self, capsys):
        assert cli_main(["frobnicate"]) == 2
        err = capsys.readouterr().err
        assert "unknown command 'frobnicate'" in err
        assert "usage:" in err

    def test_legacy_form_still_profiles(self, source_file, capsys):
        rc = cli_main([source_file, "--view", "data", *FAST_ARGS])
        assert rc == 0
        assert "Data-centric view" in capsys.readouterr().out

    def test_missing_source_is_a_clean_error(self, tmp_path, capsys):
        rc = cli_main(["profile", str(tmp_path / "nope.chpl")])
        assert rc == 2
        assert "repro-profile:" in capsys.readouterr().err


class TestProfileAndView:
    def test_view_output_byte_identical_to_live(
        self, source_file, tmp_path, capsys
    ):
        art = tmp_path / "run.cbp"
        rc = cli_main(
            [
                "profile", source_file, "-o", str(art),
                "--view", "all", "--top", "10", *FAST_ARGS,
            ]
        )
        assert rc == 0
        live = capsys.readouterr().out

        rc = cli_main(["view", str(art), "--view", "all", "--top", "10"])
        assert rc == 0
        replayed = capsys.readouterr().out
        # The view subcommand's whole stdout (all three windows) must
        # appear verbatim inside the live profile output.
        assert replayed in live

    def test_streaming_profile_matches(self, source_file, tmp_path, capsys):
        rc = cli_main(["profile", source_file, "--view", "data", *FAST_ARGS])
        assert rc == 0
        live = capsys.readouterr().out
        rc = cli_main(
            [
                "profile", source_file, "--view", "data", "--streaming",
                "--batch-size", "16", *FAST_ARGS,
            ]
        )
        assert rc == 0
        assert capsys.readouterr().out == live

    def test_streaming_refuses_save_samples(self, source_file, tmp_path):
        with pytest.raises(SystemExit):
            cli_main(
                [
                    "profile", source_file, "--streaming",
                    "--save-samples", str(tmp_path / "s.jsonl"), *FAST_ARGS,
                ]
            )

    def test_adaptive_profile_stops_early_and_replays(
        self, source_file, tmp_path, capsys
    ):
        path = tmp_path / "adaptive.cbp"
        rc = cli_main(
            [
                "profile", source_file, "--adaptive",
                "--ci-width", "0.4", "--round-samples", "8",
                "-o", str(path), "--view", "all", *FAST_ARGS,
            ]
        )
        assert rc == 0
        live = capsys.readouterr().out
        assert "[adaptive: stopped early" in live
        assert "~ adaptive: stopped early" in live
        # The truncated artifact replays byte-identically.
        rc = cli_main(["view", str(path), "--view", "all"])
        assert rc == 0
        assert capsys.readouterr().out in live

    @pytest.mark.parametrize(
        "flags",
        [
            ["--confidence", "0"],
            ["--confidence", "1"],
            ["--confidence", "1.5"],
            ["--confidence", "-0.1"],
            ["--ci-width", "0"],
            ["--ci-width", "1"],
            ["--ci-width", "2.0"],
        ],
    )
    def test_bad_interval_knobs_exit_2_with_usage(
        self, source_file, flags, capsys
    ):
        # Validated even without --adaptive: a typo'd knob must never
        # be silently ignored.
        with pytest.raises(SystemExit) as exc:
            cli_main(["profile", source_file, *flags, *FAST_ARGS])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "usage:" in err
        assert "must be in (0, 1) exclusive" in err

    @pytest.mark.parametrize(
        "extra",
        [
            ["--streaming"],
            ["--save-samples", "samples.jsonl"],
            ["--workers", "2", "--shard-artifacts", "shards"],
        ],
    )
    def test_adaptive_refuses_stream_retention_combos(
        self, source_file, extra
    ):
        with pytest.raises(SystemExit) as exc:
            cli_main(
                ["profile", source_file, "--adaptive", *extra, *FAST_ARGS]
            )
        assert exc.value.code == 2

    def test_view_meta_line(self, artifact, capsys):
        rc = cli_main(["view", artifact, "--meta", "--view", "data"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "profile of" in out
        assert "threshold 997" in out

    def test_view_html_export(self, artifact, tmp_path, capsys):
        html = tmp_path / "report.html"
        rc = cli_main(["view", artifact, "--html", str(html)])
        assert rc == 0
        assert html.read_text().startswith("<!DOCTYPE html>")

    def test_view_missing_artifact(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as exc:
            cli_main(["view", str(tmp_path / "missing.cbp")])
        assert exc.value.code in (1, 2)
        assert "repro-profile:" in capsys.readouterr().err

    def test_view_corrupt_artifact_exits_1(self, artifact, tmp_path, capsys):
        lines = open(artifact).read().splitlines()
        bad = tmp_path / "bad.cbp"
        bad.write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(SystemExit) as exc:
            cli_main(["view", str(bad)])
        assert exc.value.code == 1
        assert "truncated" in capsys.readouterr().err


class TestMergeDiff:
    def test_merge_two_shards(self, artifact, source_file, tmp_path, capsys):
        other = tmp_path / "run2.cbp"
        rc = cli_main(
            ["profile", source_file, "-o", str(other), "--view", "none", *FAST_ARGS]
        )
        assert rc == 0
        capsys.readouterr()
        merged = tmp_path / "merged.cbp"
        rc = cli_main(
            ["merge", str(merged), artifact, str(other), "--view", "data"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "[merged 2 artifact(s)" in out
        assert "Data-centric view" in out
        from repro.artifact import read_artifact

        snapshot = read_artifact(str(merged))
        assert snapshot.meta.kind == "merged"

    def test_merge_records_missing_locales(self, artifact, tmp_path, capsys):
        merged = tmp_path / "merged.cbp"
        rc = cli_main(
            ["merge", str(merged), artifact, "--missing-locales", "1,2"]
        )
        assert rc == 0
        assert "missing locales [1, 2]" in capsys.readouterr().out
        from repro.artifact import read_artifact

        assert read_artifact(str(merged)).report.missing_locales == (1, 2)

    def test_diff_prints_blame_shift(self, artifact, tmp_path, capsys):
        rc = cli_main(["diff", artifact, artifact])
        assert rc == 0
        assert "Blame shift:" in capsys.readouterr().out

    def test_diff_labels(self, artifact, capsys):
        rc = cli_main(
            ["diff", artifact, artifact, "--label-a", "before", "--label-b", "after"]
        )
        assert rc == 0
        assert "Blame shift: before -> after" in capsys.readouterr().out


class TestCollectWorkers:
    """--collect-workers: byte-identity through the CLI and the S6
    validation contract (incompatible combos exit 2 with a clear
    message, before any work starts)."""

    def test_stdout_and_artifact_byte_identical(
        self, source_file, tmp_path, capsys
    ):
        serial_art = tmp_path / "serial.cbp"
        rc = cli_main(
            ["profile", source_file, "-o", str(serial_art), "--view", "all",
             *FAST_ARGS]
        )
        assert rc == 0
        serial_out = capsys.readouterr().out.replace(str(serial_art), "ART")

        sliced_art = tmp_path / "sliced.cbp"
        rc = cli_main(
            ["profile", source_file, "-o", str(sliced_art), "--view", "all",
             "--collect-workers", "3", "--parallel-backend", "inline",
             *FAST_ARGS]
        )
        assert rc == 0
        captured = capsys.readouterr()
        sliced_out = captured.out.replace(str(sliced_art), "ART")

        assert sliced_out == serial_out
        assert serial_art.read_bytes() == sliced_art.read_bytes()
        # The slice summary goes to stderr, keeping stdout comparable.
        assert "[collect: 3 slice workers" in captured.err

    def test_adaptive_combo_exits_2_with_clear_message(
        self, source_file, capsys
    ):
        with pytest.raises(SystemExit) as exc:
            cli_main(
                ["profile", source_file, "--adaptive",
                 "--collect-workers", "2", *FAST_ARGS]
            )
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "usage:" in err
        assert "--collect-workers is incompatible with --adaptive" in err
        assert "stopping decision" in err

    def test_streaming_combo_exits_2(self, source_file, capsys):
        with pytest.raises(SystemExit) as exc:
            cli_main(
                ["profile", source_file, "--streaming",
                 "--collect-workers", "2", *FAST_ARGS]
            )
        assert exc.value.code == 2

    def test_below_one_exits_2(self, source_file, capsys):
        with pytest.raises(SystemExit) as exc:
            cli_main(
                ["profile", source_file, "--collect-workers", "0",
                 *FAST_ARGS]
            )
        assert exc.value.code == 2
        assert "--collect-workers must be >= 1" in capsys.readouterr().err
