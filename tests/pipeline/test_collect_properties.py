"""Property tests (hypothesis) for sliced collection: *any* valid
monotone slice-boundary set — balanced or wildly uneven, 1–8 slices,
clean or under an injected transport-fault schedule — reassembles to
the serial sample stream byte for byte, on every benchmark (S3).

The identity argument (runtime/checkpoint.py) never mentions boundary
placement, so these tests are the executable form of that claim: cuts
come from hypothesis, not from ``slice_points``.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pipeline.parallel import parallel_collect
from repro.pipeline.stages import collect_stage, compile_stage
from repro.pipeline.supervisor import SupervisorConfig
from repro.resilience.faults import FaultPlan
from repro.runtime.checkpoint import capture_checkpoints
from repro.runtime.interpreter import Interpreter
from repro.sampling.monitor import Monitor
from repro.sampling.pmu import PMUConfig

from .conftest import NUM_THREADS, THRESHOLD, benchmark_setup

_BASE: dict = {}


def baseline(name: str):
    """(module, config, serial sealed stream, serial RunResult)."""
    if name not in _BASE:
        source, filename, config = benchmark_setup(name)
        module = compile_stage(source, filename)
        serial = collect_stage(
            module, config=config, num_threads=NUM_THREADS, threshold=THRESHOLD
        )
        _BASE[name] = (
            module,
            config,
            serial.monitor.sealed_stream(),
            serial.run_result,
            serial.monitor.n_accepted,
        )
    return _BASE[name]


@settings(max_examples=12, deadline=None)
@given(
    bench=st.sampled_from(["minimd", "clomp", "lulesh"]),
    fractions=st.lists(st.floats(0.0, 1.0), min_size=0, max_size=7),
)
def test_any_boundary_set_reassembles_the_serial_stream(bench, fractions):
    """Arbitrary (possibly degenerate) cut positions, driven through the
    checkpoint layer directly: concatenated slice streams == serial
    stream, and the finishing slice reproduces the RunResult."""
    module, config, serial_stream, serial_result, total = baseline(bench)
    cuts = sorted({int(f * total) for f in fractions} - {0, total})

    checkpoints = capture_checkpoints(
        module,
        cuts,
        config=config,
        num_threads=NUM_THREADS,
        threshold=THRESHOLD,
    )
    starts = [0] + [c for c, _ in checkpoints]
    stops = [c for c, _ in checkpoints] + [None]
    blobs = [None] + [b for _, b in checkpoints]

    streams = []
    result = None
    for blob, start, stop in zip(blobs, starts, stops):
        monitor = Monitor(PMUConfig(threshold=THRESHOLD), index_base=start)
        if blob is None:
            interp = Interpreter(
                module,
                config=config,
                num_threads=NUM_THREADS,
                monitor=monitor,
                sample_threshold=THRESHOLD,
            )
            out = interp.run_sliced(stop)
        else:
            interp = Interpreter.resume(
                blob, monitor=monitor, sample_threshold=THRESHOLD
            )
            out = interp.continue_sliced(stop)
        streams.append(monitor.sealed_stream())
        if out is not None:
            result = out

    assert b"".join(streams) == serial_stream
    assert result is not None
    assert result.output == serial_result.output
    assert result.wall_seconds == serial_result.wall_seconds
    assert result.total_cycles == serial_result.total_cycles


@settings(max_examples=10, deadline=None)
@given(
    workers=st.integers(1, 8),
    crash=st.lists(st.integers(0, 7), max_size=2),
    dead=st.lists(st.integers(0, 7), max_size=1),
    corrupt=st.lists(st.integers(0, 7), max_size=2),
)
def test_any_slice_count_and_fault_schedule_is_identical(
    workers, crash, dead, corrupt
):
    """1–8 slices through the real fan-out, under a hypothesis-chosen
    transport schedule (crashes retried, dead slices replayed inline,
    corrupt payloads rejected and retried): bytes never change."""
    module, config, serial_stream, serial_result, _ = baseline("minimd")
    plan = FaultPlan(
        worker_crash_tasks=tuple(sorted(set(crash))),
        worker_dead_tasks=tuple(sorted(set(dead))),
        payload_corrupt_tasks=tuple(sorted(set(corrupt))),
    )
    pc = parallel_collect(
        module,
        workers,
        backend="inline",
        config=config,
        num_threads=NUM_THREADS,
        threshold=THRESHOLD,
        supervision=SupervisorConfig(plan=plan, backoff=0.0, max_retries=2),
    )
    assert pc.sealed_stream == serial_stream
    assert pc.run_result.output == serial_result.output
    assert pc.run_result.wall_seconds == serial_result.wall_seconds
    assert set(pc.recovered_slices) <= set(dead)
