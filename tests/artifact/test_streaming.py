"""Streaming collection + post-mortem: bounded memory, identical output.

The acceptance bar: with ``streaming=True`` the monitor never holds
more than ``batch_size`` samples resident, and on the same program the
resulting report (and every view) is exactly what the materialized
pipeline produces — clean or degraded."""

from __future__ import annotations

import pytest

from repro.blame.postmortem import PostmortemConsumer, process_samples
from repro.pipeline import render_stage
from repro.resilience.faults import FaultPlan
from repro.resilience.inject import FaultInjector

from .conftest import FAULT_SPEC, profile_benchmark

BATCH = 32


def report_key(result):
    return [
        (r.name, r.context, r.samples, r.blame) for r in result.report.rows
    ]


class TestStreamingEquivalence:
    @pytest.mark.parametrize("view", ["data", "code", "hybrid", "html"])
    def test_views_identical_clean(self, benchmark_name, view):
        retained = profile_benchmark(benchmark_name)
        streamed = profile_benchmark(
            benchmark_name, streaming=True, batch_size=BATCH
        )
        assert render_stage(streamed, view) == render_stage(retained, view)

    def test_views_identical_degraded(self, benchmark_name):
        retained = profile_benchmark(benchmark_name, faults=FAULT_SPEC)
        streamed = profile_benchmark(
            benchmark_name, faults=FAULT_SPEC, streaming=True, batch_size=BATCH
        )
        for view in ("data", "code", "hybrid", "html"):
            assert render_stage(streamed, view) == render_stage(retained, view)
        assert report_key(streamed) == report_key(retained)

    def test_degraded_accounting_identical(self, benchmark_name):
        retained = profile_benchmark(benchmark_name, faults=FAULT_SPEC)
        streamed = profile_benchmark(
            benchmark_name, faults=FAULT_SPEC, streaming=True, batch_size=BATCH
        )
        # postmortem_seconds is host-measured wall time, the one
        # legitimately nondeterministic stat.
        import dataclasses

        assert dataclasses.replace(
            streamed.report.stats, postmortem_seconds=0.0
        ) == dataclasses.replace(retained.report.stats, postmortem_seconds=0.0)
        assert (
            streamed.postmortem.unknown_by_reason()
            == retained.postmortem.unknown_by_reason()
        )
        assert streamed.fault_stats.as_dict() == retained.fault_stats.as_dict()


class TestBoundedMemory:
    def test_peak_resident_bounded_by_batch_size(self, benchmark_name):
        streamed = profile_benchmark(
            benchmark_name, streaming=True, batch_size=BATCH
        )
        monitor = streamed.monitor
        assert monitor.n_accepted > BATCH  # the bound was actually exercised
        assert 0 < monitor.peak_resident <= BATCH

    def test_sink_mode_retains_nothing(self, benchmark_name):
        streamed = profile_benchmark(
            benchmark_name, streaming=True, batch_size=BATCH
        )
        assert streamed.monitor.samples == []
        assert streamed.postmortem.runtime_samples == []
        # ...but the counts still tell the whole story.
        assert streamed.postmortem.n_runtime > 0
        assert streamed.monitor.dataset_size_bytes() > 0

    def test_retain_mode_counters_match_list(self, benchmark_name):
        retained = profile_benchmark(benchmark_name)
        monitor = retained.monitor
        assert monitor.n_accepted == len(monitor.samples)
        assert monitor.peak_resident == 0  # never tracked without a sink
        assert monitor.dataset_size_bytes() == sum(
            8 + 8 * len(s.stack) for s in monitor.samples
        )


class TestConsumerContract:
    def samples_of(self, name):
        return list(profile_benchmark(name).monitor.samples)

    def test_chunked_feed_equals_one_shot(self):
        result = profile_benchmark("minimd")
        samples = self.samples_of("minimd")
        one_shot = process_samples(
            result.module,
            samples,
            options=result.static_info.options,
            tolerant=True,
        )
        consumer = PostmortemConsumer(
            result.module, options=result.static_info.options, tolerant=True
        )
        for k in range(0, len(samples), 7):
            consumer.feed(samples[k : k + 7])
        chunked = consumer.finish()
        assert chunked.instances == one_shot.instances
        assert chunked.n_raw == one_shot.n_raw
        assert chunked.n_runtime == one_shot.n_runtime

    def test_finish_twice_and_feed_after_finish_raise(self):
        result = profile_benchmark("minimd")
        consumer = PostmortemConsumer(result.module)
        consumer.finish()
        with pytest.raises(RuntimeError):
            consumer.finish()
        with pytest.raises(RuntimeError):
            consumer.feed([])

    def test_evidence_window_bounds_pending_candidates(self):
        result = profile_benchmark("minimd")
        injector = FaultInjector(
            FaultPlan.parse(FAULT_SPEC), module=result.module
        )
        degraded = injector.degrade_samples(self.samples_of("minimd"))
        window = 4
        consumer = PostmortemConsumer(
            result.module,
            options=result.static_info.options,
            tolerant=True,
            evidence_window=window,
        )
        for k in range(0, len(degraded), 16):
            consumer.feed(degraded[k : k + 16])
            assert consumer.pending_candidates <= window
        pm = consumer.finish()
        # Bounded-window recovery is best effort but must not lose
        # samples: every degraded record is either an instance, a
        # runtime sample, quarantined, or explicitly unknown.
        assert (
            pm.n_user + pm.n_runtime + len(pm.quarantined) + pm.n_unknown
            == pm.n_raw
        )

    def test_evidence_window_validation(self):
        result = profile_benchmark("minimd")
        with pytest.raises(ValueError):
            PostmortemConsumer(result.module, evidence_window=0)


class TestStreamingDegrader:
    def test_chunking_invariant(self):
        samples = list(profile_benchmark("minimd").monitor.samples)
        module = profile_benchmark("minimd").module
        plan = FaultPlan.parse(FAULT_SPEC)
        whole = FaultInjector(plan, module=module).degrade_samples(samples)
        for chunk in (1, 5, 64):
            degrade = FaultInjector(plan, module=module).degrader()
            piecewise = []
            for k in range(0, len(samples), chunk):
                piecewise.extend(degrade(samples[k : k + chunk]))
            assert piecewise == whole, f"chunk={chunk}"

    def test_clean_plan_degrader_is_identity(self):
        samples = list(profile_benchmark("minimd").monitor.samples)
        degrade = FaultInjector(FaultPlan()).degrader()
        assert degrade(samples) == samples
