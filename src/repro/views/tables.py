"""Plain-text table rendering shared by all views and the benchmark
harness (the tables print in the same shape as the paper's)."""

from __future__ import annotations


def render_table(
    headers: list[str],
    rows: list[list[str]],
    title: str | None = None,
    aligns: list[str] | None = None,
) -> str:
    """Monospace table with column sizing; aligns: 'l' or 'r' per col."""
    if aligns is None:
        aligns = ["l"] * len(headers)
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: list[str]) -> str:
        parts = []
        for cell, w, a in zip(cells, widths, aligns):
            parts.append(cell.rjust(w) if a == "r" else cell.ljust(w))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(headers))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(fmt_row(row))
    return "\n".join(lines)


def pct(fraction: float, digits: int = 1) -> str:
    return f"{100.0 * fraction:.{digits}f}%"
