"""Skid simulation and compensation tests (paper §IV.B future work,
implemented here as an extension)."""

import pytest

from repro.tooling.profiler import Profiler

import sys, os
sys.path.insert(0, os.path.dirname(os.path.dirname(__file__)))
from conftest import compile_src

WORK = """
var A: [0..59] real;
var B: [0..59] real;
proc main() {
  forall i in 0..59 {
    A[i] = sqrt(i * 1.0) + i * 0.5;
    B[i] = A[i] * 2.0;
  }
}
"""


def profile(module, skid=0, compensation=False):
    return Profiler(
        module, num_threads=4, threshold=311, skid=skid,
        skid_compensation=compensation,
    ).profile()


def raw_samples(module, skid=0, compensation=False):
    """Monitored run with overhead charging off, so sampling instants
    are identical across configurations (no timing feedback from the
    stack-walk cost)."""
    from repro.runtime.interpreter import Interpreter
    from repro.sampling.monitor import Monitor
    from repro.sampling.pmu import PMUConfig

    mon = Monitor(PMUConfig(threshold=311), charge_overhead=False)
    Interpreter(
        module, num_threads=4, monitor=mon, sample_threshold=311,
        skid=skid, skid_compensation=compensation,
    ).run()
    return mon.user_samples()


@pytest.fixture(scope="module")
def module():
    return compile_src(WORK)


class TestSkid:
    def test_skid_shifts_sample_ips(self, module):
        precise = profile(module)
        skidded = profile(module, skid=6)
        ips_precise = [s.leaf_iid for s in precise.monitor.user_samples()]
        ips_skidded = [s.leaf_iid for s in skidded.monitor.user_samples()]
        # Same count (every overflow still delivers)...
        assert abs(len(ips_precise) - len(ips_skidded)) <= 2
        # ...but the IPs drift (not identical streams).
        assert ips_precise != ips_skidded

    def test_compensation_restores_precise_stream(self, module):
        # With overhead charging off, sampling instants coincide, and
        # compensation must reproduce the zero-skid stream exactly —
        # per thread (delayed delivery reorders the *global* log).
        def per_thread(samples):
            out = {}
            for s in samples:
                out.setdefault(s.thread_id, []).append((s.leaf_iid, s.stack))
            return out

        a = per_thread(raw_samples(module))
        b = per_thread(raw_samples(module, skid=6, compensation=True))
        assert a == b

    def test_skid_hurts_attribution_compensation_restores_it(self, module):
        """The reason the paper wants skid compensation: skid crosses
        statement boundaries in tight loops and bleeds blame away."""
        precise = profile(module)
        skidded = profile(module, skid=6)
        comp = profile(module, skid=6, compensation=True)
        a_precise = precise.report.blame_of("A")
        assert a_precise > 0.3
        # Skid degrades the attribution (still nonzero)...
        assert 0.0 < skidded.report.blame_of("A") < a_precise
        # ...and compensation recovers most of it.
        assert comp.report.blame_of("A") > 0.8 * a_precise

    def test_compensated_blame_equals_precise(self, module):
        precise = profile(module)
        comp = profile(module, skid=6, compensation=True)
        for name in ("A", "B"):
            assert comp.report.blame_of(name) == pytest.approx(
                precise.report.blame_of(name)
            )

    def test_zero_skid_is_default_path(self, module):
        a = profile(module)
        b = profile(module, skid=0, compensation=True)  # no-op pairing
        assert a.monitor.n_samples == b.monitor.n_samples
