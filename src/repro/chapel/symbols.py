"""Symbol tables and lexical scopes for the mini-Chapel frontend.

A :class:`Scope` chain resolves identifiers during lowering.  Each
:class:`Symbol` remembers whether it is a *global* (Chapel module-level
variable — the paper's ``main``-context variables like MiniMD's ``Pos``),
a formal parameter (with intent), or a local, because the blame
analysis classifies exit variables from exactly this information.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from .errors import NameError_
from .tokens import SourceLocation
from .types import Type


@dataclass
class Symbol:
    """A named storage location visible in some scope."""

    name: str
    type: Type
    kind: str  # "var", "const", "param", "global", "formal", "index"
    loc: SourceLocation | None = None
    intent: str = "in"  # for formals: in/ref/out/inout/param
    is_config: bool = False
    #: IR-level storage id assigned during lowering (alloca or global slot).
    storage: object | None = None
    #: Compile-time constant value for `param` symbols.
    param_value: object | None = None

    @property
    def is_global(self) -> bool:
        return self.kind == "global"

    @property
    def is_ref_formal(self) -> bool:
        return self.kind == "formal" and self.intent in ("ref", "out", "inout")


@dataclass
class Scope:
    """One lexical scope; ``parent`` forms the resolution chain."""

    parent: "Scope | None" = None
    symbols: dict[str, Symbol] = field(default_factory=dict)

    def define(self, sym: Symbol) -> Symbol:
        if sym.name in self.symbols:
            raise NameError_(f"duplicate definition of {sym.name!r}", sym.loc)
        self.symbols[sym.name] = sym
        return sym

    def lookup(self, name: str) -> Symbol | None:
        scope: Scope | None = self
        while scope is not None:
            sym = scope.symbols.get(name)
            if sym is not None:
                return sym
            scope = scope.parent
        return None

    def resolve(self, name: str, loc: SourceLocation | None = None) -> Symbol:
        sym = self.lookup(name)
        if sym is None:
            raise NameError_(f"undefined identifier {name!r}", loc)
        return sym

    def child(self) -> "Scope":
        return Scope(parent=self)

    def iter_local(self) -> Iterator[Symbol]:
        """Symbols defined directly in this scope (not inherited)."""
        return iter(self.symbols.values())
