"""High-level tool facade: the :class:`Profiler` pipeline and the CLI."""

from .profiler import ProfileResult, Profiler, run_only

__all__ = ["ProfileResult", "Profiler", "run_only"]
