"""P2 — Sliced parallel collection scaling (the --collect-workers path).

Measures, per paper workload:

* ``serial_seconds``   — one single-monitor collection pass
  (:func:`repro.pipeline.stages.collect_stage`, the identity witness);
* per worker count N   — the virtual-clock-sliced collection
  (:func:`repro.pipeline.parallel.parallel_collect`, inline backend,
  **warm census cache**), recording each slice's worker-measured time,
  the parent's reassembly time, and the **modeled critical-path
  speedup** ``serial / (max(slice_seconds) + merge_seconds)`` — what
  the wall clock would show with one idle core per slice worker;
* ``census_seconds``   — the cold boundary census, reported separately:
  it is the one-time price of the first profile of a module, amortized
  across every later sliced run by the plan cache (the
  run-once/analyze-many pattern the artifact pipeline already exploits).

The modeled number is reported *as* modeled, never passed off as wall
time, for the same reason as ``bench_parallel_collect.py``: CI hosts
may have fewer cores than slices, where real pool wall time measures
contention, not the algorithm.  The inline backend runs the identical
slice tasks without transport, so slice timings are the honest
per-worker costs.

Every measured configuration also asserts byte-identity of the
reassembled stream with the serial monitor's — a scaling number for a
wrong answer would be worthless.

Results land in ``BENCH_collect.json`` at the repository root.  Run
directly (``python benchmarks/bench_parallel_collect2.py``) or via
pytest; the pytest smoke asserts identity always and gates on a >= 2x
modeled speedup at 4 workers.
"""

from __future__ import annotations

import json
import os
import time

from repro.bench.harness import host_info
from repro.bench.programs import lulesh, minimd
from repro.pipeline import collect_stage, compile_stage
from repro.pipeline.parallel import parallel_collect
from repro.runtime.checkpoint import plan_slices

NUM_THREADS = 12
THRESHOLD = 4999
WORKER_COUNTS = (1, 2, 4, 8)
ROUNDS = 3

RESULT_PATH = os.path.join(
    os.path.dirname(__file__), "..", "BENCH_collect.json"
)

WORKLOADS = {
    "minimd": ("minimd.chpl", lambda: minimd.build_source(), minimd.config_for),
    "lulesh": ("lulesh.chpl", lambda: lulesh.build_source(), lulesh.config_for),
}


def _timed(fn) -> tuple[float, object]:
    t0 = time.perf_counter()
    out = fn()
    return time.perf_counter() - t0, out


def _best_of(fn) -> tuple[float, object]:
    best, keep = float("inf"), None
    for _ in range(ROUNDS):
        t, out = _timed(fn)
        if t < best:
            best, keep = t, out
    return best, keep


def measure_workload(name: str) -> dict:
    filename, build, config_for = WORKLOADS[name]
    module = compile_stage(build(), filename)
    config = config_for()

    def serial_pass():
        return collect_stage(
            module,
            config=config,
            num_threads=NUM_THREADS,
            threshold=THRESHOLD,
        )

    serial_seconds, serial = _best_of(serial_pass)
    serial_stream = serial.monitor.sealed_stream()

    sweep = {}
    census_by_workers = {}
    for workers in WORKER_COUNTS:
        # Cold census, measured once per worker count (cache bypassed),
        # then the sweep below runs entirely on the warm cache.
        cold = plan_slices(
            module,
            workers,
            config=config,
            num_threads=NUM_THREADS,
            threshold=THRESHOLD,
            use_cache=False,
        )
        census_by_workers[str(workers)] = round(cold.census_seconds, 5)
        plan_slices(  # prime the cache for the measured runs
            module,
            workers,
            config=config,
            num_threads=NUM_THREADS,
            threshold=THRESHOLD,
        )
        best = None
        for _ in range(ROUNDS):
            pc = parallel_collect(
                module,
                workers,
                backend="inline",
                config=config,
                num_threads=NUM_THREADS,
                threshold=THRESHOLD,
            )
            # A scaling number for a wrong answer would be worthless.
            assert pc.sealed_stream == serial_stream, f"{name} w={workers}"
            assert pc.census_cached, f"{name} w={workers}: cold census"
            if best is None or (
                pc.critical_path_seconds < best.critical_path_seconds
            ):
                best = pc
        sweep[str(workers)] = {
            "slice_counts": best.slice_counts,
            "max_slice_seconds": round(max(best.slice_seconds), 5),
            "merge_seconds": round(best.merge_seconds, 5),
            "critical_path_seconds": round(best.critical_path_seconds, 5),
            "inline_pool_wall_seconds": round(best.pool_seconds, 5),
            "modeled_speedup": round(
                serial_seconds / max(best.critical_path_seconds, 1e-9), 2
            ),
        }
    return {
        "n_samples": serial.monitor.n_accepted,
        "serial_seconds": round(serial_seconds, 5),
        "census_seconds": census_by_workers,
        "workers": sweep,
    }


def run_collect_bench() -> dict:
    results = {
        "config": {
            "num_threads": NUM_THREADS,
            "threshold": THRESHOLD,
            "backend": "inline",
            "metric": (
                "modeled critical-path speedup: serial collection /"
                " (max worker-measured slice time + parent merge),"
                " warm census cache; see module docstring"
            ),
        },
        "host": host_info(),
        "workloads": {name: measure_workload(name) for name in WORKLOADS},
    }
    with open(os.path.abspath(RESULT_PATH), "w") as f:
        json.dump(results, f, indent=2)
        f.write("\n")
    return results


def render(results: dict) -> str:
    lines = [
        "sliced collection scaling (modeled critical-path speedup, "
        f"host cores: {results['host']['cpu_count']})"
    ]
    for name, r in results["workloads"].items():
        lines.append(
            f"  {name:7s} {r['n_samples']:6d} samples  "
            f"serial {r['serial_seconds']:.3f}s"
        )
        for w, s in r["workers"].items():
            lines.append(
                f"    w={w}: critical path {s['critical_path_seconds']:.3f}s"
                f" (max slice {s['max_slice_seconds']:.3f}s"
                f" + merge {s['merge_seconds']:.3f}s,"
                f" cold census {r['census_seconds'][w]:.3f}s)"
                f"  -> {s['modeled_speedup']:.2f}x"
            )
    return "\n".join(lines)


def test_collect_scaling():
    results = run_collect_bench()
    print("\n" + render(results))
    for name, r in results["workloads"].items():
        # The acceptance gate: >= 2x modeled collection speedup at 4
        # workers (identity is asserted inside measure_workload on
        # every measured configuration).
        w4 = r["workers"]["4"]["modeled_speedup"]
        assert w4 >= 2.0, f"{name}: {w4}x at 4 workers"


if __name__ == "__main__":
    print(render(run_collect_bench()))
