"""CLOMP problem-shape sweep (paper §V.B / Table V): how the
flattening optimization's payoff depends on the parts/zones shape.

Zone-dominated shapes see the full win from replacing the nested
Part→zoneArray→Zone structure with one 2-D array; part-heavy shapes are
memory-bound either way and the speedup compresses toward 1.

Run:  python examples/clomp_sweep.py  [--quick]
"""

import sys

from repro.bench import harness
from repro.bench.programs import clomp
from repro.views import render_data_centric


def main() -> None:
    quick = "--quick" in sys.argv

    print("=" * 72)
    print("Blame profile of the original CLOMP (paper Table IV)")
    print("=" * 72)
    prof = harness.clomp_profile(optimized=False)
    print(render_data_centric(prof.report, top=10, min_blame=0.02))
    print()
    print(
        "The '->' rows walk the hierarchy: partArray -> partArray[i] ->\n"
        ".zoneArray[j] -> .value — the field actually responsible."
    )

    print()
    print("=" * 72)
    print("Shape sweep (paper Table V)")
    print("=" * 72)
    shapes = clomp.TABLE_V_SHAPES[:2] if quick else clomp.TABLE_V_SHAPES
    print(f"{'paper shape':<14} {'ours':<10} {'speedup':>8} {'w/ fast':>8}")
    for label, parts, zones in shapes:
        r = harness.clomp_speedups_for_shape(parts, zones)
        print(
            f"{label:<14} {f'{parts}/{zones}':<10} "
            f"{r.speedup('opt', 'orig'):>8.2f} "
            f"{r.speedup('opt/fast', 'orig/fast'):>8.2f}"
        )
    print("(paper w/o fast: 1.84, 1.09, 2.13, 1.10)")


if __name__ == "__main__":
    main()
