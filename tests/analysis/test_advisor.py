"""Advisor-pass tests: each rule fires on the paper's original
benchmark code and disappears (or downgrades) on the optimized variant,
plus targeted micro-sources per rule."""

import pytest

from repro.analysis import Severity, analyze_module
from repro.bench.programs import clomp, lulesh, minimd
from repro.compiler.lower import compile_source


def findings_for(source, filename="test.chpl", rules=None):
    module = compile_source(source, filename)
    return analyze_module(module, passes=rules)


def rules_of(findings):
    return {f.rule for f in findings}


@pytest.fixture(scope="module")
def minimd_orig():
    return findings_for(minimd.build_source(optimized=False), "minimd.chpl")


@pytest.fixture(scope="module")
def minimd_opt():
    return findings_for(minimd.build_source(optimized=True), "minimd.chpl")


@pytest.fixture(scope="module")
def clomp_orig():
    return findings_for(clomp.build_source(optimized=False), "clomp.chpl")


@pytest.fixture(scope="module")
def clomp_opt():
    return findings_for(clomp.build_source(optimized=True), "clomp.chpl")


@pytest.fixture(scope="module")
def lulesh_orig():
    return findings_for(lulesh.build_source(lulesh.ORIGINAL), "lulesh.chpl")


@pytest.fixture(scope="module")
def lulesh_best():
    return findings_for(lulesh.build_source(lulesh.BEST_CASE), "lulesh.chpl")


class TestPaperOptimizationsDetected:
    """The paper's hand optimizations, found statically (acceptance)."""

    def test_minimd_zippered_iteration_found(self, minimd_orig):
        zipped = [f for f in minimd_orig if f.rule == "zippered-iteration"]
        assert zipped, "MiniMD original must report zippered iteration"
        # the paper's fix touched computeForce and buildNeighbors
        assert {"computeForce", "buildNeighbors"} <= {f.function for f in zipped}

    def test_minimd_domain_remap_found(self, minimd_orig):
        assert "loop-domain-remap" in rules_of(minimd_orig)

    def test_minimd_optimized_is_clean(self, minimd_opt):
        assert minimd_opt == []

    def test_clomp_flattening_found(self, clomp_orig):
        flat = [f for f in clomp_orig if f.rule == "record-flattening"]
        assert flat, "CLOMP original must report the zoneArray indirection"
        assert any("zoneArray" in f.variables for f in flat)
        assert any(f.function == "update_part" for f in flat)

    def test_clomp_flattening_gone_when_optimized(self, clomp_opt):
        assert "record-flattening" not in rules_of(clomp_opt)

    def test_lulesh_tuple_temporaries_found(self, lulesh_orig):
        tup = [f for f in lulesh_orig if f.rule == "tuple-temporaries"]
        assert [f.function for f in tup] == ["CalcElemNodeNormals"]

    def test_lulesh_vg_targets_found(self, lulesh_orig):
        hoist = [f for f in lulesh_orig if f.rule == "hoistable-allocation"]
        names = {v for f in hoist for v in f.variables}
        # The arrays the paper moved to module scope (Variable
        # Globalization): dvdx/dvdy/dvdz and determ.
        assert {"dvdx", "dvdy", "dvdz", "determ"} <= names

    def test_lulesh_best_case_has_no_warnings(self, lulesh_best):
        assert all(f.severity < Severity.WARNING for f in lulesh_best)

    def test_lulesh_cenn_only_removes_tuple_finding(self):
        fs = findings_for(lulesh.build_source(lulesh.CENN_ONLY), "lulesh.chpl")
        assert "tuple-temporaries" not in rules_of(fs)
        assert "hoistable-allocation" in rules_of(fs)

    def test_lulesh_vg_only_removes_hoist_finding(self):
        fs = findings_for(lulesh.build_source(lulesh.VG_ONLY), "lulesh.chpl")
        assert "hoistable-allocation" not in rules_of(fs)
        assert "tuple-temporaries" in rules_of(fs)


class TestZipperedRule:
    def test_fires_in_loop(self):
        src = """
var A: [0..9] real;
var B: [0..9] real;
proc main() {
  for step in 1..50 {
    for (a, b) in zip(A, B) {
      b = a + 1.0;
    }
  }
}
"""
        fs = findings_for(src, rules=["zippered-iteration"])
        assert len(fs) == 1
        assert fs[0].severity is Severity.WARNING
        assert set(fs[0].variables) == {"A", "B"}

    def test_cold_zip_is_info(self):
        src = """
var A: [0..9] real;
var B: [0..9] real;
proc main() {
  for (a, b) in zip(A, B) {
    b = a + 1.0;
  }
}
"""
        fs = findings_for(src, rules=["zippered-iteration"])
        assert len(fs) == 1
        assert fs[0].severity is Severity.INFO


class TestDomainRemapRule:
    def test_slice_in_loop(self):
        src = """
var A: [0..99] real;
proc main() {
  for i in 1..10 {
    var V = A[0..50];
    V[i] = 1.0;
  }
}
"""
        fs = findings_for(src, rules=["loop-domain-remap"])
        assert fs and fs[0].rule == "loop-domain-remap"
        assert "A" in fs[0].variables

    def test_hoisted_slice_not_flagged(self):
        src = """
var A: [0..99] real;
proc main() {
  var V = A[0..50];
  for i in 1..10 {
    V[i] = 1.0;
  }
}
"""
        assert findings_for(src, rules=["loop-domain-remap"]) == []


class TestTupleTemporariesRule:
    def test_below_threshold_quiet(self):
        src = """
proc main() {
  var s = 0.0;
  for i in 1..100 {
    var t = (1.0, 2.0, 3.0);
    s = s + t[0];
  }
  writeln(s);
}
"""
        assert findings_for(src, rules=["tuple-temporaries"]) == []


class TestHoistableAllocationRule:
    def test_alloc_in_loop(self):
        src = """
proc main() {
  for i in 1..10 {
    var scratch: [0..63] real;
    scratch[0] = i * 1.0;
  }
}
"""
        fs = findings_for(src, rules=["hoistable-allocation"])
        assert fs and "scratch" in fs[0].variables

    def test_per_call_alloc_in_loop_resident_function(self):
        src = """
const D = {0..63};
proc work() {
  var scratch: [D] real;
  scratch[0] = 1.0;
}
proc main() {
  for i in 1..10 {
    work();
  }
}
"""
        fs = findings_for(src, rules=["hoistable-allocation"])
        assert fs and fs[0].function == "work"

    def test_alloc_in_main_entry_not_flagged(self):
        src = """
proc main() {
  var data: [0..63] real;
  data[0] = 1.0;
}
"""
        assert findings_for(src, rules=["hoistable-allocation"]) == []


class TestParamUnrollRule:
    def test_small_literal_loop(self):
        src = """
proc main() {
  var s = 0;
  for i in 0..5 {
    s = s + i;
  }
  writeln(s);
}
"""
        fs = findings_for(src, rules=["param-unroll"])
        assert len(fs) == 1
        assert fs[0].severity is Severity.INFO
        assert fs[0].variables == ("i",)

    def test_large_trip_not_flagged(self):
        src = """
proc main() {
  var s = 0;
  for i in 0..100 {
    s = s + i;
  }
  writeln(s);
}
"""
        assert findings_for(src, rules=["param-unroll"]) == []

    def test_param_loop_produces_no_counter(self):
        src = """
proc main() {
  var s = 0;
  for param i in 0..5 {
    s = s + i;
  }
  writeln(s);
}
"""
        assert findings_for(src, rules=["param-unroll"]) == []


class TestPassSelection:
    def test_unknown_rule_raises(self):
        src = "proc main() { writeln(1); }"
        module = compile_source(src, "t.chpl")
        with pytest.raises(KeyError):
            analyze_module(module, passes=["no-such-rule"])

    def test_rule_subset_only_runs_selected(self, minimd_orig):
        module = compile_source(
            minimd.build_source(optimized=False), "minimd.chpl"
        )
        only = analyze_module(module, passes=["zippered-iteration"])
        assert rules_of(only) == {"zippered-iteration"}
        assert len(only) == len(
            [f for f in minimd_orig if f.rule == "zippered-iteration"]
        )
