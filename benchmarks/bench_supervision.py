"""P2 — Worker-supervision overhead, recovery cost, and blame stability.

Three questions about the supervised pool
(:mod:`repro.pipeline.supervisor`), answered per paper workload over one
collected sample stream:

* **clean-path overhead** — the supervised fan-out (state machine,
  dispatch accounting, no faults injected) vs the retained unsupervised
  fast path, same shards, same backend.  The contract is <= 3% on the
  pool phase: supervision may not tax runs that never fail.
* **recovery cost** — wall-clock of the supervised fan-out under
  seeded ``worker-crash-rate`` schedules (every retry eventually
  succeeds), vs the clean supervised run.  Every measured point asserts
  exact equality with the serial post-mortem first — a recovery number
  for a wrong answer would be worthless.
* **blame stability under permanent loss** — at a 25% worker-fault
  rate (2 of 8 shards dead beyond the retry budget), the degraded
  report's ranking vs the clean run: Kendall-τ and top-5 overlap
  (:mod:`repro.resilience.stability` metrics, ``<unknown>`` excluded).
  The paper's data-centric rankings should survive losing a quarter of
  the workers.

The inline backend runs the identical state machine the pool backends
do, deterministically and without transport noise — the honest cost of
supervision itself (pickling and process scheduling are covered by the
tier-1 process-backend tests).

Results land in ``BENCH_supervision.json`` at the repository root.  Run
directly (``python benchmarks/bench_supervision.py``) or via pytest;
the pytest smoke asserts equality always and only generous overhead /
stability floors so shared CI hosts never flake — representative
numbers live in the JSON.
"""

from __future__ import annotations

import json
import os
import time

from repro.bench.harness import host_info
from repro.bench.programs import lulesh, minimd
from repro.pipeline import (
    SupervisorConfig,
    analyze_stage,
    attribute_stage,
    collect_stage,
    compile_stage,
    parallel_postmortem,
    postmortem_stage,
)
from repro.resilience.faults import FaultPlan
from repro.resilience.stability import kendall_tau, top_n_overlap

NUM_THREADS = 12
THRESHOLD = 4999
WORKERS = 4
ROUNDS = 5
CRASH_RATES = (0.1, 0.25, 0.5)

RESULT_PATH = os.path.join(
    os.path.dirname(__file__), "..", "BENCH_supervision.json"
)

WORKLOADS = {
    "minimd": ("minimd.chpl", lambda: minimd.build_source(), minimd.config_for),
    "lulesh": ("lulesh.chpl", lambda: lulesh.build_source(), lulesh.config_for),
}


def _collected(name: str):
    filename, build, config_for = WORKLOADS[name]
    module = compile_stage(build(), filename)
    static = analyze_stage(module)
    coll = collect_stage(
        module,
        config=config_for(),
        num_threads=NUM_THREADS,
        threshold=THRESHOLD,
    )
    return module, static, coll.monitor.samples, coll.run_result.wall_seconds


def _best_pool_seconds(run, rounds: int = ROUNDS):
    """Best-of pool-phase wall time; returns (seconds, last result)."""
    best, keep = float("inf"), None
    for _ in range(rounds):
        par = run()
        if par.pool_seconds < best:
            best, keep = par.pool_seconds, par
    return best, keep


def measure_overhead(name: str) -> dict:
    """Supervised-but-clean vs the unsupervised fast path."""
    module, static, samples, wall = _collected(name)
    serial_pm = postmortem_stage(module, samples, options=static.options)
    serial_attr = attribute_stage(static, serial_pm)

    def unsupervised():
        return parallel_postmortem(
            module, static, samples, workers=WORKERS, backend="inline",
            wall_seconds=wall,
        )

    def supervised():
        return parallel_postmortem(
            module, static, samples, workers=WORKERS, backend="inline",
            wall_seconds=wall, supervision=SupervisorConfig(),
        )

    base_s, base = _best_pool_seconds(unsupervised)
    sup_s, sup = _best_pool_seconds(supervised)
    for par in (base, sup):
        assert par.postmortem == serial_pm, name
        assert par.attribution == serial_attr, name
    assert sup.supervision is not None and not sup.supervision.any_faults
    return {
        "n_samples": len(samples),
        "unsupervised_pool_seconds": round(base_s, 6),
        "supervised_pool_seconds": round(sup_s, 6),
        "overhead_pct": round(100.0 * (sup_s - base_s) / base_s, 2),
    }


def measure_recovery(name: str) -> dict:
    """Wall-clock of eventually-succeeding crash schedules vs clean."""
    module, static, samples, wall = _collected(name)
    serial_pm = postmortem_stage(module, samples, options=static.options)

    def run(plan):
        return parallel_postmortem(
            module, static, samples, workers=WORKERS, backend="inline",
            wall_seconds=wall,
            supervision=SupervisorConfig(
                plan=plan, max_retries=10, backoff=0.0005,
            ),
        )

    def timed_best(plan):
        best, keep = float("inf"), None
        for _ in range(ROUNDS):
            t0 = time.perf_counter()
            par = run(plan)
            t = time.perf_counter() - t0
            if t < best:
                best, keep = t, par
        return best, keep

    clean_s, clean = timed_best(None)
    assert clean.postmortem == serial_pm, name
    sweep = {}
    for rate in CRASH_RATES:
        plan = FaultPlan(seed=1, worker_crash_rate=rate)
        t, par = timed_best(plan)
        # Recovery must land on the serial answer exactly.
        assert par.postmortem == serial_pm, f"{name} rate={rate}"
        assert par.degraded_shards == (), f"{name} rate={rate}"
        sweep[str(rate)] = {
            "wall_seconds": round(t, 6),
            "slowdown_vs_clean": round(t / max(clean_s, 1e-9), 3),
            "retries": par.supervision.retries,
            "crashes": par.supervision.crashes,
        }
    return {
        "clean_wall_seconds": round(clean_s, 6),
        "rates": sweep,
    }


def measure_stability(name: str) -> dict:
    """Blame-ranking agreement after losing 2 of 8 workers for good."""
    module, static, samples, wall = _collected(name)
    clean = parallel_postmortem(
        module, static, samples, workers=8, backend="inline",
        wall_seconds=wall,
    )
    degraded = parallel_postmortem(
        module, static, samples, workers=8, backend="inline",
        wall_seconds=wall,
        supervision=SupervisorConfig(
            plan=FaultPlan(worker_dead_tasks=(2, 5)),
            max_retries=1, backoff=0.0,
        ),
    )
    assert degraded.degraded_shards == (2, 5), name
    c_report = clean.snapshot.report
    d_report = degraded.snapshot.report
    lost = sum(degraded.shard_sizes[i] for i in (2, 5))
    return {
        "workers": 8,
        "dead_shards": [2, 5],
        "worker_fault_rate": 0.25,
        "lost_samples": lost,
        "lost_fraction": round(lost / max(len(samples), 1), 4),
        "kendall_tau": round(kendall_tau(c_report, d_report), 4),
        "top5_overlap": round(top_n_overlap(c_report, d_report, 5), 4),
        "unknown_samples_degraded": d_report.stats.unknown_samples,
    }


def run_supervision_bench() -> dict:
    results = {
        "config": {
            "num_threads": NUM_THREADS,
            "threshold": THRESHOLD,
            "workers": WORKERS,
            "backend": "inline",
            "rounds": ROUNDS,
            "metric": (
                "overhead: supervised vs unsupervised pool-phase wall"
                " (best-of); recovery: whole-call wall under seeded"
                " worker-crash-rate, retries always win; stability:"
                " ranking agreement after 2/8 shards degrade"
            ),
        },
        "host": host_info(),
        "overhead": {n: measure_overhead(n) for n in WORKLOADS},
        "recovery": {n: measure_recovery(n) for n in WORKLOADS},
        "stability": {n: measure_stability(n) for n in WORKLOADS},
    }
    with open(os.path.abspath(RESULT_PATH), "w") as f:
        json.dump(results, f, indent=2)
        f.write("\n")
    return results


def render(results: dict) -> str:
    lines = [
        "worker supervision "
        f"(host cores: {results['host']['cpu_count']})"
    ]
    for name, o in results["overhead"].items():
        lines.append(
            f"  {name:7s} clean-path overhead "
            f"{o['overhead_pct']:+.2f}% "
            f"({o['unsupervised_pool_seconds']:.4f}s -> "
            f"{o['supervised_pool_seconds']:.4f}s, "
            f"{o['n_samples']} samples)"
        )
    for name, r in results["recovery"].items():
        for rate, p in r["rates"].items():
            lines.append(
                f"  {name:7s} crash-rate {rate}: "
                f"{p['wall_seconds']:.4f}s "
                f"({p['slowdown_vs_clean']:.2f}x clean, "
                f"{p['retries']} retries)"
            )
    for name, s in results["stability"].items():
        lines.append(
            f"  {name:7s} 25% workers dead: tau={s['kendall_tau']:+.2f} "
            f"top5={s['top5_overlap']:.2f} "
            f"(lost {s['lost_fraction']:.0%} of samples)"
        )
    return "\n".join(lines)


def test_supervision_bench():
    results = run_supervision_bench()
    print("\n" + render(results))
    for name, o in results["overhead"].items():
        # Contract is <=3% on the recording host (see the JSON); the CI
        # floor is generous so loaded shared runners never flake.
        assert o["overhead_pct"] <= 15.0, f"{name}: {o['overhead_pct']}%"
    for name, s in results["stability"].items():
        assert s["kendall_tau"] >= 0.8, f"{name}: tau {s['kendall_tau']}"
        assert s["top5_overlap"] >= 0.8, f"{name}: {s['top5_overlap']}"


if __name__ == "__main__":
    print(render(run_supervision_bench()))
