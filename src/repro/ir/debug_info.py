"""Debug-info helpers: variable bindings and line tables.

The paper had to *add* debug-info generation to Chapel's LLVM frontend
(§IV.A); here the lowering emits it natively, and this module provides
the query side: given an instruction id, find its (file, line); given a
storage root, find the source variable it binds.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..chapel.tokens import SourceLocation
from ..chapel.types import Type
from .instructions import Alloca, Instruction
from .module import Function, Module


@dataclass(frozen=True)
class VariableInfo:
    """Debug record for one source (or temporary) variable."""

    name: str
    type: Type
    func: str | None  # None for globals ("main" context in paper tables)
    loc: SourceLocation
    is_temp: bool
    is_global: bool

    @property
    def context(self) -> str:
        """The paper's "Context" column: defining function, or main for
        module-level variables."""
        return self.func if self.func is not None else "main"


class LineTable:
    """iid → SourceLocation map for a module (the DWARF line table
    analogue that DyninstAPI queries in paper §IV.C)."""

    def __init__(self, module: Module) -> None:
        self._map: dict[int, SourceLocation] = {}
        self._func_of: dict[int, str] = {}
        for f, instr in module.all_instructions():
            self._map[instr.iid] = instr.loc
            self._func_of[instr.iid] = f.name
        self.module = module

    def resolve(self, iid: int) -> SourceLocation | None:
        return self._map.get(iid)

    def function_of(self, iid: int) -> str | None:
        return self._func_of.get(iid)

    def lines_of_function(self, fname: str) -> set[int]:
        f = self.module.get_function(fname)
        if f is None:
            return set()
        return {i.loc.line for i in f.instructions()}


def collect_variables(module: Module) -> list[VariableInfo]:
    """All variable bindings in the module: globals + per-function allocas."""
    out: list[VariableInfo] = []
    for g in module.globals.values():
        out.append(
            VariableInfo(
                name=g.name,
                type=g.type,
                func=None,
                loc=g.loc,
                is_temp=g.is_temp,
                is_global=True,
            )
        )
    for f in module.functions.values():
        for instr in f.instructions():
            if isinstance(instr, Alloca):
                out.append(
                    VariableInfo(
                        name=instr.var_name,
                        type=instr.alloc_type,
                        func=f.source_name,
                        loc=instr.loc,
                        is_temp=instr.is_temp,
                        is_global=False,
                    )
                )
    return out


def instruction_location(instr: Instruction) -> SourceLocation:
    return instr.loc


def function_line_range(f: Function) -> tuple[int, int]:
    """(first, last) source line covered by a function's instructions."""
    lines = [i.loc.line for i in f.instructions()]
    if not lines:
        return (f.loc.line, f.loc.line)
    return (min(lines), max(lines))
