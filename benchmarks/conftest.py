"""Shared benchmark helpers: result recording and paper-comparison
rendering.

Every benchmark regenerates one table/figure of the paper (DESIGN.md §4)
and writes its rendered output under ``benchmarks/results/`` so the
paper-vs-measured record (EXPERIMENTS.md) can be refreshed from a run.
"""

from __future__ import annotations

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def record_result(name: str, text: str) -> str:
    """Saves (and echoes) one experiment's rendered output."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as f:
        f.write(text + "\n")
    print(f"\n{text}\n[saved to {path}]")
    return path


@pytest.fixture
def record():
    return record_result


def run_once(benchmark, fn, *args, **kwargs):
    """pytest-benchmark wrapper: simulator runs are deterministic, so a
    single round is both sufficient and honest."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
