"""Hybrid view — "blame points" (paper §IV.D).

"Blame points are points in the program that are deemed to have
interesting variables; the most common one is the main function, since
the variables in there cannot be bubbled up any further in the call
stack."

The view groups the blame rows by their context (the function where the
variable lives after bubbling), ranks the blame points by total
attributed samples, and lists each point's variables — code-centric in
structure, data-centric in content.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..blame.report import BlameReport, BlameRow
from .adaptive import adaptive_lines
from .degradation import degradation_lines
from .tables import pct, render_table

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from ..analysis.diagnostics import Finding


@dataclass
class BlamePoint:
    """One context (function) and its blamed variables."""

    context: str
    rows: list[BlameRow]

    @property
    def total_samples(self) -> int:
        return sum(r.samples for r in self.rows)


def build_blame_points(report: BlameReport, min_blame: float = 0.0) -> list[BlamePoint]:
    by_context: dict[str, list[BlameRow]] = {}
    for row in report.rows:
        if row.blame < min_blame:
            continue
        by_context.setdefault(row.context, []).append(row)
    points = [BlamePoint(ctx, rows) for ctx, rows in by_context.items()]
    # main first (the canonical blame point), then by weight.
    points.sort(key=lambda p: (p.context != "main", -p.total_samples, p.context))
    return points


def render_hybrid(
    report: BlameReport,
    min_blame: float = 0.005,
    per_point: int = 8,
    findings: "list[Finding] | None" = None,
    adaptive: dict | None = None,
) -> str:
    """Renders the blame points; when advisor ``findings`` are given,
    each blame point also lists the static recommendations anchored in
    that context (rule id, location, first line of the message) — the
    "what to do about it" column next to "where the samples went"."""
    points = build_blame_points(report, min_blame=min_blame)
    by_context: dict[str, list["Finding"]] = {}
    for f in findings or []:
        by_context.setdefault(f.function, []).append(f)
    sections: list[str] = [f"Hybrid view (blame points): {report.program}"]
    for point in points:
        rows = [
            [r.name, r.type_str, pct(r.blame)]
            for r in point.rows[:per_point]
        ]
        sections.append(
            render_table(
                ["Name", "Type", "Blame"],
                rows,
                title=f"\n== blame point: {point.context} ==",
                aligns=["l", "l", "r"],
            )
        )
        for f in by_context.pop(point.context, []):
            sections.append(
                f"  advice [{f.rule}] {f.where}: {f.message}"
            )
    leftovers = [f for fs in by_context.values() for f in fs]
    if leftovers:
        sections.append("\n== advice outside blame points ==")
        sections.extend(
            f"  advice [{f.rule}] {f.where} ({f.function}): {f.message}"
            for f in leftovers
        )
    notes = degradation_lines(report) + adaptive_lines(adaptive)
    if notes:
        sections.append("")
        sections.extend(notes)
    return "\n".join(sections)
