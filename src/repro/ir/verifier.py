"""IR structural verifier.

Run after lowering and after every optimization pass (the ``--fast``
pipeline) to catch malformed IR early: the blame analysis and the
interpreter both assume these invariants.
"""

from __future__ import annotations

from .instructions import Alloca, Br, CBr, Instruction, Register, Ret
from .module import Function, Module


class VerificationError(Exception):
    """Raised when the IR violates a structural invariant."""


def verify_function(f: Function, module: Module | None = None) -> None:
    if not f.blocks:
        raise VerificationError(f"{f.name}: function has no blocks")

    seen_iids: set[int] = set()
    defined_regs: set[int] = {p.register.rid for p in f.params}
    block_set = set(f.blocks)

    for block in f.blocks:
        if not block.instructions:
            raise VerificationError(f"{f.name}/{block.label}: empty block")
        term = block.instructions[-1]
        if not term.is_terminator():
            raise VerificationError(
                f"{f.name}/{block.label}: block does not end in a terminator "
                f"(last is {term.opname})"
            )
        for i, instr in enumerate(block.instructions):
            if instr.iid in seen_iids:
                raise VerificationError(
                    f"{f.name}: duplicate instruction id {instr.iid}"
                )
            seen_iids.add(instr.iid)
            if instr.is_terminator() and i != len(block.instructions) - 1:
                raise VerificationError(
                    f"{f.name}/{block.label}: terminator {instr.opname} "
                    f"in mid-block position {i}"
                )
            if instr.result is not None:
                if instr.result.rid in defined_regs:
                    raise VerificationError(
                        f"{f.name}: register {instr.result} defined twice"
                    )
                defined_regs.add(instr.result.rid)
        if isinstance(term, Br) and term.target not in block_set:
            raise VerificationError(
                f"{f.name}/{block.label}: branch to foreign block "
                f"{getattr(term.target, 'label', term.target)}"
            )
        if isinstance(term, CBr):
            for t in (term.then_block, term.else_block):
                if t not in block_set:
                    raise VerificationError(
                        f"{f.name}/{block.label}: cbr to foreign block "
                        f"{getattr(t, 'label', t)}"
                    )

    # Every register operand must be defined somewhere in this function
    # (we don't enforce dominance — the -O0 style lowering guarantees it
    # structurally, and allocas all sit in the entry block).
    for block in f.blocks:
        for instr in block.instructions:
            for op in instr.operands():
                if isinstance(op, Register) and op.rid not in defined_regs:
                    raise VerificationError(
                        f"{f.name}: use of undefined register {op} in "
                        f"[{instr.iid}] {instr}"
                    )

    # Non-void functions must return a value on every ret.
    from ..chapel.types import VoidType

    if not isinstance(f.return_type, VoidType):
        for block in f.blocks:
            term = block.instructions[-1]
            if isinstance(term, Ret) and term.value is None:
                raise VerificationError(
                    f"{f.name}: ret without value in non-void function"
                )


def verify_debug_info(f: Function) -> None:
    """Debug-location invariants the static-analysis passes rely on.

    Every finding is anchored to a (file, line) resolved from IR debug
    info, so every lowered instruction must carry a usable location —
    the property the paper's authors had to add to Chapel's LLVM
    frontend (§IV.A), and the one the advisor cannot work without.
    """
    for block in f.blocks:
        for instr in block.instructions:
            loc = instr.loc
            if loc is None:
                raise VerificationError(
                    f"{f.name}: instruction [{instr.iid}] {instr.opname} "
                    f"has no debug location"
                )
            if not loc.filename or loc.line < 1:
                raise VerificationError(
                    f"{f.name}: instruction [{instr.iid}] {instr.opname} "
                    f"has a degenerate debug location {loc!s}"
                )
            if isinstance(instr, Alloca) and not instr.var_name:
                raise VerificationError(
                    f"{f.name}: alloca [{instr.iid}] binds no variable name"
                )


def verify_alloca_bindings(f: Function) -> None:
    """Alloca → source-variable bindings must be unambiguous.

    A source name may be declared in several sibling scopes (two loops
    each using ``k``), and ``param``-loop unrolling clones one
    declaration many times — but every alloca sharing a (name,
    location) pair must bind the *same* variable, so clones must agree
    on the stored type, and each formal has exactly one home cell.
    Anything else would make the advisor's variable anchoring (and the
    data-flow var_meta map) ambiguous.  Compiler temporaries are
    exempt: they are hidden from reports.
    """
    decl_type: dict[tuple[str, str], "object"] = {}
    formal_home_of: dict[str, Alloca] = {}
    for block in f.blocks:
        for instr in block.instructions:
            if not isinstance(instr, Alloca):
                continue
            if instr.formal_home is not None:
                prev_home = formal_home_of.get(instr.formal_home)
                if prev_home is not None and prev_home is not instr:
                    raise VerificationError(
                        f"{f.name}: formal {instr.formal_home!r} has two "
                        f"home allocas ([{prev_home.iid}] and "
                        f"[{instr.iid}])"
                    )
                formal_home_of[instr.formal_home] = instr
            if instr.is_temp:
                continue
            key = (instr.var_name, str(instr.loc))
            prev = decl_type.get(key)
            if prev is None:
                decl_type[key] = instr.alloc_type
            elif prev != instr.alloc_type:
                raise VerificationError(
                    f"{f.name}: variable {instr.var_name!r} at "
                    f"{instr.loc} bound with conflicting types "
                    f"({prev} vs {instr.alloc_type})"
                )


def verify_module(module: Module) -> None:
    """Verifies every function plus inter-function references."""
    for f in module.functions.values():
        verify_function(f, module)
    from .instructions import Call, SpawnJoin

    for f, instr in module.all_instructions():
        if isinstance(instr, Call) and not instr.is_builtin:
            if instr.callee not in module.functions:
                raise VerificationError(
                    f"{f.name}: call to unknown function {instr.callee!r}"
                )
        if isinstance(instr, SpawnJoin):
            if instr.outlined not in module.functions:
                raise VerificationError(
                    f"{f.name}: spawn of unknown outlined function "
                    f"{instr.outlined!r}"
                )


def verify_for_analysis(module: Module) -> None:
    """Full structural check plus the analysis-layer invariants.

    Run at advisor entry: the diagnostics engine refuses to produce
    findings over IR whose debug info it cannot trust.
    """
    verify_module(module)
    for f in module.functions.values():
        verify_debug_info(f)
        verify_alloca_bindings(f)
