"""IR verifier tests: every structural invariant has a violation test."""

import pytest

from repro.chapel.tokens import SourceLocation
from repro.chapel.types import BOOL, INT, VOID
from repro.ir import (
    BasicBlock,
    Constant,
    Function,
    IRBuilder,
    Module,
    Register,
    VerificationError,
    verify_function,
    verify_module,
)
from repro.ir import instructions as I

LOC = SourceLocation("t.chpl", 1, 1)


def valid_fn(name="ok"):
    fn = Function(name, [], VOID, LOC)
    b = IRBuilder(fn)
    b.set_block(b.new_block("entry"))
    b.ret(LOC)
    return fn


class TestVerifyFunction:
    def test_valid_passes(self):
        verify_function(valid_fn())

    def test_no_blocks(self):
        fn = Function("empty", [], VOID, LOC)
        with pytest.raises(VerificationError, match="no blocks"):
            verify_function(fn)

    def test_missing_terminator(self):
        fn = Function("f", [], VOID, LOC)
        b = IRBuilder(fn)
        blk = b.new_block("entry")
        b.set_block(blk)
        b.alloca(LOC, INT, "x")
        with pytest.raises(VerificationError, match="terminator"):
            verify_function(fn)

    def test_empty_block(self):
        fn = valid_fn()
        fn.add_block(BasicBlock("empty"))
        with pytest.raises(VerificationError, match="empty block"):
            verify_function(fn)

    def test_mid_block_terminator(self):
        fn = Function("f", [], VOID, LOC)
        b = IRBuilder(fn)
        blk = b.new_block("entry")
        b.set_block(blk)
        ret1 = I.Ret(LOC)
        ret2 = I.Ret(LOC)
        blk.append(ret1)
        blk.append(ret2)
        with pytest.raises(VerificationError, match="mid-block"):
            verify_function(fn)

    def test_branch_to_foreign_block(self):
        fn = Function("f", [], VOID, LOC)
        other = valid_fn("other")
        b = IRBuilder(fn)
        blk = b.new_block("entry")
        b.set_block(blk)
        b.br(LOC, other.entry)
        with pytest.raises(VerificationError, match="foreign"):
            verify_function(fn)

    def test_use_of_undefined_register(self):
        fn = Function("f", [], VOID, LOC)
        b = IRBuilder(fn)
        blk = b.new_block("entry")
        b.set_block(blk)
        ghost = Register(INT)
        blk.append(I.Store(LOC, ghost, ghost))
        blk.append(I.Ret(LOC))
        with pytest.raises(VerificationError, match="undefined register"):
            verify_function(fn)

    def test_nonvoid_ret_without_value(self):
        fn = Function("f", [], INT, LOC)
        b = IRBuilder(fn)
        b.set_block(b.new_block("entry"))
        b.ret(LOC)  # missing value
        with pytest.raises(VerificationError, match="without value"):
            verify_function(fn)

    def test_params_count_as_defined(self):
        from repro.ir import FunctionParam

        reg = Register(INT, hint="arg")
        fn = Function("f", [FunctionParam("x", INT, "in", reg)], INT, LOC)
        b = IRBuilder(fn)
        b.set_block(b.new_block("entry"))
        b.ret(LOC, reg)
        verify_function(fn)


class TestVerifyModule:
    def test_call_to_unknown_function(self):
        m = Module()
        fn = Function("f", [], VOID, LOC)
        m.add_function(fn)
        b = IRBuilder(fn)
        b.set_block(b.new_block("entry"))
        b.call(LOC, "ghost_fn", [], VOID)
        b.ret(LOC)
        with pytest.raises(VerificationError, match="unknown function"):
            verify_module(m)

    def test_builtin_calls_allowed(self):
        m = Module()
        fn = Function("f", [], VOID, LOC)
        m.add_function(fn)
        b = IRBuilder(fn)
        b.set_block(b.new_block("entry"))
        b.call(LOC, "writeln", [Constant(INT, 1)], VOID, is_builtin=True)
        b.ret(LOC)
        verify_module(m)

    def test_spawn_of_unknown_outlined(self):
        m = Module()
        fn = Function("f", [], VOID, LOC)
        m.add_function(fn)
        b = IRBuilder(fn)
        b.set_block(b.new_block("entry"))
        b.spawn_join(LOC, "missing_outlined", "forall", [Constant(INT, 0)], [])
        b.ret(LOC)
        with pytest.raises(VerificationError, match="unknown outlined"):
            verify_module(m)


class TestAnalysisInvariants:
    """Debug-info and alloca-binding invariants used by the advisor."""

    def _module_with(self, fn):
        m = Module()
        m.add_function(fn)
        return m

    def test_verify_for_analysis_accepts_lowered_code(self):
        from repro.compiler.lower import compile_source
        from repro.ir.verifier import verify_for_analysis

        m = compile_source(
            "proc main() { var s = 0; for i in 0..3 { s = s + i; } writeln(s); }",
            "t.chpl",
        )
        verify_for_analysis(m)

    def test_missing_location_rejected(self):
        from repro.ir.verifier import verify_debug_info

        fn = Function("f", [], VOID, LOC)
        b = IRBuilder(fn)
        b.set_block(b.new_block("entry"))
        b.ret(LOC)
        fn.blocks[0].instructions[0].loc = None
        with pytest.raises(VerificationError, match="no debug location"):
            verify_debug_info(fn)

    def test_degenerate_location_rejected(self):
        from repro.ir.verifier import verify_debug_info

        fn = Function("f", [], VOID, LOC)
        b = IRBuilder(fn)
        b.set_block(b.new_block("entry"))
        b.ret(SourceLocation("", 0, 0))
        with pytest.raises(VerificationError, match="degenerate"):
            verify_debug_info(fn)

    def test_anonymous_alloca_rejected(self):
        from repro.ir.verifier import verify_debug_info

        fn = Function("f", [], VOID, LOC)
        b = IRBuilder(fn)
        b.set_block(b.new_block("entry"))
        b.alloca(LOC, INT, "")
        b.ret(LOC)
        with pytest.raises(VerificationError, match="binds no variable"):
            verify_debug_info(fn)

    def test_unroll_clones_share_binding(self):
        from repro.ir.verifier import verify_alloca_bindings

        fn = Function("f", [], VOID, LOC)
        b = IRBuilder(fn)
        b.set_block(b.new_block("entry"))
        # param-loop unrolling: same declaration cloned, same type.
        b.alloca(LOC, INT, "dx")
        b.alloca(LOC, INT, "dx")
        b.ret(LOC)
        verify_alloca_bindings(fn)

    def test_conflicting_types_at_one_location_rejected(self):
        from repro.ir.verifier import verify_alloca_bindings

        fn = Function("f", [], VOID, LOC)
        b = IRBuilder(fn)
        b.set_block(b.new_block("entry"))
        b.alloca(LOC, INT, "dx")
        b.alloca(LOC, BOOL, "dx")
        b.ret(LOC)
        with pytest.raises(VerificationError, match="conflicting types"):
            verify_alloca_bindings(fn)

    def test_sibling_scopes_may_reuse_a_name(self):
        from repro.ir.verifier import verify_alloca_bindings

        fn = Function("f", [], VOID, LOC)
        b = IRBuilder(fn)
        b.set_block(b.new_block("entry"))
        b.alloca(LOC, INT, "k")
        b.alloca(SourceLocation("t.chpl", 9, 1), BOOL, "k")
        b.ret(LOC)
        verify_alloca_bindings(fn)

    def test_duplicate_formal_home_rejected(self):
        from repro.ir.verifier import verify_alloca_bindings

        fn = Function("f", [], VOID, LOC)
        b = IRBuilder(fn)
        b.set_block(b.new_block("entry"))
        b.alloca(LOC, INT, "x", formal_home="x")
        b.alloca(SourceLocation("t.chpl", 2, 1), INT, "x", formal_home="x")
        b.ret(LOC)
        with pytest.raises(VerificationError, match="two home allocas"):
            verify_alloca_bindings(fn)
