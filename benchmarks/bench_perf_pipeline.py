"""P1 — End-to-end pipeline performance of the fast-path engine.

Times the three pipeline stages on each paper workload:

* ``interpret``  — compile + execute, no sampling (pure engine speed);
* ``sample``     — compile + execute under the PMU monitor;
* ``profile_cold`` — first full blame profile (caches empty);
* ``profile_warm`` — second full profile of the same program (compile
  cache + on-module analysis caches hot).

``BASELINE`` holds host seconds measured on this machine *before* the
fast-path engine / caching work (pre-bound dispatch, overflow-horizon
batching, blame-pipeline caches), so the recorded speedups are
like-for-like.  Results (baseline, measured, speedup per stage) are
written to ``BENCH_pipeline.json`` at the repository root.

Run directly (``python benchmarks/bench_perf_pipeline.py``) or via
pytest; the pytest smoke test only enforces a *generous* floor so CI
hosts with different absolute speeds never flake.
"""

from __future__ import annotations

import json
import os
import time

from repro.bench.programs import clomp, lulesh, minimd
from repro.compiler.lower import compile_source
from repro.runtime.interpreter import Interpreter
from repro.sampling.monitor import Monitor
from repro.sampling.pmu import PMUConfig
from repro.tooling import profiler as profiler_mod
from repro.tooling.profiler import Profiler, run_only

NUM_THREADS = 12
THRESHOLD = 4999
RESULT_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_pipeline.json")

#: Host seconds per stage before the fast-path engine and caches
#: (commit 48b7c5f state), measured with this same protocol.
BASELINE = {
    "minimd": {
        "interpret": 0.4564,
        "sample": 0.5069,
        "profile_cold": 0.5388,
        "profile_warm": 0.5170,
    },
    "clomp": {
        "interpret": 1.0224,
        "sample": 1.1211,
        "profile_cold": 1.1608,
        "profile_warm": 1.3696,
    },
    "lulesh": {
        "interpret": 2.5921,
        "sample": 2.6712,
        "profile_cold": 3.1200,
        "profile_warm": 2.9160,
    },
}

WORKLOADS = {
    "minimd": ("minimd.chpl", lambda: minimd.build_source(), minimd.config_for),
    "clomp": ("clomp.chpl", lambda: clomp.build_source(), clomp.config_for),
    "lulesh": ("lulesh.chpl", lambda: lulesh.build_source(), lulesh.config_for),
}


#: Repetitions per stage; best-of-N suppresses host scheduling noise
#: (the simulator itself is deterministic).
ROUNDS = 2


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def _best_of(fn, setup=None) -> float:
    best = float("inf")
    for _ in range(ROUNDS):
        if setup is not None:
            setup()
        best = min(best, _timed(fn))
    return best


def measure_workload(name: str) -> dict[str, float]:
    filename, build, config_for = WORKLOADS[name]
    source = build()
    config = config_for()
    out: dict[str, float] = {}

    # Cold stages clear the compile cache first so every repetition
    # includes compilation, matching how the baseline was measured.
    clear_caches = profiler_mod._COMPILE_CACHE.clear

    out["interpret"] = _best_of(
        lambda: run_only(
            source, filename=filename, config=config, num_threads=NUM_THREADS
        ),
        setup=clear_caches,
    )

    def sample_run():
        module = compile_source(source, filename)
        Interpreter(
            module,
            config=config,
            num_threads=NUM_THREADS,
            monitor=Monitor(PMUConfig(threshold=THRESHOLD)),
            sample_threshold=THRESHOLD,
        ).run()

    out["sample"] = _best_of(sample_run)

    def profile_run():
        Profiler(
            source,
            filename=filename,
            config=config,
            num_threads=NUM_THREADS,
            threshold=THRESHOLD,
        ).profile()

    out["profile_cold"] = _best_of(profile_run, setup=clear_caches)
    # The cold rounds left every cache hot.
    out["profile_warm"] = _best_of(profile_run)
    return out


def run_pipeline_bench() -> dict:
    measured = {name: measure_workload(name) for name in WORKLOADS}
    speedup = {
        name: {
            stage: round(BASELINE[name][stage] / t, 3) if t else float("inf")
            for stage, t in stages.items()
        }
        for name, stages in measured.items()
    }
    results = {
        "config": {"num_threads": NUM_THREADS, "threshold": THRESHOLD},
        "baseline_seconds": BASELINE,
        "measured_seconds": {
            n: {s: round(t, 4) for s, t in st.items()} for n, st in measured.items()
        },
        "speedup": speedup,
    }
    with open(os.path.abspath(RESULT_PATH), "w") as f:
        json.dump(results, f, indent=2)
        f.write("\n")
    return results


def render(results: dict) -> str:
    lines = ["pipeline stage timings (host s, speedup vs pre-fast-path)"]
    for name, stages in results["measured_seconds"].items():
        for stage, t in stages.items():
            sp = results["speedup"][name][stage]
            lines.append(f"  {name:7s} {stage:13s} {t:8.4f}s  {sp:5.2f}x")
    return "\n".join(lines)


def test_pipeline_speedup():
    """Smoke floor: the fast path must never be slower than ~stock.

    Thresholds are deliberately loose (CI hosts vary widely in absolute
    speed); the representative numbers live in BENCH_pipeline.json.
    """
    results = run_pipeline_bench()
    print("\n" + render(results))
    for name, stages in results["speedup"].items():
        for stage, sp in stages.items():
            assert sp > 0.6, f"{name}/{stage} regressed: {sp:.2f}x vs baseline"
    # The headline claim — a LULESH full profile at least ~2x faster —
    # asserted with CI headroom.
    assert results["speedup"]["lulesh"]["profile_warm"] > 1.3


if __name__ == "__main__":
    print(render(run_pipeline_bench()))
