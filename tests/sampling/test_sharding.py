"""Deterministic stream sharding (the parallel pipeline's splitter)."""

import pytest

from repro.sampling import (
    ShardingError,
    shard_bounds,
    shard_bounds_weighted,
    shard_of,
    shard_stream,
    shard_stream_weighted,
)


class TestShardBounds:
    def test_partition_covers_the_stream(self):
        for n in (0, 1, 7, 100, 101):
            for k in (1, 2, 3, 8):
                bounds = shard_bounds(n, k)
                assert len(bounds) == k
                assert bounds[0][0] == 0
                assert bounds[-1][1] == n
                for (_, stop), (start, _) in zip(bounds, bounds[1:]):
                    assert stop == start  # contiguous, no gaps/overlap

    def test_balanced_within_one(self):
        for n in (7, 100, 101):
            for k in (2, 3, 8):
                sizes = [stop - start for start, stop in shard_bounds(n, k)]
                assert max(sizes) - min(sizes) <= 1
                assert sum(sizes) == n

    def test_surplus_shards_are_empty(self):
        bounds = shard_bounds(3, 8)
        sizes = [stop - start for start, stop in bounds]
        assert sum(sizes) == 3
        assert sizes.count(0) == 5

    def test_deterministic(self):
        assert shard_bounds(101, 4) == shard_bounds(101, 4)

    def test_bad_counts_raise(self):
        with pytest.raises(ShardingError, match="at least one shard"):
            shard_bounds(10, 0)
        with pytest.raises(ShardingError, match="negative"):
            shard_bounds(-1, 2)


class TestShardStream:
    def test_concatenation_is_the_identity(self):
        items = list(range(23))
        for k in range(1, 9):
            shards = shard_stream(items, k)
            assert [x for s in shards for x in s] == items

    def test_empty_stream(self):
        assert shard_stream([], 4) == [[], [], [], []]

    def test_order_preserved_within_shards(self):
        shards = shard_stream(list(range(10)), 3)
        for shard in shards:
            assert shard == sorted(shard)


class TestWeighted:
    def test_partition_and_contiguity(self):
        weights = [1, 4, 1, 1, 4, 4, 1, 1, 1, 4]
        for k in (1, 2, 3, 4, 8):
            bounds = shard_bounds_weighted(weights, k)
            assert len(bounds) == k
            assert bounds[0][0] == 0
            assert bounds[-1][1] == len(weights)
            for (_, stop), (start, _) in zip(bounds, bounds[1:]):
                assert stop == start

    def test_balances_weight_not_count(self):
        # Heavy tail: count-balanced halves would split the work 1:4.
        weights = [1] * 8 + [4] * 8
        (a0, a1), (b0, b1) = shard_bounds_weighted(weights, 2)
        first, second = sum(weights[a0:a1]), sum(weights[b0:b1])
        assert abs(first - second) <= max(weights)

    def test_uniform_weights_balance_counts(self):
        bounds = shard_bounds_weighted([1] * 10, 3)
        sizes = [stop - start for start, stop in bounds]
        assert sum(sizes) == 10
        assert max(sizes) - min(sizes) <= 1

    def test_stream_concatenation_is_the_identity(self):
        items = list(range(23))
        for k in range(1, 9):
            shards = shard_stream_weighted(
                items, k, lambda x: 1 + 3 * (x % 5 == 0)
            )
            assert [x for s in shards for x in s] == items

    def test_bad_weights_raise(self):
        with pytest.raises(ShardingError, match="positive"):
            shard_bounds_weighted([1, 0, 1], 2)
        with pytest.raises(ShardingError, match="at least one shard"):
            shard_bounds_weighted([1], 0)


class TestShardOf:
    def test_agrees_with_bounds(self):
        for n in (1, 7, 23, 100):
            for k in (1, 2, 3, 8):
                bounds = shard_bounds(n, k)
                for i in range(n):
                    s = shard_of(i, n, k)
                    start, stop = bounds[s]
                    assert start <= i < stop

    def test_out_of_range_raises(self):
        with pytest.raises(ShardingError, match="outside"):
            shard_of(10, 10, 2)
        with pytest.raises(ShardingError, match="outside"):
            shard_of(-1, 10, 2)
