"""Shared, lazily-built substrate for the analysis passes.

Every pass needs some mix of CFGs, dominator trees, loop nests,
per-function data flow, and the call-graph loop-residency predicate.
:class:`AnalysisContext` builds each once per module and memoizes —
passes stay stateless and cheap to combine.

The data flow is *reused from the blame pipeline*
(:func:`repro.blame.cache.cached_module_blame_info`), aliases included:
the advisor sees the same storage roots the profiler attributes samples
to, so a finding's variables line up with blame-table rows by name.
"""

from __future__ import annotations

from ..blame.cache import cached_module_blame_info
from ..blame.dataflow import DataFlow
from ..blame.static_info import ModuleBlameInfo
from ..ir.cfg import CFG
from ..ir.dominators import DominatorTree, dominator_tree
from ..ir.loops import Loop, loop_depths, loop_resident_functions, natural_loops
from ..ir.module import BasicBlock, Function, Module


class AnalysisContext:
    """Per-module cache of everything the passes consume."""

    def __init__(self, module: Module, options: "object | None" = None) -> None:
        self.module = module
        self.options = options
        self._blame_info: ModuleBlameInfo | None = None
        self._cfgs: dict[str, CFG] = {}
        self._domtrees: dict[str, DominatorTree] = {}
        self._loops: dict[str, list[Loop]] = {}
        self._depths: dict[str, dict[BasicBlock, int]] = {}
        self._loop_resident: set[str] | None = None
        self._locality: "object | None" = None

    # -- substrate accessors ------------------------------------------------

    @property
    def blame_info(self) -> ModuleBlameInfo:
        if self._blame_info is None:
            self._blame_info = cached_module_blame_info(
                self.module, options=self.options
            )
        return self._blame_info

    def dataflow(self, fn: Function | str) -> DataFlow:
        name = fn if isinstance(fn, str) else fn.name
        return self.blame_info.functions[name].dataflow

    def cfg(self, fn: Function) -> CFG:
        c = self._cfgs.get(fn.name)
        if c is None:
            c = self._cfgs[fn.name] = CFG(fn)
        return c

    def domtree(self, fn: Function) -> DominatorTree:
        t = self._domtrees.get(fn.name)
        if t is None:
            t = self._domtrees[fn.name] = dominator_tree(self.cfg(fn))
        return t

    def loops(self, fn: Function) -> list[Loop]:
        found = self._loops.get(fn.name)
        if found is None:
            found = self._loops[fn.name] = natural_loops(
                self.cfg(fn), self.domtree(fn)
            )
        return found

    def loop_depth_map(self, fn: Function) -> dict[BasicBlock, int]:
        d = self._depths.get(fn.name)
        if d is None:
            d = self._depths[fn.name] = loop_depths(self.cfg(fn), self.domtree(fn))
        return d

    @property
    def loop_resident(self) -> set[str]:
        """Functions that can execute inside some loop (incl. foralls)."""
        if self._loop_resident is None:
            depths_of = {
                name: self.loop_depth_map(f)
                for name, f in self.module.functions.items()
            }
            self._loop_resident = loop_resident_functions(self.module, depths_of)
        return self._loop_resident

    def locality(self):
        """Module-wide locality classification (lazy import keeps the
        context importable without the locality machinery)."""
        if self._locality is None:
            from .locality import LocalityAnalysis

            self._locality = LocalityAnalysis(self)
        return self._locality

    # -- convenience predicates --------------------------------------------

    def in_loop(self, fn: Function, block: BasicBlock) -> bool:
        return self.loop_depth_map(fn).get(block, 0) > 0

    def is_hot(self, fn: Function, block: BasicBlock) -> bool:
        """True when instructions in ``block`` can run more than once:
        the block sits in a loop, or the whole function is loop-resident."""
        return self.in_loop(fn, block) or fn.name in self.loop_resident

    def source_context(self, fn: Function) -> str:
        """User-facing context name: outlined parallel-loop bodies
        report the function their loop was written in (matching the
        blame report's bubbled contexts)."""
        if fn.outlined_from is not None:
            origin = self.module.get_function(fn.outlined_from)
            if origin is not None and origin.outlined_from is not None:
                return self.source_context(origin)
            return (
                origin.source_name if origin is not None else fn.outlined_from
            )
        return fn.source_name

    def user_functions(self) -> list[Function]:
        """Functions the advisor reports on (artificial ones excluded)."""
        return [
            f for f in self.module.functions.values() if not f.is_artificial
        ]
