"""Interpreter behavior tests: program semantics, arrays/records/
domains at runtime, parallelism, errors, determinism."""

import pytest

from repro.runtime.builtins import ProgramHalt
from repro.runtime.interpreter import ExecutionError, Interpreter
from repro.runtime.values import RuntimeError_
from repro.compiler.lower import compile_source

import sys, os
sys.path.insert(0, os.path.dirname(os.path.dirname(__file__)))
from conftest import output_of, run_src


class TestArrays:
    def test_array_init_and_sum(self):
        src = """
var A: [0..9] int;
proc main() {
  for i in 0..9 { A[i] = i; }
  writeln(+ reduce A);
}
"""
        assert output_of(src) == ["45"]

    def test_2d_array(self):
        src = """
var D: domain(2) = {0..2, 0..2};
var M: [D] real;
proc main() {
  forall (i, j) in D { M[i, j] = i * 3.0 + j; }
  writeln(M[2, 2], M[0, 1]);
}
"""
        assert output_of(src) == ["8.0 1.0"]

    def test_negative_bounds(self):
        src = """
var G: [0-2..2] int;
proc main() {
  for i in 0-2..2 { G[i] = i * i; }
  writeln(G[0-2], G[0], G[2]);
}
"""
        assert output_of(src) == ["4 0 4"]

    def test_array_copy_semantics_on_var_init(self):
        src = """
var A: [0..3] int;
proc main() {
  for i in 0..3 { A[i] = i; }
  var B = A;
  B[0] = 99;
  writeln(A[0], B[0]);
}
"""
        assert output_of(src) == ["0 99"]

    def test_slice_alias_semantics(self):
        src = """
var A: [0..9] int;
proc main() {
  var S = A[3..5];
  S[4] = 42;
  writeln(A[4]);
}
"""
        assert output_of(src) == ["42"]

    def test_array_assignment_copies_elements(self):
        src = """
var A: [0..2] int;
var B: [0..2] int;
proc main() {
  for i in 0..2 { A[i] = i + 1; }
  B = A;
  A[0] = 77;
  writeln(B[0], B[1], B[2]);
}
"""
        assert output_of(src) == ["1 2 3"]

    def test_reindex_view(self):
        src = """
var A: [0..4] real;
proc main() {
  var V = A.reindex({100..104});
  V[102] = 3.5;
  writeln(A[2]);
}
"""
        assert output_of(src) == ["3.5"]

    def test_out_of_bounds_raises(self):
        src = """
var A: [0..4] int;
proc main() { A[7] = 1; }
"""
        with pytest.raises(ExecutionError, match="out of bounds"):
            run_src(src)

    def test_array_of_arrays(self):
        src = """
var Rows: [0..2] [0..3] real;
proc main() {
  for i in 0..2 {
    var row: [0..3] real;
    for j in 0..3 { row[j] = i * 10.0 + j; }
    Rows[i] = row;
  }
  writeln(Rows[1][2]);
}
"""
        with pytest.raises(ExecutionError):
            # inner descriptors default to nil: assigning into Rows[i]
            # requires element copy into a nil array
            run_src(src)


class TestRecordsAndClasses:
    def test_record_value_semantics(self):
        src = """
record P { var x: real; var y: real; }
proc main() {
  var a = new P(1.0, 2.0);
  var b = a;
  b.x = 99.0;
  writeln(a.x, b.x);
}
"""
        assert output_of(src) == ["1.0 99.0"]

    def test_class_reference_semantics(self):
        src = """
class C { var v: int; }
proc main() {
  var a = new C(5);
  var b = a;
  b.v = 42;
  writeln(a.v);
}
"""
        assert output_of(src) == ["42"]

    def test_record_defaults_fill_missing_args(self):
        src = """
record R { var a: int; var b: real; var c: bool; }
proc main() {
  var r = new R(7);
  writeln(r.a, r.b, r.c);
}
"""
        assert output_of(src) == ["7 0.0 false"]

    def test_nil_class_field_access_raises(self):
        src = """
class C { var v: int; }
var g: C = nilC();
proc nilC(): C { var arr: [0..0] C; return arr[0]; }
proc main() { writeln(g.v); }
"""
        with pytest.raises(ExecutionError, match="nil"):
            run_src(src)

    def test_array_of_records(self):
        src = """
record Zone { var value: real; }
var Z: [0..3] Zone;
proc main() {
  Z[2].value = 8.5;
  writeln(Z[2].value, Z[1].value);
}
"""
        assert output_of(src) == ["8.5 0.0"]

    def test_record_elements_are_distinct(self):
        src = """
record Zone { var value: real; }
var Z: [0..3] Zone;
proc main() {
  Z[0].value = 1.0;
  writeln(Z[1].value);
}
"""
        assert output_of(src) == ["0.0"]


class TestTuples:
    def test_tuple_arithmetic(self):
        src = """
proc main() {
  var a = (1.0, 2.0, 3.0);
  var b = (10.0, 20.0, 30.0);
  var c = a + b * 2.0;
  writeln(c[0], c[1], c[2]);
}
"""
        assert output_of(src) == ["21.0 42.0 63.0"]

    def test_tuple_value_semantics(self):
        src = """
proc main() {
  var a = (1.0, 2.0);
  var b = a;
  b[0] = 9.0;
  writeln(a[0]);
}
"""
        assert output_of(src) == ["1.0"]

    def test_nested_tuple_write(self):
        src = """
proc main() {
  var h: 2*(3*real);
  h[1][2] = 5.5;
  writeln(h[1][2], h[0][0]);
}
"""
        assert output_of(src) == ["5.5 0.0"]

    def test_dynamic_tuple_index(self):
        src = """
proc main() {
  var t = (10, 20, 30);
  var s = 0;
  for i in 0..2 { s += t[i]; }
  writeln(s);
}
"""
        assert output_of(src) == ["60"]

    def test_tuple_index_out_of_range(self):
        src = "proc main() { var t = (1, 2); var i = 5; writeln(t[i]); }"
        with pytest.raises(ExecutionError, match="out of range"):
            run_src(src)


class TestParallelism:
    def test_forall_covers_all_indices(self):
        src = """
var A: [0..99] int;
proc main() {
  forall i in 0..99 { A[i] = i; }
  writeln(+ reduce A);
}
"""
        assert output_of(src, num_threads=8) == ["4950"]

    def test_coforall_one_task_per_index(self):
        src = """
var A: [0..3] int;
proc main() {
  coforall t in 0..3 { A[t] = t * 10; }
  writeln(A[0], A[1], A[2], A[3]);
}
"""
        assert output_of(src) == ["0 10 20 30"]

    def test_nested_forall(self):
        src = """
var D: domain(2) = {0..3, 0..3};
var M: [D] int;
proc main() {
  forall i in 0..3 {
    forall j in 0..3 { M[i, j] = i + j; }
  }
  writeln(+ reduce M);
}
"""
        assert output_of(src) == ["48"]

    def test_zippered_forall(self):
        src = """
var A: [0..9] real;
var B: [0..9] real;
proc main() {
  forall i in 0..9 { A[i] = i * 1.0; }
  forall (b, a) in zip(B, A) { b = a * 2.0; }
  writeln(+ reduce B);
}
"""
        assert output_of(src) == ["90.0"]

    def test_empty_forall(self):
        src = """
proc main() {
  forall i in 5..4 { writeln("never"); }
  writeln("done");
}
"""
        assert output_of(src) == ["done"]

    def test_results_independent_of_thread_count(self):
        src = """
var A: [0..49] real;
proc main() {
  forall i in 0..49 { A[i] = sqrt(i * 1.0); }
  writeln(+ reduce A);
}
"""
        outs = {tuple(output_of(src, num_threads=n)) for n in (1, 3, 12)}
        assert len(outs) == 1


class TestErrorsAndHalt:
    def test_division_by_zero(self):
        src = "proc main() { var z = 0; writeln(5 / z); }"
        with pytest.raises(ExecutionError, match="division by zero"):
            run_src(src)

    def test_halt(self):
        src = 'proc main() { halt("boom"); }'
        r = run_src(src)
        assert r.halted and "boom" in r.halt_message

    def test_assert_true_passes_and_fails(self):
        assert output_of('proc main() { assertTrue(1 < 2); writeln("ok"); }') == ["ok"]
        with pytest.raises(ExecutionError, match="assertion failed"):
            run_src('proc main() { assertTrue(2 < 1, "nope"); }')

    def test_error_carries_stack(self):
        src = """
proc inner() { var z = 0; writeln(1 / z); }
proc outer() { inner(); }
proc main() { outer(); }
"""
        with pytest.raises(ExecutionError) as exc:
            run_src(src)
        msg = str(exc.value)
        assert "inner" in msg and "outer" in msg and "main" in msg


class TestDeterminismAndStats:
    SRC = """
var A: [0..29] real;
proc main() {
  forall i in 0..29 { A[i] = i * 0.5 + sin(i * 1.0); }
  writeln(+ reduce A);
}
"""

    def test_repeat_runs_identical(self):
        r1 = run_src(self.SRC, num_threads=6)
        r2 = run_src(self.SRC, num_threads=6)
        assert r1.output == r2.output
        assert r1.wall_seconds == r2.wall_seconds
        assert r1.instructions_executed == r2.instructions_executed

    def test_stats_populated(self):
        r = run_src(self.SRC, num_threads=6)
        assert r.wall_seconds > 0
        assert r.total_cycles > 0
        assert r.instructions_executed > 0
        assert 0 < r.cpu_utilization <= 1.0

    def test_heap_tracks_allocations(self):
        r = run_src("var A: [0..999] real;\nproc main() { }")
        assert r.heap.allocation_count >= 1
        assert r.heap.total_bytes >= 8000

    def test_timer_monotone(self):
        src = """
proc main() {
  var t0 = getCurrentTime();
  var s = 0.0;
  for i in 1..500 { s += i * 0.5; }
  var t1 = getCurrentTime();
  if t1 > t0 { writeln("monotone"); } else { writeln("broken"); }
}
"""
        assert output_of(src) == ["monotone"]

    def test_max_instructions_budget(self):
        m = compile_source("proc main() { while true { } }")
        interp = Interpreter(m, num_threads=1, max_instructions=10_000)
        with pytest.raises(ExecutionError, match="budget"):
            interp.run()


class TestBuiltins:
    def test_math(self):
        src = "proc main() { writeln(sqrt(16.0), abs(0 - 3), max(2, 9), min(2.5, 1.5)); }"
        assert output_of(src) == ["4.0 3 9 1.5"]

    def test_to_int_to_real(self):
        assert output_of("proc main() { writeln(toInt(3.7), toReal(2)); }") == ["3 2.0"]

    def test_max_task_par(self):
        assert output_of("proc main() { writeln(maxTaskPar()); }", num_threads=7) == ["7"]

    def test_write_then_writeln_joins(self):
        src = 'proc main() { write("a"); writeln("b"); writeln("c"); }'
        assert output_of(src) == ["ab", "c"]
