"""Shared degradation annotations for the report views.

Every view appends the same short footer when (and only when) the run
saw degraded telemetry — quarantined records, repaired call paths,
``<unknown>``-bucketed samples, or locales missing from a merge.  On a
clean run all helpers return nothing, so clean output is byte-for-byte
what it was before resilience existed.
"""

from __future__ import annotations

from ..blame.postmortem import REASON_WORKER_FAILED
from ..blame.report import BlameReport


def degradation_lines(report: BlameReport) -> list[str]:
    """Human-readable footer lines; empty for a clean run."""
    out: list[str] = []
    stats = report.stats
    if stats.quarantined_samples:
        reasons = ", ".join(
            f"{r}: {n}"
            for r, n in sorted(report.quarantine_by_reason.items())
        )
        out.append(
            f"! {stats.quarantined_samples} malformed samples "
            f"quarantined ({reasons})"
        )
    if stats.recovered_samples:
        out.append(
            f"! {stats.recovered_samples} degraded call paths repaired "
            f"(suffix-match / symbol-table recovery)"
        )
    if stats.unknown_samples:
        reasons = ", ".join(
            f"{r}: {n}"
            for r, n in sorted(report.unknown_by_reason.items())
        )
        out.append(
            f"! {stats.unknown_samples} unattributable samples in "
            f"<unknown> ({reasons})"
        )
    worker_lost = report.unknown_by_reason.get(REASON_WORKER_FAILED, 0)
    if worker_lost:
        # Dedicated line on top of the <unknown> roll-up: losing a pool
        # worker is an operational event, not just telemetry decay.
        out.append(
            f"! {worker_lost} samples from shard(s) whose worker failed "
            f"(retries exhausted; folded into <unknown>)"
        )
    if report.missing_locales:
        ids = ", ".join(str(i) for i in report.missing_locales)
        out.append(f"! merged without locale(s) {ids} (partial aggregate)")
    return out
