"""In-memory form of the ``.cbp`` profile artifact.

A :class:`ProfileSnapshot` holds everything the presentation layer
consumes — the blame report, the consolidated instances, a function
catalog standing in for the IR module, degradation provenance, and run
metadata — with no reference to the interpreter, monitor, or IR that
produced it.  The render functions in :mod:`repro.views` accept it
anywhere they accept a live :class:`~repro.tooling.profiler.ProfileResult`
(it exposes the same ``report`` / ``module`` / ``postmortem``
attributes), which is what makes artifact-rendered views byte-identical
to live ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..blame.postmortem import Instance
from ..blame.report import BlameReport


@dataclass(frozen=True)
class CatalogFunction:
    """The slice of :class:`repro.ir.module.Function` the views consult."""

    name: str
    source_name: str
    outlined_from: str | None = None
    is_artificial: bool = False


class FunctionCatalog:
    """Module-shaped lookup for display-name resolution.

    The code-centric view (and the attribution display logic before it)
    only ever asks a module three questions about a function: its
    user-visible ``source_name``, which function it was ``outlined_from``,
    and whether it ``is_artificial``.  The catalog answers those without
    the IR, so a loaded artifact renders the same views a live module
    does.
    """

    def __init__(self, functions: "list[CatalogFunction] | tuple[CatalogFunction, ...]" = ()) -> None:
        self._functions: dict[str, CatalogFunction] = {f.name: f for f in functions}

    @classmethod
    def from_module(cls, module) -> "FunctionCatalog":
        return cls(
            [
                CatalogFunction(
                    name=f.name,
                    source_name=f.source_name,
                    outlined_from=f.outlined_from,
                    is_artificial=f.is_artificial,
                )
                for f in module.functions.values()
            ]
        )

    def get_function(self, name: str) -> CatalogFunction | None:
        return self._functions.get(name)

    def entries(self) -> list[CatalogFunction]:
        """Deterministic (name-sorted) listing for serialization."""
        return sorted(self._functions.values(), key=lambda f: f.name)

    def union(self, other: "FunctionCatalog") -> "FunctionCatalog":
        """Merged catalog; on a name collision the first entry wins
        (per-locale artifacts of one program have identical catalogs)."""
        merged = dict(other._functions)
        merged.update(self._functions)
        return FunctionCatalog(list(merged.values()))

    def __len__(self) -> int:
        return len(self._functions)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, FunctionCatalog)
            and self._functions == other._functions
        )


@dataclass
class SnapshotPostmortem:
    """Post-mortem outcome as stored in an artifact.

    Mirrors the attributes of
    :class:`~repro.blame.postmortem.PostmortemResult` that the views
    read, but carries *counts* for the raw/runtime streams instead of
    the streams themselves — the artifact persists consolidated
    instances, not raw samples (those belong to the sample dataset /
    journal written by ``--save-samples``).
    """

    instances: list[Instance]
    n_raw: int = 0
    n_runtime: int = 0
    n_recovered: int = 0
    #: (reason, sample index) per unattributable sample.
    unknown_provenance: list[tuple[str, int]] = field(default_factory=list)
    #: (reason, sample index) per quarantined sample (ingest + postmortem).
    quarantine_provenance: list[tuple[str, int]] = field(default_factory=list)

    @property
    def n_user(self) -> int:
        return len(self.instances)

    @property
    def n_unknown(self) -> int:
        return len(self.unknown_provenance)

    def unknown_by_reason(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for reason, _ix in self.unknown_provenance:
            out[reason] = out.get(reason, 0) + 1
        return out

    def quarantine_by_reason(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for reason, _ix in self.quarantine_provenance:
            out[reason] = out.get(reason, 0) + 1
        return out


@dataclass(frozen=True)
class ArtifactMeta:
    """Run identity and configuration recorded in the artifact header."""

    program: str
    source_sha256: str | None = None
    threshold: int = 0
    num_threads: int = 0
    locale_id: int = 0
    kind: str = "profile"  # "profile" | "merged"
    created_by: str = ""


@dataclass
class ProfileSnapshot:
    """One profiled run (or merge of runs), detached from its producer."""

    meta: ArtifactMeta
    report: BlameReport
    catalog: FunctionCatalog
    postmortem: SnapshotPostmortem
    #: Injection summary when the run was deliberately degraded
    #: (:meth:`repro.resilience.inject.InjectionStats.as_dict` form).
    fault_stats: dict | None = None
    #: Adaptive-stopping decision trail when the run used
    #: confidence-driven collection
    #: (:meth:`repro.sampling.adaptive.AdaptiveTrail.as_dict` form).
    #: Persisted as the optional ``a`` record; readers that predate it
    #: ignore the record (forward-minor tolerance).
    adaptive: dict | None = None

    @property
    def module(self) -> FunctionCatalog:
        """Alias so the snapshot satisfies the ``result.module`` shape
        the HTML renderer and code-centric view expect."""
        return self.catalog

    @property
    def wall_seconds(self) -> float:
        return self.report.stats.wall_seconds

    @property
    def quarantine_rate(self) -> float:
        """Same accounting as ``ProfileResult.quarantine_rate``."""
        total = (
            self.report.stats.total_raw_samples
            + self.report.stats.quarantined_samples
        )
        return self.report.stats.quarantined_samples / total if total else 0.0


def _tool_version() -> str:
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:  # not installed (src checkout on PYTHONPATH)
        from .. import __version__

        return __version__


def canonicalize_timings(snapshot: ProfileSnapshot) -> ProfileSnapshot:
    """Returns the snapshot with host-measured timings zeroed.

    ``postmortem_seconds`` is wall-clock measured on the profiling host
    (unlike ``wall_seconds``, which is simulated and deterministic), so
    two otherwise-identical runs differ in exactly that one stats field.
    Zeroing it makes the serialized artifact a pure function of the run
    — the property the parallel path's bit-identity gate (and any
    byte-compare of artifacts across repeat runs) relies on.  No view
    displays the field, so rendered output is unaffected.  The input
    snapshot is not mutated.
    """
    stats = snapshot.report.stats
    if stats.postmortem_seconds == 0.0:
        return snapshot
    report = replace(
        snapshot.report, stats=replace(stats, postmortem_seconds=0.0)
    )
    return replace(snapshot, report=report)


def snapshot_from_result(
    result,
    source_sha256: str | None = None,
    threshold: int | None = None,
    num_threads: int | None = None,
    locale_id: int | None = None,
    canonical_timings: bool = False,
) -> ProfileSnapshot:
    """Builds the artifact model from a live
    :class:`~repro.tooling.profiler.ProfileResult`.

    The snapshot *references* the result's report (it does not copy it),
    so rendering from the snapshot is rendering from the identical
    object — the cheap end of the byte-identity guarantee.  Pass
    ``canonical_timings=True`` to zero the host-measured
    ``postmortem_seconds`` (in a copied report) so the serialized bytes
    are reproducible across runs; see :func:`canonicalize_timings`.
    """
    pm = result.postmortem
    unknown = [(d.reason, d.sample.index) for d in pm.unknown]
    quarantined = [(d.reason, d.sample.index) for d in pm.quarantined]
    monitor = result.monitor
    if monitor is not None:
        quarantined += [(q.reason, q.sample.index) for q in monitor.quarantined]
    if threshold is None and monitor is not None:
        threshold = monitor.pmu.threshold
    if num_threads is None:
        num_threads = getattr(result.interpreter, "num_threads", 0) or 0
    meta = ArtifactMeta(
        program=result.report.program,
        source_sha256=source_sha256,
        threshold=threshold or 0,
        num_threads=num_threads,
        locale_id=result.report.locale_id if locale_id is None else locale_id,
        kind="profile",
        created_by=f"repro {_tool_version()}",
    )
    fault_stats = None
    if result.fault_stats is not None:
        fault_stats = (
            result.fault_stats.as_dict()
            if hasattr(result.fault_stats, "as_dict")
            else dict(result.fault_stats)
        )
    adaptive = getattr(result, "adaptive", None)
    if adaptive is not None and hasattr(adaptive, "as_dict"):
        adaptive = adaptive.as_dict()
    snapshot = ProfileSnapshot(
        meta=meta,
        report=result.report,
        catalog=FunctionCatalog.from_module(result.module),
        postmortem=SnapshotPostmortem(
            instances=list(pm.instances),
            n_raw=pm.n_raw,
            n_runtime=pm.n_runtime,
            n_recovered=pm.n_recovered,
            unknown_provenance=unknown,
            quarantine_provenance=quarantined,
        ),
        fault_stats=fault_stats,
        adaptive=adaptive,
    )
    return canonicalize_timings(snapshot) if canonical_timings else snapshot


def relabel(meta: ArtifactMeta, **changes) -> ArtifactMeta:
    """Frozen-dataclass update helper (used by merge)."""
    return replace(meta, **changes)
