"""Setup shim: enables legacy editable installs (`pip install -e .`)
in offline environments where the PEP 660 path needs the `wheel`
package. Metadata lives in pyproject.toml."""

from setuptools import setup

setup()
