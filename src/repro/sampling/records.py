"""Raw sample records — the artifact step 2 hands to post-mortem step 3.

A :class:`RawSample` is "basically a bunch of addresses" (paper §IV.C):
the sampled instruction id plus the stack walk, tagged with thread/task
identity and — for worker-task samples — the spawn tag and recorded
pre-spawn stack that post-mortem gluing needs.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RawSample:
    """One PMU-overflow sample."""

    index: int
    thread_id: int
    task_id: int  # -1 for idle samples
    #: Leaf-first (function_name, iid) pairs; iid -1 marks synthetic
    #: runtime frames (e.g. __sched_yield).
    stack: tuple[tuple[str, int], ...]
    leaf_iid: int
    #: Spawn tag of the worker task (None for the main task / idle).
    spawn_tag: int | None
    #: Pre-spawn stack recorded by the tasking-layer instrumentation.
    pre_spawn_stack: tuple[tuple[str, int], ...] | None
    is_idle: bool = False

    @property
    def leaf_function(self) -> str:
        return self.stack[0][0] if self.stack else "<unknown>"
