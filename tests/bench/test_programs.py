"""Benchmark program tests: every variant compiles, runs, and the
optimized rewrites are semantics-preserving (identical outputs)."""

import pytest

from repro.bench.programs import clomp, example_fig1, lulesh, minimd, mttkrp, spmv
from repro.compiler.lower import compile_source
from repro.runtime.interpreter import Interpreter


def run(source, config, name, num_threads=8):
    m = compile_source(source, name)
    return Interpreter(m, config=config, num_threads=num_threads).run()


def non_timing(output):
    return [l for l in output if not l.startswith("elapsed")]


SMALL_MINIMD = {"numBins": 5, "perBin": 4, "steps": 2, "neighborEvery": 1}
SMALL_CLOMP = {"numParts": 4, "zonesPerPart": 8, "timesteps": 1}
SMALL_LULESH = {"edgeElems": 2, "maxSteps": 1}


class TestMiniMD:
    def test_original_runs(self):
        r = run(minimd.build_source(optimized=False), SMALL_MINIMD, "m.chpl")
        assert any(l.startswith("energy") for l in r.output)

    def test_optimized_equivalent(self):
        a = run(minimd.build_source(optimized=False), SMALL_MINIMD, "m.chpl")
        b = run(minimd.build_source(optimized=True), SMALL_MINIMD, "m.chpl")
        assert non_timing(a.output) == non_timing(b.output)

    def test_optimized_faster_at_default_size(self):
        cfg = minimd.config_for()
        a = run(minimd.build_source(optimized=False), cfg, "m.chpl", 12)
        b = run(minimd.build_source(optimized=True), cfg, "m.chpl", 12)
        assert b.wall_seconds < a.wall_seconds

    def test_config_helper(self):
        cfg = minimd.config_for(num_bins=7, steps=1)
        assert cfg["numBins"] == 7 and cfg["steps"] == 1

    def test_energy_changes_with_steps(self):
        r1 = run(minimd.build_source(), dict(SMALL_MINIMD, steps=1), "m.chpl")
        r2 = run(minimd.build_source(), dict(SMALL_MINIMD, steps=3), "m.chpl")
        assert non_timing(r1.output) != non_timing(r2.output)


class TestClomp:
    def test_original_runs(self):
        r = run(clomp.build_source(optimized=False), SMALL_CLOMP, "c.chpl")
        assert any(l.startswith("residue total") for l in r.output)

    def test_optimized_equivalent(self):
        a = run(clomp.build_source(optimized=False), SMALL_CLOMP, "c.chpl")
        b = run(clomp.build_source(optimized=True), SMALL_CLOMP, "c.chpl")
        assert non_timing(a.output) == non_timing(b.output)

    def test_optimized_faster_zone_heavy(self):
        cfg = clomp.config_for(8, 120, 1)
        a = run(clomp.build_source(optimized=False), cfg, "c.chpl", 12)
        b = run(clomp.build_source(optimized=True), cfg, "c.chpl", 12)
        assert b.wall_seconds < a.wall_seconds

    def test_table_v_shapes_well_formed(self):
        assert len(clomp.TABLE_V_SHAPES) == 4
        for label, parts, zones in clomp.TABLE_V_SHAPES:
            assert parts >= 1 and zones >= 1


class TestLulesh:
    @pytest.mark.parametrize(
        "variant",
        [lulesh.ORIGINAL, lulesh.P1_ONLY, lulesh.VG_ONLY, lulesh.CENN_ONLY, lulesh.BEST_CASE],
        ids=lambda v: v.tag,
    )
    def test_variants_equivalent(self, variant):
        base = run(lulesh.build_source(lulesh.ORIGINAL), SMALL_LULESH, "l.chpl")
        v = run(lulesh.build_source(variant), SMALL_LULESH, "l.chpl")
        assert non_timing(v.output) == non_timing(base.output)

    @pytest.mark.parametrize("tag,variant", lulesh.TABLE_VII_VARIANTS, ids=[t for t, _ in lulesh.TABLE_VII_VARIANTS])
    def test_unroll_variants_equivalent(self, tag, variant):
        base = run(lulesh.build_source(lulesh.ORIGINAL), SMALL_LULESH, "l.chpl")
        v = run(lulesh.build_source(variant), SMALL_LULESH, "l.chpl")
        assert non_timing(v.output) == non_timing(base.output)

    def test_variant_tags(self):
        assert lulesh.ORIGINAL.tag == "Original"
        assert lulesh.LuleshVariant(p1=False, p2=False, p3=False).tag == "0 params"
        assert lulesh.BEST_CASE.tag == "P1+VG+CENN"

    def test_vg_declares_globals(self):
        src = lulesh.build_source(lulesh.VG_ONLY)
        assert "var determG" in src and "var dvdxG" in src
        assert "var determ: [Elems] real" not in src

    def test_manual_unroll_removes_inner_loop(self):
        src = lulesh.build_source(
            lulesh.LuleshVariant(p1=True, p2=False, p3=False, u2=True)
        )
        # loop 2 body appears with literal indices
        assert "x8n[e][0]" in src and "x8n[e][7]" in src


SMALL_SPMV = {"n": 16, "nnzPerRow": 3, "iters": 1}
SMALL_MTTKRP = {"n": 16, "m": 8, "nnzPerSlice": 3, "fRank": 3, "iters": 1}


class TestSpmv:
    def test_original_runs(self):
        r = run(spmv.build_source("original"), SMALL_SPMV, "s.chpl")
        assert any(l.startswith("checksum") for l in r.output)
        assert any(l.startswith("pattern") for l in r.output)

    @pytest.mark.parametrize("variant", ["optimized", "dense"])
    def test_variants_equivalent(self, variant):
        a = run(spmv.build_source("original"), SMALL_SPMV, "s.chpl")
        b = run(spmv.build_source(variant), SMALL_SPMV, "s.chpl")
        assert non_timing(a.output) == non_timing(b.output)

    def test_equivalent_at_default_size(self):
        cfg = spmv.config_for()
        a = run(spmv.build_source("original"), cfg, "s.chpl")
        b = run(spmv.build_source("optimized"), cfg, "s.chpl")
        assert non_timing(a.output) == non_timing(b.output)

    def test_optimized_flag_alias(self):
        assert spmv.build_source(optimized=True) == spmv.build_source(
            "optimized"
        )

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            spmv.build_source("blocked")

    def test_config_helper(self):
        cfg = spmv.config_for(n=32, iters=3)
        assert cfg["n"] == 32 and cfg["iters"] == 3
        assert cfg["nnzPerRow"] == spmv.DEFAULT_CONFIG["nnzPerRow"]


class TestMttkrp:
    def test_original_runs(self):
        r = run(mttkrp.build_source("original"), SMALL_MTTKRP, "k.chpl")
        assert any(l.startswith("checksum") for l in r.output)
        assert any(l.startswith("fibers") for l in r.output)

    def test_optimized_equivalent(self):
        a = run(mttkrp.build_source("original"), SMALL_MTTKRP, "k.chpl")
        b = run(mttkrp.build_source("optimized"), SMALL_MTTKRP, "k.chpl")
        assert non_timing(a.output) == non_timing(b.output)

    def test_equivalent_at_default_size(self):
        cfg = mttkrp.config_for()
        a = run(mttkrp.build_source("original"), cfg, "k.chpl")
        b = run(mttkrp.build_source("optimized"), cfg, "k.chpl")
        assert non_timing(a.output) == non_timing(b.output)

    def test_config_helper(self):
        cfg = mttkrp.config_for(f_rank=4, m=16)
        assert cfg["fRank"] == 4 and cfg["m"] == 16

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            mttkrp.build_source("dense")


class TestFig1Example:
    def test_source_lines_match_paper(self):
        lines = example_fig1.SOURCE.splitlines()
        assert lines[15].startswith("var a")  # line 16
        assert lines[16].startswith("var b")  # line 17
        assert lines[17].startswith("if a < b")  # line 18
        assert lines[18].startswith("a = b + 1")  # line 19
        assert lines[19].startswith("c = a + b")  # line 20

    def test_example_runs(self):
        r = run(example_fig1.build_source(), None, "fig1.chpl")
        assert r.output == ["7"]  # a=4, b=3 → c=7
