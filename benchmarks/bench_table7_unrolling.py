"""E8 — Paper Table VII: LULESH hourglass-block unrolling study.

Eleven configurations of the three tagged loops (keep `param` at
position 1/2/3, or manually unroll 2/3). Paper: Original 1.00,
0 params 1.04, P1 1.07 (best), P2 0.96, P3 1.06, P1+P2 0.99,
P1+P3 1.05, P2+P3 0.99, P1+U2 1.03, P1+U3 1.01, P1+U2+U3 0.98.

Reproduced shape: the moderate-unroll configurations (P1) win; the
heavy-unroll combinations (P1+P2 / P1+U2 and friends, whose outlined
body blows the icache budget) are counterproductive; the fully
unrolled Original sits in between.  Known deviation: our model does
not reproduce P2-only being *slower* than Original (register-pressure
effect, see EXPERIMENTS.md E8).
"""

from conftest import record_result, run_once

from repro.bench import harness
from repro.views.tables import render_table

PAPER = {
    "Original": 1.00, "0 params": 1.04, "P 1": 1.07, "P 2": 0.96,
    "P 3": 1.06, "P1+P2": 0.99, "P1+P3": 1.05, "P2+P3": 0.99,
    "P1+U2": 1.03, "P1+U3": 1.01, "P1+U2+U3": 0.98,
}


def measure():
    return harness.lulesh_table_vii()


def test_table7_unrolling(benchmark, record):
    rows = run_once(benchmark, measure)
    sp = {tag: s for tag, _t, s in rows}

    # P1 beats the original (paper's headline finding for this table).
    assert sp["P 1"] > 1.02
    # Removing all unrolling also beats the over-unrolled original.
    assert sp["0 params"] > 1.0
    # Heavy-unroll combos are counterproductive (≤ original).
    assert sp["P1+P2"] < 1.01
    assert sp["P1+U2"] < 1.01
    # Manual unrolling matches its `param` equivalent closely
    # (both produce the same straightline code shape).
    assert abs(sp["P1+U2"] - sp["P1+P2"]) < 0.05
    assert abs(sp["P1+U2+U3"] - 1.0) < 0.08  # ≈ Original (same code)

    table = [
        [tag, f"{t:.4f}", f"{s:.2f}", f"{PAPER[tag]:.2f}"]
        for tag, t, s in rows
    ]
    record(
        "table7_unrolling",
        render_table(
            ["Unrolling tag", "Run time (s)", "Speedup", "Speedup (paper)"],
            table,
            title="Table VII — LULESH loop unrolling methods",
            aligns=["l", "r", "r", "r"],
        ),
    )
