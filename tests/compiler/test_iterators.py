"""User-defined serial iterator tests (`iter` procs with `yield`,
expanded inline — the paper's future-work feature)."""

import pytest

from repro.chapel.errors import TypeError_
from repro.compiler.lower import compile_source

import sys, os
sys.path.insert(0, os.path.dirname(os.path.dirname(__file__)))
from conftest import output_of, profile_src, run_src


class TestIteratorSemantics:
    def test_simple_counting_iterator(self):
        src = """
iter countdown(n: int): int {
  var k = n;
  while k > 0 {
    yield k;
    k -= 1;
  }
}
proc main() {
  for v in countdown(4) { write(v); }
  writeln("");
}
"""
        assert output_of(src) == ["4321"]

    def test_filtered_iterator(self):
        src = """
iter odds(hi: int): int {
  for i in 1..hi {
    if i % 2 == 1 then yield i;
  }
}
proc main() { writeln(oddsum(9)); }
proc oddsum(hi: int): int {
  var s = 0;
  for o in odds(hi) { s += o; }
  return s;
}
"""
        assert output_of(src) == ["25"]

    def test_multiple_yields_in_body(self):
        src = """
iter edges(n: int): int {
  yield 0;
  for i in 1..n-1 { yield i * 10; }
  yield 999;
}
proc main() {
  var parts = 0;
  for e in edges(3) { parts += e; }
  writeln(parts);
}
"""
        assert output_of(src) == ["1029"]  # 0 + 10 + 20 + 999

    def test_ref_param_iterator_writes_through(self):
        src = """
iter drain(ref acc: real, n: int): int {
  for i in 1..n {
    acc += i * 1.0;
    yield i;
  }
}
proc main() {
  var total = 0.0;
  var count = 0;
  for i in drain(total, 5) { count += 1; }
  writeln(total, count);
}
"""
        assert output_of(src) == ["15.0 5"]

    def test_break_exits_whole_iteration(self):
        src = """
iter nats(): int {
  var i = 0;
  while true {
    yield i;
    i += 1;
  }
}
proc main() {
  var s = 0;
  for n in nats() {
    if n > 5 then break;
    s += n;
  }
  writeln(s);
}
"""
        assert output_of(src) == ["15"]

    def test_continue_skips_to_next_yield(self):
        src = """
iter r(): int {
  for i in 1..6 { yield i; }
}
proc main() {
  var s = 0;
  for v in r() {
    if v % 2 == 0 then continue;
    s += v;
  }
  writeln(s);
}
"""
        assert output_of(src) == ["9"]

    def test_nested_same_iterator(self):
        src = """
iter r(n: int): int {
  for i in 1..n { yield i; }
}
proc main() {
  var s = 0;
  for a in r(3) {
    for b in r(3) { s += a * b; }
  }
  writeln(s);
}
"""
        assert output_of(src) == ["36"]

    def test_yield_type_coercion(self):
        src = """
iter halves(n: int): real {
  for i in 1..n { yield i; }
}
proc main() {
  var s = 0.0;
  for h in halves(3) { s += h / 2.0; }
  writeln(s);
}
"""
        assert output_of(src) == ["3.0"]


class TestIteratorBlame:
    def test_iterator_body_attributes_in_consumer_context(self):
        """Inline expansion means iterator statements are profiled in
        the consuming function — the Chapel reality the paper's tool
        had to cope with."""
        src = """
var OUT: [0..199] real;
iter work(n: int): int {
  for i in 0..n-1 {
    yield i;
  }
}
proc main() {
  for i in work(200) {
    OUT[i] = sqrt(i * 1.0) + i * 0.5;
  }
}
"""
        res = profile_src(src, threshold=307)
        assert res.report.blame_of("OUT") > 0.4
        row = res.report.row_for("i")
        assert row is not None and row.context == "main"


class TestIteratorErrors:
    def test_yield_outside_iterator(self):
        with pytest.raises(TypeError_, match="yield outside"):
            compile_source("proc main() { yield 1; }")

    def test_iterator_needs_yield(self):
        with pytest.raises(TypeError_, match="never yields"):
            compile_source("iter empty(): int { var x = 1; }\nproc main() { }")

    def test_iterator_needs_yield_type(self):
        with pytest.raises(TypeError_, match="yield type"):
            compile_source("iter f() { yield 1; }\nproc main() { }")

    def test_return_forbidden_in_iterator(self):
        with pytest.raises(TypeError_, match="return"):
            compile_source(
                "iter f(): int { yield 1; return; }\nproc main() { }"
            )

    def test_recursive_iterator_rejected(self):
        src = """
iter f(n: int): int {
  for x in f(n - 1) { yield x; }
  yield n;
}
proc main() { for v in f(3) { } }
"""
        with pytest.raises(TypeError_, match="recursive"):
            compile_source(src)

    def test_iterator_not_callable_as_expression(self):
        src = "iter f(): int { yield 1; }\nproc main() { var x = f(); }"
        with pytest.raises(TypeError_, match="for loop"):
            compile_source(src)

    def test_forall_over_iterator_rejected(self):
        src = "iter f(): int { yield 1; }\nproc main() { forall x in f() { } }"
        with pytest.raises(TypeError_, match="plain"):
            compile_source(src)

    def test_zip_with_iterator_rejected(self):
        src = (
            "iter f(): int { yield 1; }\n"
            "proc main() { for (a, b) in zip(f(), 0..3) { } }"
        )
        with pytest.raises(TypeError_):
            compile_source(src)
