"""The optional ``a`` (adaptive decision trail) artifact record:
presence, byte-stable round-trip, live-vs-replay view identity, and the
forward-minor tolerance contract that lets older readers skip it."""

from __future__ import annotations

import pytest

from repro.artifact.format import (
    artifact_bytes,
    read_artifact,
    write_artifact,
)
from repro.artifact.model import snapshot_from_result
from repro.pipeline.stages import render_stage
from repro.sampling.adaptive import AdaptiveConfig
from repro.sampling.dataset import check_line, crc_line
from repro.tooling.profiler import Profiler

SOURCE = """
config const n = 400;
config const iters = 20;
var A: [0..#n] real;
var B: [0..#n] real;
var total = 0.0;
for it in 0..#iters {
  forall i in 0..#n {
    A[i] = A[i] + i * 2.0;
  }
  forall i in 0..#n {
    B[i] = B[i] + A[i] * 0.5;
  }
  for i in 0..#n {
    total += A[i];
  }
}
"""


def _profile(adaptive=None):
    return Profiler(
        SOURCE, filename="toy.chpl", num_threads=4, threshold=997
    ).profile(adaptive=adaptive)


@pytest.fixture(scope="module")
def adaptive_result():
    result = _profile(adaptive=AdaptiveConfig(ci_width=0.05, round_samples=64))
    assert result.stopped_early  # the artifact under test is truncated
    return result


@pytest.fixture(scope="module")
def plain_result():
    return _profile()


class TestAdaptiveRecord:
    def test_record_present_and_counted(self, adaptive_result, tmp_path):
        snapshot = snapshot_from_result(adaptive_result)
        lines = artifact_bytes(snapshot).decode().splitlines()
        kinds = [check_line(ln)[0] for ln in lines]
        assert "a" in kinds
        assert kinds[-1] == "z"
        _, footer = check_line(lines[-1])
        assert footer["records"] == len(lines)  # footer counts `a` too

    def test_roundtrip_byte_identical(self, adaptive_result, tmp_path):
        snapshot = snapshot_from_result(adaptive_result)
        path = str(tmp_path / "adaptive.cbp")
        write_artifact(path, snapshot)
        loaded = read_artifact(path)
        assert artifact_bytes(loaded) == artifact_bytes(snapshot)
        assert loaded.adaptive == adaptive_result.adaptive.as_dict()

    @pytest.mark.parametrize("view", ["data", "hybrid", "html"])
    def test_views_byte_identical_live_vs_replay(
        self, adaptive_result, tmp_path, view
    ):
        path = str(tmp_path / "adaptive.cbp")
        write_artifact(path, snapshot_from_result(adaptive_result))
        loaded = read_artifact(path)
        assert render_stage(loaded, view) == render_stage(
            adaptive_result, view
        )

    def test_adaptive_footer_actually_renders(self, adaptive_result):
        text = render_stage(adaptive_result, "data")
        assert "~ adaptive: stopped early" in text


class TestForwardCompat:
    def test_plain_artifact_has_no_a_record(self, plain_result):
        lines = (
            artifact_bytes(snapshot_from_result(plain_result))
            .decode()
            .splitlines()
        )
        assert all(check_line(ln)[0] != "a" for ln in lines)

    def test_unknown_optional_kind_is_skipped(self, plain_result, tmp_path):
        """A reader from before a new optional record kind existed must
        read right past it — the same contract that lets pre-adaptive
        readers open adaptively-stopped artifacts."""
        snapshot = snapshot_from_result(plain_result)
        lines = artifact_bytes(snapshot).decode().splitlines()
        # Splice a future optional record in where `a` would sit
        # (before the footer) and fix the footer's record count.
        future = crc_line("y", {"from": "a-future-version"})
        _, footer = check_line(lines[-1])
        footer["records"] += 1
        doctored = lines[:-1] + [future, crc_line("z", footer)]
        path = tmp_path / "future.cbp"
        path.write_text("\n".join(doctored) + "\n")
        loaded = read_artifact(str(path))
        assert loaded.report.rows == snapshot.report.rows
        for view in ("data", "hybrid"):
            assert render_stage(loaded, view) == render_stage(snapshot, view)

    def test_merge_drops_the_trail(self, adaptive_result, tmp_path):
        """Merging is defined over the mandatory sections; a per-run
        decision trail has no meaning for the union, so a real (multi-
        input) merge carries none.  (The single-input merge stays the
        identity it has always been, trail included.)"""
        from repro.artifact import merge_snapshots

        snapshot = snapshot_from_result(adaptive_result)
        assert merge_snapshots([snapshot]).adaptive == snapshot.adaptive
        merged = merge_snapshots([snapshot, snapshot])
        assert merged.adaptive is None
