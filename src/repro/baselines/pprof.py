"""pprof-style code-centric baseline (gperftools) — paper Fig. 4.

Works on *raw* samples with no stack gluing and no runtime-frame
filtering, exactly like pprof on a Chapel binary: worker samples appear
under compiler-generated ``coforall_fn_chplNN`` functions, idle threads
pile up under ``__sched_yield``, and the user can't see which user-level
loop any of it came from — the confusion the paper's Fig. 4 walks
through.

Output format mirrors pprof's six columns:

1. samples in this function (flat)
2. percentage of samples in this function
3. cumulative percentage of flat samples so far
4. samples in this function and its callees
5. percentage of samples in this function and its callees
6. function name
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sampling.records import RawSample


@dataclass
class PprofRow:
    function: str
    flat: int = 0
    cumulative: int = 0


def build_pprof_profile(samples: list[RawSample]) -> list[PprofRow]:
    """Aggregates raw (unglued) samples per linkage-name function."""
    rows: dict[str, PprofRow] = {}

    def get(name: str) -> PprofRow:
        r = rows.get(name)
        if r is None:
            r = PprofRow(name)
            rows[name] = r
        return r

    for s in samples:
        leaf = s.stack[0][0] if s.stack else "<unknown>"
        get(leaf).flat += 1
        seen: set[str] = set()
        for func, _iid in s.stack:
            if func not in seen:
                seen.add(func)
                get(func).cumulative += 1
    out = list(rows.values())
    out.sort(key=lambda r: (-r.flat, -r.cumulative, r.function))
    return out


def render_pprof(
    samples: list[RawSample], binary_name: str = "a.out", top: int = 10
) -> str:
    profile = build_pprof_profile(samples)
    total = len(samples) or 1
    lines = [
        f"Using local file ./{binary_name}.",
        "Using local file prof.log.",
        f"Total: {total} samples",
    ]
    running = 0
    for row in profile[:top]:
        running += row.flat
        lines.append(
            f"{row.flat:>8} {100.0 * row.flat / total:>5.1f}% "
            f"{100.0 * running / total:>5.1f}% {row.cumulative:>8} "
            f"{100.0 * row.cumulative / total:>5.1f}% {row.function}"
        )
    return "\n".join(lines)
