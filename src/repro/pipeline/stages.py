"""The profiling pipeline as explicit, separately-invokable stages.

The paper's Fig. 2 tool is a four-step pipeline; this module spells it
out as six narrow functions so each seam is a real API instead of a
region inside ``Profiler.profile()``:

    compile_stage     source text      → IR module (cached)
    analyze_stage     module           → static blame info (step 1)
    collect_stage     module           → monitor + run result (step 2)
    postmortem_stage  raw samples      → consolidated instances (step 3)
    attribute_stage   instances        → per-variable blame (step 3)
    aggregate_stage   blame + counts   → BlameReport (step 4)
    render_stage      report/snapshot  → one view's text (step 4)

:class:`~repro.tooling.profiler.Profiler` is now a thin driver over
these stages, and the ``.cbp`` artifact is the serialized contract
between ``aggregate_stage`` and ``render_stage``: ``render_stage``
accepts anything exposing ``report`` / ``module`` / ``postmortem`` —
a live :class:`~repro.tooling.profiler.ProfileResult` or a loaded
:class:`~repro.artifact.model.ProfileSnapshot` — and produces
byte-identical text for both.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..blame.attribution import AttributionResult, BlameAttributor
from ..blame.cache import cached_module_blame_info
from ..blame.postmortem import PostmortemResult, process_samples
from ..blame.report import BlameReport, RunStats, build_rows
from ..blame.static_info import ModuleBlameInfo
from ..compiler.lower import compile_source
from ..ir.module import Module
from ..runtime.costmodel import CostModel
from ..runtime.interpreter import Interpreter, RunResult
from ..sampling.monitor import Monitor
from ..sampling.pmu import DEFAULT_THRESHOLD, PMUConfig
from ..sampling.records import RawSample

#: (source, filename, fast) → compiled (and fast-lowered) Module.
#: Profiling the same program repeatedly — benchmark sweeps, the warm
#: paths in the perf suite — reuses one Module object, which both skips
#: recompilation and keeps instruction ids identical across runs so the
#: on-module analysis caches stay hot.  Bounded FIFO.
_COMPILE_CACHE: dict[tuple[str, str, bool], Module] = {}
_COMPILE_CACHE_MAX = 32


def compile_stage(
    source: str, filename: str = "program.chpl", fast: bool = False
) -> Module:
    """Source text → IR module, through the bounded compile cache."""
    key = (source, filename, fast)
    module = _COMPILE_CACHE.get(key)
    if module is None:
        module = compile_source(source, filename)
        if fast:
            from ..compiler.passes import run_fast_pipeline

            run_fast_pipeline(module)
        if len(_COMPILE_CACHE) >= _COMPILE_CACHE_MAX:
            _COMPILE_CACHE.pop(next(iter(_COMPILE_CACHE)))
        _COMPILE_CACHE[key] = module
    return module


def analyze_stage(
    module: Module,
    options: "object | None" = None,
    workers: int = 1,
    backend: str = "auto",
    supervision: "object | None" = None,
) -> ModuleBlameInfo:
    """Step 1 — static blame analysis (pre-run, sample-independent;
    cached on the module, keyed by a content hash of its IR).

    ``workers > 1`` fans the per-function phase out across a worker
    pool (:func:`repro.pipeline.parallel.parallel_analyze`); results
    are content-identical and share the serial path's caches.
    ``supervision`` (a :class:`~repro.pipeline.supervisor.
    SupervisorConfig`) runs the fan-out under the shard supervisor.
    """
    if workers > 1:
        from .parallel import parallel_analyze

        return parallel_analyze(
            module, options=options, workers=workers, backend=backend,
            supervision=supervision,
        )
    return cached_module_blame_info(module, options=options)


@dataclass
class Collection:
    """What one monitored execution produced.

    On a sliced-collection run (``collect_stage(..., workers > 1)``)
    ``interpreter`` is the
    :class:`~repro.pipeline.parallel.CollectedInterpreterState` shim
    (thread count + final heap — the facts downstream consumers read)
    and ``parallel`` carries the
    :class:`~repro.pipeline.parallel.ParallelCollection` accounting.
    """

    monitor: Monitor
    interpreter: "Interpreter | object"
    run_result: RunResult
    parallel: "object | None" = None


def collect_stage(
    module: Module,
    config: dict[str, object] | None = None,
    num_threads: int = 12,
    threshold: int = DEFAULT_THRESHOLD,
    cost_model: CostModel | None = None,
    skid: int = 0,
    skid_compensation: bool = False,
    sink=None,
    batch_size: int = 256,
    workers: int = 1,
    backend: str = "auto",
    supervision: "object | None" = None,
) -> Collection:
    """Step 2 — execution under the monitor.

    Pass ``sink`` to stream sample batches out as they are collected
    (bounded memory) instead of retaining the whole run; the final
    partial batch is flushed before this returns.

    ``workers > 1`` partitions the run's virtual clock into that many
    simulated-time slices and collects each under its own interpreter +
    monitor in a pool worker
    (:func:`repro.pipeline.parallel.parallel_collect`); the reassembled
    stream is byte-identical to this function's serial output.  Sliced
    collection retains the stream, so it composes with neither ``sink``
    nor (downstream) the adaptive driver.
    """
    if workers > 1:
        if sink is not None:
            raise ValueError(
                "sliced collection retains the stream; it does not "
                "compose with a sink (streaming mode)"
            )
        from .parallel import parallel_collect

        pc = parallel_collect(
            module,
            workers,
            backend=backend,
            config=config,
            num_threads=num_threads,
            threshold=threshold,
            cost_model=cost_model,
            skid=skid,
            skid_compensation=skid_compensation,
            supervision=supervision,
        )
        return Collection(
            monitor=pc.monitor,
            interpreter=pc.interpreter,
            run_result=pc.run_result,
            parallel=pc,
        )
    monitor = Monitor(
        PMUConfig(threshold=threshold), sink=sink, batch_size=batch_size
    )
    interp = Interpreter(
        module,
        config=config,
        num_threads=num_threads,
        cost_model=cost_model,
        monitor=monitor,
        sample_threshold=threshold,
        skid=skid,
        skid_compensation=skid_compensation,
    )
    run_result = interp.run()
    monitor.flush()
    return Collection(monitor=monitor, interpreter=interp, run_result=run_result)


def postmortem_stage(
    module: Module,
    samples: list[RawSample],
    options: "object | None" = None,
    tolerant: bool = True,
) -> PostmortemResult:
    """Step 3a — stack consolidation over a materialized stream.

    (The streaming driver bypasses this wrapper and feeds a
    :class:`~repro.blame.postmortem.PostmortemConsumer` directly from
    the collect-stage sink.)
    """
    return process_samples(module, samples, options=options, tolerant=tolerant)


def attribute_stage(
    static_info: ModuleBlameInfo, pm: PostmortemResult
) -> AttributionResult:
    """Step 3b — blame accumulation over the consolidated instances."""
    return BlameAttributor(static_info).attribute(pm.instances)


def aggregate_stage(
    program: str,
    pm: PostmortemResult,
    attribution: AttributionResult,
    wall_seconds: float,
    dataset_bytes: int = 0,
    stackwalk_cycles: float = 0.0,
    postmortem_seconds: float = 0.0,
    monitor_quarantine: dict[str, int] | None = None,
    min_blame: float = 0.0,
    include_temps: bool = False,
) -> BlameReport:
    """Step 4a — assemble the presentation-ready report.

    ``monitor_quarantine`` carries ingest-time rejections (reason →
    count); post-mortem quarantine comes from ``pm`` itself.
    """
    monitor_quarantine = monitor_quarantine or {}
    n_monitor_quarantined = sum(monitor_quarantine.values())
    stats = RunStats(
        total_raw_samples=pm.n_raw,
        user_samples=pm.n_user,
        runtime_samples=pm.n_runtime,
        wall_seconds=wall_seconds,
        dataset_bytes=dataset_bytes,
        stackwalk_cycles=stackwalk_cycles,
        postmortem_seconds=postmortem_seconds,
        unknown_samples=pm.n_unknown,
        quarantined_samples=len(pm.quarantined) + n_monitor_quarantined,
        recovered_samples=pm.n_recovered,
    )
    quarantine_reasons = pm.quarantine_by_reason()
    for reason, n in monitor_quarantine.items():
        quarantine_reasons[reason] = quarantine_reasons.get(reason, 0) + n
    return BlameReport(
        program=program,
        rows=build_rows(
            attribution,
            min_blame=min_blame,
            include_temps=include_temps,
            unknown_samples=pm.n_unknown,
        ),
        stats=stats,
        unknown_by_reason=pm.unknown_by_reason(),
        quarantine_by_reason=quarantine_reasons,
    )


#: Views render_stage knows how to produce.
VIEWS = ("data", "code", "hybrid", "html")


def render_stage(profile, view: str = "data", top: int = 20, findings=None) -> str:
    """Step 4b — one view's text from anything profile-shaped.

    ``profile`` needs ``report``, ``module`` (anything answering
    ``get_function``) and ``postmortem`` — satisfied by a live
    :class:`~repro.tooling.profiler.ProfileResult` *and* by a
    :class:`~repro.artifact.model.ProfileSnapshot` loaded from disk,
    which is the artifact round-trip's byte-identity seam: both paths
    funnel through this one function.

    An adaptive run's decision trail (``profile.adaptive`` — a live
    :class:`~repro.sampling.adaptive.AdaptiveTrail` or the artifact's
    decoded dict) is normalized to its dict form here, so live and
    replayed renders draw the footer from the identical payload.
    """
    adaptive = getattr(profile, "adaptive", None)
    if adaptive is not None and hasattr(adaptive, "as_dict"):
        adaptive = adaptive.as_dict()
    if view == "data":
        from ..views.data_centric import render_data_centric

        return render_data_centric(profile.report, top=top, adaptive=adaptive)
    if view == "code":
        from ..views.code_centric import render_code_centric

        return render_code_centric(profile.module, profile.postmortem, top=top)
    if view == "hybrid":
        from ..views.hybrid import render_hybrid

        return render_hybrid(profile.report, findings=findings, adaptive=adaptive)
    if view == "html":
        from ..views.html import render_html_report

        return render_html_report(profile, top=top)
    raise ValueError(f"unknown view {view!r} (want one of {'|'.join(VIEWS)})")
