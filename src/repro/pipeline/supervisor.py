"""Supervised worker pool: every shard task is an explicit state machine.

:mod:`repro.pipeline.parallel` documents why sharded results are
bit-identical to serial ones; this module makes that hold when the
*transport* misbehaves.  Each pool submission — a post-mortem shard or
an analysis fan-out batch — is tracked as a per-task state machine::

    PENDING ── dispatch ──▶ RUNNING ── ok ──────────────▶ DONE
                              │ ▲                  (copy wins) SPECULATED
                  crash/hang/ │ │ backoff elapsed
                  corrupt     ▼ │
                            RETRYING ── budget spent ──▶ DEGRADED

with bounded retry + exponential backoff (the shared
:mod:`repro.resilience.retrying` schedule), per-task wall-clock
timeouts, optional straggler speculation (a timed-out task is raced
against a fresh copy; first completed result wins, the loser is
abandoned), and pool rebuild after ``BrokenProcessPool``.

Failure is fuel for the existing degradation machinery, not a new error
path: a task that exhausts its budget goes ``DEGRADED`` and the caller
folds the shard's samples into the ``<unknown>`` blame bucket with
``worker-failed`` provenance — exactly how a truncated stack walk
degrades, one layer up.  The bit-identity contract survives because a
retried task re-runs a *pure* function of its payload: any fault
schedule that eventually succeeds yields the same per-task results,
hence the same merged artifact, byte for byte.

Fault decisions come from the parent (:func:`~repro.resilience.
transport.directives_for`), ship inside the payload, and are executed
by :func:`_run_supervised_task` in the worker — workers never roll
dice, so a schedule replays exactly.  Result integrity is enforced by
the CRC envelope only when the plan can corrupt payloads; the clean
path ships raw results with no second pickle pass.
"""

from __future__ import annotations

import enum
import pickle
import signal
import time
from concurrent import futures as _cf
from dataclasses import dataclass, field

from ..errors import (
    PayloadCorruptError,
    WorkerCrashError,
    WorkerError,
    WorkerInitError,
    WorkerTimeoutError,
)
from ..resilience.retrying import RetryPolicy
from ..resilience.transport import directives_for, seal, unseal


class TaskState(enum.Enum):
    """Where one shard task is in its supervised lifecycle."""

    PENDING = "pending"
    RUNNING = "running"
    RETRYING = "retrying"
    DONE = "done"
    SPECULATED = "speculated"  # done, but the speculative copy won
    DEGRADED = "degraded"  # retry budget spent; shard folded to <unknown>

    @property
    def terminal(self) -> bool:
        return self in (
            TaskState.DONE,
            TaskState.SPECULATED,
            TaskState.DEGRADED,
        )


@dataclass
class TaskRecord:
    """One task's supervised history (the state machine's tape)."""

    index: int
    state: TaskState = TaskState.PENDING
    #: Every state ever entered, in order (transition tests read this).
    history: list[TaskState] = field(default_factory=lambda: [TaskState.PENDING])
    #: Total dispatches, speculative copies included (seeds directives).
    dispatches: int = 0
    #: Failed attempts charged against the retry budget.
    failures: int = 0
    errors: list[str] = field(default_factory=list)
    speculated: bool = False

    def to(self, state: TaskState) -> None:
        self.state = state
        self.history.append(state)

    @property
    def succeeded(self) -> bool:
        return self.state in (TaskState.DONE, TaskState.SPECULATED)


@dataclass(frozen=True)
class SupervisorConfig:
    """Supervision knobs (the CLI's ``--worker-*`` flags).

    ``plan`` is a :class:`~repro.resilience.faults.FaultPlan` (or None)
    supplying the injected transport schedule; retry/backoff follow the
    shared :class:`~repro.resilience.retrying.RetryPolicy` arithmetic;
    ``timeout`` is the per-task wall-clock budget in host seconds
    (None: unbounded); ``speculate`` races a copy on timeout instead of
    abandoning the original.
    """

    plan: "object | None" = None
    timeout: "float | None" = None
    max_retries: int = 2
    backoff: float = 0.01
    speculate: bool = False

    def policy(self) -> RetryPolicy:
        return RetryPolicy(max_retries=self.max_retries, backoff=self.backoff)


@dataclass
class SupervisionStats:
    """What supervising one fan-out cost and saved."""

    tasks: int = 0
    retries: int = 0
    crashes: int = 0
    timeouts: int = 0
    payload_corruptions: int = 0
    pool_rebuilds: int = 0
    init_failures: int = 0
    speculated: int = 0
    degraded_tasks: tuple[int, ...] = ()
    degraded_samples: int = 0

    @property
    def any_faults(self) -> bool:
        return bool(
            self.retries
            or self.crashes
            or self.timeouts
            or self.payload_corruptions
            or self.pool_rebuilds
            or self.init_failures
            or self.speculated
            or self.degraded_tasks
        )

    def as_fault_stats(self) -> dict:
        """Flat numeric counters for the ``.cbp`` fault-stats record —
        the artifact merge zero-fills and sums unknown numeric keys, so
        these survive ``repro-profile merge`` unchanged."""
        return {
            "worker_tasks": self.tasks,
            "worker_retries": self.retries,
            "worker_crashes": self.crashes,
            "worker_timeouts": self.timeouts,
            "payload_corruptions": self.payload_corruptions,
            "pool_rebuilds": self.pool_rebuilds,
            "worker_init_failures": self.init_failures,
            "speculated_tasks": self.speculated,
            "degraded_shards": len(self.degraded_tasks),
            "degraded_shard_samples": self.degraded_samples,
        }

    def summary(self) -> str:
        """The one-line supervision summary the CLI prints on stderr."""
        parts = [f"{self.tasks} tasks"]
        if self.retries:
            parts.append(f"{self.retries} retries")
        if self.crashes:
            parts.append(f"{self.crashes} crashes")
        if self.timeouts:
            parts.append(f"{self.timeouts} timeouts")
        if self.payload_corruptions:
            parts.append(f"{self.payload_corruptions} corrupt payloads")
        if self.pool_rebuilds:
            parts.append(f"{self.pool_rebuilds} pool rebuilds")
        if self.init_failures:
            parts.append(f"{self.init_failures} init failures")
        if self.speculated:
            parts.append(f"{self.speculated} speculated")
        if self.degraded_tasks:
            ids = ",".join(str(i) for i in self.degraded_tasks)
            parts.append(
                f"{len(self.degraded_tasks)} shard(s) degraded [{ids}]"
            )
        if len(parts) == 1:
            parts.append("all clean")
        return ", ".join(parts)


@dataclass
class SupervisionOutcome:
    """One supervised fan-out: results (None where degraded), the
    per-task records, and the aggregated stats."""

    results: list
    records: list[TaskRecord]
    stats: SupervisionStats

    @property
    def degraded_indices(self) -> tuple[int, ...]:
        return tuple(
            r.index for r in self.records if r.state is TaskState.DEGRADED
        )


# -- worker side --------------------------------------------------------------


def _run_supervised_task(payload):
    """Top-level (picklable) wrapper every supervised dispatch runs:
    executes the injected directive, then the real task.

    ``mode`` is the concrete backend: a SIGKILL directive only kills a
    real process worker ("process"); under "interpreter" (shared
    process) it demotes to a clean crash, and the inline driver never
    routes kills here at all.  A hang *sleeps* and then completes
    normally — whether the stalled result is used is the supervisor's
    call (timeout/speculation), exactly like a real straggler.
    """
    task, index, directives, inner, envelope, mode = payload
    if directives.kill:
        if mode == "process":
            signal.raise_signal(signal.SIGKILL)
        raise WorkerCrashError(
            f"injected worker kill on task {index} ({mode} backend)"
        )
    if directives.crash:
        raise WorkerCrashError(f"injected worker crash on task {index}")
    if directives.hang and directives.hang_seconds > 0.0:
        time.sleep(directives.hang_seconds)
    result = task(inner)
    if envelope:
        return seal(result, corrupt=directives.corrupt, seed=index)
    return result


# -- parent side --------------------------------------------------------------


class ShardSupervisor:
    """Runs shard tasks on a pool backend under the per-task state
    machine documented in the module docstring.

    One supervisor maps one fan-out (``map`` may be called repeatedly;
    stats accumulate).  ``allow_degraded`` is per-map: the post-mortem
    path degrades gracefully, the analysis fan-out has no ``<unknown>``
    bucket to fold into and re-raises instead.
    """

    def __init__(
        self,
        backend: str,
        workers: int,
        state: tuple,
        config: "SupervisorConfig | None" = None,
        setup_inline=None,
    ) -> None:
        self.backend = backend
        self.workers = workers
        self.config = config or SupervisorConfig()
        self.stats = SupervisionStats()
        self._setup_inline = setup_inline
        self._state = state
        plan = self.config.plan
        self._envelope = bool(
            plan is not None and plan.has_payload_faults and backend != "inline"
        )
        self._init_fails_left = (
            plan.init_pickle_failures if plan is not None else 0
        )
        if backend != "inline":
            try:
                self._blob = pickle.dumps(
                    state, protocol=pickle.HIGHEST_PROTOCOL
                )
            except (pickle.PicklingError, TypeError, AttributeError) as exc:
                # CPython raises bare TypeError/AttributeError for some
                # unpicklable objects (locals, lambdas); all of them
                # mean the same thing here.
                raise WorkerInitError(
                    f"worker initializer blob would not pickle for the "
                    f"{backend!r} backend: {exc}"
                ) from exc

    # -- pool construction ------------------------------------------------

    def _build_pool(self, n_tasks: int):
        """Builds the executor, retrying injected (transient)
        initializer failures on the shared backoff schedule; a genuine
        pickling failure raised in ``__init__`` is never retried."""
        from .parallel import _init_worker

        policy = self.config.policy()
        failures = 0
        while True:
            if self._init_fails_left > 0:
                self._init_fails_left -= 1
                self.stats.init_failures += 1
                failures += 1
                if not policy.allows(failures):
                    raise WorkerInitError(
                        f"injected initializer failure persisted through "
                        f"{failures} attempts ({self.backend} backend)",
                        transient=True,
                    )
                time.sleep(policy.delay(failures))
                continue
            pool_cls = (
                _cf.ProcessPoolExecutor
                if self.backend == "process"
                else _cf.InterpreterPoolExecutor
            )
            return pool_cls(
                max_workers=max(1, min(self.workers, n_tasks)),
                initializer=_init_worker,
                initargs=(self._blob,),
            )

    # -- the supervised map ----------------------------------------------

    def map(self, task, payloads, allow_degraded: bool = False):
        """Runs ``task`` over ``payloads``; returns a
        :class:`SupervisionOutcome` whose results are in payload order
        with ``None`` holes where shards degraded (only possible with
        ``allow_degraded``; otherwise the last transport error
        re-raises once a task's budget is spent)."""
        if self.backend == "inline":
            return self._map_inline(task, payloads, allow_degraded)
        return self._map_pool(task, payloads, allow_degraded)

    # The inline backend is the determinism witness: the same state
    # machine, dispatch accounting and envelope seam run sequentially
    # in-process (hangs are modeled against the timeout, not slept;
    # kills break a simulated pool).
    def _map_inline(self, task, payloads, allow_degraded: bool):
        if self._setup_inline is not None:
            self._setup_inline(*self._state)
        cfg = self.config
        plan = cfg.plan
        policy = cfg.policy()
        records = [TaskRecord(i) for i in range(len(payloads))]
        results: list = [None] * len(payloads)
        self.stats.tasks += len(payloads)
        # Injected initializer failures: the simulated pool "rebuilds"
        # until they are spent (transient by construction).
        while self._init_fails_left > 0:
            self._init_fails_left -= 1
            self.stats.init_failures += 1
        envelope = bool(plan is not None and plan.has_payload_faults)
        for i, payload in enumerate(payloads):
            rec = records[i]
            speculative = False
            while True:
                dispatch = rec.dispatches
                rec.dispatches += 1
                if rec.state is TaskState.PENDING or rec.state is TaskState.RETRYING:
                    rec.to(TaskState.RUNNING)
                d = directives_for(plan, i, dispatch)
                try:
                    if d.kill:
                        self.stats.pool_rebuilds += 1
                        raise WorkerCrashError(
                            f"injected worker kill on task {i} "
                            f"(simulated pool break)"
                        )
                    if d.crash:
                        raise WorkerCrashError(
                            f"injected worker crash on task {i}"
                        )
                    if (
                        d.hang
                        and cfg.timeout is not None
                        and d.hang_seconds > cfg.timeout
                    ):
                        # The stalled dispatch would outlive the budget:
                        # the supervisor times it out (and, when
                        # speculating, immediately races a copy).
                        raise WorkerTimeoutError(
                            f"task {i} exceeded the {cfg.timeout:.3f}s "
                            f"budget (injected hang of {d.hang_seconds:.3f}s)"
                        )
                    result = task(payload)
                    if envelope:
                        result = unseal(
                            seal(result, corrupt=d.corrupt, seed=i)
                        )
                    elif d.corrupt:
                        raise PayloadCorruptError(
                            f"injected payload corruption on task {i}"
                        )
                except WorkerError as exc:
                    self._classify(exc)
                    rec.errors.append(f"{type(exc).__name__}: {exc}")
                    if isinstance(exc, WorkerTimeoutError) and cfg.speculate:
                        # The copy races free of the retry budget; its
                        # own faults fall through to normal retries.
                        if not speculative:
                            speculative = True
                            continue
                    rec.failures += 1
                    if policy.allows(rec.failures):
                        self.stats.retries += 1
                        rec.to(TaskState.RETRYING)
                        continue
                    rec.to(TaskState.DEGRADED)
                    self._degrade(rec, allow_degraded, exc)
                    break
                else:
                    results[i] = result
                    if speculative:
                        rec.speculated = True
                        self.stats.speculated += 1
                        rec.to(TaskState.SPECULATED)
                    else:
                        rec.to(TaskState.DONE)
                    break
        return SupervisionOutcome(results, records, self.stats)

    def _map_pool(self, task, payloads, allow_degraded: bool):
        cfg = self.config
        plan = cfg.plan
        policy = cfg.policy()
        n = len(payloads)
        records = [TaskRecord(i) for i in range(n)]
        results: list = [None] * n
        self.stats.tasks += n
        if n == 0:
            return SupervisionOutcome(results, records, self.stats)
        max_workers = max(1, min(self.workers, n))
        pool = self._build_pool(n)

        in_flight: dict = {}  # future -> (index, started, speculative)
        flights: dict[int, int] = {}  # index -> live future count
        abandoned: set = set()  # futures whose outcome no longer matters
        ready: list[int] = list(range(n))
        waiting: list[tuple[float, int]] = []  # (release time, index)
        speculated_now: set[int] = set()
        done_count = 0

        def dispatch(index: int, speculative: bool = False):
            rec = records[index]
            d = directives_for(plan, index, rec.dispatches)
            rec.dispatches += 1
            if rec.state in (TaskState.PENDING, TaskState.RETRYING):
                rec.to(TaskState.RUNNING)
            fut = pool.submit(
                _run_supervised_task,
                (task, index, d, payloads[index], self._envelope, self.backend),
            )
            in_flight[fut] = (index, time.monotonic(), speculative)
            flights[index] = flights.get(index, 0) + 1

        def charge_failure(index: int, exc: BaseException):
            nonlocal done_count
            rec = records[index]
            rec.failures += 1
            if policy.allows(rec.failures):
                self.stats.retries += 1
                rec.to(TaskState.RETRYING)
                waiting.append(
                    (time.monotonic() + policy.delay(rec.failures), index)
                )
            else:
                rec.to(TaskState.DEGRADED)
                done_count += 1
                self._degrade(rec, allow_degraded, exc)

        def settle_failure(index: int, exc: BaseException):
            """One future failed; the task only fails once its last
            live flight does (a speculative sibling may still win)."""
            rec = records[index]
            self._classify(exc)
            rec.errors.append(f"{type(exc).__name__}: {exc}")
            flights[index] -= 1
            if flights[index] > 0 or rec.state.terminal:
                return
            speculated_now.discard(index)
            charge_failure(index, exc)

        def rebuild_pool(exc: BaseException, extra: tuple[int, ...] = ()):
            nonlocal pool
            self.stats.pool_rebuilds += 1
            affected = sorted(
                {idx for idx, _, _ in in_flight.values()} | set(extra)
            )
            in_flight.clear()
            flights.clear()
            abandoned.clear()
            speculated_now.clear()
            try:
                pool.shutdown(wait=False, cancel_futures=True)
            except Exception:
                pass
            pool = self._build_pool(n)
            crash = WorkerCrashError(
                f"worker pool broke mid-flight ({exc}); rebuilt"
            )
            for idx in affected:
                rec = records[idx]
                if rec.state.terminal:
                    continue
                rec.errors.append(f"{type(crash).__name__}: {crash}")
                self.stats.crashes += 1
                charge_failure(idx, crash)

        try:
            while done_count < n:
                now = time.monotonic()
                # Promote tasks whose backoff elapsed.
                still: list[tuple[float, int]] = []
                for release, idx in waiting:
                    if release <= now and not records[idx].state.terminal:
                        ready.append(idx)
                    elif not records[idx].state.terminal:
                        still.append((release, idx))
                waiting[:] = still
                # Fill worker slots (primary dispatches respect the cap;
                # speculative copies ride on top).
                while ready and len(in_flight) < max_workers:
                    idx = ready.pop(0)
                    if records[idx].state.terminal:
                        continue
                    try:
                        dispatch(idx)
                    except _cf.BrokenExecutor as exc:
                        rebuild_pool(exc)
                        break

                if not in_flight:
                    if waiting:
                        time.sleep(
                            max(0.0, min(r for r, _ in waiting) - time.monotonic())
                        )
                        continue
                    if ready:
                        continue
                    if done_count < n:  # pragma: no cover - loop guard
                        raise WorkerCrashError(
                            "supervisor stalled with tasks outstanding"
                        )
                    break

                # Wait for the next completion, timeout deadline, or
                # backoff release, whichever is first.
                wait_timeout = None
                if cfg.timeout is not None:
                    next_deadline = min(
                        started + cfg.timeout
                        for (_i, started, _s) in in_flight.values()
                    )
                    wait_timeout = max(0.0, next_deadline - time.monotonic())
                if waiting:
                    release = min(r for r, _ in waiting) - time.monotonic()
                    release = max(0.0, release)
                    wait_timeout = (
                        release
                        if wait_timeout is None
                        else min(wait_timeout, release)
                    )
                done, _ = _cf.wait(
                    list(in_flight) + list(abandoned),
                    timeout=wait_timeout,
                    return_when=_cf.FIRST_COMPLETED,
                )

                broken: BaseException | None = None
                broken_extra: tuple[int, ...] = ()
                for fut in done:
                    if fut in abandoned:
                        abandoned.discard(fut)
                        continue
                    if fut not in in_flight:
                        continue
                    index, _started, speculative = in_flight.pop(fut)
                    rec = records[index]
                    if rec.state.terminal:
                        flights[index] -= 1
                        continue
                    try:
                        raw = fut.result()
                        result = unseal(raw) if self._envelope else raw
                    except _cf.BrokenExecutor as exc:
                        # This future was already popped from in_flight;
                        # make sure its task is still charged/retried.
                        broken = exc
                        broken_extra = (index,)
                        break
                    except WorkerError as exc:
                        settle_failure(index, exc)
                        continue
                    except BaseException as exc:
                        settle_failure(index, exc)
                        continue
                    # Success: first completed flight wins.
                    results[index] = result
                    flights[index] -= 1
                    done_count += 1
                    if speculative:
                        rec.speculated = True
                        self.stats.speculated += 1
                        rec.to(TaskState.SPECULATED)
                    else:
                        rec.to(TaskState.DONE)
                    speculated_now.discard(index)
                    # Abandon the losing sibling, if racing.
                    for f2, (i2, _t2, _s2) in list(in_flight.items()):
                        if i2 == index:
                            del in_flight[f2]
                            flights[index] -= 1
                            if not f2.cancel():
                                abandoned.add(f2)
                if broken is not None:
                    rebuild_pool(broken, extra=broken_extra)
                    continue

                # Timeout scan: speculate or abandon+retry.
                if cfg.timeout is not None:
                    now = time.monotonic()
                    for fut, (index, started, speculative) in list(
                        in_flight.items()
                    ):
                        if now - started <= cfg.timeout:
                            continue
                        rec = records[index]
                        if cfg.speculate:
                            if speculative or index in speculated_now:
                                continue  # already racing a copy
                            self.stats.timeouts += 1
                            rec.errors.append(
                                f"WorkerTimeoutError: task {index} exceeded "
                                f"the {cfg.timeout:.3f}s budget; speculating"
                            )
                            speculated_now.add(index)
                            try:
                                dispatch(index, speculative=True)
                            except _cf.BrokenExecutor as exc:
                                rebuild_pool(exc)
                                break
                        else:
                            del in_flight[fut]
                            if not fut.cancel():
                                abandoned.add(fut)
                            settle_failure(
                                index,
                                WorkerTimeoutError(
                                    f"task {index} exceeded the "
                                    f"{cfg.timeout:.3f}s budget"
                                ),
                            )
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        return SupervisionOutcome(results, records, self.stats)

    # -- shared accounting ------------------------------------------------

    def _classify(self, exc: BaseException) -> None:
        if isinstance(exc, WorkerTimeoutError):
            self.stats.timeouts += 1
        elif isinstance(exc, PayloadCorruptError):
            self.stats.payload_corruptions += 1
        else:
            self.stats.crashes += 1

    def _degrade(
        self, rec: TaskRecord, allow_degraded: bool, exc: BaseException
    ) -> None:
        self.stats.degraded_tasks = tuple(
            sorted(set(self.stats.degraded_tasks) | {rec.index})
        )
        if not allow_degraded:
            if isinstance(exc, WorkerError):
                raise exc
            raise WorkerCrashError(
                f"task {rec.index} failed after {rec.failures} attempts: {exc}"
            ) from exc
