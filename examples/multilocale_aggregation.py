"""Multi-locale profiling and aggregation (paper step 4 / future work).

The program partitions its iteration space by locale (SPMD-style, the
way Chapel block distributions place work); each simulated locale is
profiled independently — "embarrassingly parallel", as the paper notes
for its step 3 — and the per-locale blame reports merge into one
program-wide report. An HTML report of locale 0 is also written.

Run:  python examples/multilocale_aggregation.py
"""

from repro.tooling.multilocale import profile_locales
from repro.views import render_data_centric
from repro.views.html import write_html_report

SOURCE = """
config const localeId: int = 0;
config const numLocales: int = 1;
config const n: int = 160;

var chunkSize = n / numLocales;
var lo = localeId * chunkSize;
var hi = lo + chunkSize - 1;
var field0: [0..n-1] real;
var flux: [0..n-1] real;

proc relax() {
  forall i in lo..hi {
    flux[i] = sqrt(field0[i] + i * 1.0) * 0.5;
    field0[i] = field0[i] * 0.9 + flux[i];
  }
}

proc main() {
  for t in 1..4 { relax(); }
  writeln("locale", localeId, "done");
}
"""


def main() -> None:
    result = profile_locales(
        SOURCE, num_locales=4, num_threads=4, threshold=1013
    )

    for res in result.per_locale:
        rep = res.report
        print(
            f"locale {rep.locale_id}: {rep.stats.user_samples} samples, "
            f"top = {rep.rows[0].name} ({100*rep.rows[0].blame:.0f}%)"
        )

    print()
    print("merged program-wide report:")
    print(render_data_centric(result.merged, top=8, min_blame=0.02))

    path = write_html_report("multilocale_report.html", result.per_locale[0])
    print(f"\n[HTML report for locale 0: {path}]")


if __name__ == "__main__":
    main()
