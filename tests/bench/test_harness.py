"""Experiment harness unit tests."""

import pytest

from repro.bench import harness
from repro.bench.harness import SpeedupResult, TimingRow, time_variant


class TestTimingRows:
    def test_speedup_math(self):
        base = TimingRow("orig", 2.0)
        fast = TimingRow("opt", 1.0)
        assert fast.speedup_vs(base) == pytest.approx(2.0)

    def test_speedup_result_lookup(self):
        r = SpeedupResult("x")
        r.rows["orig"] = TimingRow("orig", 4.0)
        r.rows["opt"] = TimingRow("opt", 2.0)
        assert r.speedup("opt", "orig") == pytest.approx(2.0)


class TestTimeVariant:
    def test_prefers_self_timer(self):
        src = """
proc main() {
  var t0 = getCurrentTime();
  var s = 0.0;
  for i in 1..2000 { s += i * 1.0; }
  var t1 = getCurrentTime();
  writeln("elapsed", t1 - t0);
}
"""
        t = time_variant(src, "t.chpl", num_threads=2)
        assert t > 0
        # The self-timer excludes nothing here, but must be < whole wall
        # (which includes module init and the writeln itself).
        from repro.tooling.profiler import run_only

        wall = run_only(src, num_threads=2).wall_seconds
        assert t <= wall

    def test_falls_back_to_wall(self):
        src = "proc main() { var s = 0; for i in 1..100 { s += i; } }"
        t = time_variant(src, "t.chpl", num_threads=2)
        assert t > 0

    def test_deterministic(self):
        src = "proc main() { var s = 0.0; for i in 1..500 { s += i; } }"
        assert time_variant(src, "t.chpl") == time_variant(src, "t.chpl")


class TestProfileHelpers:
    def test_minimd_profile_smoke(self):
        res = harness.minimd_profile(
            optimized=True, num_bins=4, per_bin=3, steps=1
        )
        assert res.report.rows
        assert any(l.startswith("energy") for l in res.run_result.output)

    def test_clomp_profile_smoke(self):
        res = harness.clomp_profile(
            optimized=True, num_parts=4, zones_per_part=5, timesteps=1
        )
        assert res.report.rows

    def test_lulesh_profile_smoke(self):
        res = harness.lulesh_profile(edge_elems=2, max_steps=1)
        assert res.report.rows
        assert res.report.blame_of("hourgam") >= 0

    def test_lulesh_time_variants_differ_only_in_variant(self):
        from repro.bench.programs import lulesh

        t_orig = harness.lulesh_time(lulesh.ORIGINAL, edge_elems=2, max_steps=1)
        t_best = harness.lulesh_time(lulesh.BEST_CASE, edge_elems=2, max_steps=1)
        assert t_orig > 0 and t_best > 0
