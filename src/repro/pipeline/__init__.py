"""Staged profiling pipeline (compile → analyze → collect → post-mortem
→ aggregate → render) with the ``.cbp`` artifact as the contract
between collection and presentation.  :mod:`repro.pipeline.parallel`
shards post-mortem/attribution/analysis across worker pools with
bit-identical results."""

from .parallel import (
    BACKENDS,
    ParallelPostmortem,
    interpreter_pool_available,
    parallel_analyze,
    parallel_postmortem,
    resolve_backend,
)
from .supervisor import (
    ShardSupervisor,
    SupervisionOutcome,
    SupervisionStats,
    SupervisorConfig,
    TaskRecord,
    TaskState,
)
from .stages import (
    VIEWS,
    Collection,
    aggregate_stage,
    analyze_stage,
    attribute_stage,
    collect_stage,
    compile_stage,
    postmortem_stage,
    render_stage,
)

__all__ = [
    "BACKENDS",
    "VIEWS",
    "Collection",
    "ParallelPostmortem",
    "aggregate_stage",
    "analyze_stage",
    "attribute_stage",
    "collect_stage",
    "compile_stage",
    "ShardSupervisor",
    "SupervisionOutcome",
    "SupervisionStats",
    "SupervisorConfig",
    "TaskRecord",
    "TaskState",
    "interpreter_pool_available",
    "parallel_analyze",
    "parallel_postmortem",
    "postmortem_stage",
    "render_stage",
]
