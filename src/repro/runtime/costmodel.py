"""Per-instruction cycle cost model — the simulated PMU's clock source.

This replaces the real Xeon the paper ran on (DESIGN.md §2).  The
*relative* costs encode the performance behaviors the paper's
optimizations exploit, so the speedup tables emerge from execution:

* zippered iteration pays per-step overhead per iterand
  (MiniMD, Table III);
* reindexed (domain-remapped) views pay per-access translation
  (MiniMD);
* ``makearray`` pays allocation + zero-fill — hoisting it is LULESH's
  Variable Globalization win (Table IX);
* tuple construction/copy pays per slot — eliminating tuple
  temporaries is LULESH's CENN win (Table IX);
* functions bigger than the icache budget pay a per-instruction
  penalty — why over-unrolling (P2, U2+U3) is counterproductive
  (Table VII);
* class field chains pay indirection — flattening CLOMP's Part/Zone
  nests into one 2-D array is the CLOMP win (Table V).

All values are in simulated cycles and configurable; ``CLOCK_HZ``
converts to simulated seconds for reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Simulated clock rate (cycles/second) for time reporting.
CLOCK_HZ = 50_000_000.0


@dataclass(frozen=True)
class CostModel:
    """Cycle costs by instruction kind (see module docstring).

    Frozen: every run without an explicit model shares
    :data:`DEFAULT_COST_MODEL`, so an instance must be immutable for
    runs to be independent of each other (mutate-by-accident here would
    silently change every later run in the process — including the
    sliced-collection identity guarantee).  Derive variants with
    ``dataclasses.replace`` or keyword construction.
    """

    # Memory
    alloca: int = 2
    load: int = 3
    store: int = 3
    #: extra per scalar slot when storing/copying a composite value
    copy_per_slot: int = 4
    field_addr: int = 1
    #: extra indirection when the field base is a heap class instance
    class_field_extra: int = 45
    elem_addr: int = 4
    #: extra when any subscript is a runtime value (const-folded
    #: subscripts from param-unrolled loops address directly)
    elem_addr_dynamic_extra: int = 3
    elem_addr_reindex_extra: int = 12
    tuple_elem_addr: int = 1
    #: extra when the tuple index is a runtime value — constant indices
    #: (param-unrolled loops) address directly, which is the gain the
    #: paper's `param` keyword experiments (Table VII) measure
    tuple_index_dynamic_extra: int = 5

    # Scalar ops
    int_op: int = 1
    real_op: int = 2
    real_div: int = 12
    real_pow: int = 24
    cmp_op: int = 1
    tuple_op_per_slot: int = 3

    # Tuples / records
    make_tuple_base: int = 8
    make_tuple_per_slot: int = 5
    tuple_get: int = 1
    new_record_base: int = 6
    new_record_per_field: int = 2
    new_object_base: int = 40
    new_object_per_field: int = 2

    # Calls / control
    call_overhead: int = 22
    builtin_call: int = 8
    ret: int = 6
    br: int = 1
    cbr: int = 2

    # Ranges / domains / arrays
    make_range: int = 3
    make_domain: int = 55
    domain_op: int = 20
    make_array_base: int = 2000
    make_array_per_elem: int = 34
    array_slice: int = 170
    array_reindex: int = 60
    array_copy_per_elem: int = 2

    # Iterators
    iter_init_range: int = 6
    iter_init_domain: int = 14
    iter_init_array: int = 80
    iter_init_zip_extra: int = 45
    iter_next_range: int = 2
    iter_next_domain: int = 12
    iter_next_array: int = 44
    iter_next_zip_extra: int = 38
    iter_value: int = 2
    iter_value_domain_extra: int = 4

    # Tasking
    spawn_base: int = 250
    spawn_per_task: int = 120
    join_poll: int = 30
    idle_quantum: int = 30

    # I-cache pressure: functions larger than `icache_instrs` pay a
    # per-instruction multiplier up to `icache_max_penalty`.
    icache_instrs: int = 850
    icache_ramp: int = 1200
    icache_max_penalty: float = 0.9

    # Memory system: once the live heap exceeds the last-level-cache
    # budget, every array element access pays a stall. Both a program
    # version and its rewrite pay it, compressing speedups at large
    # problem shapes (CLOMP Table V's 65536-part rows).
    llc_bytes: int = 98304
    mem_stall: int = 150

    # Misc
    writeln_base: int = 40
    math_intrinsic: int = 20
    config_get: int = 10

    def function_penalty(self, n_instrs: int) -> float:
        """Multiplier ≥ 1.0 applied to every instruction of a function,
        growing with code size past the icache budget (reaching the cap
        at ``icache_instrs + icache_ramp`` instructions)."""
        if n_instrs <= self.icache_instrs:
            return 1.0
        over = (n_instrs - self.icache_instrs) / self.icache_ramp
        return 1.0 + self.icache_max_penalty * min(1.0, over)


DEFAULT_COST_MODEL = CostModel()
