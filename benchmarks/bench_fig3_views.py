"""E13 — Paper Fig. 3: the GUI's windows (flat data-centric +
code-centric side by side) rendered for one MiniMD run.

The check is structural: the data-centric window ranks variables with
type/blame/context columns; the code-centric window over the *same*
samples shows functions with flat/cumulative counts; the hybrid window
groups variables by blame point with main first.
"""

from conftest import record_result, run_once

from repro.bench import harness
from repro.views.code_centric import render_code_centric
from repro.views.data_centric import render_data_centric
from repro.views.hybrid import render_hybrid


def profile():
    return harness.minimd_profile(optimized=False)


def test_fig3_views(benchmark, record):
    res = run_once(benchmark, profile)

    data_view = render_data_centric(res.report, top=12, min_blame=0.01)
    code_view = render_code_centric(res.module, res.postmortem, top=12)
    hybrid_view = render_hybrid(res.report, min_blame=0.05)

    # Data-centric: the MiniMD cast appears with contexts.
    assert "Pos" in data_view and "Bins" in data_view
    assert "main" in data_view
    # Code-centric: user functions, not outlined frames.
    assert "computeForce" in code_view
    assert "forall_fn" not in code_view
    # Hybrid: main is the first blame point.
    assert hybrid_view.index("blame point: main") < len(hybrid_view)

    record(
        "fig3_views",
        "\n\n".join(
            [
                "== Fig. 3 (left): code-centric ==\n" + code_view,
                "== Fig. 3 (right): data-centric ==\n" + data_view,
                "== hybrid (blame points) ==\n" + hybrid_view,
            ]
        ),
    )
