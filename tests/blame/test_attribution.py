"""Dynamic attribution tests: isBlamed, interprocedural bubbling, exit
variables, transfer-function path composition, aggregation."""

import pytest

from repro.blame.aggregate import merge_reports
from repro.blame.postmortem import process_samples
from repro.blame.report import BlameReport, BlameRow, RunStats, path_type
from repro.chapel.types import REAL, ArrayType, RecordType, TupleType

import sys, os
sys.path.insert(0, os.path.dirname(os.path.dirname(__file__)))
from conftest import profile_src


class TestDirectBlame:
    def test_hot_global_dominates(self):
        src = """
var A: [0..59] real;
proc main() {
  forall i in 0..59 {
    A[i] = sqrt(i * 1.0) * 2.0 + cos(i * 0.5);
  }
  writeln(A[0]);
}
"""
        res = profile_src(src, threshold=211)
        top = res.report.rows[0]
        assert top.name in ("A", "->A[i]")
        assert res.report.blame_of("A") > 0.5
        assert res.report.row_for("A").context == "main"

    def test_local_variable_context(self):
        src = """
proc work(): real {
  var acc = 0.0;
  for i in 1..400 {
    acc += i * 0.5;
  }
  return acc;
}
proc main() { writeln(work()); }
"""
        res = profile_src(src, threshold=211)
        row = res.report.row_for("acc")
        assert row is not None and row.context == "work"
        assert row.blame > 0.4

    def test_unrelated_variable_not_blamed(self):
        src = """
var HOT: [0..59] real;
var COLD: [0..59] real;
proc main() {
  COLD[0] = 1.0;
  for t in 1..8 {
    forall i in 0..59 {
      HOT[i] = sqrt(i * 1.0) + i * 2.0 + t;
    }
  }
}
"""
        res = profile_src(src, threshold=211)
        assert res.report.blame_of("HOT") > 0.5
        # COLD keeps only its (one-time) allocation + single write.
        assert res.report.blame_of("COLD") < 0.2

    def test_inclusive_blame_can_exceed_100_percent(self):
        src = """
var A: [0..39] real;
var B: [0..39] real;
proc main() {
  forall i in 0..39 {
    A[i] = i * 1.5 + sin(i * 1.0);
    B[i] = A[i] * 2.0;
  }
}
"""
        res = profile_src(src, threshold=211)
        total = res.report.blame_of("A") + res.report.blame_of("B")
        assert total > 1.0  # the paper: totals routinely exceed 100%


class TestBubbling:
    def test_ref_formal_maps_to_caller_local(self):
        src = """
proc fill(ref t: 8*real, e: int) {
  for param k in 0..7 {
    t[k] = e * 1.0 + k + sqrt(k * 1.0 + 1.0);
  }
}
var SINK: [0..99] real;
proc main() {
  forall e in 0..99 {
    var b_x: 8*real;
    fill(b_x, e);
    var s = 0.0;
    for param k in 0..7 { s += b_x[k]; }
    SINK[e] = s;
  }
}
"""
        res = profile_src(src, threshold=211)
        row = res.report.row_for("b_x")
        assert row is not None
        assert row.context == "main"
        assert row.blame > 0.1

    def test_return_value_blames_receiver(self):
        src = """
proc expensive(x: real): real {
  var acc = 0.0;
  for i in 1..40 { acc += sqrt(x + i); }
  return acc;
}
var R: [0..19] real;
proc main() {
  forall i in 0..19 {
    R[i] = expensive(i * 1.0);
  }
}
"""
        res = profile_src(src, threshold=211)
        # samples inside `expensive` bubble through $ret to R
        assert res.report.blame_of("R") > 0.3

    def test_class_field_paths_compose_across_calls(self):
        src = """
record Zone { var value: real; }
class Part { var residue: real; var zoneArray: [?] Zone; }
var parts: [0..3] Part;
proc update(p: Part) {
  for j in 0..29 {
    p.zoneArray[j].value = p.zoneArray[j].value * 0.5 + 1.0;
  }
}
proc main() {
  for i in 0..3 {
    var z: [0..29] Zone;
    parts[i] = new Part(0.0, z);
  }
  for t in 1..15 {
    forall i in 0..3 { update(parts[i]); }
  }
}
"""
        res = profile_src(src, threshold=311)
        assert res.report.blame_of("parts") > 0.5
        assert res.report.blame_of("->parts[i].zoneArray[j].value") > 0.4
        # hierarchy rows agree in ordering
        assert res.report.blame_of("parts") >= res.report.blame_of(
            "->parts[i].zoneArray[j].value"
        )

    def test_globals_recorded_once_under_main(self):
        src = """
var G: [0..49] real;
proc level2() {
  forall i in 0..49 { G[i] = G[i] + sqrt(i * 1.0); }
}
proc level1() { level2(); }
proc main() {
  for t in 1..4 { level1(); }
}
"""
        res = profile_src(src, threshold=211)
        rows = [r for r in res.report.rows if r.name == "G"]
        assert len(rows) == 1
        assert rows[0].context == "main"
        assert rows[0].blame <= 1.0


class TestTemporaries:
    def test_temps_hidden_by_default(self):
        src = """
proc main() {
  var x = 3;
  select x { when 3 { writeln("three"); } }
  var s = 0.0;
  for i in 1..200 { s += i * 1.0; }
}
"""
        res = profile_src(src, threshold=211)
        assert all(not r.name.startswith("_") for r in res.report.rows)

    def test_temps_trackable_when_requested(self):
        from repro.tooling.profiler import Profiler

        src = """
var A: [0..29] real;
proc main() {
  forall i in 0..29 { A[i] = i * 2.0; }
}
"""
        res = Profiler(src, threshold=211, include_temps=True).profile()
        assert any(r.name.startswith("_") for r in res.report.rows)


class TestReportStructures:
    def test_rows_sorted_descending(self):
        src = """
var A: [0..49] real;
proc main() {
  forall i in 0..49 { A[i] = i * 1.0 + sqrt(i + 1.0); }
}
"""
        res = profile_src(src, threshold=211)
        samples = [r.samples for r in res.report.rows]
        assert samples == sorted(samples, reverse=True)

    def test_path_type(self):
        zone = RecordType("Zone", (("value", REAL),))
        part = RecordType(
            "Part", (("zoneArray", ArrayType(zone, 1)),), is_class=True
        )
        arr = ArrayType(part, 1)
        p = (("index",), ("cfield", "zoneArray"), ("index",), ("field", "value"))
        assert path_type(arr, p) == REAL
        assert path_type(TupleType((REAL, REAL)), (("index",),)) == REAL
        assert path_type(REAL, (("field", "x"),)) is None

    def test_merge_reports(self):
        row = BlameRow("v", "real", 0.5, "main", 10, False)
        s1 = RunStats(user_samples=20, total_raw_samples=25)
        s2 = RunStats(user_samples=20, total_raw_samples=30)
        r1 = BlameReport("p", [row], s1, locale_id=0)
        r2 = BlameReport(
            "p", [BlameRow("v", "real", 1.0, "main", 20, False)], s2, locale_id=1
        )
        merged = merge_reports([r1, r2])
        assert merged.stats.user_samples == 40
        assert merged.rows[0].samples == 30
        assert merged.rows[0].blame == pytest.approx(0.75)

    def test_merge_single_passthrough(self):
        r = BlameReport("p", [], RunStats())
        assert merge_reports([r]) is r

    def test_merge_empty_raises(self):
        with pytest.raises(ValueError):
            merge_reports([])
