"""Workload generator tests: every workload runs and its blame oracle
holds."""

import pytest

from repro.bench.workloads import ALL_WORKLOADS

import sys, os
sys.path.insert(0, os.path.dirname(os.path.dirname(__file__)))
from conftest import profile_src


@pytest.mark.parametrize("name", sorted(ALL_WORKLOADS))
def test_workload_runs_and_oracle_holds(name):
    wl = ALL_WORKLOADS[name]()
    res = profile_src(wl.source, config=wl.config, threshold=911, num_threads=8)
    assert res.run_result.output  # produced its checksum line
    top_tier = {
        r.name for r in res.report.rows if r.blame >= 0.25
    }
    for hot in wl.hot_variables:
        assert res.report.blame_of(hot) > 0.2, (name, hot, sorted(top_tier))
    for cold in wl.cold_variables:
        assert res.report.blame_of(cold) < 0.25, (name, cold)


def test_workloads_scale_with_parameters():
    from repro.bench.workloads import stencil

    small = stencil(n=8, iters=2)
    big = stencil(n=16, iters=4)
    r_small = profile_src(small.source, config=small.config, threshold=911)
    r_big = profile_src(big.source, config=big.config, threshold=911)
    assert r_big.run_result.instructions_executed > (
        2 * r_small.run_result.instructions_executed
    )
