"""Deterministic fault injection over sample streams and monitors.

The injector sits between step 2 (execution/monitoring) and step 3
(post-mortem): it takes the monitor's raw sample stream and emits a
degraded copy according to a :class:`~repro.resilience.faults.FaultPlan`.
Injection is pure — the original stream is never mutated — and fully
deterministic: decisions derive from the plan's seed and each sample's
position, so the same (plan, stream) pair always degrades identically.

It can also wrap a live :class:`~repro.sampling.monitor.Monitor` so
faults land at ingest time (exercising the monitor's own quarantine
path) rather than post hoc.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..sampling.monitor import Monitor
from ..sampling.records import RawSample
from .faults import FaultPlan

#: Marker prefix for frames whose debug info was stripped: the resolver
#: sees a raw address instead of a linkage name, exactly what Dyninst
#: reports for a module without symbols.
STRIPPED_PREFIX = "0x"

#: Sentinel iid injected by payload corruption (clearly invalid).
CORRUPT_IID = -0xBAD


def is_stripped_frame(name: str) -> bool:
    """True for frame names that are raw addresses (no debug info)."""
    return name.startswith(STRIPPED_PREFIX)


@dataclass
class InjectionStats:
    """What the injector actually did to one stream."""

    examined: int = 0
    dropped: int = 0
    corrupted: int = 0
    truncated: int = 0
    tags_lost: int = 0
    stripped: int = 0  # samples with >= 1 stripped frame
    stripped_functions: tuple[str, ...] = ()

    @property
    def total_faults(self) -> int:
        return (
            self.dropped + self.corrupted + self.truncated
            + self.tags_lost + self.stripped
        )

    def as_dict(self) -> dict:
        return {
            "examined": self.examined,
            "dropped": self.dropped,
            "corrupted": self.corrupted,
            "truncated": self.truncated,
            "tags_lost": self.tags_lost,
            "stripped": self.stripped,
            "stripped_functions": list(self.stripped_functions),
        }


class FaultInjector:
    """Applies a :class:`FaultPlan` to raw samples.

    ``module`` is only needed for debug-info stripping (to know the
    function population); every other fault class works without it.
    """

    def __init__(self, plan: FaultPlan, module=None) -> None:
        self.plan = plan
        self.stats = InjectionStats()
        self._stripped: frozenset[str] = frozenset()
        if plan.strip_rate > 0.0 and module is not None:
            # ``main`` is never stripped: even fully stripped binaries
            # keep exported entry symbols in the dynamic symbol table.
            names = sorted(
                f.name
                for f in module.functions.values()
                if not f.is_artificial and f.name != "main"
            )
            rng = random.Random(f"{plan.seed}:strip")
            k = max(1, round(plan.strip_rate * len(names))) if names else 0
            self._stripped = frozenset(rng.sample(names, min(k, len(names))))
            self.stats.stripped_functions = tuple(sorted(self._stripped))

    @property
    def stripped_functions(self) -> frozenset[str]:
        return self._stripped

    # -- stream API ---------------------------------------------------------

    def degrade_samples(self, samples: list[RawSample]) -> list[RawSample]:
        """Returns a degraded copy of the stream (original untouched)."""
        if self.plan.is_clean:
            return list(samples)
        rng = random.Random(f"{self.plan.seed}:stream")
        out: list[RawSample] = []
        for s in samples:
            degraded = self._degrade_one(s, rng)
            if degraded is not None:
                out.append(degraded)
        return out

    def degrader(self):
        """Returns a stateful batch-degrade function for streaming use.

        The returned callable maps ``list[RawSample] -> list[RawSample]``
        and holds one RNG across calls, so feeding the stream through it
        batch by batch degrades *exactly* as one
        :meth:`degrade_samples` call over the whole list would — the
        fate of the k-th busy sample depends only on the plan seed and
        k, never on how the stream was chunked.
        """
        if self.plan.is_clean:
            return lambda batch: list(batch)
        rng = random.Random(f"{self.plan.seed}:stream")

        def degrade(batch: list[RawSample]) -> list[RawSample]:
            out: list[RawSample] = []
            for s in batch:
                degraded = self._degrade_one(s, rng)
                if degraded is not None:
                    out.append(degraded)
            return out

        return degrade

    def wrap_monitor(self, monitor: Monitor) -> "FaultyMonitor":
        """Returns a monitor applying this injector's faults at ingest."""
        return FaultyMonitor(self, monitor)

    # -- per-sample ---------------------------------------------------------

    def _degrade_one(
        self, s: RawSample, rng: random.Random
    ) -> RawSample | None:
        """One sample through the fault gauntlet; None means dropped.

        Idle samples pass through untouched: they carry no payload worth
        corrupting, and dropping them would only flatter the profile.
        """
        self.stats.examined += 1
        if s.is_idle:
            # Idle samples consume NO randomness: the fate of the k-th
            # busy sample must not depend on how many idle samples the
            # scheduler happened to interleave before it.
            return s

        plan = self.plan
        drop = rng.random() < plan.drop_rate
        corrupt = rng.random() < plan.corrupt_rate
        truncate = rng.random() < plan.truncate_rate
        tagloss = rng.random() < plan.tag_loss_rate
        if drop:
            self.stats.dropped += 1
            return None

        stack = s.stack
        leaf_iid = s.leaf_iid
        spawn_tag = s.spawn_tag
        pre_spawn = s.pre_spawn_stack

        if corrupt:
            self.stats.corrupted += 1
            if rng.random() < 0.5:
                # Torn record: the sampled ip is garbage.
                leaf_iid = CORRUPT_IID
            elif stack:
                # Garbage frame address mid-walk.
                k = rng.randrange(len(stack))
                func, _iid = stack[k]
                stack = (
                    stack[:k] + ((func, 10**9 + k),) + stack[k + 1:]
                )

        if truncate:
            # The walker walks the *full* conceptual path — post-spawn
            # frames first, then the recorded pre-spawn continuation —
            # so truncation at depth k cuts across that whole walk, not
            # just the (typically depth-1) post-spawn part.
            pre_len = len(pre_spawn) if pre_spawn else 0
            if len(stack) + pre_len > plan.truncate_depth:
                self.stats.truncated += 1
                if plan.truncate_depth <= len(stack):
                    stack = stack[: plan.truncate_depth]
                    # The walker never reached the spawn boundary; the
                    # tasking-layer tag survives (it isn't part of the
                    # walk) but the recorded continuation is gone.
                    pre_spawn = None
                else:
                    pre_spawn = tuple(
                        pre_spawn[: plan.truncate_depth - len(stack)]
                    )

        if tagloss and s.spawn_tag is not None:
            self.stats.tags_lost += 1
            spawn_tag = None
            pre_spawn = None

        if self._stripped:
            new_stack, touched = self._strip(stack)
            if touched:
                stack = new_stack
            pre_touched = False
            if pre_spawn:
                new_pre, pre_touched = self._strip(tuple(pre_spawn))
                if pre_touched:
                    pre_spawn = new_pre
            if touched or pre_touched:
                self.stats.stripped += 1

        if (
            stack is s.stack
            and leaf_iid == s.leaf_iid
            and spawn_tag == s.spawn_tag
            and pre_spawn is s.pre_spawn_stack
        ):
            return s
        return RawSample(
            index=s.index,
            thread_id=s.thread_id,
            task_id=s.task_id,
            stack=stack,
            leaf_iid=leaf_iid,
            spawn_tag=spawn_tag,
            pre_spawn_stack=pre_spawn,
            is_idle=s.is_idle,
        )

    def _strip(
        self, stack: tuple[tuple[str, int], ...]
    ) -> tuple[tuple[tuple[str, int], ...], bool]:
        touched = False
        out = []
        for func, iid in stack:
            if func in self._stripped:
                out.append((f"{STRIPPED_PREFIX}{abs(iid):06x}", iid))
                touched = True
            else:
                out.append((func, iid))
        return tuple(out), touched


class FaultyMonitor(Monitor):
    """A monitor that degrades each sample at ingest time.

    Dropped samples simply never land; corrupt ones hit the monitor's
    own quarantine — the same validation path a lossy real collector
    would exercise.
    """

    def __init__(self, injector: FaultInjector, base: Monitor) -> None:
        super().__init__(pmu=base.pmu, charge_overhead=base.charge_overhead)
        self.injector = injector
        self._rng = random.Random(f"{injector.plan.seed}:stream")

    def _ingest(self, sample: RawSample) -> None:
        degraded = self.injector._degrade_one(sample, self._rng)
        if degraded is None:
            return
        super()._ingest(degraded)
