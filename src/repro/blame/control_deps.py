"""Implicit blame edges: control dependence at instruction granularity.

Paper §IV.A: "For implicit relationships, we use the control flow graph
and generated dominator tree to infer implicit relationships for each
basic block.  All variables within control dependent basic blocks have a
relationship to the implicit variables responsible for the control flow."

Concretely: every instruction depends on the terminators (``cbr``) of
the blocks its block is control-dependent on — which is why, in the
paper's Fig. 1 example, line 18 (``if a<b``) lands in the blame lines of
``a`` (line 19's write is control-dependent on it).
"""

from __future__ import annotations

from ..ir import instructions as I
from ..ir.cfg import CFG
from ..ir.dominators import control_dependence
from ..ir.module import Function


def instruction_control_deps(
    function: Function, transitive: bool = True
) -> dict[int, list[I.Instruction]]:
    """Maps each instruction iid to the branch instructions controlling
    its execution.  With ``transitive=True`` (default, used by the
    backward slicer) the control-dependence closure of the block is
    taken — every level of a loop nest controls the innermost body.
    With ``transitive=False`` only the immediate controllers are
    returned (used by the implicit *iterable* blame, where only the
    innermost loop's domain/array takes the body's samples).
    """
    cfg = CFG(function)
    block_deps = control_dependence(cfg)

    # Transitive closure over blocks (loop nests chain dependences).
    # Iterative fixpoint: correct in the presence of dependence cycles
    # (loops are control-dependent on themselves).
    closure: dict[object, set[object]] = {
        b: set(block_deps.get(b, ())) for b in function.blocks
    }
    if transitive:
        changed = True
        while changed:
            changed = False
            for b in function.blocks:
                current = closure[b]
                add: set[object] = set()
                for dep in current:
                    add |= closure.get(dep, set())
                if not add <= current:
                    current |= add
                    changed = True

    result: dict[int, list[I.Instruction]] = {}
    for block in function.blocks:
        controllers: list[I.Instruction] = []
        for dep_block in closure[block]:
            term = dep_block.terminator
            if isinstance(term, I.CBr):
                controllers.append(term)
        for instr in block.instructions:
            result[instr.iid] = controllers
    return result
