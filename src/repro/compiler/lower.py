"""AST → IR lowering (the mini-Chapel "codegen" at clang -O0 fidelity).

Every source variable gets an ``alloca`` (or a module global) with a
debug binding; reads/writes stay explicit ``load``/``store`` so the
blame analysis sees the full set ``W`` of writes per variable.  Parallel
loops (``forall``/``coforall``) are *outlined* into generated functions
named ``forall_fn_chplN`` — mirroring Chapel's ``coforall_fn_chplNN``
functions that show up (confusingly, which is the paper's point) in
code-centric profiles like Fig. 4.

Language restrictions vs. full Chapel (documented; checked here):

* proc formals must be typed; non-void procs declare a return type;
* nested procs may not capture enclosing locals implicitly — pass them
  as (``ref``) parameters (LULESH's ``ElemFaceNormal`` is ported that
  way);
* ``config`` declarations are module-level only, scalar-typed.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field as dc_field

from ..chapel import ast_nodes as A
from ..chapel.errors import NameError_, TypeError_
from ..chapel.symbols import Scope, Symbol
from ..chapel.tokens import SourceLocation
from ..chapel.types import (
    BOOL,
    INT,
    RANGE,
    REAL,
    STRING,
    VOID,
    ArrayType,
    AssociativeDomainType,
    BoolType,
    DomainType,
    IntType,
    RangeType,
    RealType,
    RecordType,
    SparseDomainType,
    StringType,
    TupleType,
    Type,
    VoidType,
    assignable,
    unify_numeric,
)
from ..ir.builder import IRBuilder
from ..ir.instructions import Constant, GlobalRef, Register, Value
from ..ir.module import Function, FunctionParam, GlobalVar, Module
from .intrinsics import INTERNAL_ONLY, INTRINSICS, POLYMORPHIC_NUMERIC, is_intrinsic

# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------

_CMP_OPS = {"==", "!=", "<", "<=", ">", ">="}
_ARITH_OPS = {"+", "-", "*", "/", "%", "**"}


@dataclass
class _LoopTargets:
    """break/continue destinations for the innermost loop."""

    continue_block: object
    break_block: object


@dataclass
class ProcSig:
    """Resolved signature of a user proc."""

    name: str
    param_names: list[str]
    param_types: list[Type]
    intents: list[str]
    return_type: Type
    decl: A.ProcDecl


def _reduce_identity(op: str, ty: Type) -> Constant:
    """Identity element of a reduction over a numeric type."""
    is_int = isinstance(ty, IntType)
    if op == "+":
        return Constant(ty, 0 if is_int else 0.0)
    if op == "*":
        return Constant(ty, 1 if is_int else 1.0)
    if op == "min":
        return Constant(ty, (1 << 62) if is_int else float("inf"))
    if op == "max":
        return Constant(ty, -(1 << 62) if is_int else float("-inf"))
    raise TypeError_(f"unsupported reduction {op!r}", None)


def _free_idents(node: object, bound: set[str]) -> set[str]:
    """Names referenced free (not locally bound) in an AST subtree.

    Used to compute the capture list of outlined parallel-loop bodies.
    Conservative: method names and field names are not identifiers.
    """
    free: set[str] = set()

    def walk(n: object, bound: set[str]) -> None:
        if isinstance(n, A.Ident):
            if n.name not in bound:
                free.add(n.name)
        elif isinstance(n, A.VarDecl):
            if n.init is not None:
                walk(n.init, bound)
            if n.declared_type is not None:
                walk_type(n.declared_type, bound)
            bound.add(n.name)
        elif isinstance(n, A.For):
            for it in n.iterables:
                walk(it, bound)
            inner = set(bound) | {ix.name for ix in n.indices}
            walk(n.body, inner)
        elif isinstance(n, A.Block):
            inner = set(bound)
            for s in n.stmts:
                walk(s, inner)
        elif isinstance(n, A.ProcDecl):
            bound.add(n.name)
        elif isinstance(n, A.Call):
            for a in n.args:
                walk(a, bound)
        elif isinstance(n, A.MethodCall):
            walk(n.receiver, bound)
            for a in n.args:
                walk(a, bound)
        elif isinstance(n, A.FieldAccess):
            walk(n.base, bound)
        elif isinstance(n, A.Select):
            walk(n.subject, bound)
            for w in n.whens:
                for v in w.values:
                    walk(v, bound)
                walk(w.body, set(bound))
            if n.otherwise is not None:
                walk(n.otherwise, set(bound))
        elif isinstance(n, A.When):
            pass
        elif hasattr(n, "__dataclass_fields__"):
            for fname in n.__dataclass_fields__:
                if fname == "loc":
                    continue
                v = getattr(n, fname)
                if isinstance(v, list):
                    for item in v:
                        if isinstance(item, A.Node):
                            walk(item, bound)
                elif isinstance(v, A.Node):
                    walk(v, bound)

    def walk_type(t: A.TypeExpr, bound: set[str]) -> None:
        if isinstance(t, A.ArrayTypeExpr):
            if t.domain is not None:
                walk(t.domain, bound)
            walk_type(t.elem, bound)
        elif isinstance(t, A.SparseSubdomainTypeExpr):
            walk(t.parent, bound)
        elif isinstance(t, A.TupleTypeExpr):
            if t.elem is not None:
                walk_type(t.elem, bound)
            for e in t.elems:
                walk_type(e, bound)

    walk(node, set(bound))
    return free


# ---------------------------------------------------------------------------
# Program-level lowering
# ---------------------------------------------------------------------------


class Lowerer:
    """Compiles a parsed :class:`Program` into an IR :class:`Module`."""

    def __init__(self, program: A.Program, module_name: str = "module") -> None:
        self.program = program
        self.module = Module(module_name)
        self.procs: dict[str, ProcSig] = {}
        #: Serial iterators (``iter`` procs) — consumed by for-loops via
        #: inline expansion, as the Chapel compiler lowers them.
        self.iters: dict[str, A.ProcDecl] = {}
        self.param_values: dict[str, tuple[object, Type]] = {}
        self._outline_counter = itertools.count(1)

    # -- type resolution ----------------------------------------------------

    def resolve_type(self, t: A.TypeExpr, fl: "FunctionLowerer | None" = None) -> Type:
        if isinstance(t, A.NamedType):
            if t.name == "int":
                return IntType(t.width or 64)
            if t.name == "real":
                return RealType(t.width or 64)
            if t.name == "bool":
                return BOOL
            if t.name == "string":
                return STRING
            if t.name == "void":
                return VOID
            rec = self.module.records.get(t.name)
            if rec is None:
                raise TypeError_(f"unknown type {t.name!r}", t.loc)
            return rec
        if isinstance(t, A.TupleTypeExpr):
            if t.count is not None:
                elem = self.resolve_type(t.elem, fl)  # type: ignore[arg-type]
                return TupleType(tuple([elem] * t.count))
            return TupleType(tuple(self.resolve_type(e, fl) for e in t.elems))
        if isinstance(t, A.DomainTypeExpr):
            return DomainType(t.rank)
        if isinstance(t, A.SparseSubdomainTypeExpr):
            rank, _ = self._domain_expr_rank(t.parent, fl)
            return SparseDomainType(rank)
        if isinstance(t, A.AssocDomainTypeExpr):
            return AssociativeDomainType(1)
        if isinstance(t, A.RangeTypeExpr):
            return RANGE
        if isinstance(t, A.ArrayTypeExpr):
            elem = self.resolve_type(t.elem, fl)
            if t.open_rank is not None:
                return ArrayType(elem, t.open_rank)
            rank, dom_name = self._domain_expr_rank(t.domain, fl)
            return ArrayType(elem, rank, domain_name=dom_name)
        raise TypeError_(f"unsupported type annotation {type(t).__name__}", t.loc)

    def _domain_expr_rank(
        self, e: A.Expr, fl: "FunctionLowerer | None"
    ) -> tuple[int, str | None]:
        """Static rank (and display name) of a domain-valued type expr."""
        if isinstance(e, A.DomainLit):
            return len(e.dims), None
        if isinstance(e, A.RangeLit):
            return 1, None
        if isinstance(e, A.Ident):
            ty: Type | None = None
            if fl is not None:
                sym = fl.scope.lookup(e.name)
                if sym is not None:
                    ty = sym.type
            if ty is None:
                g = self.module.globals.get(e.name)
                if g is not None:
                    ty = g.type
            if isinstance(ty, DomainType):
                return ty.rank, e.name
            if isinstance(ty, RangeType):
                return 1, e.name
            raise TypeError_(f"{e.name!r} is not a domain", e.loc)
        if isinstance(e, A.MethodCall):
            # e.g. [binSpace.expand(1)] T keeps the receiver's rank.
            rank, name = self._domain_expr_rank(e.receiver, fl)
            return rank, f"{name}.{e.method}()" if name else None
        raise TypeError_("unsupported domain expression in array type", e.loc)

    # -- top level -----------------------------------------------------------

    def lower(self) -> Module:
        # Pass 1: record types (in order; records may use earlier records).
        for decl in self.program.decls:
            if isinstance(decl, A.RecordDecl):
                self._lower_record(decl)
        # Pass 2: proc signatures (so call sites can type-check).
        for decl in self.program.decls:
            if isinstance(decl, A.ProcDecl):
                if decl.is_iter:
                    self._register_iter(decl)
                else:
                    self._register_proc(decl)
        # Pass 3: module init (globals + loose top-level statements).
        init_fn = Function(
            "__module_init",
            [],
            VOID,
            self.program.loc,
            is_artificial=True,
        )
        self.module.add_function(init_fn)
        self.module.global_init = init_fn
        init_lowerer = FunctionLowerer(self, init_fn, Scope(), is_module_init=True)
        init_lowerer.start()
        for decl in self.program.decls:
            if isinstance(decl, (A.RecordDecl, A.ProcDecl)):
                continue
            init_lowerer.lower_stmt(decl)
        init_lowerer.finish()
        # Pass 4: proc bodies (iterators have none — they expand inline).
        for decl in self.program.decls:
            if isinstance(decl, A.ProcDecl) and not decl.is_iter:
                self._lower_proc(decl)
        self.module.main = self.module.functions.get("main")
        return self.module

    def _register_iter(self, decl: A.ProcDecl) -> None:
        """Validates and registers a serial iterator.

        Restrictions (checked here, mirroring what inline expansion can
        support): a declared yield type, at least one ``yield``, no
        ``return`` statements, typed formals, no recursion (checked at
        expansion time).
        """
        if decl.name in self.iters or decl.name in self.procs:
            raise NameError_(f"duplicate proc/iter {decl.name!r}", decl.loc)
        if decl.return_type is None:
            raise TypeError_(
                f"iterator {decl.name!r} needs a declared yield type", decl.loc
            )
        for p in decl.params:
            if p.declared_type is None:
                raise TypeError_(
                    f"parameter {p.name!r} of iter {decl.name!r} needs a type",
                    p.loc,
                )
        has_yield = False
        stack: list[object] = [decl.body]
        while stack:
            node = stack.pop()
            if isinstance(node, A.Yield):
                has_yield = True
            if isinstance(node, A.Return):
                raise TypeError_(
                    f"iterator {decl.name!r} may not contain 'return' "
                    "(end iteration by falling off the body)",
                    node.loc,
                )
            if isinstance(node, A.ProcDecl):
                continue  # nested proc bodies are separate scopes
            if hasattr(node, "__dataclass_fields__"):
                for fname in node.__dataclass_fields__:
                    v = getattr(node, fname)
                    if isinstance(v, list):
                        stack.extend(x for x in v if isinstance(x, A.Node))
                    elif isinstance(v, A.Node):
                        stack.append(v)
        if not has_yield:
            raise TypeError_(
                f"iterator {decl.name!r} never yields", decl.loc
            )
        self.iters[decl.name] = decl

    def _lower_record(self, decl: A.RecordDecl) -> None:
        if decl.name in self.module.records:
            raise NameError_(f"duplicate record {decl.name!r}", decl.loc)
        fields: list[tuple[str, Type]] = []
        for f in decl.fields:
            fields.append((f.name, self.resolve_type(f.declared_type)))
        self.module.records[decl.name] = RecordType(
            decl.name, tuple(fields), is_class=decl.is_class
        )

    def _register_proc(self, decl: A.ProcDecl) -> ProcSig:
        if decl.name in self.procs:
            raise NameError_(f"duplicate proc {decl.name!r}", decl.loc)
        names, types, intents = [], [], []
        for p in decl.params:
            if p.declared_type is None:
                raise TypeError_(
                    f"parameter {p.name!r} of proc {decl.name!r} needs a type",
                    p.loc,
                )
            names.append(p.name)
            types.append(self.resolve_type(p.declared_type))
            intents.append(p.intent)
        ret = VOID if decl.return_type is None else self.resolve_type(decl.return_type)
        sig = ProcSig(decl.name, names, types, intents, ret, decl)
        self.procs[decl.name] = sig
        return sig

    def _lower_proc(self, decl: A.ProcDecl, outlined_from: str | None = None) -> Function:
        sig = self.procs[decl.name]
        params: list[FunctionParam] = []
        for name, ty, intent in zip(sig.param_names, sig.param_types, sig.intents):
            ir_intent = "ref" if intent in ("ref", "out", "inout") else "in"
            reg = Register(ty, hint=f"arg_{name}")
            params.append(FunctionParam(name, ty, ir_intent, reg))
        fn = Function(decl.name, params, sig.return_type, decl.loc, outlined_from=outlined_from)
        self.module.add_function(fn)
        fl = FunctionLowerer(self, fn, Scope())
        fl.start()
        # Bind formals: "in" formals get a home alloca (addressable, and
        # their incoming-value store is a blame-visible write); "ref"
        # formals ARE addresses.
        for p, (pname, ptype, pintent) in zip(
            fn.params, zip(sig.param_names, sig.param_types, sig.intents)
        ):
            if p.intent == "ref":
                sym = Symbol(pname, ptype, "formal", decl.loc, intent=pintent)
                sym.storage = p.register
            else:
                addr = fl.builder.alloca(decl.loc, ptype, pname, formal_home=pname)
                fl.builder.store(decl.loc, p.register, addr)
                sym = Symbol(pname, ptype, "formal", decl.loc, intent="in")
                sym.storage = addr
            fl.scope.define(sym)
        for stmt in decl.body.stmts:
            fl.lower_stmt(stmt)
        fl.finish()
        return fn

    def next_outline_name(self, kind: str) -> str:
        return f"{kind}_fn_chpl{next(self._outline_counter)}"


# ---------------------------------------------------------------------------
# Function-level lowering
# ---------------------------------------------------------------------------


class FunctionLowerer:
    """Lowers statements/expressions of one function."""

    def __init__(
        self,
        lowerer: Lowerer,
        fn: Function,
        scope: Scope,
        is_module_init: bool = False,
    ) -> None:
        self.L = lowerer
        self.module = lowerer.module
        self.fn = fn
        self.scope = scope
        self.builder = IRBuilder(fn)
        self.is_module_init = is_module_init
        self.loop_stack: list[_LoopTargets] = []
        #: Active inline-iterator expansions: (consumer For stmt,
        #: index storage, yield type, exit block). Stack because a
        #: consumer body may itself loop over another iterator.
        self._yield_stack: list[tuple] = []
        #: Iterator names currently being expanded (recursion guard).
        self._iter_expansion: list[str] = []

    # -- plumbing -------------------------------------------------------------

    def start(self) -> None:
        entry = self.builder.new_block("entry")
        self.builder.set_block(entry)

    def finish(self) -> None:
        if not self.builder.terminated:
            if isinstance(self.fn.return_type, VoidType):
                self.builder.ret(self.fn.loc)
            else:
                raise TypeError_(
                    f"proc {self.fn.source_name!r} may fall off the end "
                    "without returning a value",
                    self.fn.loc,
                )
        from ..ir.verifier import verify_function

        verify_function(self.fn, self.module)

    def _push_scope(self) -> Scope:
        self.scope = self.scope.child()
        return self.scope

    def _pop_scope(self) -> None:
        assert self.scope.parent is not None
        self.scope = self.scope.parent

    def _resolve(self, name: str, loc: SourceLocation) -> Symbol:
        sym = self.scope.lookup(name)
        if sym is not None:
            return sym
        g = self.module.globals.get(name)
        if g is not None:
            sym = Symbol(name, g.type, "global", g.loc, is_config=g.is_config)
            sym.storage = GlobalRef(g.type, g.name)
            return sym
        pv = self.L.param_values.get(name)
        if pv is not None:
            sym = Symbol(name, pv[1], "param", loc)
            sym.param_value = pv[0]
            return sym
        raise NameError_(f"undefined identifier {name!r}", loc)

    # -- const evaluation (param decls, param loop bounds) -------------------

    def const_eval(self, e: A.Expr) -> tuple[object, Type]:
        if isinstance(e, A.IntLit):
            return e.value, INT
        if isinstance(e, A.RealLit):
            return e.value, REAL
        if isinstance(e, A.BoolLit):
            return e.value, BOOL
        if isinstance(e, A.Ident):
            sym = self.scope.lookup(e.name)
            if sym is not None and sym.kind == "param":
                return sym.param_value, sym.type
            pv = self.L.param_values.get(e.name)
            if pv is not None:
                return pv
            raise TypeError_(f"{e.name!r} is not a compile-time constant", e.loc)
        if isinstance(e, A.UnOp):
            v, t = self.const_eval(e.operand)
            if e.op == "-":
                return -v, t  # type: ignore[operator]
            if e.op == "!":
                return not v, BOOL
            return v, t
        if isinstance(e, A.BinOp):
            lv, lt = self.const_eval(e.lhs)
            rv, rt = self.const_eval(e.rhs)
            ty = unify_numeric(lt, rt) or lt
            ops = {
                "+": lambda a, b: a + b,
                "-": lambda a, b: a - b,
                "*": lambda a, b: a * b,
                "/": lambda a, b: a / b if isinstance(ty, RealType) else a // b,
                "%": lambda a, b: a % b,
                "**": lambda a, b: a**b,
            }
            if e.op in ops:
                return ops[e.op](lv, rv), ty
            raise TypeError_(f"operator {e.op!r} not allowed in param expression", e.loc)
        raise TypeError_("expression is not a compile-time constant", e.loc)

    # -- coercion -------------------------------------------------------------

    def coerce(self, loc: SourceLocation, value: Value, have: Type, want: Type) -> Value:
        if have == want:
            return value
        if isinstance(want, RealType) and isinstance(have, IntType):
            if isinstance(value, Constant):
                return Constant(want, float(value.value))  # type: ignore[arg-type]
            return self.builder.cast(loc, value, want)
        if isinstance(want, IntType) and isinstance(have, IntType):
            return value
        if isinstance(want, RealType) and isinstance(have, RealType):
            return value
        if assignable(want, have):
            return value
        raise TypeError_(f"cannot convert {have} to {want}", loc)

    def default_value(self, loc: SourceLocation, ty: Type) -> Value:
        if isinstance(ty, IntType):
            return Constant(ty, 0)
        if isinstance(ty, RealType):
            return Constant(ty, 0.0)
        if isinstance(ty, BoolType):
            return Constant(ty, False)
        if isinstance(ty, StringType):
            return Constant(ty, "")
        if isinstance(ty, TupleType):
            elems = [self.default_value(loc, e) for e in ty.elems]
            return self.builder.make_tuple(loc, elems, ty)
        if isinstance(ty, RecordType):
            return self.builder.new_object(loc, ty.name, [], ty)
        raise TypeError_(f"type {ty} has no default value", loc)

    # ======================================================================
    # Statements
    # ======================================================================

    def lower_stmt(self, stmt: A.Stmt) -> None:
        if isinstance(stmt, A.VarDecl):
            self._lower_var_decl(stmt)
        elif isinstance(stmt, A.Assign):
            self._lower_assign(stmt)
        elif isinstance(stmt, A.ExprStmt):
            self.lower_expr(stmt.expr)
        elif isinstance(stmt, A.Block):
            self._push_scope()
            for s in stmt.stmts:
                self.lower_stmt(s)
            self._pop_scope()
        elif isinstance(stmt, A.If):
            self._lower_if(stmt)
        elif isinstance(stmt, A.While):
            self._lower_while(stmt)
        elif isinstance(stmt, A.For):
            self._lower_for(stmt)
        elif isinstance(stmt, A.Select):
            self._lower_select(stmt)
        elif isinstance(stmt, A.Return):
            self._lower_return(stmt)
        elif isinstance(stmt, A.Break):
            if not self.loop_stack:
                raise TypeError_("break outside of a loop", stmt.loc)
            self.builder.br(stmt.loc, self.loop_stack[-1].break_block)  # type: ignore[arg-type]
        elif isinstance(stmt, A.Continue):
            if not self.loop_stack:
                raise TypeError_("continue outside of a loop", stmt.loc)
            self.builder.br(stmt.loc, self.loop_stack[-1].continue_block)  # type: ignore[arg-type]
        elif isinstance(stmt, A.Use):
            pass
        elif isinstance(stmt, A.Yield):
            self._lower_yield(stmt)
        elif isinstance(stmt, A.ProcDecl):
            # Nested proc: hoisted to module level. It may not capture
            # enclosing locals (checked), so hoisting is sound.
            free = _free_idents(stmt.body, {p.name for p in stmt.params} | {stmt.name})
            for name in sorted(free):
                sym = self.scope.lookup(name)
                if sym is not None and sym.kind not in ("param",):
                    raise TypeError_(
                        f"nested proc {stmt.name!r} captures enclosing "
                        f"variable {name!r}; pass it as a (ref) parameter",
                        stmt.loc,
                    )
            if stmt.is_iter:
                self.L._register_iter(stmt)
            else:
                self.L._register_proc(stmt)
                self.L._lower_proc(stmt)
        elif isinstance(stmt, A.RecordDecl):
            raise TypeError_("records must be declared at module level", stmt.loc)
        else:
            raise TypeError_(f"unsupported statement {type(stmt).__name__}", stmt.loc)

    # -- declarations -----------------------------------------------------------

    def _lower_var_decl(self, stmt: A.VarDecl) -> None:
        loc = stmt.loc
        if stmt.kind == "param":
            value, ty = self.const_eval(stmt.init)  # type: ignore[arg-type]
            if stmt.declared_type is not None:
                want = self.L.resolve_type(stmt.declared_type, self)
                if isinstance(want, RealType) and isinstance(ty, IntType):
                    value, ty = float(value), want  # type: ignore[arg-type]
            if self.is_module_init and self.scope.parent is None:
                self.L.param_values[stmt.name] = (value, ty)
            sym = Symbol(stmt.name, ty, "param", loc)
            sym.param_value = value
            self.scope.define(sym)
            return

        if stmt.is_config:
            if not self.is_module_init or self.scope.parent is not None:
                raise TypeError_("config declarations must be at module level", loc)
            self._lower_config_decl(stmt)
            return

        declared = (
            self.L.resolve_type(stmt.declared_type, self)
            if stmt.declared_type is not None
            else None
        )

        init_value: Value | None = None
        init_type: Type | None = None
        if stmt.init is not None:
            init_value, init_type = self.lower_expr(stmt.init)

        ty = declared if declared is not None else init_type
        assert ty is not None  # parser guarantees type or init

        is_global = self.is_module_init and self.scope.parent is None
        if is_global:
            if stmt.name in self.module.globals:
                raise NameError_(f"duplicate global {stmt.name!r}", loc)
            self.module.add_global(GlobalVar(stmt.name, ty, loc))
            addr: Value = GlobalRef(ty, stmt.name)
        else:
            addr = self.builder.alloca(loc, ty, stmt.name)

        sym = Symbol(stmt.name, ty, "global" if is_global else stmt.kind, loc)
        sym.storage = addr
        if not is_global:
            self.scope.define(sym)

        if isinstance(ty, ArrayType):
            self._init_array_var(stmt, ty, addr, init_value, init_type)
            return
        if isinstance(ty, SparseDomainType) and init_value is None:
            # `var spD: sparse subdomain(D);` starts empty; indices are
            # added with `spD += idx`.
            if not isinstance(stmt.declared_type, A.SparseSubdomainTypeExpr):
                raise TypeError_(
                    f"sparse domain {stmt.name!r} needs a parent domain", loc
                )
            parent_v, parent_t = self.lower_expr(stmt.declared_type.parent)
            if not isinstance(parent_t, DomainType):
                raise TypeError_(
                    "sparse subdomain parent must be a rectangular domain", loc
                )
            dom = self.builder.make_sparse_domain(loc, parent_v, ty)
            self.builder.store(loc, dom, addr)
            return
        if isinstance(ty, AssociativeDomainType) and init_value is None:
            dom = self.builder.make_assoc_domain(loc, ty)
            self.builder.store(loc, dom, addr)
            return
        if isinstance(ty, DomainType) and init_value is None:
            raise TypeError_(f"domain {stmt.name!r} needs an initializer", loc)

        if init_value is not None:
            assert init_type is not None
            value = self.coerce(loc, init_value, init_type, ty)
            self.builder.store(loc, value, addr)
        else:
            self.builder.store(loc, self.default_value(loc, ty), addr)

    def _init_array_var(
        self,
        stmt: A.VarDecl,
        ty: ArrayType,
        addr: Value,
        init_value: Value | None,
        init_type: Type | None,
    ) -> None:
        """Array declaration semantics:

        * declared over a domain, no init → allocate (zero-filled);
        * initialized from a slice/reindex expression → *alias* (Chapel
          slice semantics; how MiniMD's ``RealPos`` aliases ``Pos``);
        * initialized from another array variable/element → allocate a
          copy (Chapel array assignment copies);
        * initialized from a fresh array value (call result) → adopt.
        """
        loc = stmt.loc
        if init_value is None:
            if stmt.declared_type is None or not isinstance(
                stmt.declared_type, A.ArrayTypeExpr
            ):
                raise TypeError_(f"array {stmt.name!r} needs a domain", loc)
            dte = stmt.declared_type
            if dte.domain is None:
                raise TypeError_(
                    f"array {stmt.name!r} declared with an open type needs "
                    "an initializer",
                    loc,
                )
            dom_value, dom_type = self.lower_expr(dte.domain)
            if isinstance(dom_type, RangeType):
                dom_value = self.builder.make_domain(loc, [dom_value])
            elif not isinstance(dom_type, DomainType):
                raise TypeError_("array domain expression is not a domain", loc)
            arr = self.builder.make_array(loc, dom_value, ty.elem, ty)
            self.builder.store(loc, arr, addr)
            return

        assert init_type is not None
        if not isinstance(init_type, ArrayType):
            raise TypeError_(
                f"cannot initialize array {stmt.name!r} from {init_type}", loc
            )
        if isinstance(stmt.init, (A.Index, A.MethodCall)):
            # Slice / reindex / domain-indexed view: alias.
            self.builder.store(loc, init_value, addr)
        elif isinstance(stmt.init, (A.Ident, A.FieldAccess)):
            dom = self.builder.domain_op(
                loc, "domain", init_value, [], DomainType(init_type.rank)
            )
            arr = self.builder.make_array(loc, dom, ty.elem, ty)
            self.builder.store(loc, arr, addr)
            self.builder.call(loc, "_array_copy", [arr, init_value], VOID, is_builtin=True)
        else:
            self.builder.store(loc, init_value, addr)

    def _lower_config_decl(self, stmt: A.VarDecl) -> None:
        loc = stmt.loc
        declared = (
            self.L.resolve_type(stmt.declared_type, self)
            if stmt.declared_type is not None
            else None
        )
        default_value: Value
        default_type: Type
        if stmt.init is not None:
            default_value, default_type = self.lower_expr(stmt.init)
        else:
            assert declared is not None
            default_value = self.default_value(loc, declared)
            default_type = declared
        ty = declared if declared is not None else default_type
        if isinstance(ty, IntType):
            getter = "_config_get_int"
        elif isinstance(ty, RealType):
            getter = "_config_get_real"
        elif isinstance(ty, BoolType):
            getter = "_config_get_bool"
        else:
            raise TypeError_(f"config variables must be scalar, got {ty}", loc)
        default_value = self.coerce(loc, default_value, default_type, ty)
        self.module.add_global(GlobalVar(stmt.name, ty, loc, is_config=True))
        got = self.builder.call(
            loc, getter, [Constant(STRING, stmt.name), default_value], ty, is_builtin=True
        )
        assert got is not None
        self.builder.store(loc, got, GlobalRef(ty, stmt.name))

    # -- assignment -----------------------------------------------------------

    def _lower_assign(self, stmt: A.Assign) -> None:
        loc = stmt.loc
        addr, target_ty = self.lower_addr(stmt.target)
        if stmt.op == "=":
            value, value_ty = self.lower_expr(stmt.value)
            if isinstance(target_ty, ArrayType) and isinstance(value_ty, ArrayType):
                dst = self.builder.load(loc, addr, target_ty)
                self.builder.call(
                    loc, "_array_copy", [dst, value], VOID, is_builtin=True
                )
                return
            value = self.coerce(loc, value, value_ty, target_ty)
            self.builder.store(loc, value, addr)
            return
        if stmt.op == "+=" and isinstance(
            target_ty, (SparseDomainType, AssociativeDomainType)
        ):
            # `spD += (i, j)` / `keys += k`: domain index insertion
            # (Chapel's irregular-domain grow operation).
            dom = self.builder.load(loc, addr, target_ty)
            idx_v, idx_t = self.lower_expr(stmt.value)
            if target_ty.rank == 1:
                if not isinstance(idx_t, IntType):
                    raise TypeError_(
                        f"inserting into {target_ty} needs an int index", loc
                    )
            else:
                if not (
                    isinstance(idx_t, TupleType)
                    and len(idx_t.elems) == target_ty.rank
                    and all(isinstance(e, IntType) for e in idx_t.elems)
                ):
                    raise TypeError_(
                        f"inserting into {target_ty} needs a "
                        f"{target_ty.rank}-tuple of ints",
                        loc,
                    )
            self.builder.domain_op(loc, "insert", dom, [idx_v], INT)
            return
        # Compound assignment: evaluate address once.
        op = stmt.op[0]
        old = self.builder.load(loc, addr, target_ty)
        rhs, rhs_ty = self.lower_expr(stmt.value)
        result, result_ty = self._emit_binop(loc, op, old, target_ty, rhs, rhs_ty)
        result = self.coerce(loc, result, result_ty, target_ty)
        self.builder.store(loc, result, addr)

    # -- control flow --------------------------------------------------------------

    def _lower_cond(self, e: A.Expr) -> Value:
        value, ty = self.lower_expr(e)
        if not isinstance(ty, BoolType):
            raise TypeError_(f"condition must be bool, got {ty}", e.loc)
        return value

    def _lower_if(self, stmt: A.If) -> None:
        cond = self._lower_cond(stmt.cond)
        then_block = self.builder.new_block("if.then")
        merge_block = self.builder.new_block("if.end")
        else_block = (
            self.builder.new_block("if.else") if stmt.else_body is not None else merge_block
        )
        self.builder.cbr(stmt.loc, cond, then_block, else_block)
        self.builder.set_block(then_block)
        self.lower_stmt(stmt.then_body)
        if not self.builder.terminated:
            self.builder.br(stmt.loc, merge_block)
        if stmt.else_body is not None:
            self.builder.set_block(else_block)
            self.lower_stmt(stmt.else_body)
            if not self.builder.terminated:
                self.builder.br(stmt.loc, merge_block)
        self.builder.set_block(merge_block)

    def _lower_while(self, stmt: A.While) -> None:
        header = self.builder.new_block("while.header")
        body = self.builder.new_block("while.body")
        exit_block = self.builder.new_block("while.end")
        self.builder.br(stmt.loc, header)
        self.builder.set_block(header)
        cond = self._lower_cond(stmt.cond)
        self.builder.cbr(stmt.loc, cond, body, exit_block)
        self.builder.set_block(body)
        self.loop_stack.append(_LoopTargets(header, exit_block))
        self.lower_stmt(stmt.body)
        self.loop_stack.pop()
        if not self.builder.terminated:
            self.builder.br(stmt.loc, header)
        self.builder.set_block(exit_block)

    def _lower_select(self, stmt: A.Select) -> None:
        loc = stmt.loc
        subject, subject_ty = self.lower_expr(stmt.subject)
        subj_addr = self.builder.alloca(loc, subject_ty, "_select_subject", is_temp=True)
        self.builder.store(loc, subject, subj_addr)
        merge = self.builder.new_block("select.end")
        for when in stmt.whens:
            body_block = self.builder.new_block("when.body")
            for vexpr in when.values:
                value, vty = self.lower_expr(vexpr)
                subj = self.builder.load(vexpr.loc, subj_addr, subject_ty)
                eq, _ = self._emit_binop(vexpr.loc, "==", subj, subject_ty, value, vty)
                after = self.builder.new_block("when.next")
                self.builder.cbr(vexpr.loc, eq, body_block, after)
                self.builder.set_block(after)
            saved = self.builder.block
            self.builder.set_block(body_block)
            self.lower_stmt(when.body)
            if not self.builder.terminated:
                self.builder.br(when.loc, merge)
            self.builder.set_block(saved)
        if stmt.otherwise is not None:
            self.lower_stmt(stmt.otherwise)
        if not self.builder.terminated:
            self.builder.br(loc, merge)
        self.builder.set_block(merge)

    def _lower_return(self, stmt: A.Return) -> None:
        if stmt.value is None:
            if not isinstance(self.fn.return_type, VoidType):
                raise TypeError_("return without a value in non-void proc", stmt.loc)
            self.builder.ret(stmt.loc)
            return
        value, ty = self.lower_expr(stmt.value)
        value = self.coerce(stmt.loc, value, ty, self.fn.return_type)
        self.builder.ret(stmt.loc, value)

    # -- loops --------------------------------------------------------------------

    def _lower_for(self, stmt: A.For) -> None:
        iter_calls = [
            it
            for it in stmt.iterables
            if isinstance(it, A.Call) and it.callee in self.L.iters
        ]
        if iter_calls:
            if stmt.kind != "for" or stmt.zippered or len(stmt.iterables) != 1:
                raise TypeError_(
                    f"serial iterator {iter_calls[0].callee!r} can only "
                    "drive a plain (non-zippered) for loop",
                    stmt.loc,
                )
            if stmt.is_param:
                raise TypeError_("param loops cannot use iterators", stmt.loc)
            self._lower_inline_iterator(stmt, iter_calls[0])
            return
        if stmt.kind in ("forall", "coforall"):
            self._lower_parallel_for(stmt)
            return
        if stmt.is_param:
            self._lower_param_for(stmt)
            return
        if (
            not stmt.zippered
            and len(stmt.iterables) == 1
            and isinstance(stmt.iterables[0], A.RangeLit)
        ):
            self._lower_counted_for(stmt)
            return
        self._lower_iterator_for(stmt)

    def _lower_param_for(self, stmt: A.For) -> None:
        """``for param i in lo..hi`` — unrolled at compile time (the
        optimization paper Table VII toggles via the ``param`` keyword)."""
        if stmt.zippered or len(stmt.iterables) != 1:
            raise TypeError_("param loops cannot be zippered", stmt.loc)
        rng = stmt.iterables[0]
        if not isinstance(rng, A.RangeLit):
            raise TypeError_("param loop needs a literal range", stmt.loc)
        lo, _ = self.const_eval(rng.lo)
        hi, _ = self.const_eval(rng.hi)
        step = 1
        if rng.step is not None:
            step, _ = self.const_eval(rng.step)  # type: ignore[assignment]
        if rng.counted:
            hi = lo + hi - 1
        if not all(isinstance(v, int) for v in (lo, hi, step)) or step == 0:
            raise TypeError_("param loop bounds must be integer constants", stmt.loc)
        index_name = stmt.indices[0].name
        for k in range(lo, hi + (1 if step > 0 else -1), step):  # type: ignore[arg-type]
            self._push_scope()
            sym = Symbol(index_name, INT, "param", stmt.loc)
            sym.param_value = k
            self.scope.define(sym)
            for s in stmt.body.stmts:
                self.lower_stmt(s)
            self._pop_scope()

    def _lower_counted_for(self, stmt: A.For) -> None:
        """Fast path: ``for i in lo..hi [by step]`` with plain counters
        (Chapel's simple range loops compile to cheap counted loops)."""
        loc = stmt.loc
        rng = stmt.iterables[0]
        assert isinstance(rng, A.RangeLit)
        lo_v, lo_t = self.lower_expr(rng.lo)
        hi_v, hi_t = self.lower_expr(rng.hi)
        if not isinstance(lo_t, IntType) or not isinstance(hi_t, IntType):
            raise TypeError_("range bounds must be integers", loc)
        step_v: Value = Constant(INT, 1)
        step_const = 1
        if rng.step is not None:
            sv, st = self.lower_expr(rng.step)
            if not isinstance(st, IntType):
                raise TypeError_("range step must be an integer", loc)
            step_v = sv
            step_const = sv.value if isinstance(sv, Constant) else None  # type: ignore[assignment]
        if rng.counted:
            # lo..#n  →  lo .. lo+n-1
            n_minus_1 = self.builder.binop(loc, "-", hi_v, Constant(INT, 1), INT)
            hi_v = self.builder.binop(loc, "+", lo_v, n_minus_1, INT)

        index_name = stmt.indices[0].name
        idx_addr = self.builder.alloca(loc, INT, index_name)
        self.builder.store(loc, lo_v, idx_addr)
        # Keep the bound in a temp so the loop test re-reads a stable value.
        hi_addr = self.builder.alloca(loc, INT, f"_{index_name}_hi", is_temp=True)
        self.builder.store(loc, hi_v, hi_addr)

        header = self.builder.new_block("for.header")
        body = self.builder.new_block("for.body")
        latch = self.builder.new_block("for.latch")
        exit_block = self.builder.new_block("for.end")
        self.builder.br(loc, header)
        self.builder.set_block(header)
        cur = self.builder.load(loc, idx_addr, INT)
        bound = self.builder.load(loc, hi_addr, INT)
        cmp_op = "<=" if (step_const is None or step_const > 0) else ">="
        cond = self.builder.binop(loc, cmp_op, cur, bound, BOOL)
        self.builder.cbr(loc, cond, body, exit_block)

        self.builder.set_block(body)
        self._push_scope()
        sym = Symbol(index_name, INT, "index", stmt.loc)
        sym.storage = idx_addr
        self.scope.define(sym)
        self.loop_stack.append(_LoopTargets(latch, exit_block))
        for s in stmt.body.stmts:
            self.lower_stmt(s)
        self.loop_stack.pop()
        self._pop_scope()
        if not self.builder.terminated:
            self.builder.br(loc, latch)
        self.builder.set_block(latch)
        cur2 = self.builder.load(loc, idx_addr, INT)
        nxt = self.builder.binop(loc, "+", cur2, step_v, INT)
        self.builder.store(loc, nxt, idx_addr)
        self.builder.br(loc, header)
        self.builder.set_block(exit_block)

    def _iteration_binding(self, iter_ty: Type, loc: SourceLocation) -> tuple[Type, bool]:
        """(element type, is_ref) yielded when iterating a value of
        ``iter_ty``.  Arrays yield element *references* (Chapel loops
        over arrays can write through the index variable)."""
        if isinstance(iter_ty, RangeType):
            return INT, False
        if isinstance(iter_ty, DomainType):
            if iter_ty.rank == 1:
                return INT, False
            return TupleType(tuple([INT] * iter_ty.rank)), False
        if isinstance(iter_ty, ArrayType):
            return iter_ty.elem, True
        raise TypeError_(f"cannot iterate a value of type {iter_ty}", loc)

    def _lower_iterator_for(self, stmt: A.For) -> None:
        """General loop via the iterator protocol (domains, arrays,
        slices, zippered groups) — the code shape whose overhead the
        paper's MiniMD optimization removes."""
        loc = stmt.loc
        zippered = stmt.zippered
        iter_vals: list[Value] = []
        iter_types: list[Type] = []
        for it in stmt.iterables:
            v, t = self.lower_expr(it)
            iter_vals.append(v)
            iter_types.append(t)
        states = [
            self.builder.iter_init(loc, v, zippered) for v in iter_vals
        ]

        header = self.builder.new_block("iter.header")
        body = self.builder.new_block("iter.body")
        exit_block = self.builder.new_block("iter.end")
        self.builder.br(loc, header)
        self.builder.set_block(header)
        ok: Value | None = None
        for s in states:
            step_ok = self.builder.iter_next(loc, s)
            ok = step_ok if ok is None else self.builder.binop(loc, "&&", ok, step_ok, BOOL)
        assert ok is not None
        self.builder.cbr(loc, ok, body, exit_block)

        self.builder.set_block(body)
        self._push_scope()
        if len(stmt.indices) > 1 and len(states) == 1:
            # Destructuring: `for (i, j) in D2` binds the components of
            # the yielded index tuple.
            elem_ty, is_ref = self._iteration_binding(iter_types[0], loc)
            if is_ref or not isinstance(elem_ty, TupleType):
                raise TypeError_(
                    "destructuring loop needs a tuple-yielding iterand", loc
                )
            if len(elem_ty.elems) != len(stmt.indices):
                raise TypeError_(
                    f"loop destructures {len(stmt.indices)} names from a "
                    f"{len(elem_ty.elems)}-tuple",
                    loc,
                )
            tup = self.builder.iter_value(loc, states[0], elem_ty)
            for k, idx in enumerate(stmt.indices):
                comp_ty = elem_ty.elems[k]
                cell = self.builder.alloca(loc, comp_ty, idx.name)
                comp = self.builder.tuple_get(loc, tup, Constant(INT, k), comp_ty)
                self.builder.store(loc, comp, cell)
                sym = Symbol(idx.name, comp_ty, "index", idx.loc)
                sym.storage = cell
                self.scope.define(sym)
            self.loop_stack.append(_LoopTargets(header, exit_block))
            for s in stmt.body.stmts:
                self.lower_stmt(s)
            self.loop_stack.pop()
            self._pop_scope()
            if not self.builder.terminated:
                self.builder.br(loc, header)
            self.builder.set_block(exit_block)
            return
        for idx, state, ity in zip(stmt.indices, states, iter_types):
            elem_ty, is_ref = self._iteration_binding(ity, loc)
            if is_ref:
                # The iterator yields an element address; the index var is
                # a reference cell holding that address.
                cell = self.builder.alloca(loc, elem_ty, idx.name)
                addr = self.builder.iter_value(loc, state, elem_ty)
                self.builder.store(loc, addr, cell)
                sym = Symbol(idx.name, elem_ty, "index", idx.loc, intent="ref")
                sym.storage = cell
                sym.kind = "indexref"
            else:
                cell = self.builder.alloca(loc, elem_ty, idx.name)
                value = self.builder.iter_value(loc, state, elem_ty)
                self.builder.store(loc, value, cell)
                sym = Symbol(idx.name, elem_ty, "index", idx.loc)
                sym.storage = cell
            self.scope.define(sym)
        self.loop_stack.append(_LoopTargets(header, exit_block))
        for s in stmt.body.stmts:
            self.lower_stmt(s)
        self.loop_stack.pop()
        self._pop_scope()
        if not self.builder.terminated:
            self.builder.br(loc, header)
        self.builder.set_block(exit_block)

    def _lower_inline_iterator(self, stmt: A.For, call: A.Call) -> None:
        """Expands ``for x in myIter(args)`` inline: the iterator body
        is spliced in with formals bound to the actuals, and each
        ``yield e`` becomes {x = e; <consumer body>} — how Chapel's
        compiler lowers serial iterators (the feature the paper lists
        as future work)."""
        decl = self.L.iters[call.callee]
        if call.callee in self._iter_expansion:
            raise TypeError_(
                f"recursive iterator {call.callee!r} cannot be expanded "
                "inline",
                stmt.loc,
            )
        if len(stmt.indices) != 1:
            raise TypeError_(
                "iterator loops bind exactly one index variable", stmt.loc
            )
        if len(call.args) != len(decl.params):
            raise TypeError_(
                f"iter {call.callee!r} takes {len(decl.params)} args, "
                f"got {len(call.args)}",
                call.loc,
            )
        loc = stmt.loc
        yield_ty = self.L.resolve_type(decl.return_type, self)  # type: ignore[arg-type]

        self._push_scope()
        # Bind formals to actuals (ref formals get the actual's address;
        # value formals get a home slot, like a call's prologue).
        for p, arg in zip(decl.params, call.args):
            pty = self.L.resolve_type(p.declared_type, self)  # type: ignore[arg-type]
            if p.intent in ("ref", "out", "inout"):
                addr, aty = self.lower_addr(arg)
                sym = Symbol(p.name, pty, "formal", p.loc, intent="ref")
                sym.storage = addr
            else:
                value, aty = self.lower_expr(arg)
                value = self.coerce(arg.loc, value, aty, pty)
                home = self.builder.alloca(p.loc, pty, p.name)
                self.builder.store(p.loc, value, home)
                sym = Symbol(p.name, pty, "formal", p.loc, intent="in")
                sym.storage = home
            self.scope.define(sym)

        index = stmt.indices[0]
        idx_addr = self.builder.alloca(loc, yield_ty, index.name)
        exit_block = self.builder.new_block("iterx.end")

        self._yield_stack.append((stmt, idx_addr, yield_ty, exit_block, index))
        self._iter_expansion.append(call.callee)
        try:
            for s in decl.body.stmts:
                self.lower_stmt(s)
        finally:
            self._iter_expansion.pop()
            self._yield_stack.pop()
        self._pop_scope()
        if not self.builder.terminated:
            self.builder.br(loc, exit_block)
        self.builder.set_block(exit_block)

    def _lower_yield(self, stmt: A.Yield) -> None:
        if not self._yield_stack:
            raise TypeError_("yield outside of an iterator", stmt.loc)
        consumer, idx_addr, yield_ty, exit_block, index = self._yield_stack[-1]
        value, vty = self.lower_expr(stmt.value)
        value = self.coerce(stmt.loc, value, vty, yield_ty)
        self.builder.store(stmt.loc, value, idx_addr)

        after = self.builder.new_block("yield.after")
        self._push_scope()
        sym = Symbol(index.name, yield_ty, "index", index.loc)
        sym.storage = idx_addr
        self.scope.define(sym)
        # In the consumer body, continue skips to after this yield and
        # break leaves the whole expanded iteration.
        self.loop_stack.append(_LoopTargets(after, exit_block))
        # Hide the enclosing iterator expansion while lowering the
        # consumer body: its own yields belong to inner iterators only,
        # and a fresh `for ... in sameIter()` inside it is legal nesting,
        # not recursion (expansion depth stays finite).
        saved_yields = self._yield_stack
        saved_expansion = self._iter_expansion
        self._yield_stack = []
        self._iter_expansion = []
        try:
            for s in consumer.body.stmts:
                self.lower_stmt(s)
        finally:
            self._yield_stack = saved_yields
            self._iter_expansion = saved_expansion
        self.loop_stack.pop()
        self._pop_scope()
        if not self.builder.terminated:
            self.builder.br(stmt.loc, after)
        self.builder.set_block(after)

    def _lower_parallel_for(self, stmt: A.For) -> None:
        """Outlines a forall/coforall body into a generated function and
        emits a SpawnJoin — the tasking-layer event the sampling monitor
        tags (paper §IV.B)."""
        loc = stmt.loc
        iter_vals: list[Value] = []
        iter_types: list[Type] = []
        for it in stmt.iterables:
            v, t = self.lower_expr(it)
            iter_vals.append(v)
            iter_types.append(t)

        index_names = {ix.name for ix in stmt.indices}
        free = _free_idents(stmt.body, index_names)
        captures: list[Symbol] = []
        for name in sorted(free):
            sym = self.scope.lookup(name)
            if sym is None:
                continue  # global / proc / builtin — reachable directly
            if sym.kind == "param":
                continue
            captures.append(sym)

        outlined_name = self.L.next_outline_name(stmt.kind)
        chunk_params: list[FunctionParam] = []
        for i, ity in enumerate(iter_types):
            reg = Register(ity, hint=f"chunk{i}")
            chunk_params.append(FunctionParam(f"_chunk{i}", ity, "in", reg, is_temp=True))
        cap_params: list[FunctionParam] = []
        for sym in captures:
            reg = Register(sym.type, hint=f"cap_{sym.name}")
            cap_params.append(FunctionParam(sym.name, sym.type, "ref", reg))

        outlined = Function(
            outlined_name,
            chunk_params + cap_params,
            VOID,
            loc,
            outlined_from=self.fn.name,
        )
        if stmt.reduce_intents:
            # Debug metadata for the static race detector: writes to
            # these names are reduce-protected (private accumulator +
            # task-end combine), not data races.
            outlined.reduce_vars = frozenset(
                name for _op, name in stmt.reduce_intents
            )
        self.module.add_function(outlined)

        ofl = FunctionLowerer(self.L, outlined, Scope())
        ofl.start()
        for p, sym in zip(cap_params, captures):
            csym = Symbol(sym.name, sym.type, "formal", loc, intent="ref")
            csym.storage = p.register
            if sym.kind == "indexref":
                csym.kind = "formal"
            ofl.scope.define(csym)

        # Reduce intents: each task accumulates into a private copy,
        # combined into the shared variable at task end (Chapel's
        # `with (+ reduce x)` semantics).
        reduce_privates: list[tuple[str, str, Value, Register, Type]] = []
        if stmt.reduce_intents:
            ofl._push_scope()
            for op, name in stmt.reduce_intents:
                shared_sym = ofl.scope.lookup(name)
                if shared_sym is not None:
                    shared_addr: Value = shared_sym.storage  # type: ignore[assignment]
                    rty = shared_sym.type
                else:
                    g = self.module.globals.get(name)
                    if g is None:
                        raise NameError_(
                            f"reduce intent names unknown variable {name!r}",
                            stmt.loc,
                        )
                    shared_addr = GlobalRef(g.type, name)
                    rty = g.type
                if not rty.is_numeric():
                    raise TypeError_(
                        f"reduce intent variable {name!r} must be numeric",
                        stmt.loc,
                    )
                private = ofl.builder.alloca(loc, rty, name)
                ofl.builder.store(loc, _reduce_identity(op, rty), private)
                shadow = Symbol(name, rty, "var", stmt.loc)
                shadow.storage = private
                ofl.scope.define(shadow)
                reduce_privates.append((op, name, shared_addr, private, rty))
        # Body of the outlined fn: a serial loop over the chunk(s).
        inner = A.For(
            loc=stmt.loc,
            kind="for",
            indices=stmt.indices,
            iterables=[
                A.Ident(loc=stmt.loc, name=f"_chunk{i}")
                for i in range(len(iter_types))
            ],
            body=stmt.body,
            is_param=False,
            zippered=stmt.zippered,
        )
        for i, (p, ity) in enumerate(zip(chunk_params, iter_types)):
            csym = Symbol(f"_chunk{i}", ity, "formal", loc)
            # "in" chunk formals: home alloca marked temp, identified
            # with the formal so iterator traffic on the chunk bubbles
            # back to the spawned-over domain/array.
            addr = ofl.builder.alloca(
                loc, ity, f"_chunk{i}", is_temp=True, formal_home=f"_chunk{i}"
            )
            ofl.builder.store(loc, p.register, addr)
            csym.storage = addr
            ofl.scope.define(csym)
        ofl._lower_iterator_for(inner)
        # Combine per-task reduce accumulators into the shared storage.
        for op, _name, shared_addr, private, rty in reduce_privates:
            mine = ofl.builder.load(loc, private, rty)
            current = ofl.builder.load(loc, shared_addr, rty)
            if op in ("min", "max"):
                combined = ofl.builder.call(
                    loc, op, [current, mine], rty, is_builtin=True
                )
                assert combined is not None
            else:
                combined = ofl.builder.binop(loc, op, current, mine, rty)
            ofl.builder.store(loc, combined, shared_addr)
        if stmt.reduce_intents:
            ofl._pop_scope()
        ofl.finish()

        capture_addrs: list[Value] = []
        for sym in captures:
            assert sym.storage is not None
            capture_addrs.append(sym.storage)  # type: ignore[arg-type]
        self.builder.spawn_join(loc, outlined_name, stmt.kind, iter_vals, capture_addrs)

    # ======================================================================
    # Expressions
    # ======================================================================

    def lower_expr(self, e: A.Expr) -> tuple[Value, Type]:
        if isinstance(e, A.IntLit):
            return Constant(INT, e.value), INT
        if isinstance(e, A.RealLit):
            return Constant(REAL, e.value), REAL
        if isinstance(e, A.BoolLit):
            return Constant(BOOL, e.value), BOOL
        if isinstance(e, A.StringLit):
            return Constant(STRING, e.value), STRING
        if isinstance(e, A.Ident):
            return self._lower_ident(e)
        if isinstance(e, A.BinOp):
            return self._lower_binop_expr(e)
        if isinstance(e, A.UnOp):
            return self._lower_unop_expr(e)
        if isinstance(e, A.Call):
            return self._lower_call(e)
        if isinstance(e, A.MethodCall):
            return self._lower_method_call(e)
        if isinstance(e, A.Index):
            return self._lower_index_rvalue(e)
        if isinstance(e, A.FieldAccess):
            addr, ty = self.lower_addr(e)
            return self.builder.load(e.loc, addr, ty), ty
        if isinstance(e, A.TupleLit):
            values: list[Value] = []
            types: list[Type] = []
            for elem in e.elems:
                v, t = self.lower_expr(elem)
                values.append(v)
                types.append(t)
            ty = TupleType(tuple(types))
            return self.builder.make_tuple(e.loc, values, ty), ty
        if isinstance(e, A.RangeLit):
            return self._lower_range(e)
        if isinstance(e, A.DomainLit):
            dims: list[Value] = []
            for d in e.dims:
                v, t = self.lower_expr(d)
                if not isinstance(t, RangeType):
                    raise TypeError_("domain dimensions must be ranges", d.loc)
                dims.append(v)
            return self.builder.make_domain(e.loc, dims), DomainType(len(dims))
        if isinstance(e, A.New):
            return self._lower_new(e)
        if isinstance(e, A.Reduce):
            return self._lower_reduce(e)
        if isinstance(e, A.IfExpr):
            return self._lower_if_expr(e)
        raise TypeError_(f"unsupported expression {type(e).__name__}", e.loc)

    def _lower_ident(self, e: A.Ident) -> tuple[Value, Type]:
        sym = self._resolve(e.name, e.loc)
        if sym.kind == "param":
            v = sym.param_value
            if isinstance(v, bool):
                return Constant(BOOL, v), BOOL
            if isinstance(v, int):
                return Constant(INT, v), INT
            if isinstance(v, float):
                return Constant(REAL, v), REAL
            raise TypeError_(f"param {e.name!r} has unsupported value", e.loc)
        assert sym.storage is not None
        if sym.kind == "indexref":
            addr = self.builder.load(e.loc, sym.storage, sym.type)  # type: ignore[arg-type]
            return self.builder.load(e.loc, addr, sym.type), sym.type
        return self.builder.load(e.loc, sym.storage, sym.type), sym.type  # type: ignore[arg-type]

    def _lower_range(self, e: A.RangeLit) -> tuple[Value, Type]:
        lo, lo_t = self.lower_expr(e.lo)
        hi, hi_t = self.lower_expr(e.hi)
        if not isinstance(lo_t, IntType) or not isinstance(hi_t, IntType):
            raise TypeError_("range bounds must be integers", e.loc)
        step = None
        if e.step is not None:
            step, step_t = self.lower_expr(e.step)
            if not isinstance(step_t, IntType):
                raise TypeError_("range step must be an integer", e.loc)
        return self.builder.make_range(e.loc, lo, hi, step, counted=e.counted), RANGE

    def _emit_binop(
        self,
        loc: SourceLocation,
        op: str,
        lhs: Value,
        lhs_t: Type,
        rhs: Value,
        rhs_t: Type,
    ) -> tuple[Value, Type]:
        if op in ("&&", "||"):
            if not isinstance(lhs_t, BoolType) or not isinstance(rhs_t, BoolType):
                raise TypeError_(f"{op} needs bool operands", loc)
            return self.builder.binop(loc, op, lhs, rhs, BOOL), BOOL
        if op in _CMP_OPS:
            if isinstance(lhs_t, (IntType, RealType)) and isinstance(
                rhs_t, (IntType, RealType)
            ):
                common = unify_numeric(lhs_t, rhs_t)
                assert common is not None
                lhs = self.coerce(loc, lhs, lhs_t, common)
                rhs = self.coerce(loc, rhs, rhs_t, common)
                return self.builder.binop(loc, op, lhs, rhs, BOOL), BOOL
            if lhs_t == rhs_t and op in ("==", "!="):
                return self.builder.binop(loc, op, lhs, rhs, BOOL), BOOL
            raise TypeError_(f"cannot compare {lhs_t} with {rhs_t}", loc)
        if op in _ARITH_OPS:
            # tuple ⊕ tuple (elementwise) and tuple ⊕ scalar broadcast —
            # Chapel tuple math, the cost CENN eliminates.
            if isinstance(lhs_t, TupleType) and isinstance(rhs_t, TupleType):
                if len(lhs_t.elems) != len(rhs_t.elems):
                    raise TypeError_("tuple size mismatch", loc)
                return self.builder.binop(loc, op, lhs, rhs, lhs_t), lhs_t
            if isinstance(lhs_t, TupleType) and rhs_t.is_numeric():
                return self.builder.binop(loc, op, lhs, rhs, lhs_t), lhs_t
            if lhs_t.is_numeric() and isinstance(rhs_t, TupleType):
                return self.builder.binop(loc, op, lhs, rhs, rhs_t), rhs_t
            if lhs_t.is_numeric() and rhs_t.is_numeric():
                common = unify_numeric(lhs_t, rhs_t)
                assert common is not None
                if op == "/" and isinstance(common, IntType):
                    pass  # integer division stays integral (Chapel semantics)
                if op == "**":
                    common = (
                        common
                        if isinstance(common, IntType)
                        and isinstance(rhs_t, IntType)
                        else RealType()
                    )
                lhs = self.coerce(loc, lhs, lhs_t, common)
                rhs = self.coerce(loc, rhs, rhs_t, common)
                return self.builder.binop(loc, op, lhs, rhs, common), common
            if isinstance(lhs_t, StringType) and op == "+":
                return self.builder.binop(loc, op, lhs, rhs, STRING), STRING
            raise TypeError_(f"invalid operands for {op}: {lhs_t}, {rhs_t}", loc)
        raise TypeError_(f"unknown operator {op!r}", loc)

    def _lower_binop_expr(self, e: A.BinOp) -> tuple[Value, Type]:
        if e.op in ("&&", "||"):
            return self._lower_short_circuit(e)
        lhs, lhs_t = self.lower_expr(e.lhs)
        rhs, rhs_t = self.lower_expr(e.rhs)
        return self._emit_binop(e.loc, e.op, lhs, lhs_t, rhs, rhs_t)

    def _lower_short_circuit(self, e: A.BinOp) -> tuple[Value, Type]:
        """&&/|| with control flow, so conditions create the implicit
        (control-dependence) blame edges the paper describes."""
        loc = e.loc
        result = self.builder.alloca(loc, BOOL, "_sc", is_temp=True)
        lhs = self._lower_cond(e.lhs)
        rhs_block = self.builder.new_block("sc.rhs")
        short_block = self.builder.new_block("sc.short")
        merge = self.builder.new_block("sc.end")
        if e.op == "&&":
            self.builder.cbr(loc, lhs, rhs_block, short_block)
            short_value = Constant(BOOL, False)
        else:
            self.builder.cbr(loc, lhs, short_block, rhs_block)
            short_value = Constant(BOOL, True)
        self.builder.set_block(short_block)
        self.builder.store(loc, short_value, result)
        self.builder.br(loc, merge)
        self.builder.set_block(rhs_block)
        rhs = self._lower_cond(e.rhs)
        self.builder.store(loc, rhs, result)
        self.builder.br(loc, merge)
        self.builder.set_block(merge)
        return self.builder.load(loc, result, BOOL), BOOL

    def _lower_unop_expr(self, e: A.UnOp) -> tuple[Value, Type]:
        value, ty = self.lower_expr(e.operand)
        if e.op == "+":
            return value, ty
        if e.op == "-":
            if isinstance(value, Constant) and ty.is_numeric():
                return Constant(ty, -value.value), ty  # type: ignore[operator]
            if not (ty.is_numeric() or isinstance(ty, TupleType)):
                raise TypeError_(f"cannot negate {ty}", e.loc)
            return self.builder.unop(e.loc, "-", value, ty), ty
        if e.op == "!":
            if not isinstance(ty, BoolType):
                raise TypeError_("! needs a bool operand", e.loc)
            return self.builder.unop(e.loc, "!", value, ty), BOOL
        raise TypeError_(f"unknown unary operator {e.op!r}", e.loc)

    def _lower_if_expr(self, e: A.IfExpr) -> tuple[Value, Type]:
        loc = e.loc
        # The result slot must exist on both paths: type the branches
        # statically and allocate before branching.
        tt = self._type_of_base(e.then_expr)
        et = self._type_of_base(e.else_expr)
        ty = (
            unify_numeric(tt, et)
            if (tt.is_numeric() and et.is_numeric())
            else (tt if tt == et else None)
        )
        if ty is None:
            raise TypeError_(f"if-expr branches disagree: {tt} vs {et}", loc)
        result = self.builder.alloca(loc, ty, "_ifx", is_temp=True)
        cond = self._lower_cond(e.cond)
        then_block = self.builder.new_block("ifx.then")
        else_block = self.builder.new_block("ifx.else")
        merge = self.builder.new_block("ifx.end")
        self.builder.cbr(loc, cond, then_block, else_block)
        self.builder.set_block(then_block)
        tv, tt2 = self.lower_expr(e.then_expr)
        self.builder.store(loc, self.coerce(loc, tv, tt2, ty), result)
        self.builder.br(loc, merge)
        self.builder.set_block(else_block)
        ev, et2 = self.lower_expr(e.else_expr)
        self.builder.store(loc, self.coerce(loc, ev, et2, ty), result)
        self.builder.br(loc, merge)
        self.builder.set_block(merge)
        return self.builder.load(loc, result, ty), ty

    # -- calls -----------------------------------------------------------------

    def _lower_call(self, e: A.Call) -> tuple[Value, Type]:
        if is_intrinsic(e.callee):
            return self._lower_intrinsic(e)
        sig = self.L.procs.get(e.callee)
        if sig is None:
            if e.callee in self.L.iters:
                raise TypeError_(
                    f"iterator {e.callee!r} can only be consumed by a "
                    "for loop",
                    e.loc,
                )
            raise NameError_(f"call to undefined proc {e.callee!r}", e.loc)
        if len(e.args) != len(sig.param_types):
            raise TypeError_(
                f"proc {e.callee!r} takes {len(sig.param_types)} args, "
                f"got {len(e.args)}",
                e.loc,
            )
        args: list[Value] = []
        for arg, pty, intent in zip(e.args, sig.param_types, sig.intents):
            if intent in ("ref", "out", "inout"):
                addr, aty = self.lower_addr(arg)
                if not assignable(pty, aty) and aty != pty:
                    raise TypeError_(
                        f"ref argument type {aty} does not match formal {pty}",
                        arg.loc,
                    )
                args.append(addr)
            else:
                v, aty = self.lower_expr(arg)
                v = self.coerce(arg.loc, v, aty, pty)
                args.append(v)
        result = self.builder.call(e.loc, e.callee, args, sig.return_type)
        if result is None:
            return Constant(VOID, None), VOID
        return result, sig.return_type

    def _lower_intrinsic(self, e: A.Call) -> tuple[Value, Type]:
        if e.callee in INTERNAL_ONLY:
            raise NameError_(f"{e.callee!r} is not user-callable", e.loc)
        intr = INTRINSICS[e.callee]
        if intr.arity is not None and len(e.args) != intr.arity:
            raise TypeError_(
                f"{e.callee}() takes {intr.arity} args, got {len(e.args)}", e.loc
            )
        values: list[Value] = []
        types: list[Type] = []
        for a in e.args:
            v, t = self.lower_expr(a)
            values.append(v)
            types.append(t)
        ret: Type = intr.return_type
        if e.callee in POLYMORPHIC_NUMERIC:
            if all(isinstance(t, IntType) for t in types):
                ret = INT
            else:
                values = [
                    self.coerce(e.loc, v, t, REAL) if isinstance(t, IntType) else v
                    for v, t in zip(values, types)
                ]
        elif intr.numeric:
            values = [
                self.coerce(e.loc, v, t, REAL) if isinstance(t, IntType) else v
                for v, t in zip(values, types)
            ]
        result = self.builder.call(e.loc, e.callee, values, ret, is_builtin=True)
        if result is None:
            return Constant(VOID, None), VOID
        return result, ret

    def _lower_method_call(self, e: A.MethodCall) -> tuple[Value, Type]:
        recv, recv_ty = self.lower_expr(e.receiver)
        loc = e.loc
        args: list[Value] = []
        arg_types: list[Type] = []
        for a in e.args:
            v, t = self.lower_expr(a)
            args.append(v)
            arg_types.append(t)

        if isinstance(recv_ty, (DomainType, RangeType)):
            rank = recv_ty.rank if isinstance(recv_ty, DomainType) else 1
            if e.method == "size":
                return self.builder.domain_op(loc, "size", recv, args, INT), INT
            if e.method in ("low", "high"):
                ty: Type = INT if rank == 1 else TupleType(tuple([INT] * rank))
                return self.builder.domain_op(loc, e.method, recv, args, ty), ty
            if e.method == "dim":
                return self.builder.domain_op(loc, "dim", recv, args, RANGE), RANGE
            if e.method in ("expand", "translate", "interior") and isinstance(
                recv_ty, DomainType
            ):
                return (
                    self.builder.domain_op(loc, e.method, recv, args, recv_ty),
                    recv_ty,
                )
            raise TypeError_(f"unknown {recv_ty} method {e.method!r}", loc)
        if isinstance(recv_ty, ArrayType):
            if e.method == "size":
                return self.builder.domain_op(loc, "size", recv, args, INT), INT
            if e.method == "domain":
                dty = DomainType(recv_ty.rank)
                return self.builder.domain_op(loc, "domain", recv, args, dty), dty
            if e.method == "reindex":
                if len(args) != 1 or not isinstance(arg_types[0], DomainType):
                    raise TypeError_("reindex takes a domain", loc)
                return (
                    self.builder.array_reindex(loc, recv, args[0], recv_ty),
                    recv_ty,
                )
            raise TypeError_(f"unknown array method {e.method!r}", loc)
        raise TypeError_(f"type {recv_ty} has no methods", loc)

    def _lower_new(self, e: A.New) -> tuple[Value, Type]:
        rec = self.module.records.get(e.type_name)
        if rec is None:
            raise TypeError_(f"unknown record type {e.type_name!r}", e.loc)
        if len(e.args) > len(rec.fields):
            raise TypeError_(
                f"too many initializers for {e.type_name!r}", e.loc
            )
        args: list[Value] = []
        for arg, (fname, fty) in zip(e.args, rec.fields):
            v, t = self.lower_expr(arg)
            v = self.coerce(arg.loc, v, t, fty)
            args.append(v)
        return self.builder.new_object(e.loc, e.type_name, args, rec), rec

    def _lower_reduce(self, e: A.Reduce) -> tuple[Value, Type]:
        """Reductions lower to an accumulator loop (serial; the paper
        lists reduction support under future work, so a serial expansion
        is deliberately sufficient)."""
        loc = e.loc
        it_value, it_ty = self.lower_expr(e.iterable)
        elem_ty, is_ref = self._iteration_binding(it_ty, loc)
        if isinstance(elem_ty, TupleType) and isinstance(it_ty, DomainType):
            raise TypeError_("cannot reduce over a multi-dimensional domain", loc)
        acc_ty = elem_ty
        init: Value
        if e.op == "+":
            init = self.default_value(loc, acc_ty)
        elif e.op == "*":
            init = (
                Constant(acc_ty, 1) if isinstance(acc_ty, IntType) else Constant(acc_ty, 1.0)
            )
        elif e.op in ("min", "max"):
            big = 1 << 62 if isinstance(acc_ty, IntType) else float("inf")
            v = big if e.op == "min" else (-big if isinstance(acc_ty, IntType) else float("-inf"))
            init = Constant(acc_ty, v)
        else:
            raise TypeError_(f"unsupported reduction {e.op!r}", loc)
        acc = self.builder.alloca(loc, acc_ty, "_reduce_acc", is_temp=True)
        self.builder.store(loc, init, acc)
        state = self.builder.iter_init(loc, it_value, zippered=False)
        header = self.builder.new_block("reduce.header")
        body = self.builder.new_block("reduce.body")
        exit_block = self.builder.new_block("reduce.end")
        self.builder.br(loc, header)
        self.builder.set_block(header)
        ok = self.builder.iter_next(loc, state)
        self.builder.cbr(loc, ok, body, exit_block)
        self.builder.set_block(body)
        elem = self.builder.iter_value(loc, state, elem_ty)
        if is_ref:
            elem = self.builder.load(loc, elem, elem_ty)
        old = self.builder.load(loc, acc, acc_ty)
        if e.op in ("min", "max"):
            new = self.builder.call(loc, e.op, [old, elem], acc_ty, is_builtin=True)
            assert new is not None
        else:
            new = self.builder.binop(loc, e.op, old, elem, acc_ty)
        self.builder.store(loc, new, acc)
        self.builder.br(loc, header)
        self.builder.set_block(exit_block)
        return self.builder.load(loc, acc, acc_ty), acc_ty

    # -- indexing -----------------------------------------------------------------

    def _lower_index_rvalue(self, e: A.Index) -> tuple[Value, Type]:
        base_ty = self._type_of_base(e.base)
        if isinstance(base_ty, ArrayType):
            base, _ = self.lower_expr(e.base)
            return self._index_array(e, base, base_ty, want_addr=False)
        if isinstance(base_ty, TupleType):
            # Prefer address + load when the base is addressable, so the
            # write/read paths are symmetric for blame.
            if isinstance(e.base, (A.Ident, A.Index, A.FieldAccess)):
                try:
                    addr, ty = self.lower_addr(e)
                    return self.builder.load(e.loc, addr, ty), ty
                except TypeError_:
                    pass
            tup, tup_ty = self.lower_expr(e.base)
            assert isinstance(tup_ty, TupleType)
            idx_v, idx_t, const_idx = self._lower_tuple_index(e, tup_ty)
            elem_ty = tup_ty.elems[const_idx if const_idx is not None else 0]
            return self.builder.tuple_get(e.loc, tup, idx_v, elem_ty), elem_ty
        raise TypeError_(f"cannot index a value of type {base_ty}", e.loc)

    def _lower_tuple_index(
        self, e: A.Index, tup_ty: TupleType
    ) -> tuple[Value, Type, int | None]:
        if len(e.indices) != 1:
            raise TypeError_("tuples take a single index", e.loc)
        idx_v, idx_t = self.lower_expr(e.indices[0])
        if not isinstance(idx_t, IntType):
            raise TypeError_("tuple index must be an integer", e.loc)
        const_idx: int | None = None
        if isinstance(idx_v, Constant):
            const_idx = int(idx_v.value)  # type: ignore[arg-type]
            if not 0 <= const_idx < len(tup_ty.elems):
                raise TypeError_(
                    f"tuple index {const_idx} out of range 0..{len(tup_ty.elems) - 1}",
                    e.loc,
                )
        else:
            first = tup_ty.elems[0]
            if any(t != first for t in tup_ty.elems):
                raise TypeError_(
                    "dynamic index into a non-homogeneous tuple", e.loc
                )
        return idx_v, idx_t, const_idx

    def _index_array(
        self, e: A.Index, base: Value, base_ty: ArrayType, want_addr: bool
    ) -> tuple[Value, Type]:
        loc = e.loc
        idx_vals: list[Value] = []
        idx_types: list[Type] = []
        for ix in e.indices:
            v, t = self.lower_expr(ix)
            idx_vals.append(v)
            idx_types.append(t)
        # Slice / view: A[dom], A[range] (and A[r1, r2] for rank 2).
        if any(isinstance(t, (DomainType, RangeType)) for t in idx_types):
            if want_addr:
                raise TypeError_("cannot assign to an array slice directly", loc)
            if len(idx_types) == 1 and isinstance(idx_types[0], DomainType):
                dom = idx_vals[0]
            else:
                if not all(isinstance(t, RangeType) for t in idx_types):
                    raise TypeError_("mixed element/slice indexing unsupported", loc)
                if len(idx_types) != base_ty.rank:
                    raise TypeError_(
                        f"slice rank {len(idx_types)} != array rank {base_ty.rank}",
                        loc,
                    )
                dom = self.builder.make_domain(loc, idx_vals)
            return self.builder.array_slice(loc, base, dom, base_ty), base_ty
        # Element access.
        if len(idx_vals) != base_ty.rank:
            raise TypeError_(
                f"array of rank {base_ty.rank} indexed with {len(idx_vals)} "
                "subscripts",
                loc,
            )
        for t in idx_types:
            if not isinstance(t, IntType):
                raise TypeError_("array subscripts must be integers", loc)
        addr = self.builder.elem_addr(loc, base, idx_vals, base_ty.elem)
        if want_addr:
            return addr, base_ty.elem
        return self.builder.load(loc, addr, base_ty.elem), base_ty.elem

    # -- lvalues -----------------------------------------------------------------

    def _type_of_base(self, e: A.Expr) -> Type:
        """Static type of an expression without emitting code (used to
        choose the indexing strategy).  Falls back to full lowering-free
        inference for the shapes indexing can produce."""
        if isinstance(e, A.Ident):
            return self._resolve(e.name, e.loc).type
        if isinstance(e, A.Index):
            bt = self._type_of_base(e.base)
            if isinstance(bt, ArrayType):
                if any(
                    isinstance(self._type_of_base_safe(ix), (DomainType, RangeType))
                    or isinstance(ix, (A.RangeLit, A.DomainLit))
                    for ix in e.indices
                ):
                    return bt
                return bt.elem
            if isinstance(bt, TupleType):
                if len(e.indices) == 1 and isinstance(e.indices[0], A.IntLit):
                    return bt.elems[e.indices[0].value]
                return bt.elems[0]
            raise TypeError_(f"cannot index {bt}", e.loc)
        if isinstance(e, A.FieldAccess):
            bt = self._type_of_base(e.base)
            if isinstance(bt, RecordType):
                ft = bt.field_type(e.field)
                if ft is None:
                    raise TypeError_(
                        f"record {bt.name} has no field {e.field!r}", e.loc
                    )
                return ft
            raise TypeError_(f"{bt} has no fields", e.loc)
        if isinstance(e, A.MethodCall):
            recv_t = self._type_of_base(e.receiver)
            if isinstance(recv_t, ArrayType) and e.method == "reindex":
                return recv_t
            if isinstance(recv_t, ArrayType) and e.method == "domain":
                return DomainType(recv_t.rank)
            if isinstance(recv_t, (DomainType, RangeType)):
                if e.method in ("expand", "translate", "interior"):
                    return recv_t
                if e.method == "dim":
                    return RANGE
                if e.method == "size":
                    return INT
                if e.method in ("low", "high"):
                    rank = recv_t.rank if isinstance(recv_t, DomainType) else 1
                    return INT if rank == 1 else TupleType(tuple([INT] * rank))
            raise TypeError_(f"cannot type method {e.method!r} here", e.loc)
        if isinstance(e, A.Call):
            sig = self.L.procs.get(e.callee)
            if sig is not None:
                return sig.return_type
            if is_intrinsic(e.callee):
                return INTRINSICS[e.callee].return_type
            if e.callee in self.L.iters:
                raise TypeError_(
                    f"iterator {e.callee!r} can only be consumed by a "
                    "for loop",
                    e.loc,
                )
            raise NameError_(f"call to undefined proc {e.callee!r}", e.loc)
        if isinstance(e, A.RangeLit):
            return RANGE
        if isinstance(e, A.DomainLit):
            return DomainType(len(e.dims))
        if isinstance(e, A.IntLit):
            return INT
        if isinstance(e, A.RealLit):
            return REAL
        if isinstance(e, A.BoolLit):
            return BOOL
        if isinstance(e, A.StringLit):
            return STRING
        if isinstance(e, A.TupleLit):
            return TupleType(tuple(self._type_of_base(x) for x in e.elems))
        if isinstance(e, A.New):
            rec = self.module.records.get(e.type_name)
            if rec is None:
                raise TypeError_(f"unknown record {e.type_name!r}", e.loc)
            return rec
        if isinstance(e, A.BinOp):
            lt = self._type_of_base(e.lhs)
            rt = self._type_of_base(e.rhs)
            if e.op in _CMP_OPS or e.op in ("&&", "||"):
                return BOOL
            if isinstance(lt, TupleType):
                return lt
            if isinstance(rt, TupleType):
                return rt
            u = unify_numeric(lt, rt)
            return u if u is not None else lt
        if isinstance(e, A.UnOp):
            return BOOL if e.op == "!" else self._type_of_base(e.operand)
        if isinstance(e, A.Reduce):
            it = self._type_of_base(e.iterable)
            if isinstance(it, ArrayType):
                return it.elem
            return INT
        if isinstance(e, A.IfExpr):
            # Mirror _lower_if_expr: numeric branches unify (int+real →
            # real), otherwise the then-branch type stands.
            tt = self._type_of_base(e.then_expr)
            et = self._type_of_base_safe(e.else_expr)
            if et is not None and tt.is_numeric() and et.is_numeric():
                u = unify_numeric(tt, et)
                if u is not None:
                    return u
            return tt
        raise TypeError_(f"cannot type {type(e).__name__} without lowering", e.loc)

    def _type_of_base_safe(self, e: A.Expr) -> Type | None:
        try:
            return self._type_of_base(e)
        except Exception:
            return None

    def lower_addr(self, e: A.Expr) -> tuple[Value, Type]:
        """Lowers an lvalue to (address value, stored type)."""
        if isinstance(e, A.Ident):
            sym = self._resolve(e.name, e.loc)
            if sym.kind == "param":
                raise TypeError_(f"cannot assign to param {e.name!r}", e.loc)
            assert sym.storage is not None
            if sym.kind == "indexref":
                addr = self.builder.load(e.loc, sym.storage, sym.type)  # type: ignore[arg-type]
                return addr, sym.type
            return sym.storage, sym.type  # type: ignore[return-value]
        if isinstance(e, A.Index):
            base_ty = self._type_of_base(e.base)
            if isinstance(base_ty, ArrayType):
                base, _ = self.lower_expr(e.base)
                return self._index_array(e, base, base_ty, want_addr=True)
            if isinstance(base_ty, TupleType):
                base_addr, bt = self.lower_addr(e.base)
                assert isinstance(bt, TupleType)
                idx_v, _, const_idx = self._lower_tuple_index(e, bt)
                elem_ty = bt.elems[const_idx if const_idx is not None else 0]
                return (
                    self.builder.tuple_elem_addr(e.loc, base_addr, idx_v, elem_ty),
                    elem_ty,
                )
            raise TypeError_(f"cannot index {base_ty}", e.loc)
        if isinstance(e, A.FieldAccess):
            base_ty = self._type_of_base(e.base)
            if not isinstance(base_ty, RecordType):
                raise TypeError_(f"{base_ty} has no fields", e.loc)
            ft = base_ty.field_type(e.field)
            fi = base_ty.field_index(e.field)
            if ft is None or fi is None:
                raise TypeError_(
                    f"record {base_ty.name} has no field {e.field!r}", e.loc
                )
            if base_ty.is_class:
                # Class instances are references: field access goes
                # through the *value* (pointer).
                base, _ = self.lower_expr(e.base)
                return self.builder.field_addr(e.loc, base, fi, e.field, ft), ft
            try:
                base_addr, _ = self.lower_addr(e.base)
            except TypeError_:
                # Record rvalue (e.g. returned from a call): materialize
                # a temporary so the field is addressable.
                value, vt = self.lower_expr(e.base)
                base_addr = self.builder.alloca(e.loc, vt, "_rec_tmp", is_temp=True)
                self.builder.store(e.loc, value, base_addr)
            return self.builder.field_addr(e.loc, base_addr, fi, e.field, ft), ft
        raise TypeError_(
            f"expression {type(e).__name__} is not assignable", e.loc
        )


def lower_program(program: A.Program, module_name: str = "module") -> Module:
    """Public entry: AST → verified IR module."""
    module = Lowerer(program, module_name).lower()
    from ..ir.verifier import verify_module

    verify_module(module)
    return module


def compile_source(
    source: str, filename: str = "<string>", fresh_ids: bool = False
) -> Module:
    """Convenience: source text → verified IR module.

    ``fresh_ids=True`` resets the global IR id counters first, making
    compilation deterministic across processes: the same source always
    yields the same instruction ids.  Saved sample datasets rely on
    this to be re-analyzable offline (see ``repro.sampling.dataset``).
    """
    from ..chapel.parser import parse

    if fresh_ids:
        from ..ir.instructions import reset_ir_counters

        reset_ir_counters()
    program = parse(source, filename)
    module = lower_program(program, module_name=filename)
    module.sources[filename] = source
    return module
