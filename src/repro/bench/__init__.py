"""Benchmark programs and the experiment harness that regenerates every
table and figure of the paper's evaluation (see DESIGN.md §4)."""

from . import harness
from .programs import clomp, example_fig1, lulesh, minimd

__all__ = ["clomp", "example_fig1", "harness", "lulesh", "minimd"]
