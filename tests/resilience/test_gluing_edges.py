"""Gluing edge cases: lost spawn records, ambiguity, tag collisions.

These exercise the tolerant post-mortem's recovery pass on hand-crafted
degradations of a real run — the situations a lossy collector produces:
a spawn record that never made it to the monitor, a pre-spawn stack
that no longer suffix-matches anything intact, idle-thread samples in a
degraded stream, and duplicate (wrapped-around) spawn tags.
"""

import os
import sys
from dataclasses import replace

from repro.blame.postmortem import (
    REASON_LOST_TAG,
    REASON_TRUNCATED,
    process_samples,
)
from repro.sampling.records import RawSample

sys.path.insert(0, os.path.dirname(os.path.dirname(__file__)))
from conftest import profile_src

SRC = """
var A: [0..99] real;
var B: [0..99] real;
proc kernel() {
  forall i in 0..99 { A[i] = sqrt(i * 1.0) + i * 0.25; }
}
proc other() {
  forall i in 0..99 { B[i] = i * 2.0; }
}
proc main() { kernel(); other(); }
"""


def _run():
    """One clean profile; returns (module, options, busy raw samples)."""
    res = profile_src(SRC, threshold=211)
    busy = [s for s in res.monitor.samples if not s.is_idle]
    return res.module, res.static_info.options, busy


def _spawned(samples, fn="forall_fn_chpl1"):
    return [s for s in samples if s.stack[0][0] == fn and s.spawn_tag is not None]


class TestMissingSpawnRecord:
    def test_recovered_from_intact_siblings(self):
        # The spawn record for one worker sample is lost entirely (no
        # tag, no pre-spawn) but intact samples of the same outlined
        # body pin down a unique pre-spawn stack.
        module, options, busy = _run()
        victim = _spawned(busy)[0]
        degraded = replace(victim, spawn_tag=None, pre_spawn_stack=None)
        pm = process_samples(
            module, busy + [degraded], options=options, tolerant=True
        )
        assert pm.n_recovered >= 1 and not pm.unknown
        rec = [i for i in pm.instances if i.was_recovered]
        assert rec and all(i.frames[-1][0] == "main" for i in rec)

    def test_without_siblings_lands_in_unknown(self):
        # No other sample of that outlined function exists: nothing to
        # glue against, so the sample is explicitly unattributable.
        module, options, busy = _run()
        victim = _spawned(busy)[0]
        degraded = replace(victim, spawn_tag=None, pre_spawn_stack=None)
        pm = process_samples(module, [degraded], options=options, tolerant=True)
        assert pm.n_user == 0
        assert [d.reason for d in pm.unknown] == [REASON_LOST_TAG]

    def test_ambiguous_pre_spawn_is_not_guessed(self):
        # The same outlined body glued from TWO distinct pre-spawn
        # stacks in this run: a tagless sample of it must NOT be
        # attributed to either (a wrong guess is silent misblame).
        module, options, busy = _run()
        a = _spawned(busy, "forall_fn_chpl1")[0]
        b = _spawned(busy, "forall_fn_chpl2")[0]
        # Forge a second spawn context for chpl1: same worker stack,
        # different (real, complete) pre-spawn path via `other`.
        forged = replace(
            a, spawn_tag=777, pre_spawn_stack=b.pre_spawn_stack
        )
        degraded = replace(a, spawn_tag=None, pre_spawn_stack=None)
        pm = process_samples(
            module, [a, forged, degraded], options=options, tolerant=True
        )
        assert [d.reason for d in pm.unknown] == [REASON_LOST_TAG]
        assert all(not i.was_recovered for i in pm.instances)


class TestTruncatedContinuations:
    def test_unique_continuation_recovered(self):
        # Walker died mid-walk on a main-task sample; every intact path
        # through the surviving deepest frame continues identically.
        module, options, busy = _run()
        main_task = [s for s in busy if s.spawn_tag is None and len(s.stack) >= 2]
        assert main_task
        victim = main_task[0]
        degraded = replace(victim, stack=victim.stack[:-1])
        pm = process_samples(
            module, busy + [degraded], options=options, tolerant=True
        )
        assert pm.n_recovered >= 1 and not pm.unknown

    def test_non_suffix_matching_continuation_is_unknown(self):
        # The truncated frame's continuation is ambiguous across intact
        # paths — suffix matching must refuse rather than pick one.
        module, options, busy = _run()
        victim = next(
            s for s in busy if s.spawn_tag is None and len(s.stack) >= 2
        )
        deepest = victim.stack[0]
        alt = RawSample(
            index=9000,
            thread_id=0,
            task_id=0,
            stack=(deepest, ("other", victim.stack[-1][1]),
                   victim.stack[-1]),
            leaf_iid=deepest[1],
            spawn_tag=None,
            pre_spawn_stack=None,
        )
        degraded = replace(victim, index=9001, stack=(deepest,))
        pm = process_samples(
            module, [victim, alt, degraded], options=options, tolerant=True
        )
        assert REASON_TRUNCATED in [d.reason for d in pm.unknown]


class TestIdleAndDuplicateTags:
    def test_idle_samples_stay_runtime_under_degradation(self):
        # Idle-thread samples in a degraded stream are runtime context,
        # never quarantined and never `<unknown>`.
        module, options, busy = _run()
        idle = [
            RawSample(5000 + i, i % 4, -1, (("__sched_yield", -1),), -1,
                      None, None, is_idle=True)
            for i in range(8)
        ]
        degraded = replace(
            _spawned(busy)[0], spawn_tag=None, pre_spawn_stack=None
        )
        pm = process_samples(
            module, idle + busy + [degraded], options=options, tolerant=True
        )
        assert len(pm.runtime_samples) == len(idle)
        assert all(s.is_idle for s in pm.runtime_samples)
        assert not pm.quarantined

    def test_duplicate_spawn_tags_glue_deterministically(self):
        # Tag collision (16-bit tags wrap in long runs): two intact
        # spawn records share a tag but carry different pre-spawns.
        # Recovery through that tag must be deterministic — the first
        # intact path learned wins, and the result is still complete.
        module, options, busy = _run()
        a = _spawned(busy, "forall_fn_chpl1")[0]
        b = _spawned(busy, "forall_fn_chpl2")[0]
        a2 = replace(a, spawn_tag=42)
        b2 = replace(b, spawn_tag=42)
        degraded = replace(a, index=9100, spawn_tag=42, pre_spawn_stack=None)
        stream = [a2, b2, degraded]
        runs = [
            process_samples(module, stream, options=options, tolerant=True)
            for _ in range(2)
        ]
        for pm in runs:
            rec = [i for i in pm.instances if i.was_recovered]
            assert len(rec) == 1
            # Glued to the first-learned pre-spawn for tag 42 (a2's).
            assert rec[0].frames == tuple(
                list(degraded.stack) + list(a2.pre_spawn_stack)
            )
        assert runs[0].instances == runs[1].instances
