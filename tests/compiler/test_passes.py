"""Optimization pass (--fast pipeline) tests: correctness preservation,
IR effects, and the paper's "variables optimized out" phenomenon."""

import pytest

from repro.compiler.lower import compile_source
from repro.compiler.passes import run_fast_pipeline
from repro.compiler.passes.constant_fold import constant_fold
from repro.compiler.passes.copy_prop import copy_propagate
from repro.compiler.passes.dce import dead_code_eliminate
from repro.compiler.passes.inline import inline_small_functions
from repro.compiler.passes.pass_manager import PassManager, default_fast_passes
from repro.compiler.passes.simplify_cfg import simplify_cfg
from repro.ir import instructions as I
from repro.ir.verifier import verify_module
from repro.runtime.interpreter import Interpreter

import sys, os
sys.path.insert(0, os.path.dirname(os.path.dirname(__file__)))
from conftest import output_of


def run_module_output(m, config=None):
    return Interpreter(m, config=config, num_threads=4).run()


def instrs(m, fn):
    return list(m.functions[fn].instructions())


class TestConstantFold:
    def test_folds_arith(self):
        m = compile_source("proc main() { var x = 2 + 3 * 4; writeln(x); }")
        changed = constant_fold(m)
        assert changed
        # After folding + dce, no BinOps should remain in main.
        dead_code_eliminate(m)
        assert not [i for i in instrs(m, "main") if isinstance(i, I.BinOp)]
        assert run_module_output(m).output == ["14"]

    def test_folds_comparisons_and_casts(self):
        m = compile_source("proc main() { var b = 3 < 5; var r: real = 7; writeln(b, r); }")
        constant_fold(m)
        verify_module(m)
        assert run_module_output(m).output == ["true 7.0"]

    def test_division_by_zero_not_folded(self):
        # 1/0 must stay a runtime event, not a compile crash.
        m = compile_source("proc main() { var z = 0; if z > 0 { writeln(1 / 0); } }")
        constant_fold(m)
        verify_module(m)


class TestCopyProp:
    def test_forwards_store_to_load(self):
        m = compile_source("proc main() { var x = 5; var y = x + 1; writeln(y); }")
        before = len([i for i in instrs(m, "main") if isinstance(i, I.Load)])
        copy_propagate(m)
        dead_code_eliminate(m)
        after = len([i for i in instrs(m, "main") if isinstance(i, I.Load)])
        assert after < before
        assert run_module_output(m).output == ["6"]

    def test_kills_across_calls(self):
        src = """
var g: int = 0;
proc setg() { g = 42; }
proc main() { g = 1; setg(); writeln(g); }
"""
        m = compile_source(src)
        copy_propagate(m)
        dead_code_eliminate(m)
        assert run_module_output(m).output == ["42"]


class TestDCE:
    def test_removes_unused_pure_instrs(self):
        m = compile_source("proc main() { var unused = 3 + 4; writeln(1); }")
        copy_propagate(m)
        dead_code_eliminate(m)
        # the write-only local 'unused' should be gone entirely
        allocas = [i for i in instrs(m, "main") if isinstance(i, I.Alloca)]
        assert all(a.var_name != "unused" for a in allocas)

    def test_variable_optimized_out_breaks_blame_mapping(self):
        """The paper's --fast complaint: variables disappear from the
        debug info, so blame can no longer name them."""
        src = "proc main() { var ghost = 1 + 2; writeln(9); }"
        m = compile_source(src)
        run_fast_pipeline(m)
        from repro.ir.debug_info import collect_variables

        names = {v.name for v in collect_variables(m)}
        assert "ghost" not in names

    def test_keeps_observable_effects(self):
        m = compile_source("proc main() { var x = 1; writeln(x); }")
        dead_code_eliminate(m)
        assert run_module_output(m).output == ["1"]


class TestSimplifyCFG:
    def test_threads_constant_branch(self):
        m = compile_source("proc main() { if true { writeln(1); } else { writeln(2); } }")
        constant_fold(m)
        changed = simplify_cfg(m)
        assert changed
        verify_module(m)
        # the else arm is unreachable and removed; only one writeln left
        calls = [i for i in instrs(m, "main") if isinstance(i, I.Call)]
        assert len(calls) == 1
        assert run_module_output(m).output == ["1"]

    def test_merges_linear_chains(self):
        m = compile_source("proc main() { if true { } writeln(3); }")
        constant_fold(m)
        simplify_cfg(m)
        assert len(m.functions["main"].blocks) < 4
        assert run_module_output(m).output == ["3"]


class TestInline:
    def test_inlines_small_single_block_function(self):
        src = """
proc add3(x: int): int { return x + 3; }
proc main() { writeln(add3(4)); }
"""
        m = compile_source(src)
        changed = inline_small_functions(m)
        assert changed
        # The function vanished from the module — the paper's
        # "functions removed or renamed" under --fast.
        assert "add3" not in m.functions
        verify_module(m)
        assert run_module_output(m).output == ["7"]

    def test_ref_args_inline_correctly(self):
        src = """
proc bump(ref x: int) { x = x + 1; }
proc main() { var v = 5; bump(v); bump(v); writeln(v); }
"""
        m = compile_source(src)
        inline_small_functions(m)
        verify_module(m)
        assert run_module_output(m).output == ["7"]

    def test_does_not_inline_multiblock(self):
        src = """
proc branchy(x: int): int {
  if x > 0 then return 1;
  return 0;
}
proc main() { writeln(branchy(5)); }
"""
        m = compile_source(src)
        inline_small_functions(m)
        assert "branchy" in m.functions

    def test_does_not_inline_recursion(self):
        src = """
proc f(n: int): int { return if n < 1 then 0 else f(n - 1); }
proc main() { writeln(f(3)); }
"""
        m = compile_source(src)
        # f is multi-block anyway (if-expr), but assert it survives
        inline_small_functions(m)
        assert "f" in m.functions


class TestFullPipeline:
    PROGRAMS = [
        ("proc main() { writeln(2 + 2); }", ["4"]),
        (
            """
proc sq(x: real): real { return x * x; }
proc main() {
  var s = 0.0;
  for i in 1..5 { s += sq(i * 1.0); }
  writeln(s);
}
""",
            ["55.0"],
        ),
        (
            """
var D: domain(1) = {0..9};
var A: [D] real;
proc main() {
  forall i in D { A[i] = i * 2.0; }
  writeln(+ reduce A);
}
""",
            ["90.0"],
        ),
        (
            """
record P { var x: real; var y: real; }
proc main() {
  var p = new P(1.0, 2.0);
  p.x += 3.0;
  writeln(p.x, p.y);
}
""",
            ["4.0 2.0"],
        ),
    ]

    @pytest.mark.parametrize("src,expected", PROGRAMS)
    def test_pipeline_preserves_semantics(self, src, expected):
        m = compile_source(src)
        run_fast_pipeline(m)
        verify_module(m)
        assert run_module_output(m).output == expected

    def test_pipeline_reduces_instruction_count(self):
        src = """
proc main() {
  var s = 0;
  for i in 1..200 {
    var t = i * 2;
    s += t;
  }
  writeln(s);
}
"""
        m_plain = compile_source(src)
        m_fast = compile_source(src)
        run_fast_pipeline(m_fast)
        r_plain = run_module_output(m_plain)
        r_fast = run_module_output(m_fast)
        assert r_fast.output == r_plain.output == ["40200"]
        assert r_fast.instructions_executed < r_plain.instructions_executed

    def test_pass_manager_logs(self):
        m = compile_source("proc main() { writeln(1 + 1); }")
        pm = PassManager(default_fast_passes())
        pm.run(m)
        assert any(name == "constant-fold" for name, _ in pm.log)
