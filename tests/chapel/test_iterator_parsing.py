"""Parser tests for the iterator / with-clause syntax extensions."""

import pytest

from repro.chapel import ast_nodes as A
from repro.chapel.errors import ParseError
from repro.chapel.parser import parse


class TestIterSyntax:
    def test_iter_decl(self):
        p = parse("iter f(n: int): int { yield n; }")
        decl = p.decls[0]
        assert isinstance(decl, A.ProcDecl) and decl.is_iter
        assert isinstance(decl.body.stmts[0], A.Yield)

    def test_proc_not_iter(self):
        p = parse("proc f(): int { return 1; }")
        assert not p.decls[0].is_iter

    def test_yield_statement(self):
        p = parse("iter f(): int { yield 1 + 2; }")
        y = p.decls[0].body.stmts[0]
        assert isinstance(y.value, A.BinOp)

    def test_yield_requires_expression(self):
        with pytest.raises(ParseError):
            parse("iter f(): int { yield; }")


class TestWithClause:
    def test_single_reduce_intent(self):
        p = parse("proc main() { forall i in D with (+ reduce s) { } }")
        loop = p.decls[0].body.stmts[0]
        assert loop.reduce_intents == [("+", "s")]

    def test_multiple_intents(self):
        p = parse(
            "proc main() { forall i in D with (+ reduce a, max reduce b) { } }"
        )
        loop = p.decls[0].body.stmts[0]
        assert loop.reduce_intents == [("+", "a"), ("max", "b")]

    def test_with_on_coforall(self):
        p = parse("proc main() { coforall t in 0..3 with (* reduce p) { } }")
        assert p.decls[0].body.stmts[0].reduce_intents == [("*", "p")]

    def test_with_on_serial_for_rejected(self):
        with pytest.raises(ParseError, match="parallel"):
            parse("proc main() { for i in D with (+ reduce s) { } }")

    def test_missing_reduce_keyword(self):
        with pytest.raises(ParseError):
            parse("proc main() { forall i in D with (+ s) { } }")

    def test_plain_forall_has_no_intents(self):
        p = parse("proc main() { forall i in D { } }")
        assert p.decls[0].body.stmts[0].reduce_intents == []


class TestDomainMethodName:
    def test_dot_domain_allowed(self):
        p = parse("proc main() { var d = A.domain(); }")
        init = p.decls[0].body.stmts[0].init
        assert isinstance(init, A.MethodCall) and init.method == "domain"
