"""Post-mortem sample processing (paper §IV.C, steps one and two).

Converts raw monitor samples into consolidated "instances": resolves
addresses to source context, glues worker-task post-spawn stacks to the
recorded pre-spawn stacks via the spawn tag, and trims synthetic runtime
frames — producing "a complete, clean call path of the application w/o
libraries for each sample".

Tolerant mode (``tolerant=True``) additionally survives degraded
telemetry instead of mis-attributing it:

* malformed samples (empty walk, negative leaf iid) are quarantined
  into a side channel with per-reason counts;
* incomplete stacks are repaired where possible — a lost spawn tag is
  recovered from other samples of the same outlined function, and a
  truncated walk is extended by longest-suffix match against intact
  call paths from the same run;
* whatever cannot be repaired lands in an explicit ``<unknown>`` blame
  bucket with a provenance reason (``truncated-stack``,
  ``lost-spawn-tag``, ``no-debug-info``) rather than vanishing or
  skewing the attributed rows.

On a clean stream the tolerant pipeline is a zero-cost abstraction: it
produces bit-identical instances to strict mode.

Processing is **streaming**: :class:`PostmortemConsumer` is a
single-pass incremental consumer over sample batches — feed it batches
as the monitor hands them over and call :meth:`~PostmortemConsumer.finish`
once, so no stage ever needs the whole ``list[RawSample]`` resident.
The recovery evidence (spawn-tag index, continuation suffixes) is
accumulated incrementally from intact instances as they are emitted;
degraded candidates wait in a held-back buffer that the
``evidence_window`` parameter bounds.  :func:`process_samples` is the
one-shot wrapper (one batch, unbounded window) and behaves exactly as
it always has.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.module import Module
from ..sampling.records import RawSample
from ..sampling.stackwalk import StackResolver

#: Provenance reasons for unattributable / rejected samples.
REASON_TRUNCATED = "truncated-stack"
REASON_LOST_TAG = "lost-spawn-tag"
REASON_NO_DEBUG = "no-debug-info"
REASON_MALFORMED = "malformed-sample"
#: A pool worker exhausted its retry budget and the whole shard's busy
#: samples were folded into ``<unknown>`` (see pipeline/supervisor.py).
REASON_WORKER_FAILED = "worker-failed"


def _looks_stripped(name: str) -> bool:
    # Raw-address frame names (debug info stripped) render as 0x....
    return name.startswith("0x")


@dataclass(frozen=True)
class Instance:
    """One consolidated sample: the paper's per-sample abstraction
    holding "module name, file name, line number and stack order
    number" for every frame."""

    index: int
    thread_id: int
    #: Leaf-first (function linkage name, iid); spans worker → spawn
    #: site → ... → main after gluing.
    frames: tuple[tuple[str, int], ...]
    #: Resolved (file, line) per frame.
    locations: tuple[tuple[str, int], ...]
    was_glued: bool
    spawn_tag: int | None
    #: True when the call path was repaired from degraded telemetry
    #: (suffix-match gluing) rather than recorded intact.
    was_recovered: bool = False


@dataclass(frozen=True)
class DegradedSample:
    """A sample that could not be (fully) consolidated, with provenance."""

    sample: RawSample
    reason: str


@dataclass
class PostmortemResult:
    """Outcome of post-mortem processing."""

    instances: list[Instance]
    #: Idle / pure-runtime samples (kept for the code-centric view;
    #: empty in bounded-memory streaming mode — see ``n_runtime``).
    runtime_samples: list[RawSample]
    n_raw: int
    #: Unattributable samples, by provenance (tolerant mode only).
    unknown: list[DegradedSample] = field(default_factory=list)
    #: Malformed samples rejected before consolidation (tolerant mode).
    quarantined: list[DegradedSample] = field(default_factory=list)
    #: Instances whose call path was repaired by suffix-match recovery.
    n_recovered: int = 0
    #: Count of runtime/idle samples (== ``len(runtime_samples)`` unless
    #: the consumer ran with ``keep_runtime_samples=False``).
    n_runtime: int = 0

    @property
    def n_user(self) -> int:
        return len(self.instances)

    @property
    def n_unknown(self) -> int:
        return len(self.unknown)

    def unknown_by_reason(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for d in self.unknown:
            out[d.reason] = out.get(d.reason, 0) + 1
        return out

    def quarantine_by_reason(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for d in self.quarantined:
            out[d.reason] = out.get(d.reason, 0) + 1
        return out


def _is_user_frame(module: Module, func: str) -> bool:
    # Synthetic runtime frames (__sched_yield) have no module function.
    # Module init counts as user context: Chapel module-level variable
    # initialization (MiniMD's Pos/Bins) runs there and its samples must
    # be attributable.
    return module.get_function(func) is not None


@dataclass
class _Candidate:
    """A degraded sample held back for the recovery pass."""

    sample: RawSample
    user_frames: list[tuple[str, int]]
    glued: bool
    had_stripped: bool


@dataclass
class ShardEvidence:
    """The recovery evidence one consumer accumulated from its intact
    instances — the piece of post-mortem state that is *not* local to a
    shard.  Plain picklable data so process-pool workers can ship it
    back for a global merge."""

    #: tag → pre-spawn stack (first intact occurrence wins).
    tag_index: dict[int, tuple[tuple[str, int], ...]]
    #: outlined function → distinct pre-spawn continuations.
    pre_index: dict[str, set[tuple[tuple[str, int], ...]]]
    #: frame → distinct continuations below it (suffix gluing).
    cont_index: dict[tuple[str, int], set[tuple[tuple[str, int], ...]]]

    @staticmethod
    def merge(parts: "list[ShardEvidence]") -> "ShardEvidence":
        """Order-respecting union: iterating shards in stream order and
        letting the first occurrence win reproduces exactly the indexes
        a single serial consumer would have built (its ``setdefault``
        semantics), so recovery against the merged evidence matches
        serial recovery bit for bit."""
        tag: dict[int, tuple[tuple[str, int], ...]] = {}
        pre: dict[str, set[tuple[tuple[str, int], ...]]] = {}
        cont: dict[tuple[str, int], set[tuple[tuple[str, int], ...]]] = {}
        for part in parts:
            for k, v in part.tag_index.items():
                tag.setdefault(k, v)
            for k, vs in part.pre_index.items():
                pre.setdefault(k, set()).update(vs)
            for k, vs in part.cont_index.items():
                cont.setdefault(k, set()).update(vs)
        return ShardEvidence(tag_index=tag, pre_index=pre, cont_index=cont)


@dataclass
class ShardState:
    """Phase-1 outcome of one shard's consumer: everything consolidated
    locally, with degraded candidates still *held* (unresolved) because
    resolving them needs evidence from every shard.

    Produced by :meth:`PostmortemConsumer.shard_state`; resolved by
    :meth:`PostmortemConsumer.resolve_with_evidence` against the
    :meth:`ShardEvidence.merge` of all shards.  All fields are plain
    picklable data.
    """

    instances: list[Instance]
    runtime_samples: list[RawSample]
    n_runtime: int
    quarantined: list[DegradedSample]
    candidates: list[_Candidate]
    n_raw: int
    #: In-stream repairs (symbol-table re-identification) — recovery
    #: that never needed cross-shard evidence.
    n_repaired: int
    evidence: ShardEvidence


class PostmortemConsumer:
    """Single-pass incremental consumer over raw sample batches.

    Feed batches in collection order with :meth:`feed`; call
    :meth:`finish` exactly once to resolve held-back degraded
    candidates and obtain the :class:`PostmortemResult`.  With the
    default settings the result is bit-identical to the historical
    whole-list :func:`process_samples` on the same stream.

    Memory behaviour:

    * intact samples are consolidated and released immediately — only
      the emitted :class:`Instance` (and the deduplicated recovery
      evidence derived from it) survives the batch;
    * degraded samples wait in a held-back candidate buffer.
      ``evidence_window`` bounds that buffer: when more than this many
      candidates are pending, the oldest are resolved early against the
      evidence collected so far (best-effort — evidence that would only
      arrive later in the run cannot repair an early-flushed sample).
      ``None`` (the default) holds all candidates to the end, matching
      the one-shot semantics exactly;
    * ``keep_runtime_samples=False`` additionally drops idle/runtime
      samples after counting them (the views only use the count).
    """

    def __init__(
        self,
        module: Module,
        options: object | None = None,
        tolerant: bool = False,
        evidence_window: int | None = None,
        keep_runtime_samples: bool = True,
        resolver: "StackResolver | None" = None,
    ) -> None:
        from .options import FULL

        self.module = module
        self.options = options or FULL
        self.tolerant = tolerant
        if evidence_window is not None and evidence_window < 1:
            raise ValueError("evidence_window must be >= 1 (or None)")
        self.evidence_window = evidence_window
        self.keep_runtime_samples = keep_runtime_samples

        # Building the resolver means indexing every instruction in the
        # module; callers that construct many consumers over one
        # unchanging module (the sharded pipeline, one per shard) pass a
        # shared pre-built resolver — it is pure lookup, so sharing
        # changes no behavior.
        self._resolver = (
            resolver if resolver is not None else StackResolver(module)
        )
        self._instances: list[Instance] = []
        self._runtime: list[RawSample] = []
        self._n_runtime = 0
        self._quarantined: list[DegradedSample] = []
        self._unknown: list[DegradedSample] = []
        self._candidates: list[_Candidate] = []
        self._n_raw = 0
        self._n_repaired = 0
        self._n_late_recovered = 0
        self._finished = False
        #: tag → pre-spawn stack, learned from intact samples (recovery).
        self._tag_index: dict[int, tuple[tuple[str, int], ...]] = {}
        #: outlined function → distinct pre-spawn continuations.
        self._pre_index: dict[str, set[tuple[tuple[str, int], ...]]] = {}
        #: frame → distinct continuations below it (suffix gluing).
        self._cont_index: dict[
            tuple[str, int], set[tuple[tuple[str, int], ...]]
        ] = {}

    # -- streaming interface -------------------------------------------------

    @property
    def pending_candidates(self) -> int:
        """Degraded samples currently held back for recovery."""
        return len(self._candidates)

    @property
    def n_consolidated(self) -> int:
        """Instances consolidated so far (grows monotonically; the
        adaptive checkpoints read deltas against this watermark)."""
        return len(self._instances)

    @property
    def n_quarantined(self) -> int:
        """Samples rejected so far (post-mortem quarantine only)."""
        return len(self._quarantined)

    def instances_since(self, start: int) -> "list[Instance]":
        """The consolidated instances appended at or after ``start`` —
        the incremental-attribution delta between two checkpoints."""
        return self._instances[start:]

    def feed(self, batch: "list[RawSample] | tuple[RawSample, ...]") -> None:
        """Consumes one batch of raw samples (collection order)."""
        if self._finished:
            raise RuntimeError("PostmortemConsumer.feed() after finish()")
        for s in batch:
            self._consume(s)
        if (
            self.evidence_window is not None
            and len(self._candidates) > self.evidence_window
        ):
            # Bounded evidence window: resolve the overflow (oldest
            # first) against whatever evidence exists right now.
            overflow = len(self._candidates) - self.evidence_window
            flush, self._candidates = (
                self._candidates[:overflow],
                self._candidates[overflow:],
            )
            for c in flush:
                self._n_late_recovered += self._resolve_candidate(c)

    def finish(self) -> PostmortemResult:
        """Resolves remaining candidates and returns the result."""
        if self._finished:
            raise RuntimeError("PostmortemConsumer.finish() called twice")
        self._finished = True
        for c in self._candidates:
            self._n_late_recovered += self._resolve_candidate(c)
        self._candidates = []
        return PostmortemResult(
            instances=self._instances,
            runtime_samples=self._runtime,
            n_raw=self._n_raw,
            unknown=self._unknown,
            quarantined=self._quarantined,
            n_recovered=self._n_repaired + self._n_late_recovered,
            n_runtime=self._n_runtime,
        )

    # -- per-sample consolidation (first pass) -------------------------------

    def _consume(self, s: RawSample) -> None:
        self._n_raw += 1
        if s.is_idle:
            self._n_runtime += 1
            if self.keep_runtime_samples:
                self._runtime.append(s)
            return
        if self.tolerant:
            from ..sampling.monitor import Monitor

            flaw = Monitor.validate(s)
            if flaw is not None:
                self._quarantined.append(DegradedSample(s, REASON_MALFORMED))
                return
        frames = list(s.stack)
        glued = False
        if (
            self.options.stack_gluing
            and s.spawn_tag is not None
            and s.pre_spawn_stack
        ):
            # Glue post-spawn to pre-spawn. The pre-spawn leaf is the
            # SpawnJoin site in the spawning function — it plays the
            # role of the call site for the outlined frame.
            frames = frames + list(s.pre_spawn_stack)
            glued = True

        # Trim synthetic/artificial frames that carry no user context
        # (e.g. a sample landing in module init keeps that frame only if
        # nothing else remains).
        had_stripped = self.tolerant and any(
            _looks_stripped(f) for f, _ in frames
        )
        repaired = False
        if had_stripped:
            frames, repaired = _repair_stripped(self._resolver, frames)
        user_frames = [
            f for f in frames if _is_user_frame(self.module, f[0])
        ]
        if not user_frames:
            # Paper: "when encountering samples of which the post-spawn
            # stack trace has no stack frames from the user code, we
            # trace back to its pre-spawn stack" — already glued above;
            # whatever still has no user frame is runtime-only.
            if had_stripped:
                self._candidates.append(_Candidate(s, user_frames, glued, True))
            else:
                self._n_runtime += 1
                if self.keep_runtime_samples:
                    self._runtime.append(s)
            return

        if self.tolerant and not _is_complete(self.module, user_frames):
            self._candidates.append(
                _Candidate(s, user_frames, glued, had_stripped)
            )
            return

        if self.tolerant and glued and s.spawn_tag is not None:
            # Learn tag → pre-spawn only from *intact* paths (repaired
            # names, complete root), so a truncated or stripped
            # pre-spawn can never poison tag recovery.
            pre = (
                tuple(frames[len(s.stack):])
                if repaired
                else tuple(s.pre_spawn_stack)
            )
            self._tag_index.setdefault(s.spawn_tag, pre)
        if repaired:
            self._n_repaired += 1
        self._emit(s, user_frames, glued, recovered=repaired,
                   index_evidence=True)

    def _emit(
        self,
        s: RawSample,
        frames: list[tuple[str, int]],
        glued: bool,
        recovered: bool = False,
        index_evidence: bool = False,
    ) -> None:
        resolved = self._resolver.resolve_stack(tuple(frames))
        inst = Instance(
            index=s.index,
            thread_id=s.thread_id,
            frames=tuple(frames),
            locations=tuple((r.filename, r.line) for r in resolved),
            was_glued=glued,
            spawn_tag=s.spawn_tag,
            was_recovered=recovered,
        )
        self._instances.append(inst)
        # Recovery evidence comes from first-pass instances only:
        # instances emitted *by* recovery never feed back into the
        # indexes (matching the historical snapshot-then-recover order,
        # which kept recovered paths from influencing later candidates).
        if index_evidence and self.tolerant:
            self._index_evidence(inst)

    def _index_evidence(self, inst: Instance) -> None:
        if inst.was_glued:
            # The post-spawn part of a glued path ends at its outlined
            # frame; everything below is the pre-spawn continuation.
            for k, (func, _iid) in enumerate(inst.frames):
                f = self.module.get_function(func)
                if f is not None and f.outlined_from is not None:
                    self._pre_index.setdefault(func, set()).add(
                        inst.frames[k + 1:]
                    )
                    break
        for k in range(len(inst.frames) - 1):
            self._cont_index.setdefault(inst.frames[k], set()).add(
                inst.frames[k + 1:]
            )

    # -- shard interface (parallel collection) -------------------------------

    def shard_state(self) -> ShardState:
        """Ends consumption and returns the shard-local outcome *without*
        resolving held-back candidates (phase 1 of the parallel
        post-mortem).

        Candidate resolution is the only part of post-mortem processing
        that reads global state (the recovery evidence spans the whole
        stream), so a shard worker stops here and ships its candidates
        plus evidence to the parent, which resolves all candidates —
        in global stream order — against the merged evidence with
        :meth:`resolve_with_evidence`.

        Incompatible with a bounded ``evidence_window``: early flushing
        resolves candidates against *partial* evidence mid-stream, which
        has no faithful two-phase equivalent.
        """
        if self.evidence_window is not None:
            raise RuntimeError(
                "shard_state() requires an unbounded evidence window "
                "(evidence_window=None); bounded-window early resolution "
                "cannot be deferred to a cross-shard phase"
            )
        if self._finished:
            raise RuntimeError("PostmortemConsumer.shard_state() after finish()")
        self._finished = True
        return ShardState(
            instances=self._instances,
            runtime_samples=self._runtime,
            n_runtime=self._n_runtime,
            quarantined=self._quarantined,
            candidates=self._candidates,
            n_raw=self._n_raw,
            n_repaired=self._n_repaired,
            evidence=ShardEvidence(
                tag_index=self._tag_index,
                pre_index=self._pre_index,
                cont_index=self._cont_index,
            ),
        )

    @classmethod
    def resolve_with_evidence(
        cls,
        module: Module,
        candidates: "list[_Candidate]",
        evidence: ShardEvidence,
        options: object | None = None,
        stack_resolver: "StackResolver | None" = None,
    ) -> "tuple[list[Instance], list[DegradedSample], int]":
        """Phase 2 of the parallel post-mortem: resolves ``candidates``
        (global stream order) against the merged ``evidence`` of every
        shard.

        Returns ``(recovered_instances, unknown, n_recovered)``.  Because
        a serial pass builds evidence only from intact first-pass
        instances — never from recovered ones — resolution is a pure
        function of the final evidence, and running it here over the
        concatenated candidate lists reproduces the serial ``finish()``
        outcome exactly.
        """
        resolver = cls(
            module, options=options, tolerant=True, resolver=stack_resolver
        )
        resolver._tag_index = evidence.tag_index
        resolver._pre_index = evidence.pre_index
        resolver._cont_index = evidence.cont_index
        resolver._finished = True
        n_recovered = 0
        for c in candidates:
            n_recovered += resolver._resolve_candidate(c)
        return resolver._instances, resolver._unknown, n_recovered

    # -- recovery (second pass over held-back candidates) --------------------

    def _resolve_candidate(self, c: _Candidate) -> int:
        """Repairs one degraded stack from the accumulated evidence.

        Two indexes built from intact first-pass instances answer:

        * outlined-function → distinct pre-spawn stacks (for spawn-tag
          loss: if every intact sample of outlined body F glued to one
          pre-spawn stack, a tagless F sample glues to it too);
        * deepest-remaining-frame → distinct continuations (for
          truncated walks: the longest suffix below the matching frame
          of an intact path, adopted only when unambiguous).

        Returns 1 when the candidate was recovered, 0 when it landed in
        the ``<unknown>`` bucket.
        """
        s = c.sample
        if not c.user_frames:
            # Nothing resolvable at all — stripped debug info.
            self._unknown.append(DegradedSample(s, REASON_NO_DEBUG))
            return 0
        root_func, _root_iid = c.user_frames[-1]
        rootf = self.module.get_function(root_func)
        is_outlined_root = rootf is not None and rootf.outlined_from is not None

        continuation: tuple[tuple[str, int], ...] | None = None
        if is_outlined_root:
            reason = REASON_LOST_TAG
            if s.spawn_tag is not None:
                # Tag survived but the pre-spawn stack was lost: glue
                # via another sample that recorded the same tag intact.
                continuation = self._tag_index.get(s.spawn_tag)
            if continuation is None:
                options = self._pre_index.get(root_func, set())
                if len(options) == 1:
                    continuation = next(iter(options))
        else:
            reason = REASON_NO_DEBUG if c.had_stripped else REASON_TRUNCATED
            options = self._cont_index.get(c.user_frames[-1], set())
            if len(options) == 1:
                continuation = next(iter(options))

        if continuation is not None:
            frames = c.user_frames + [
                f for f in continuation if _is_user_frame(self.module, f[0])
            ]
            if _is_complete(self.module, frames):
                self._emit(s, frames, True, recovered=True)
                return 1
        self._unknown.append(DegradedSample(s, reason))
        return 0


def process_samples(
    module: Module,
    samples: list[RawSample],
    options: object | None = None,
    tolerant: bool = False,
) -> PostmortemResult:
    """One-shot stack consolidation over a fully materialized stream
    (a single batch through :class:`PostmortemConsumer`)."""
    consumer = PostmortemConsumer(module, options=options, tolerant=tolerant)
    consumer.feed(samples)
    return consumer.finish()


def _repair_stripped(
    resolver: StackResolver, frames: list[tuple[str, int]]
) -> tuple[list[tuple[str, int]], bool]:
    """Re-identifies stripped interior frames by address-range lookup.

    Debug-info stripping removes line/variable info but not the symbol
    table, so a raw-address frame can still be mapped back to *which
    function* its address falls in — enough to keep the blame-transfer
    chain intact for frames above and below it.  Two cases stay broken:

    * a stripped **leaf** — function identity alone cannot tell which
      access the PC belongs to, so the sample is unattributable
      (returns an empty walk → explicit unknown downstream);
    * an address that resolves nowhere — the walk is cut there and the
      suffix handed to longest-suffix-match recovery.
    """
    if _looks_stripped(frames[0][0]):
        return [], False
    out: list[tuple[str, int]] = []
    repaired = False
    for func, iid in frames:
        if _looks_stripped(func):
            name = resolver.identify(iid)
            if name is None:
                return out, repaired
            out.append((name, iid))
            repaired = True
        else:
            out.append((func, iid))
    return out, repaired


def _is_complete(module: Module, user_frames: list[tuple[str, int]]) -> bool:
    """A consolidated path is complete when it roots at ``main`` (or an
    artificial root like module init, which cannot bubble further)."""
    root = user_frames[-1][0]
    if root == "main":
        return True
    f = module.get_function(root)
    return f is not None and f.is_artificial
