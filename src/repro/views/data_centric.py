"""Flat data-centric view — the GUI's default window (paper §IV.D).

"It provides a flat view of all the variables defined in the program,
ranked in descending order by the percentage of blame they are
assigned.  We show the performance data for each variable along with
its type and context of definition."
"""

from __future__ import annotations

from ..blame.report import BlameReport
from .adaptive import adaptive_lines
from .degradation import degradation_lines
from .tables import pct, render_table


def render_data_centric(
    report: BlameReport,
    top: int | None = None,
    min_blame: float = 0.0,
    include_paths: bool = True,
    adaptive: dict | None = None,
) -> str:
    rows = []
    for r in report.rows:
        if r.blame < min_blame:
            continue
        if r.is_path and not include_paths:
            continue
        rows.append([r.name, r.type_str, pct(r.blame), r.context])
        if top is not None and len(rows) >= top:
            break
    title = (
        f"Data-centric view: {report.program} "
        f"({report.stats.user_samples} samples)"
    )
    table = render_table(
        ["Name", "Type", "Blame", "Context"],
        rows,
        title=title,
        aligns=["l", "l", "r", "l"],
    )
    notes = degradation_lines(report) + adaptive_lines(adaptive)
    return table + ("\n" + "\n".join(notes) if notes else "")
