"""Store-to-load forwarding within basic blocks (a copy-propagation /
mem2reg-lite pass).

The -O0-style lowering produces ``store x, %a; ...; load %a`` chains for
every variable access; forwarding the stored value removes the load.
Conservative kill rules: any other store, call, or spawn invalidates all
tracked slots (no alias analysis needed for correctness).
"""

from __future__ import annotations

from ...ir import instructions as I
from ...ir.module import Module


def copy_propagate(module: Module) -> bool:
    changed = False
    for fn in module.functions.values():
        replacements: dict[int, I.Value] = {}
        for block in fn.blocks:
            # address register rid → last stored value in this block
            known: dict[int, I.Value] = {}
            for instr in block.instructions:
                if isinstance(instr, I.Store):
                    addr = instr.addr
                    value = instr.value
                    if isinstance(addr, I.Register):
                        # A store to one tracked slot invalidates others
                        # that might alias (conservative: all of them),
                        # then records this one.
                        known.clear()
                        # Forwarding composites would break value
                        # semantics (the slot holds a copy): only
                        # forward scalar-typed values.
                        from ...chapel.types import (
                            BoolType,
                            IntType,
                            RealType,
                            StringType,
                        )

                        if isinstance(
                            value.type, (IntType, RealType, BoolType, StringType)
                        ):
                            known[addr.rid] = value
                    else:
                        known.clear()
                elif isinstance(instr, I.Load):
                    addr = instr.addr
                    if isinstance(addr, I.Register) and addr.rid in known:
                        assert instr.result is not None
                        replacements[instr.result.rid] = known[addr.rid]
                elif isinstance(instr, (I.Call, I.SpawnJoin)):
                    known.clear()
        if not replacements:
            continue
        changed = True
        for block in fn.blocks:
            for instr in block.instructions:
                for op in list(instr.operands()):
                    if isinstance(op, I.Register) and op.rid in replacements:
                        new = replacements[op.rid]
                        # Chase chains (load of a forwarded load).
                        seen = set()
                        while (
                            isinstance(new, I.Register)
                            and new.rid in replacements
                            and new.rid not in seen
                        ):
                            seen.add(new.rid)
                            new = replacements[new.rid]
                        instr.replace_operand(op, new)
    return changed
