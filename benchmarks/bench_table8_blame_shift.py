"""E9 — Paper Table VIII: how each optimization shifts the blame
profile of the variables it touches.

Paper's reading (grouping by optimization):
* P 1 lowers the hourglass family (hourgam 25.0→13.2, hourmodx
  5.8→2.8, hgfx 29.5→20.5, ...);
* VG relates to determ/dvdx (the hoisted allocations; their blame
  holds roughly steady while total time drops);
* CENN drops b_x/y/z (9.7→6.0).
"""

from conftest import record_result, run_once

from repro.bench import harness
from repro.views.tables import render_table

WATCH = ["hgfx", "hgfy", "hgfz", "hourgam", "hourmodx", "determ", "dvdx", "b_x"]

PAPER = {
    # variable: (Original, P1, VG, CENN) from paper Table VIII
    "hgfx": (29.5, 20.5, 31.3, 26.4),
    "hgfy": (29.2, 18.8, 31.3, 27.4),
    "hgfz": (30.8, 19.8, 28.0, 27.1),
    "hourgam": (25.0, 13.2, 25.7, 22.1),
    "hourmodx": (5.8, 2.8, 7.3, 6.4),
    "determ": (15.7, 20.8, 14.8, 16.1),
    "dvdx": (8.3, 7.3, 8.2, 7.0),
    "b_x": (9.7, 10.4, 9.0, 6.0),
}


def measure():
    return harness.lulesh_table_viii()


def test_table8_blame_shift(benchmark, record):
    data = run_once(benchmark, measure)
    orig, p1, vg, cenn = (data[k] for k in ("Original", "P1", "VG", "CENN"))

    # P1 shrinks the hourglass-block variables' blame (less time in the
    # block → fewer samples land in their blame sets).
    assert p1["hourgam"] < orig["hourgam"]
    assert p1["hourmodx"] <= orig["hourmodx"] + 0.01
    # CENN drops the b_x family (paper 9.7 → 6.0).
    assert cenn["b_x"] < orig["b_x"]
    # CENN leaves the hourglass family roughly alone (within a band).
    assert abs(cenn["hourgam"] - orig["hourgam"]) < 0.15
    # VG: determ/dvdx remain attributed (their blame does not collapse —
    # paper shows 15.7→14.8 / 8.3→8.2).
    assert vg["determ"] > 0.0
    assert vg["dvdx"] > 0.0

    rows = []
    for name in WATCH:
        rows.append(
            [name]
            + [f"{100*d[name]:.1f}%" for d in (orig, p1, vg, cenn)]
            + [f"{PAPER[name][0]:.1f}/{PAPER[name][1]:.1f}/"
               f"{PAPER[name][2]:.1f}/{PAPER[name][3]:.1f}"]
        )
    record(
        "table8_blame_shift",
        render_table(
            ["Variable", "Original", "P1", "VG", "CENN", "paper (O/P1/VG/CENN)"],
            rows,
            title="Table VIII — blame across optimizations",
            aligns=["l", "r", "r", "r", "r", "l"],
        ),
    )
