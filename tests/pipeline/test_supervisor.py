"""The supervised worker pool: state machine, recovery, degradation.

Three layers of assurance, cheapest first:

* **state machine** — a trivial pure task under a direct
  :class:`ShardSupervisor`, asserting the exact transition tape every
  fault class leaves behind (the inline backend runs the same machine
  the pool backends do, deterministically and without sleeping);
* **recovery equality** — the sharded post-mortem under injected
  transport schedules equals the serial result exactly, clean and on a
  degraded stream, including a hypothesis sweep over arbitrary seeded
  schedules with a sufficient retry budget;
* **graceful degradation** — a shard whose worker never comes back
  folds into ``<unknown>`` with ``worker-failed`` provenance, keeps the
  sample ledger balanced, surfaces in every view's footer, and trips
  the ``--fail-on-degraded-shards`` exit gate.
"""

from __future__ import annotations

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.artifact import artifact_bytes, canonicalize_timings, snapshot_from_result
from repro.blame.postmortem import REASON_WORKER_FAILED
from repro.errors import (
    ParallelError,
    PayloadCorruptError,
    WorkerCrashError,
    WorkerError,
    WorkerInitError,
    WorkerTimeoutError,
)
from repro.pipeline import (
    VIEWS,
    ShardSupervisor,
    SupervisorConfig,
    TaskState,
    attribute_stage,
    parallel_postmortem,
    postmortem_stage,
    render_stage,
)
from repro.pipeline.parallel import postmortem_cost
from repro.resilience.faults import FaultPlan
from repro.resilience.transport import directives_for
from repro.sampling import shard_stream_weighted
from repro.tooling.cli import main as cli_main
from repro.tooling.profiler import Profiler
from repro.views.degradation import degradation_lines

from .conftest import (
    FAULT_SPEC,
    NUM_THREADS,
    THRESHOLD,
    benchmark_setup,
    collected,
)


def _double(payload):
    return payload * 2


def supervise(spec, payloads=(0, 1, 2, 3), allow_degraded=False, **knobs):
    """A direct inline supervisor over ``_double`` — the unit harness."""
    plan = FaultPlan.parse(spec) if spec else None
    sup = ShardSupervisor(
        "inline", 4, state=(),
        config=SupervisorConfig(plan=plan, backoff=0.0, **knobs),
    )
    return sup.map(_double, list(payloads), allow_degraded=allow_degraded)


class TestTypedErrors:
    def test_worker_errors_are_parallel_errors(self):
        for cls in (WorkerCrashError, WorkerTimeoutError,
                    PayloadCorruptError, WorkerInitError):
            assert issubclass(cls, WorkerError)
            assert issubclass(cls, ParallelError)

    def test_worker_errors_survive_pickling(self):
        import pickle

        exc = pickle.loads(pickle.dumps(WorkerCrashError("boom")))
        assert isinstance(exc, WorkerCrashError) and "boom" in str(exc)

    def test_init_error_transience_flag(self):
        assert WorkerInitError("x", transient=True).transient
        assert not WorkerInitError("x").transient

    def test_unpicklable_state_raises_init_error(self):
        with pytest.raises(WorkerInitError, match="pickle"):
            ShardSupervisor("process", 2, state=(lambda: 1,))


class TestStateMachine:
    def test_clean_run_tape(self):
        out = supervise(None)
        assert out.results == [0, 2, 4, 6]
        for rec in out.records:
            assert rec.history == [
                TaskState.PENDING, TaskState.RUNNING, TaskState.DONE,
            ]
            assert rec.dispatches == 1 and rec.failures == 0
            assert rec.succeeded and rec.state.terminal
        assert out.stats.tasks == 4 and not out.stats.any_faults
        assert out.stats.summary() == "4 tasks, all clean"

    def test_crash_retries_once_then_wins(self):
        out = supervise("worker-crash=1")
        assert out.results == [0, 2, 4, 6]
        rec = out.records[1]
        assert rec.history == [
            TaskState.PENDING, TaskState.RUNNING, TaskState.RETRYING,
            TaskState.RUNNING, TaskState.DONE,
        ]
        assert rec.failures == 1 and rec.dispatches == 2
        assert any("WorkerCrashError" in e for e in rec.errors)
        assert out.stats.retries == 1 and out.stats.crashes == 1
        assert out.records[0].history[-1] is TaskState.DONE

    def test_dead_task_degrades_after_budget(self):
        out = supervise("worker-dead=0", allow_degraded=True, max_retries=2)
        rec = out.records[0]
        assert rec.state is TaskState.DEGRADED and rec.state.terminal
        assert not rec.succeeded
        assert rec.failures == 3  # max_retries + 1 attempts, all charged
        assert rec.history.count(TaskState.RUNNING) == 3
        assert rec.history[-1] is TaskState.DEGRADED
        assert out.results[0] is None and out.results[1:] == [2, 4, 6]
        assert out.degraded_indices == (0,)
        assert out.stats.degraded_tasks == (0,)
        assert out.stats.crashes == 3 and out.stats.retries == 2
        assert "degraded [0]" in out.stats.summary()

    def test_dead_task_reraises_when_degradation_not_allowed(self):
        with pytest.raises(WorkerCrashError, match="task 0"):
            supervise("worker-dead=0", allow_degraded=False)

    def test_zero_retries_is_one_strike(self):
        out = supervise("worker-crash=2", allow_degraded=True, max_retries=0)
        assert out.records[2].state is TaskState.DEGRADED
        assert out.records[2].failures == 1
        assert out.stats.retries == 0

    def test_hang_times_out_and_retries(self):
        out = supervise(
            "worker-hang=1,hang-seconds=60", timeout=0.05
        )
        rec = out.records[1]
        assert rec.state is TaskState.DONE and rec.failures == 1
        assert any("WorkerTimeoutError" in e for e in rec.errors)
        assert out.stats.timeouts == 1 and out.results == [0, 2, 4, 6]

    def test_hang_under_the_budget_is_not_a_fault(self):
        # 0-second stall with a generous timeout: completes normally.
        out = supervise("worker-hang=1,hang-seconds=0", timeout=5.0)
        assert out.results == [0, 2, 4, 6]
        assert out.stats.timeouts == 0 and not out.stats.any_faults

    def test_speculation_copy_wins(self):
        out = supervise(
            "worker-hang=2,hang-seconds=60", timeout=0.05, speculate=True
        )
        rec = out.records[2]
        assert rec.state is TaskState.SPECULATED
        assert rec.speculated and rec.succeeded
        assert rec.failures == 0  # the race is budget-free
        assert rec.dispatches == 2
        assert out.stats.speculated == 1 and out.stats.timeouts == 1
        assert out.results == [0, 2, 4, 6]
        assert "1 speculated" in out.stats.summary()

    def test_payload_corruption_detected_and_retried(self):
        out = supervise("payload-corrupt=3")
        rec = out.records[3]
        assert rec.state is TaskState.DONE and rec.failures == 1
        assert any("PayloadCorruptError" in e for e in rec.errors)
        assert out.stats.payload_corruptions == 1
        assert out.results == [0, 2, 4, 6]

    def test_kill_breaks_and_rebuilds_the_simulated_pool(self):
        out = supervise("worker-kill=0")
        assert out.stats.pool_rebuilds == 1 and out.stats.crashes == 1
        assert out.records[0].state is TaskState.DONE
        assert out.results == [0, 2, 4, 6]

    def test_injected_init_failures_are_transient(self):
        out = supervise("init-pickle-fail=2")
        assert out.stats.init_failures == 2
        assert out.results == [0, 2, 4, 6]

    def test_fault_stats_keys_are_flat_counters(self):
        out = supervise("worker-dead=1", allow_degraded=True, max_retries=1)
        fs = out.stats.as_fault_stats()
        assert fs["worker_tasks"] == 4
        assert fs["worker_crashes"] == 2 and fs["worker_retries"] == 1
        assert fs["degraded_shards"] == 1
        assert all(isinstance(v, int) for v in fs.values())


class TestPostmortemRecovery:
    """Supervised sharded post-mortem == serial, under every schedule."""

    # (spec, per-task timeout) — every schedule recovers within the
    # retry budget computed by needed_retries() below.
    SCHEDULES = [
        ("worker-crash=1", None),
        ("worker-crash=0;2,payload-corrupt=1", None),
        ("worker-kill=2", None),
        ("worker-hang=1,hang-seconds=60", 0.05),
        ("init-pickle-fail=2", None),
        ("worker-crash-rate=0.3,seed=5", None),
        ("worker-crash-rate=0.2,worker-hang-rate=0.2,"
         "payload-corrupt-rate=0.2,seed=9", 0.05),
    ]

    @staticmethod
    def needed_retries(plan, n_tasks, cap=50):
        """Longest leading streak of faulted dispatches any task sees —
        the retry budget that guarantees eventual success."""
        worst = 0
        for i in range(n_tasks):
            d = 0
            while d < cap and directives_for(plan, i, d).any:
                d += 1
            assert d < cap, "schedule never recovers"
            worst = max(worst, d)
        return worst

    @pytest.mark.parametrize("faults", [None, FAULT_SPEC],
                             ids=["clean", "faulted"])
    @pytest.mark.parametrize("spec,timeout", SCHEDULES)
    def test_recovered_run_equals_serial(self, spec, timeout, faults):
        module, static, samples, wall = collected("minimd", faults)
        serial_pm = postmortem_stage(module, samples, options=static.options)
        serial_attr = attribute_stage(static, serial_pm)
        plan = FaultPlan.parse(spec)
        cfg = SupervisorConfig(
            plan=plan, timeout=timeout, backoff=0.0,
            max_retries=max(2, self.needed_retries(plan, 4)),
        )
        par = parallel_postmortem(
            module, static, samples, workers=4, backend="inline",
            wall_seconds=wall, supervision=cfg,
        )
        assert par.postmortem == serial_pm
        assert par.attribution == serial_attr
        assert par.degraded_shards == ()
        # A fully recovered run persists no supervision fault-stats:
        # the artifact stays byte-identical to the serial one.
        assert par.snapshot.fault_stats is None
        assert par.supervision is not None and par.supervision.tasks == 4

    def test_supervised_clean_path_matches_unsupervised(self):
        module, static, samples, wall = collected("minimd")
        unsup = parallel_postmortem(
            module, static, samples, workers=3, backend="inline",
            wall_seconds=wall,
        )
        sup = parallel_postmortem(
            module, static, samples, workers=3, backend="inline",
            wall_seconds=wall, supervision=SupervisorConfig(),
        )
        assert artifact_bytes(
            canonicalize_timings(sup.snapshot)
        ) == artifact_bytes(canonicalize_timings(unsup.snapshot))

    @settings(max_examples=20, deadline=None)
    @given(
        workers=st.integers(2, 6),
        faults=st.sampled_from([None, FAULT_SPEC]),
        crash=st.sets(st.integers(0, 5), max_size=3),
        kill=st.sets(st.integers(0, 5), max_size=2),
        hang=st.sets(st.integers(0, 5), max_size=2),
        corrupt=st.sets(st.integers(0, 5), max_size=2),
        crash_rate=st.sampled_from([0.0, 0.2, 0.5]),
        corrupt_rate=st.sampled_from([0.0, 0.25]),
        seed=st.integers(0, 2**16),
    )
    def test_any_recoverable_schedule_is_exact(
        self, workers, faults, crash, kill, hang, corrupt,
        crash_rate, corrupt_rate, seed,
    ):
        """The tentpole property: ANY seeded transport schedule, given a
        retry budget that covers its worst dispatch streak, yields the
        serial result exactly — clean stream and degraded stream."""
        plan = FaultPlan(
            seed=seed,
            worker_crash_tasks=tuple(sorted(crash)),
            worker_kill_tasks=tuple(sorted(kill)),
            worker_hang_tasks=tuple(sorted(hang)),
            payload_corrupt_tasks=tuple(sorted(corrupt)),
            worker_crash_rate=crash_rate,
            payload_corrupt_rate=corrupt_rate,
            hang_seconds=60.0,
        )
        streaks = []
        for i in range(workers):
            d = 0
            while d < 40 and directives_for(plan, i, d).any:
                d += 1
            streaks.append(d)
        assume(max(streaks) < 40)
        module, static, samples, wall = collected("minimd", faults)
        serial_pm = postmortem_stage(module, samples, options=static.options)
        par = parallel_postmortem(
            module, static, samples, workers=workers, backend="inline",
            wall_seconds=wall,
            supervision=SupervisorConfig(
                plan=plan, timeout=0.05, backoff=0.0,
                max_retries=max(streaks),
            ),
        )
        assert par.postmortem == serial_pm
        assert par.attribution == attribute_stage(static, serial_pm)
        assert par.degraded_shards == ()


class TestProcessBackendRecovery:
    """Real subprocess transport: SIGKILL, pool rebuild, speculation."""

    def test_sigkill_rebuilds_the_pool_and_recovers(self):
        module, static, samples, wall = collected("minimd", FAULT_SPEC)
        serial_pm = postmortem_stage(module, samples, options=static.options)
        par = parallel_postmortem(
            module, static, samples, workers=2, backend="process",
            wall_seconds=wall,
            supervision=SupervisorConfig(
                plan=FaultPlan.parse("worker-kill=0"), backoff=0.0,
            ),
        )
        assert par.postmortem == serial_pm
        assert par.supervision.pool_rebuilds >= 1
        assert par.supervision.crashes >= 1
        assert par.degraded_shards == ()

    def test_speculation_races_a_real_straggler(self):
        module, static, samples, wall = collected("minimd")
        serial_pm = postmortem_stage(module, samples, options=static.options)
        par = parallel_postmortem(
            module, static, samples, workers=2, backend="process",
            wall_seconds=wall,
            supervision=SupervisorConfig(
                plan=FaultPlan.parse("worker-hang=0,hang-seconds=20"),
                timeout=0.5, speculate=True, backoff=0.0,
            ),
        )
        assert par.postmortem == serial_pm
        assert par.supervision.timeouts >= 1
        # Either flight may win the race; the task never degrades.
        assert par.degraded_shards == ()


class TestGracefulDegradation:
    """A worker that never comes back: honest ledger, visible footer."""

    @pytest.fixture(scope="class")
    def degraded(self):
        module, static, samples, wall = collected("minimd")
        par = parallel_postmortem(
            module, static, samples, workers=4, backend="inline",
            wall_seconds=wall,
            supervision=SupervisorConfig(
                plan=FaultPlan.parse("worker-dead=1"),
                max_retries=1, backoff=0.0,
            ),
        )
        shards = shard_stream_weighted(samples, 4, postmortem_cost)
        return par, shards, samples, module, static

    def test_shard_folds_into_unknown_with_provenance(self, degraded):
        par, shards, samples, _, _ = degraded
        assert par.degraded_shards == (1,)
        busy = sum(1 for s in shards[1] if not s.is_idle)
        idle = len(shards[1]) - busy
        report = par.snapshot.report
        assert report.unknown_by_reason[REASON_WORKER_FAILED] == busy
        assert busy > 0
        # Idle samples need no worker: they are classified parent-side.
        assert par.postmortem.n_runtime >= idle

    def test_sample_ledger_is_conserved(self, degraded):
        par, _, samples, module, static = degraded
        serial_pm = postmortem_stage(module, samples, options=static.options)
        assert par.postmortem.n_raw == serial_pm.n_raw == len(samples)

    def test_unknown_bucket_carries_the_blame(self, degraded):
        par, _, _, _, _ = degraded
        report = par.snapshot.report
        rows = {r.name: r for r in report.rows}
        assert "<unknown>" in rows
        # The bucket holds at least the failed shard's busy samples
        # (idle ones are runtime, not blame).
        assert (
            rows["<unknown>"].samples
            >= report.unknown_by_reason[REASON_WORKER_FAILED]
        )
        assert rows["<unknown>"].blame > 0.0

    def test_every_view_shows_the_worker_failed_footer(self, degraded):
        par, _, _, _, _ = degraded
        lines = degradation_lines(par.snapshot.report)
        assert any("worker failed" in ln for ln in lines)
        # Every view that renders degradation footers shows the event
        # (the code-centric view never prints footers, by design).
        for view in ("data", "hybrid", "html"):
            assert "worker failed" in render_stage(par.snapshot, view)

    def test_fault_stats_persist_in_the_artifact(self, degraded):
        par, shards, _, _, _ = degraded
        fs = par.snapshot.fault_stats
        assert fs["degraded_shards"] == 1
        assert fs["degraded_shard_samples"] == len(shards[1])
        assert fs["worker_crashes"] == 2  # max_retries=1 -> two attempts
        assert par.supervision.degraded_tasks == (1,)

    def test_degraded_artifact_roundtrips(self, degraded, tmp_path):
        from repro.artifact import read_artifact, write_artifact

        par, _, _, _, _ = degraded
        path = tmp_path / "degraded.cbp"
        write_artifact(str(path), par.snapshot)
        back = read_artifact(str(path))
        assert back.fault_stats["degraded_shards"] == 1
        assert (
            back.report.unknown_by_reason[REASON_WORKER_FAILED]
            == par.snapshot.report.unknown_by_reason[REASON_WORKER_FAILED]
        )
        for view in ("data", "code", "hybrid"):
            assert render_stage(back, view) == render_stage(
                par.snapshot, view
            )


class TestProfilerByteIdentity:
    """Cross-run: supervised parallel Profiler vs serial, byte for byte."""

    @pytest.mark.parametrize("spec", [
        "worker-crash=1,payload-corrupt=2,seed=42",
        FAULT_SPEC + ",worker-crash=0,worker-kill=1",
    ], ids=["transport-only", "stream-and-transport"])
    def test_artifact_and_views_identical(self, spec):
        source, filename, config = benchmark_setup("minimd")
        serial = Profiler(
            source, filename=filename, config=config,
            num_threads=NUM_THREADS, threshold=THRESHOLD, faults=spec,
        ).profile()
        par = Profiler(
            source, filename=filename, config=config,
            num_threads=NUM_THREADS, threshold=THRESHOLD, faults=spec,
            workers=3, parallel_backend="inline", worker_retries=2,
        ).profile()
        s_snap = snapshot_from_result(serial, canonical_timings=True)
        p_snap = canonicalize_timings(par.parallel.snapshot)
        assert artifact_bytes(p_snap) == artifact_bytes(s_snap)
        for view in VIEWS:
            assert render_stage(p_snap, view) == render_stage(s_snap, view)

    def test_worker_retries_validated(self):
        source, filename, config = benchmark_setup("minimd")
        with pytest.raises(ParallelError, match="worker_retries"):
            Profiler(source, filename=filename, config=config,
                     workers=2, worker_retries=-1)


class TestCLI:
    def _run(self, tmp_path, *extra):
        source, _, config = benchmark_setup("minimd")
        src = tmp_path / "minimd.chpl"
        src.write_text(source)
        return cli_main(
            [str(src), "--threads", str(NUM_THREADS),
             "--threshold", str(THRESHOLD),
             "--config"] + [f"{k}={v}" for k, v in config.items()]
            + ["--view", "data", "-o", str(tmp_path / "run.cbp")]
            + list(extra)
        )

    def test_degraded_shard_gate_exits_4(self, tmp_path, capsys):
        rc = self._run(
            tmp_path,
            "--workers", "4", "--parallel-backend", "inline",
            "--inject-faults", "worker-dead=1",
            "--fail-on-degraded-shards",
        )
        captured = capsys.readouterr()
        assert rc == 4
        assert "degraded after exhausting worker retries" in captured.err
        assert "[supervision:" in captured.err
        assert "worker failed" in captured.out

    def test_degraded_run_without_gate_exits_0(self, tmp_path, capsys):
        rc = self._run(
            tmp_path,
            "--workers", "4", "--parallel-backend", "inline",
            "--inject-faults", "worker-dead=1",
        )
        captured = capsys.readouterr()
        assert rc == 0
        assert "shard(s) degraded" in captured.err

    def test_recovered_run_exits_0_under_the_gate(self, tmp_path, capsys):
        rc = self._run(
            tmp_path,
            "--workers", "4", "--parallel-backend", "inline",
            "--inject-faults", "worker-crash=1",
            "--fail-on-degraded-shards",
        )
        capsys.readouterr()
        assert rc == 0

    @pytest.mark.parametrize("extra", [
        ("--worker-retries", "-1"),
        ("--worker-timeout", "0"),
        ("--worker-timeout", "5"),                      # needs workers > 1
        ("--workers", "2", "--parallel-backend", "inline", "--speculate"),
        ("--fail-on-degraded-shards",),                 # needs workers > 1
    ])
    def test_knob_validation_rejected(self, tmp_path, capsys, extra):
        with pytest.raises(SystemExit):
            self._run(tmp_path, *extra)
