"""Cross-locale aggregation (paper step 4 / future-work hook).

The paper runs single-locale experiments but describes step 3 as
"embarrassingly parallel for multi-locale cases" with a final
aggregation across nodes.  This module implements that merge so the
pipeline is plural-ready: per-locale :class:`BlameReport`s combine by
summing per-(context, variable) sample counts against the summed
denominator.
"""

from __future__ import annotations

from collections import defaultdict

from .report import BlameReport, BlameRow, RunStats


def merge_reports(reports: list[BlameReport], program: str | None = None) -> BlameReport:
    """Merges per-locale reports into a whole-program report."""
    if not reports:
        raise ValueError("no reports to merge")
    if len(reports) == 1:
        return reports[0]

    samples: dict[tuple[str, str], int] = defaultdict(int)
    meta: dict[tuple[str, str], BlameRow] = {}
    total_user = 0
    stats = RunStats()
    for rep in reports:
        total_user += rep.stats.user_samples
        stats.total_raw_samples += rep.stats.total_raw_samples
        stats.user_samples += rep.stats.user_samples
        stats.runtime_samples += rep.stats.runtime_samples
        stats.wall_seconds = max(stats.wall_seconds, rep.stats.wall_seconds)
        stats.dataset_bytes += rep.stats.dataset_bytes
        stats.stackwalk_cycles += rep.stats.stackwalk_cycles
        stats.postmortem_seconds += rep.stats.postmortem_seconds
        for row in rep.rows:
            key = (row.context, row.name)
            samples[key] += row.samples
            meta.setdefault(key, row)

    rows = [
        BlameRow(
            name=meta[key].name,
            type_str=meta[key].type_str,
            blame=(n / total_user if total_user else 0.0),
            context=meta[key].context,
            samples=n,
            is_path=meta[key].is_path,
        )
        for key, n in samples.items()
    ]
    rows.sort(key=lambda r: (-r.samples, r.context, r.name))
    return BlameReport(
        program=program or reports[0].program,
        rows=rows,
        stats=stats,
        locale_id=-1,
    )
