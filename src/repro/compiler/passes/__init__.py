"""Optimization pass pipeline — the ``--fast`` analogue.

``run_fast_pipeline`` applies the passes the paper's footnote blames for
breaking the IR↔source mapping: inlining (functions disappear /
rename), constant folding + copy propagation, dead-code elimination
(variables optimized out), and CFG simplification.  Besides speeding
execution, the pipeline *strips debug bindings* from what it touches —
reproducing why the tool profiles without ``--fast``.
"""

from .pass_manager import PassManager, run_fast_pipeline

__all__ = ["PassManager", "run_fast_pipeline"]
