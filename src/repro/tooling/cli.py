"""Command-line entry point: profile a mini-Chapel source file.

Usage::

    python -m repro.tooling.cli program.chpl [--threads N] [--threshold P]
        [--fast] [--view data|code|hybrid|all] [--config name=value ...]

Prints the requested view(s) of the blame profile — the textual
equivalent of the paper's GUI (Fig. 3).
"""

from __future__ import annotations

import argparse
import sys

from ..views.code_centric import render_code_centric
from ..views.data_centric import render_data_centric
from ..views.hybrid import render_hybrid
from .profiler import Profiler


def _parse_config(pairs: list[str]) -> dict[str, object]:
    out: dict[str, object] = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"bad --config entry {pair!r} (want name=value)")
        name, raw = pair.split("=", 1)
        value: object
        try:
            value = int(raw)
        except ValueError:
            try:
                value = float(raw)
            except ValueError:
                value = {"true": True, "false": False}.get(raw.lower(), raw)
        out[name] = value
    return out


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="repro-profile",
        description="Data-centric (variable blame) profiler for mini-Chapel",
    )
    ap.add_argument("source", help="mini-Chapel source file")
    ap.add_argument("--threads", type=int, default=12, help="worker threads")
    ap.add_argument("--threshold", type=int, default=20011, help="PMU overflow threshold")
    ap.add_argument("--fast", action="store_true", help="compile with --fast pipeline")
    ap.add_argument(
        "--view",
        choices=["data", "code", "hybrid", "all"],
        default="data",
        help="which window to print",
    )
    ap.add_argument("--top", type=int, default=20, help="rows to display")
    ap.add_argument(
        "--config", nargs="*", default=[], help="config overrides: name=value"
    )
    ap.add_argument(
        "--show-output", action="store_true", help="echo program writeln output"
    )
    ap.add_argument(
        "--save-samples",
        metavar="PATH",
        help="write the raw sample dataset (JSONL) for offline analysis "
        "with python -m repro.tooling.analyze",
    )
    ap.add_argument(
        "--html",
        metavar="PATH",
        help="also write a self-contained HTML report (the GUI analogue)",
    )
    args = ap.parse_args(argv)

    with open(args.source) as f:
        source = f.read()

    if args.save_samples:
        # Deterministic ids so the dataset is re-analyzable offline.
        from ..compiler.lower import compile_source

        program = compile_source(source, args.source, fresh_ids=True)
    else:
        program = source

    profiler = Profiler(
        program,
        filename=args.source,
        config=_parse_config(args.config),
        num_threads=args.threads,
        threshold=args.threshold,
        fast=args.fast,
    )
    result = profiler.profile()

    if args.save_samples:
        from ..sampling.dataset import DatasetHeader, save_samples, source_digest

        header = DatasetHeader(
            program=args.source,
            source_sha256=source_digest(source),
            threshold=args.threshold,
            num_threads=args.threads,
        )
        save_samples(args.save_samples, header, result.monitor.samples)
        print(f"[raw samples saved to {args.save_samples}]")

    if args.show_output:
        for line in result.run_result.output:
            print(line)
        print()

    if args.view in ("data", "all"):
        print(render_data_centric(result.report, top=args.top))
        print()
    if args.view in ("code", "all"):
        print(render_code_centric(result.module, result.postmortem, top=args.top))
        print()
    if args.view in ("hybrid", "all"):
        print(render_hybrid(result.report))
        print()
    if args.html:
        from ..views.html import write_html_report

        write_html_report(args.html, result, top=args.top)
        print(f"[HTML report written to {args.html}]")
    print(
        f"[run: {result.run_result.wall_seconds:.4f}s simulated, "
        f"{result.monitor.n_samples} samples "
        f"({result.postmortem.n_user} user)]"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
