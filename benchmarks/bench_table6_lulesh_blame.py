"""E7 — Paper Table VI: LULESH variables and their blame.

Paper: hgfx/y/z ≈ 29–31 % (CalcFBHourglassForceForElems), shx/y/z and
hx/y/z ≈ 26–28 % (CalcElemFBHourglassForce), hourgam 25 %, determ
15.7 % (CalcVolumeForceForElems), b_x/y/z ≈ 9–10 %
(IntegrateStressForElems), dvdx 8.3 %, hourmodx/y/z ≈ 5–6 %.
The sum exceeds 100 % (inclusive blame).
"""

from conftest import record_result, run_once

from repro.bench import harness
from repro.views.tables import render_table

PAPER = {
    "hgfx": (0.295, "CalcFBHourglassForceForElems"),
    "hgfy": (0.292, "CalcFBHourglassForceForElems"),
    "hgfz": (0.308, "CalcFBHourglassForceForElems"),
    "shx": (0.269, "CalcElemFBHourglassForce"),
    "hx": (0.266, "CalcElemFBHourglassForce"),
    "hourgam": (0.250, "CalcFBHourglassForceForElems"),
    "determ": (0.157, "CalcVolumeForceForElems"),
    "b_x": (0.097, "IntegrateStressForElems"),
    "dvdx": (0.083, "CalcHourglassControlForElems"),
    "hourmodx": (0.058, "CalcFBHourglassForceForElems"),
}


def profile():
    return harness.lulesh_profile()


def test_table6_lulesh_blame(benchmark, record):
    res = run_once(benchmark, profile)
    rep = res.report
    m = {name: rep.blame_of(name) for name in PAPER}

    # Top tier: the hourglass-force family.
    assert m["hgfx"] > 0.15 and m["hgfy"] > 0.15 and m["hgfz"] > 0.15
    assert m["hourgam"] > 0.15
    # hourmod* small but present (paper ≈ 5 %).
    assert 0.005 < m["hourmodx"] < 0.15
    # The per-element temporaries and arrays in their bands.
    assert 0.02 < m["b_x"] < 0.3
    assert 0.01 < m["dvdx"] < 0.25
    assert 0.01 < m["determ"] < 0.3
    assert m["shx"] > 0.02 and m["hx"] > 0.01
    # Ordering: hgf family above hourmod family (paper's top vs bottom).
    assert m["hgfx"] > m["hourmodx"]
    # Inclusive semantics: totals exceed 100 %.
    assert sum(r.blame for r in rep.rows) > 1.0

    # Contexts match the paper's Context column.
    for name, (_, ctx) in PAPER.items():
        row = rep.row_for(name)
        assert row is not None, name
        assert row.context == ctx, (name, row.context)

    rows = [
        [n, rep.row_for(n).type_str, f"{100*m[n]:.1f}%",
         f"{100*PAPER[n][0]:.1f}%", PAPER[n][1]]
        for n in PAPER
    ]
    record(
        "table6_lulesh_blame",
        render_table(
            ["Name", "Type", "Blame (measured)", "Blame (paper)", "Context"],
            rows,
            title=f"Table VI — LULESH blame ({rep.stats.user_samples} samples)",
            aligns=["l", "l", "r", "r", "l"],
        ),
    )
