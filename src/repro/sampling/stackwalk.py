"""Address-to-source resolution for sampled stacks.

Post-mortem step 3's first task (paper §IV.C): convert raw addresses
(instruction ids) into module / file / line / function records via the
debug info — the DyninstAPI lookup in the real tool.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import DebugInfoError
from ..ir.module import Module


@dataclass(frozen=True)
class ResolvedFrame:
    """One stack entry after address resolution."""

    function: str  # linkage name (may be an outlined forall_fn_chplN)
    source_function: str  # user-facing name (outlined frames resolved)
    filename: str
    line: int
    iid: int
    is_runtime: bool  # synthetic runtime frames (__sched_yield, ...)

    def __str__(self) -> str:
        return f"{self.source_function} ({self.filename}:{self.line})"


class StackResolver:
    """Resolves (function, iid) stack entries against a module."""

    def __init__(self, module: Module) -> None:
        self.module = module
        self._index = module.instruction_index()

    def resolve_entry(self, func: str, iid: int, strict: bool = False) -> ResolvedFrame:
        """Resolves one frame; with ``strict=True`` an address that has
        no debug info raises :class:`DebugInfoError` instead of
        degrading to an ``<unknown>`` location."""
        if iid < 0:
            return ResolvedFrame(
                function=func,
                source_function=func,
                filename="<runtime>",
                line=0,
                iid=iid,
                is_runtime=True,
            )
        hit = self._index.get(iid)
        if hit is None:
            if strict:
                raise DebugInfoError(
                    f"no debug info for address {iid} (frame {func!r})"
                )
            return ResolvedFrame(func, func, "<unknown>", 0, iid, True)
        f, instr = hit
        return ResolvedFrame(
            function=f.name,
            source_function=f.source_name,
            filename=instr.loc.filename,
            line=instr.loc.line,
            iid=iid,
            is_runtime=f.is_artificial,
        )

    def identify(self, iid: int) -> str | None:
        """Address-range lookup: the linkage name of the function whose
        range contains ``iid``, or None.  This is the ELF *symbol
        table* path — it keeps working on modules whose debug info was
        stripped, which is why tolerant post-mortem uses it to
        re-identify interior frames that resolve to raw addresses."""
        if iid < 0:
            return None
        hit = self._index.get(iid)
        return hit[0].name if hit is not None else None

    def resolve_stack(
        self, stack: tuple[tuple[str, int], ...]
    ) -> list[ResolvedFrame]:
        return [self.resolve_entry(f, iid) for f, iid in stack]
