"""Versioned, self-describing profile artifact (``.cbp``).

The artifact is the contract between collection and presentation in the
staged pipeline (compile → static blame analysis → collect →
post-mortem → aggregate → render): ``repro profile`` writes one,
``repro view`` / ``merge`` / ``diff`` consume them, and every view
rendered from a loaded artifact is byte-identical to the view rendered
live from the run that produced it.

* :mod:`~repro.artifact.model` — the in-memory form
  (:class:`ProfileSnapshot`): report + consolidated instances + the
  function catalog the views need, detached from the interpreter.
* :mod:`~repro.artifact.format` — on-disk layout: CRC-framed records
  (shared with the sample journal), interned string/stack tables, and
  columnar instance/row sections.  Truncation and bit flips raise the
  typed :class:`~repro.errors.ArtifactError`.
* :mod:`~repro.artifact.merge` — cross-locale / cross-run merging
  (what :mod:`repro.tooling.multilocale` aggregates with).
* :mod:`~repro.artifact.diff` — blame-shift tables between two
  artifacts (the paper's Table VIII workflow).
"""

from .diff import DiffRow, diff_reports, diff_snapshots, render_blame_diff
from .format import (
    CBP_MAGIC,
    CBP_VERSION,
    artifact_bytes,
    read_artifact,
    write_artifact,
)
from .merge import merge_snapshots
from .model import (
    ArtifactMeta,
    CatalogFunction,
    FunctionCatalog,
    ProfileSnapshot,
    SnapshotPostmortem,
    canonicalize_timings,
    snapshot_from_result,
)

__all__ = [
    "ArtifactMeta",
    "CBP_MAGIC",
    "CBP_VERSION",
    "CatalogFunction",
    "DiffRow",
    "FunctionCatalog",
    "ProfileSnapshot",
    "SnapshotPostmortem",
    "artifact_bytes",
    "canonicalize_timings",
    "diff_reports",
    "diff_snapshots",
    "merge_snapshots",
    "read_artifact",
    "render_blame_diff",
    "snapshot_from_result",
    "write_artifact",
]
