"""Post-mortem sample processing (paper §IV.C, steps one and two).

Converts raw monitor samples into consolidated "instances": resolves
addresses to source context, glues worker-task post-spawn stacks to the
recorded pre-spawn stacks via the spawn tag, and trims synthetic runtime
frames — producing "a complete, clean call path of the application w/o
libraries for each sample".
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.module import Module
from ..sampling.records import RawSample
from ..sampling.stackwalk import StackResolver


@dataclass(frozen=True)
class Instance:
    """One consolidated sample: the paper's per-sample abstraction
    holding "module name, file name, line number and stack order
    number" for every frame."""

    index: int
    thread_id: int
    #: Leaf-first (function linkage name, iid); spans worker → spawn
    #: site → ... → main after gluing.
    frames: tuple[tuple[str, int], ...]
    #: Resolved (file, line) per frame.
    locations: tuple[tuple[str, int], ...]
    was_glued: bool
    spawn_tag: int | None


@dataclass
class PostmortemResult:
    """Outcome of post-mortem processing."""

    instances: list[Instance]
    #: Idle / pure-runtime samples (kept for the code-centric view).
    runtime_samples: list[RawSample]
    n_raw: int

    @property
    def n_user(self) -> int:
        return len(self.instances)


def _is_user_frame(module: Module, func: str) -> bool:
    # Synthetic runtime frames (__sched_yield) have no module function.
    # Module init counts as user context: Chapel module-level variable
    # initialization (MiniMD's Pos/Bins) runs there and its samples must
    # be attributable.
    return module.get_function(func) is not None


def process_samples(
    module: Module, samples: list[RawSample], options: object | None = None
) -> PostmortemResult:
    """Runs stack consolidation over a raw sample stream."""
    from .options import FULL

    options = options or FULL
    resolver = StackResolver(module)
    instances: list[Instance] = []
    runtime: list[RawSample] = []

    for s in samples:
        if s.is_idle:
            runtime.append(s)
            continue
        frames = list(s.stack)
        glued = False
        if options.stack_gluing and s.spawn_tag is not None and s.pre_spawn_stack:
            # Glue post-spawn to pre-spawn. The pre-spawn leaf is the
            # SpawnJoin site in the spawning function — it plays the
            # role of the call site for the outlined frame.
            frames = frames + list(s.pre_spawn_stack)
            glued = True

        # Trim synthetic/artificial frames that carry no user context
        # (e.g. a sample landing in module init keeps that frame only if
        # nothing else remains).
        user_frames = [f for f in frames if _is_user_frame(module, f[0])]
        if not user_frames:
            # Paper: "when encountering samples of which the post-spawn
            # stack trace has no stack frames from the user code, we
            # trace back to its pre-spawn stack" — already glued above;
            # whatever still has no user frame is runtime-only.
            runtime.append(s)
            continue

        resolved = resolver.resolve_stack(tuple(user_frames))
        instances.append(
            Instance(
                index=s.index,
                thread_id=s.thread_id,
                frames=tuple(user_frames),
                locations=tuple((r.filename, r.line) for r in resolved),
                was_glued=glued,
                spawn_tag=s.spawn_tag,
            )
        )

    return PostmortemResult(
        instances=instances, runtime_samples=runtime, n_raw=len(samples)
    )
