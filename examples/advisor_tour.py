"""Tour of the blame-guided static advisor (paper §V workflow, but
static-first):

1. run the optimization-advisor passes over the original MiniMD source
   and print the findings — the paper's hand optimizations, recovered
   without running the program;
2. profile the same program and re-rank the findings by measured
   variable blame, so the advice that matters most comes first;
3. apply the optimized variant and show the findings disappear;
4. demo the forall race detector on a seeded racy loop.

Run:  python examples/advisor_tour.py
"""

from repro.analysis import analyze_module, rank_findings, render_findings
from repro.bench.programs import minimd
from repro.compiler.lower import compile_source
from repro.tooling.profiler import Profiler

RACY = """
var total: int;
proc main() {
  forall i in 1..100 {
    total = total + i;
  }
  writeln(total);
}
"""


def banner(title: str) -> None:
    print("=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    banner("1) Static advice on the original MiniMD source")
    original = minimd.build_source(optimized=False)
    module = compile_source(original, "minimd.chpl")
    findings = analyze_module(module)
    print(render_findings(findings, title="minimd.chpl (original)"))

    print()
    banner("2) Blame-guided ranking: measured hotness reorders the advice")
    result = Profiler(
        original, filename="minimd.chpl", num_threads=4, threshold=9973
    ).profile()
    ranked = rank_findings(findings, result.report)
    for f in ranked[:6]:
        pct = f"{f.blame_percent:5.1f}% blame" if f.blame is not None else "unmeasured"
        print(f"  {pct:14s} [{f.rule}] {f.where}  vars={','.join(f.variables)}")

    print()
    banner("3) After the paper's optimizations the advice disappears")
    optimized = compile_source(minimd.build_source(optimized=True), "minimd.chpl")
    print(render_findings(analyze_module(optimized), title="minimd.chpl (optimized)"))

    print()
    banner("4) The race detector flags an unprotected forall reduction")
    races = analyze_module(compile_source(RACY, "racy.chpl"), passes=["forall-race"])
    print(render_findings(races, title="racy.chpl"))


if __name__ == "__main__":
    main()
