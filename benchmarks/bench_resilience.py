"""R1 — Blame-rank stability under injected telemetry faults.

For each paper workload (MiniMD, CLOMP, LULESH) the bench profiles a
clean run, then re-profiles under each fault class at a sweep of rates
and scores the degraded blame ranking against the clean one:

* ``top5_overlap``  — fraction of the clean top-5 variables that stay
  in the degraded top-5 (the "did the hotlist change" number);
* ``kendall_tau``   — pairwise rank agreement over shared rows;
* ``unknown_rate`` / ``quarantine_rate`` — how much telemetry ended up
  explicitly unattributable rather than silently misattributed;
* ``recovered``     — call paths repaired by suffix-match / symbol-
  table recovery.

Everything is deterministic (fixed injection seed), so the recorded
numbers are exactly reproducible.  Results are written to
``BENCH_resilience.json`` at the repository root.

Run directly (``python benchmarks/bench_resilience.py [--quick]``) or
via pytest (``pytest -m resilience``); the pytest smoke asserts the
headline robustness claim — at a 10 % fault rate every class keeps
top-5 overlap ≥ 0.8 on every workload.
"""

from __future__ import annotations

import json
import os
import sys

import pytest

from repro.bench.programs import clomp, lulesh, minimd
from repro.resilience import FAULT_CLASSES, FaultPlan, compare_reports
from repro.tooling.profiler import Profiler

NUM_THREADS = 12
THRESHOLD = 4999
SEED = 7
RESULT_PATH = os.path.join(
    os.path.dirname(__file__), "..", "BENCH_resilience.json"
)

WORKLOADS = {
    "minimd": ("minimd.chpl", lambda: minimd.build_source(), minimd.config_for),
    "clomp": ("clomp.chpl", lambda: clomp.build_source(), clomp.config_for),
    "lulesh": ("lulesh.chpl", lambda: lulesh.build_source(), lulesh.config_for),
}

RATES = (0.05, 0.10, 0.20, 0.30)
QUICK_RATES = (0.10,)


def _profile(source, filename, config, faults=None):
    return Profiler(
        source,
        filename=filename,
        config=config,
        num_threads=NUM_THREADS,
        threshold=THRESHOLD,
        faults=faults,
    ).profile()


def sweep_workload(name: str, rates=RATES) -> dict:
    """Clean profile once, then every (fault, rate) cell against it."""
    filename, build, config_for = WORKLOADS[name]
    source = build()
    config = config_for()
    clean = _profile(source, filename, config)
    points = []
    for fault in FAULT_CLASSES:
        for rate in rates:
            plan = FaultPlan(seed=SEED).with_rate(fault, rate)
            degraded = _profile(source, filename, config, faults=plan)
            points.append(
                compare_reports(fault, rate, clean.report, degraded.report)
            )
    return {
        "clean_user_samples": clean.report.stats.user_samples,
        "points": [p.as_dict() for p in points],
    }


def run_resilience_bench(quick: bool = False) -> dict:
    rates = QUICK_RATES if quick else RATES
    per_workload = {name: sweep_workload(name, rates) for name in WORKLOADS}
    results = {
        "config": {
            "num_threads": NUM_THREADS,
            "threshold": THRESHOLD,
            "seed": SEED,
            "rates": list(rates),
            "quick": quick,
        },
        "workloads": per_workload,
    }
    with open(os.path.abspath(RESULT_PATH), "w") as f:
        json.dump(results, f, indent=2)
        f.write("\n")
    return results


def render(results: dict) -> str:
    lines = ["blame-rank stability under injected faults"]
    for name, data in results["workloads"].items():
        lines.append(
            f"  {name} ({data['clean_user_samples']} clean user samples)"
        )
        for p in data["points"]:
            lines.append(
                f"    {p['fault']:9s} @{p['rate']:.2f}  "
                f"top5={p['top5_overlap']:.2f}  tau={p['kendall_tau']:+.2f}  "
                f"unknown={p['unknown_rate']:.3f}  "
                f"quarantine={p['quarantine_rate']:.3f}  "
                f"recovered={p['recovered']}"
            )
    return "\n".join(lines)


@pytest.mark.resilience
def test_rank_stability_at_ten_percent():
    """Headline robustness claim: every fault class at a 10 % rate
    completes on every workload and keeps the clean top-5 ranking
    (overlap ≥ 0.8); quarantine and unknown accounting never hides
    samples (rates are finite, counts non-negative)."""
    results = run_resilience_bench(quick=True)
    print("\n" + render(results))
    for name, data in results["workloads"].items():
        assert data["clean_user_samples"] > 0
        seen = set()
        for p in data["points"]:
            seen.add(p["fault"])
            assert p["completed"], f"{name}/{p['fault']} did not complete"
            if p["rate"] == 0.10:
                assert p["top5_overlap"] >= 0.8, (
                    f"{name}/{p['fault']}@0.10 top-5 overlap "
                    f"{p['top5_overlap']:.2f} < 0.8"
                )
            assert 0.0 <= p["unknown_rate"] <= 1.0
            assert 0.0 <= p["quarantine_rate"] <= 1.0
            assert p["recovered"] >= 0
        assert seen == set(FAULT_CLASSES)


if __name__ == "__main__":
    quick = "--quick" in sys.argv[1:]
    print(render(run_resilience_bench(quick=quick)))
