"""Interprocedural locality classification of array element accesses.

Distributed Chapel programs block-distribute arrays and forall loops
across locales, so whether ``A[expr]`` is a cheap local access or a
fine-grained remote get depends on *where the index comes from*.  This
pass classifies every ``elemaddr`` in the module:

* **LOCAL** — provably local: a rank-1 identity access ``A[i]`` where
  ``i`` is the parallel iteration index and ``A`` is declared over the
  very domain the forall iterates.  Block distribution co-locates
  iteration ``i`` with element ``i``, so executing locale == owning
  locale at every trip.
* **INDIRECT** — the index is computed from array *contents*
  (``A[idx[i]]`` chains): the target locale is data-dependent and
  unknowable statically.  These are the accesses the communication
  advisor's batching/aggregation/hoisting passes act on.
* **REMOTE** — everything else, conservatively: the access may target
  another locale (computed indices, misaligned domains, rank > 1,
  serial code touching a distributed array).

The classification is *exact on the LOCAL side*: an access labeled
LOCAL must never execute with ``executing locale != owning locale``
under the simulated block distribution —
:class:`repro.runtime.locales.LocaleObserver` cross-checks this
dynamically, and the test suite gates on it.  REMOTE and INDIRECT are
over-approximations by design.

Index provenance is interprocedural: per-function formal bindings are
joined over every callsite (calls and spawn captures), to a small
fixpoint.  Two deliberate modelling rules keep the optimized (CSR /
inspector-executor) program shapes quiet:

* **Induction-cell terminal.**  A local cell with a self-increment
  store (``j = j + step`` — the shape counted ``for`` loops lower to)
  is a *direct* terminal even when its init value loads an array
  element: ``for j in rowPtr[i]..rowPtr[i+1]-1`` walks a contiguous
  index window, exactly what the CSR rewrites produce.  (A hand-rolled
  accumulator used as an index inherits this and reads as direct — a
  documented over-approximation toward fewer findings, never toward a
  false LOCAL.)
* **Sequence iterators are direct.**  ``IterValue`` over a range or
  domain yields consecutive positions regardless of how the bounds
  were computed; only iterating an *array* yields data.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..blame.dataflow import DataFlow, VarKey
from ..chapel.types import ArrayType
from ..ir import instructions as I
from ..ir.module import Function
from .context import AnalysisContext

#: Callsite-binding fixpoint bound (call chains deeper than this keep
#: their conservative classification; real programs converge in 1-2).
MAX_BINDING_ROUNDS = 5


class Locality(enum.Enum):
    """Static verdict for one array element access."""

    LOCAL = "local"
    REMOTE = "remote"
    INDIRECT = "indirect"


@dataclass(frozen=True)
class AccessClass:
    """Classification of one ``elemaddr`` instruction."""

    locality: Locality
    #: User-visible names of the accessed array (empty for temps).
    arrays: tuple[str, ...]
    #: For INDIRECT: arrays whose *contents* feed the index chain.
    index_sources: tuple[str, ...]
    reason: str


class LocalityAnalysis:
    """Module-wide access classification over the blame-pipeline roots.

    Build via ``AnalysisContext.locality()`` (memoized); results live
    in :attr:`accesses` keyed by the ``elemaddr``'s instruction id.
    """

    def __init__(self, ctx: AnalysisContext) -> None:
        self.ctx = ctx
        self.module = ctx.module
        #: (function name, formal name) → indirect source names bound
        #: at the callsites (empty/missing = direct or never called).
        self._formal_sources: dict[tuple[str, str], frozenset[str]] = {}
        #: outlined function name → [(caller, spawn instruction)]
        self._spawns: dict[str, list[tuple[Function, I.SpawnJoin]]] = {}
        #: array variable → root keys of its declaring domain.
        self._array_domains: dict[VarKey, frozenset[VarKey]] = {}
        #: function name → IterValue results over its chunk formals.
        self._chunk_values: dict[str, frozenset[I.Register]] = {}
        #: elemaddr iid → classification.
        self.accesses: dict[int, AccessClass] = {}
        self._build()

    # -- public helpers ----------------------------------------------------

    def classify(self, instr: I.ElemAddr) -> AccessClass | None:
        return self.accesses.get(instr.iid)

    def value_sources(self, fn: Function, value: I.Value) -> frozenset[str]:
        """Names of arrays whose contents taint ``value`` (empty =
        the value is direct: constants, loop indices, scalar math)."""
        return self._sources(fn, self.ctx.dataflow(fn), value, set())

    def index_chain(self, fn: Function, value: I.Value) -> frozenset[I.Instruction]:
        """The *dynamic points* of ``value``'s provenance: IterValue
        steps, stores chased through local cells, and nested element
        loads.  ``value`` is invariant w.r.t. a loop iff none of these
        sit inside the loop's blocks — the test the indirection-hoist
        pass applies."""
        out: set[I.Instruction] = set()
        self._chain(fn, self.ctx.dataflow(fn), value, set(), out)
        return frozenset(out)

    # -- construction ------------------------------------------------------

    def _build(self) -> None:
        for fn in self.module.functions.values():
            df = self.ctx.dataflow(fn)
            for instr in fn.instructions():
                if isinstance(instr, I.SpawnJoin):
                    self._spawns.setdefault(instr.outlined, []).append(
                        (fn, instr)
                    )
                elif isinstance(instr, I.Store):
                    self._note_array_domain(df, instr)
            self._chunk_values[fn.name] = self._chunk_value_regs(fn, df)
        self._bind_formals()
        for fn in self.module.functions.values():
            df = self.ctx.dataflow(fn)
            for instr in fn.instructions():
                if isinstance(instr, I.ElemAddr):
                    self.accesses[instr.iid] = self._classify(fn, df, instr)

    def _note_array_domain(self, df: DataFlow, store: I.Store) -> None:
        """Record which domain variable each array was declared over
        (the ``makearray`` → store pattern array declarations lower to)."""
        value = store.value
        if not (
            isinstance(value, I.Register)
            and isinstance(value.producer, I.MakeArray)
        ):
            return
        dom_keys = frozenset(
            k for k, p in df.roots_of(value.producer.domain) if not p
        )
        if not dom_keys:
            return  # anonymous domain: never provably aligned
        for key, path in df.roots_of(store.addr):
            if path:
                continue
            prev = self._array_domains.get(key)
            # A variable rebound to arrays over different domains loses
            # alignment (conservative: LOCAL needs a unique domain).
            self._array_domains[key] = (
                dom_keys if prev is None or prev == dom_keys else frozenset()
            )

    @staticmethod
    def _chunk_value_regs(fn: Function, df: DataFlow) -> frozenset[I.Register]:
        """Registers holding the task-private parallel iteration index
        (IterValue over a ``_chunk*`` formal — same discovery the race
        detector uses)."""
        states: set[I.Register] = set()
        for instr in fn.instructions():
            if isinstance(instr, I.IterInit) and any(
                key.kind == "formal" and str(key.ident).startswith("_chunk")
                for key, _ in df.roots_of(instr.iterable)
            ):
                if instr.result is not None:
                    states.add(instr.result)
        regs: set[I.Register] = set()
        for instr in fn.instructions():
            if (
                isinstance(instr, I.IterValue)
                and isinstance(instr.state, I.Register)
                and instr.state in states
                and instr.result is not None
            ):
                regs.add(instr.result)
        return frozenset(regs)

    def _bind_formals(self) -> None:
        """Joins each formal's indirect sources over every callsite
        (calls and spawn iterable/capture bindings), to a fixpoint."""
        pairs: list[tuple[Function, str, str, I.Value]] = []
        for fn in self.module.functions.values():
            for instr in fn.instructions():
                if isinstance(instr, I.Call) and not instr.is_builtin:
                    callee = self.module.get_function(instr.callee)
                    if callee is not None:
                        for p, a in zip(callee.params, instr.args):
                            pairs.append((fn, callee.name, p.name, a))
                elif isinstance(instr, I.SpawnJoin):
                    outlined = self.module.get_function(instr.outlined)
                    if outlined is not None:
                        for p, a in zip(outlined.params, instr.ops):
                            pairs.append((fn, outlined.name, p.name, a))
        for _ in range(MAX_BINDING_ROUNDS):
            changed = False
            for fn, callee_name, pname, actual in pairs:
                src = self._sources(fn, self.ctx.dataflow(fn), actual, set())
                key = (callee_name, pname)
                old = self._formal_sources.get(key, frozenset())
                new = old | src
                if new != old:
                    self._formal_sources[key] = new
                    changed = True
            if not changed:
                break

    # -- index provenance --------------------------------------------------

    def _sources(
        self,
        fn: Function,
        df: DataFlow,
        value: I.Value,
        visited: set[int],
    ) -> frozenset[str]:
        if not isinstance(value, I.Register):
            return frozenset()
        producer = value.producer
        if producer is None:
            # A formal's own register: the callsite binding decides.
            for p in fn.params:
                if p.register is value:
                    return self._formal_sources.get(
                        (fn.name, p.name), frozenset()
                    )
            return frozenset()
        if producer.iid in visited:
            return frozenset()
        visited.add(producer.iid)
        if isinstance(producer, I.Load):
            return self._load_sources(fn, df, producer, visited)
        if isinstance(producer, I.IterValue):
            return self._iter_sources(df, producer)
        if isinstance(producer, I.Call):
            return frozenset()  # opaque return value: direct terminal
        out: frozenset[str] = frozenset()
        for op in producer.operands():
            out |= self._sources(fn, df, op, visited)
        return out

    def _load_sources(
        self,
        fn: Function,
        df: DataFlow,
        load: I.Load,
        visited: set[int],
    ) -> frozenset[str]:
        addr = load.addr
        ap = addr.producer if isinstance(addr, I.Register) else None
        if isinstance(ap, I.ElemAddr):
            # Loading an array element: indirect by definition.
            return self._element_names(df, ap.base) or frozenset({"<array>"})
        if isinstance(ap, I.IterValue):
            # Loading through an element reference yielded by array
            # iteration — same thing.
            return self._iter_sources(df, ap) or frozenset({"<array>"})
        out: frozenset[str] = frozenset()
        for key, path in df.roots_of(addr):
            if path:
                continue
            if key.kind == "formal":
                out |= self._formal_sources.get(
                    (fn.name, str(key.ident)), frozenset()
                )
            elif key.kind == "local":
                if self._is_induction_cell(df, key):
                    continue  # contiguous counter walk: direct terminal
                for w in df.writes.get(key, ()):
                    if isinstance(w, I.Store):
                        out |= self._sources(fn, df, w.value, visited)
            # Global scalar reads are opaque direct terminals.
        return out

    def _iter_sources(self, df: DataFlow, itervalue: I.IterValue) -> frozenset[str]:
        state = itervalue.state
        init = state.producer if isinstance(state, I.Register) else None
        if not isinstance(init, I.IterInit):
            return frozenset()
        if isinstance(getattr(init.iterable, "type", None), ArrayType):
            return self._element_names(df, init.iterable) or frozenset(
                {"<array>"}
            )
        # Ranges/domains yield positions, not data.
        return frozenset()

    def _is_induction_cell(self, df: DataFlow, key: VarKey) -> bool:
        for w in df.writes.get(key, ()):
            if not isinstance(w, I.Store):
                continue
            v = w.value
            p = v.producer if isinstance(v, I.Register) else None
            if not (isinstance(p, I.BinOp) and p.op in ("+", "-")):
                continue
            for a, b in ((p.lhs, p.rhs), (p.rhs, p.lhs)):
                if self._is_load_of(df, a, key) and isinstance(b, I.Constant):
                    return True
        return False

    @staticmethod
    def _is_load_of(df: DataFlow, value: I.Value, key: VarKey) -> bool:
        return (
            isinstance(value, I.Register)
            and isinstance(value.producer, I.Load)
            and any(k == key for k, _ in df.roots_of(value.producer.addr))
        )

    @staticmethod
    def _element_names(df: DataFlow, base: I.Value) -> frozenset[str]:
        names: set[str] = set()
        for key, _path in df.roots_of(base):
            meta = df.var_meta.get(key)
            if meta is not None and not meta.is_temp:
                names.add(meta.name)
        return frozenset(names)

    # -- invariance chain (for the hoist pass) -----------------------------

    def _chain(
        self,
        fn: Function,
        df: DataFlow,
        value: I.Value,
        visited: set[int],
        out: set[I.Instruction],
    ) -> None:
        if not isinstance(value, I.Register):
            return
        p = value.producer
        if p is None or p.iid in visited:
            return
        visited.add(p.iid)
        if isinstance(p, I.IterValue):
            out.add(p)
            return
        if isinstance(p, I.Load):
            addr = p.addr
            ap = addr.producer if isinstance(addr, I.Register) else None
            if isinstance(ap, (I.ElemAddr, I.IterValue)):
                out.add(p)  # nested element load: conservative dynamic point
                return
            for key, path in df.roots_of(addr):
                if path:
                    out.add(p)  # sub-path load: conservative
                    return
            for key, _path in df.roots_of(addr):
                if key.kind in ("local", "formal"):
                    for w in df.writes.get(key, ()):
                        if isinstance(w, I.Store):
                            out.add(w)
                            self._chain(fn, df, w.value, visited, out)
                else:
                    out.add(p)  # global cell: writable elsewhere
            return
        for op in p.operands():
            self._chain(fn, df, op, visited, out)

    # -- classification ----------------------------------------------------

    def _classify(
        self, fn: Function, df: DataFlow, instr: I.ElemAddr
    ) -> AccessClass:
        arrays = tuple(sorted(self._element_names(df, instr.base)))
        sources: frozenset[str] = frozenset()
        for ix in instr.indices:
            sources |= self._sources(fn, df, ix, set())
        if sources:
            return AccessClass(
                Locality.INDIRECT,
                arrays,
                tuple(sorted(sources)),
                "index computed from array contents",
            )
        if self._provably_local(fn, df, instr):
            return AccessClass(
                Locality.LOCAL,
                arrays,
                (),
                "identity index over the iterated domain",
            )
        return AccessClass(
            Locality.REMOTE,
            arrays,
            (),
            "not provably co-located with the executing task",
        )

    def _provably_local(
        self, fn: Function, df: DataFlow, instr: I.ElemAddr
    ) -> bool:
        if fn.outlined_from is None or len(instr.indices) != 1:
            return False
        spawns = self._spawns.get(fn.name)
        if not spawns:
            return False
        if not self._is_identity_index(fn, df, instr.indices[0]):
            return False
        base_keys = {k for k, p in df.roots_of(instr.base) if not p}
        if len(base_keys) != 1:
            return False
        (bkey,) = tuple(base_keys)
        outlined = self.module.get_function(fn.name)
        for caller, spawn in spawns:
            # Alignment must hold at *every* spawn site of this body.
            if spawn.kind != "forall" or spawn.n_iterables != 1:
                return False
            caller_df = self.ctx.dataflow(caller)
            if bkey.kind == "global":
                arr_key: VarKey | None = bkey
            elif bkey.kind == "formal":
                actual = None
                for p, a in zip(outlined.params, spawn.ops):
                    if p.name == str(bkey.ident):
                        actual = a
                        break
                if actual is None:
                    return False
                arr_keys = {
                    k for k, p in caller_df.roots_of(actual) if not p
                }
                if len(arr_keys) != 1:
                    return False
                (arr_key,) = tuple(arr_keys)
            else:
                return False
            dom_keys = self._array_domains.get(arr_key, frozenset())
            it_keys = frozenset(
                k
                for k, p in caller_df.roots_of(spawn.iterables[0])
                if not p
            )
            if not dom_keys or dom_keys != it_keys:
                return False
        return True

    def _is_identity_index(
        self, fn: Function, df: DataFlow, value: I.Value
    ) -> bool:
        """True when ``value`` is (a reload of) the task's own parallel
        iteration index, untransformed."""
        chunk_regs = self._chunk_values.get(fn.name, frozenset())
        if not isinstance(value, I.Register):
            return False
        if value in chunk_regs:
            return True
        p = value.producer
        if not isinstance(p, I.Load):
            return False
        keys = {
            k
            for k, path in df.roots_of(p.addr)
            if not path and k.kind == "local"
        }
        if len(keys) != 1:
            return False
        (key,) = tuple(keys)
        stores = [w for w in df.writes.get(key, ()) if isinstance(w, I.Store)]
        return bool(stores) and all(
            isinstance(s.value, I.Register) and s.value in chunk_regs
            for s in stores
        )
