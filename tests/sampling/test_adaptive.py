"""Adaptive collection: the round scheduler, the stopping rule, and the
equivalences that make early stopping trustworthy — the adaptive report
must be exactly what a truncated full run would have produced, and a
run that never stops must be exactly the full run."""

from __future__ import annotations

import pytest

from repro.blame.attribution import BlameAttributor
from repro.blame.postmortem import process_samples
from repro.blame.report import build_rows
from repro.runtime.values import RuntimeError_
from repro.sampling.adaptive import (
    REASON_EXHAUSTED,
    REASON_SETTLED,
    AdaptiveConfig,
    AdaptiveTrail,
    StopSampling,
)
from repro.tooling.profiler import Profiler

#: Two arrays with distinct blame levels and an outer timestep loop —
#: enough phase structure to exercise the half-stream guard, small
#: enough to profile in well under a second.
SOURCE = """
config const n = 400;
config const iters = 20;
var A: [0..#n] real;
var B: [0..#n] real;
var total = 0.0;
for it in 0..#iters {
  forall i in 0..#n {
    A[i] = A[i] + i * 2.0;
  }
  forall i in 0..#n {
    B[i] = B[i] + A[i] * 0.5;
  }
  for i in 0..#n {
    total += A[i];
  }
}
"""

CFG = AdaptiveConfig(ci_width=0.05, round_samples=64)


def _profiler(**kw):
    return Profiler(
        SOURCE, filename="toy.chpl", num_threads=4, threshold=997, **kw
    )


@pytest.fixture(scope="module")
def full():
    return _profiler().profile()


@pytest.fixture(scope="module")
def adaptive():
    return _profiler().profile(adaptive=CFG)


class TestStoppingRule:
    def test_stops_early_and_saves_samples(self, full, adaptive):
        trail = adaptive.adaptive
        assert adaptive.stopped_early
        assert trail.stop_reason == REASON_SETTLED
        assert trail.samples_collected < full.monitor.n_samples
        assert trail.samples_collected == adaptive.monitor.n_samples

    def test_streak_and_min_rounds_honoured(self, adaptive):
        trail = adaptive.adaptive
        assert len(trail.rounds) >= max(CFG.min_rounds, CFG.stability_window)
        # The rule fires only after stability_window consecutive stable
        # checkpoints — the trail's tail must show exactly that.
        tail = trail.rounds[-CFG.stability_window :]
        assert all(r.stable for r in tail)
        assert not trail.rounds[-CFG.stability_window - 1].stable

    def test_rounds_follow_batch_size(self, adaptive):
        trail = adaptive.adaptive
        for i, r in enumerate(trail.rounds):
            assert r.round == i + 1
            assert r.n_raw == (i + 1) * CFG.round_samples

    def test_settled_checkpoint_is_tight_and_agreed(self, adaptive):
        last = adaptive.adaptive.rounds[-1]
        assert last.max_half_width <= CFG.ci_width
        assert last.top_overlap == 1.0
        assert last.half_overlap == 1.0
        assert last.tau >= CFG.tau_min
        assert last.half_tau >= CFG.tau_min
        assert last.intervals  # the evidence rides in the trail


class TestEquivalences:
    def test_report_equals_truncated_full_run(self, full, adaptive):
        """The adaptive report must be byte-for-byte what processing the
        full run's stream *prefix* (up to the stopping point) yields —
        early stopping only ever truncates, never distorts."""
        n = adaptive.adaptive.samples_collected
        prefix = full.monitor.samples[:n]
        pm = process_samples(full.module, prefix, tolerant=True)
        attr = BlameAttributor(full.static_info).attribute(pm.instances)
        rows = build_rows(attr, unknown_samples=pm.n_unknown)
        assert adaptive.report.rows == rows
        assert adaptive.postmortem.n_user == pm.n_user

    def test_incremental_merge_equals_single_pass(self, adaptive):
        """Per-round delta attribution merged across rounds must equal
        one attribution pass over every consolidated instance."""
        fresh = BlameAttributor(adaptive.static_info).attribute(
            adaptive.postmortem.instances
        )
        assert build_rows(adaptive.attribution) == build_rows(fresh)
        assert adaptive.attribution.total_samples == fresh.total_samples

    def test_exhausted_run_matches_plain_profile(self, full):
        """A rule that never fires (huge min_rounds) runs to the end of
        the stream and reports exactly what the plain path reports."""
        result = _profiler().profile(
            adaptive=AdaptiveConfig(
                ci_width=0.05, round_samples=64, min_rounds=10_000
            )
        )
        trail = result.adaptive
        assert not result.stopped_early
        assert trail.stop_reason == REASON_EXHAUSTED
        assert trail.samples_collected == full.monitor.n_samples
        # closing mode recorded the final partial round without raising.
        assert trail.rounds[-1].n_raw == full.monitor.n_samples
        assert result.report.rows == full.report.rows


class TestDegradation:
    def test_degraded_samples_widen_never_shrink(self, adaptive):
        """Fault-injected telemetry must delay the stop (wider
        intervals), never accelerate it."""
        faulty = _profiler(faults="drop=0.2,strip=0.2,seed=11").profile(
            adaptive=CFG
        )
        trail = faulty.adaptive
        assert any(r.degraded > 0 for r in trail.rounds)
        assert (
            trail.samples_collected >= adaptive.adaptive.samples_collected
        )
        # Same round, degraded evidence: the interval can only be wider.
        for clean_r, faulty_r in zip(adaptive.adaptive.rounds, trail.rounds):
            if faulty_r.degraded > 0:
                assert faulty_r.max_half_width >= clean_r.max_half_width


class TestPlumbing:
    def test_trail_dict_roundtrip(self, adaptive):
        d = adaptive.adaptive.as_dict()
        assert AdaptiveTrail.from_dict(d).as_dict() == d

    def test_stop_sampling_unwinds_past_program_errors(self):
        # The interpreter wraps RuntimeError_ into program-level
        # failures; the stop signal must never be caught by that net.
        assert not issubclass(StopSampling, RuntimeError_)
        exc = StopSampling(REASON_SETTLED, rounds=7)
        assert exc.reason == REASON_SETTLED
        assert exc.rounds == 7

    def test_adaptive_rejects_streaming_combo(self):
        with pytest.raises(ValueError):
            _profiler().profile(streaming=True, adaptive=CFG)

    @pytest.mark.parametrize(
        "kw",
        [
            {"confidence": 0.0},
            {"confidence": 1.0},
            {"ci_width": 0.0},
            {"ci_width": 1.0},
            {"stability_window": 0},
            {"round_samples": 0},
            {"top_n": 0},
            {"method": "jackknife"},
        ],
    )
    def test_config_validation(self, kw):
        with pytest.raises(ValueError):
            AdaptiveConfig(**kw).validate()

    def test_adaptive_true_uses_defaults(self):
        # profile(adaptive=True) must work without importing the config.
        result = _profiler().profile(adaptive=True)
        assert result.adaptive is not None
        assert result.adaptive.ci_width == AdaptiveConfig().ci_width
