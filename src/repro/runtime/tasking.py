"""Cooperative tasking layer — the substitute for Chapel's qthreads.

``forall``/``coforall`` (lowered to ``SpawnJoin``) create worker
:class:`Task`s that simulated :class:`WorkerThread`s execute.  Each
spawn gets a unique tag and captures the spawning task's *pre-spawn
stack trace* — exactly the instrumentation the paper adds to the Chapel
tasking layer so worker samples can later be glued into full call paths
(paper §IV.B).

Scheduling is deterministic: a discrete-event loop always advances the
thread with the smallest virtual clock, and the run queue is FIFO.
Threads with no work accrue *idle* cycles attributed to a synthetic
``__sched_yield`` frame — reproducing the dominant entry of the
code-centric pprof profile in paper Fig. 4.
"""

from __future__ import annotations

from collections import deque
from operator import attrgetter
from dataclasses import dataclass, field

from ..ir.module import BasicBlock, Function
from .values import (
    ArrayChunk,
    ArrayValue,
    AssociativeDomainValue,
    DomainChunk,
    DomainValue,
    RangeValue,
    RuntimeError_,
    SparseDomainValue,
)

#: Synthetic function name for idle thread time (Fig. 4's top entry).
SCHED_YIELD = "__sched_yield"


class Frame:
    """One activation record of the interpreter."""

    __slots__ = ("function", "block", "index", "regs", "caller", "call_iid", "penalty")

    def __init__(self, function: Function, caller: "Frame | None", call_iid: int | None) -> None:
        self.function = function
        self.block: BasicBlock = function.entry
        self.index = 0
        #: rid → runtime value
        self.regs: dict[int, object] = {}
        self.caller = caller
        #: iid of the call instruction in the caller (the return address
        #: the stack walker reports for non-leaf frames).
        self.call_iid = call_iid
        self.penalty = 1.0  # icache multiplier, set by the interpreter


@dataclass
class SpawnRecord:
    """Bookkeeping for one SpawnJoin: tag, pre-spawn stack, join count."""

    tag: int
    kind: str  # forall | coforall
    pre_spawn_stack: list[tuple[str, int]]  # leaf-first (func, iid)
    n_tasks: int
    completed: int = 0
    #: Task blocked at the join (the spawner).
    waiter: "Task | None" = None
    #: Virtual time the last worker finished (the join release time).
    completion_clock: float = 0.0


class Task:
    """A schedulable unit: the main task, or one chunk of a parallel loop.

    Task ids are allocated by the run's :class:`Scheduler`
    (:meth:`Scheduler.next_task_id`), not by a process-global counter —
    so every run numbers its tasks 0, 1, 2, … regardless of what ran
    before it in the same process.  Repeat runs therefore produce
    identical sample streams, and an adaptively-stopped run replays
    identically (the property per-shard collectors need too).
    """

    __slots__ = ("task_id", "frame", "state", "spawn", "is_main", "last_clock")

    def __init__(
        self,
        frame: Frame,
        spawn: SpawnRecord | None = None,
        is_main: bool = False,
        task_id: int = 0,
    ) -> None:
        self.task_id = task_id
        self.frame: Frame | None = frame
        #: ready | running | joining | done
        self.state = "ready"
        self.spawn = spawn
        self.is_main = is_main
        #: Causal timestamp: the virtual time this task has reached.
        #: A thread picking the task fast-forwards its clock to this —
        #: a migrating task carries its time with it.
        self.last_clock = 0.0

    def stack_walk(self) -> list[tuple[str, int]]:
        """Leaf-first (function name, iid) pairs — what the Dyninst-style
        monitor records per sample.  The leaf frame reports its current
        instruction; each caller frame reports the call site (its
        "return address")."""
        out: list[tuple[str, int]] = []
        frame = self.frame
        if frame is None:
            return out
        block = frame.block
        idx = min(frame.index, len(block.instructions) - 1)
        out.append((frame.function.name, block.instructions[idx].iid))
        while frame.caller is not None:
            assert frame.call_iid is not None
            out.append((frame.caller.function.name, frame.call_iid))
            frame = frame.caller
        return out


class WorkerThread:
    """One simulated OS thread with its own virtual clock and PMU."""

    __slots__ = ("thread_id", "clock", "pmu_counter", "task", "idle_cycles", "busy_cycles")

    def __init__(self, thread_id: int) -> None:
        self.thread_id = thread_id
        self.clock = 0.0  # cycles
        self.pmu_counter = 0.0
        self.task: Task | None = None
        self.idle_cycles = 0.0
        self.busy_cycles = 0.0


class Scheduler:
    """FIFO run queue + min-clock thread selection (deterministic)."""

    def __init__(self, num_threads: int) -> None:
        if num_threads < 1:
            raise RuntimeError_("need at least one thread")
        self.threads = [WorkerThread(i) for i in range(num_threads)]
        self.run_queue: deque[Task] = deque()
        # Both allocators are plain ints, not itertools.count objects:
        # their values are part of the run's snapshottable state (a
        # resumed collector must hand out the same tags/ids the serial
        # run would), and plain ints pickle with the rest of the
        # scheduler where a count iterator could not be inspected.
        self._next_spawn_tag = 1
        #: Run-scoped task-id allocator (main task gets 0, spawned
        #: workers 1, 2, … in spawn order — deterministic per run).
        self._next_task_id = 0

    def next_spawn_tag(self) -> int:
        tag = self._next_spawn_tag
        self._next_spawn_tag += 1
        return tag

    def next_task_id(self) -> int:
        tid = self._next_task_id
        self._next_task_id += 1
        return tid

    def enqueue(self, task: Task) -> None:
        task.state = "ready"
        self.run_queue.append(task)

    _clock_key = attrgetter("clock")

    def pick_thread(self) -> WorkerThread:
        """The thread with the smallest virtual clock runs next (ties by
        thread id, keeping execution deterministic).

        ``threads`` is ordered by thread id and ``min`` returns the
        first minimum, so keying on the clock alone preserves the
        (clock, thread_id) tie-break while skipping per-comparison
        tuple construction in this extremely hot call.
        """
        return min(self.threads, key=self._clock_key)

    @property
    def any_ready(self) -> bool:
        return bool(self.run_queue)

    @property
    def any_running(self) -> bool:
        return any(t.task is not None for t in self.threads)


def chunk_iteration_space(
    iterables: list[object], kind: str, num_tasks: int
) -> list[list[object]]:
    """Splits the (zipped) iteration space into per-task chunk values.

    Returns one list of chunk iterables per task.  ``forall`` produces
    up to ``num_tasks`` contiguous blocks; ``coforall`` produces one
    task per index (Chapel semantics).
    """
    sizes = [_iterable_size(it) for it in iterables]
    n = sizes[0]
    if any(s != n for s in sizes):
        raise RuntimeError_(f"zippered iterands have unequal sizes {sizes}")
    if n == 0:
        return []
    if kind == "coforall":
        blocks = [(i, i) for i in range(n)]
    else:
        k = min(num_tasks, n)
        base, extra = divmod(n, k)
        blocks = []
        lo = 0
        for i in range(k):
            count = base + (1 if i < extra else 0)
            blocks.append((lo, lo + count - 1))
            lo += count
    out: list[list[object]] = []
    for lo, hi in blocks:
        out.append([_chunk_one(it, lo, hi) for it in iterables])
    return out


def _iterable_size(it: object) -> int:
    if isinstance(it, RangeValue):
        return it.size
    if isinstance(it, (DomainValue, SparseDomainValue, AssociativeDomainValue)):
        return it.size
    if isinstance(it, ArrayValue):
        return it.size
    if isinstance(it, DomainChunk) or isinstance(it, ArrayChunk):
        return it.size
    raise RuntimeError_(f"cannot iterate over {type(it).__name__}")


def _chunk_one(it: object, lo: int, hi: int) -> object:
    if isinstance(it, RangeValue):
        return it.subrange_by_position(lo, hi)
    if isinstance(it, (DomainValue, SparseDomainValue, AssociativeDomainValue)):
        return DomainChunk(it, lo, hi)
    if isinstance(it, ArrayValue):
        return ArrayChunk(it, lo, hi)
    raise RuntimeError_(f"cannot chunk {type(it).__name__}")
