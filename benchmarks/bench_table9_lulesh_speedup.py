"""E10 — Paper Table IX: LULESH optimization speedups, ± --fast.

Paper (w/o --fast): Best Case 1.38, VG 1.25, P 1 1.07, CENN 1.08.
Paper (w/ --fast):  Best Case 1.47, VG 1.39, P 1 1.04, CENN 1.02.

Reproduced shape: VG is the biggest single win (allocation hoisting),
P1 and CENN give single-digit gains, the combination is best, and all
of it survives --fast.
"""

from conftest import record_result, run_once

from repro.bench import harness
from repro.views.tables import render_table

PAPER = {
    "Best Case": (1.38, 1.47),
    "VG": (1.25, 1.39),
    "P 1": (1.07, 1.04),
    "CENN": (1.08, 1.02),
    "Original": (1.00, 1.00),
}


def measure():
    return harness.lulesh_table_ix()


def test_table9_lulesh_speedups(benchmark, record):
    data = run_once(benchmark, measure)

    # Ranking: Best > VG > {P1, CENN} > 1.
    assert data["Best Case"]["speedup"] > data["VG"]["speedup"]
    assert data["VG"]["speedup"] > data["P 1"]["speedup"]
    assert data["VG"]["speedup"] > data["CENN"]["speedup"]
    # Bands: VG ≈ 1.2–1.35 (paper 1.25); P1/CENN single-digit gains.
    assert 1.1 < data["VG"]["speedup"] < 1.45
    assert 1.0 < data["P 1"]["speedup"] < 1.2
    assert 1.0 < data["CENN"]["speedup"] < 1.25
    assert 1.25 < data["Best Case"]["speedup"] < 1.75
    # Survives --fast (paper's validation experiment).
    for tag in ("Best Case", "VG"):
        assert data[tag]["speedup_fast"] > 1.1

    rows = [
        [
            tag,
            f"{d['time']:.4f}",
            f"{d['speedup']:.2f}",
            f"{PAPER[tag][0]:.2f}",
            f"{d['time_fast']:.4f}",
            f"{d['speedup_fast']:.2f}",
            f"{PAPER[tag][1]:.2f}",
        ]
        for tag, d in data.items()
    ]
    record(
        "table9_lulesh_speedup",
        render_table(
            ["", "Time(s)", "Speedup", "paper", "Time(s) fast", "Speedup fast", "paper"],
            rows,
            title="Table IX — LULESH optimizations, w/ and w/o --fast",
            aligns=["l", "r", "r", "r", "r", "r", "r"],
        ),
    )
