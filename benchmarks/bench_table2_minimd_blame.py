"""E2 — Paper Table II: MiniMD variables and their blame.

Paper (original MiniMD): Pos 96.3 %, Bins 84.2 %, RealCount 80.8 %,
RealPos 80.8 %, Count 54.9 %, binSpace 49.4 %, all in context main.

Reproduced shape: Pos and Bins form the top tier; the aliasing views
RealPos/RealCount sit in a middle tier (with Count ≈ RealCount by the
alias relationship); binSpace appears without a single source-level
write (descriptor/iterator blame), smallest of the six — the ordering
of the bottom of the paper's table.
"""

from conftest import record_result, run_once

from repro.bench import harness
from repro.views.tables import render_table

PAPER = {
    "Pos": 0.963,
    "Bins": 0.842,
    "RealCount": 0.808,
    "RealPos": 0.808,
    "Count": 0.549,
    "binSpace": 0.494,
}


def profile():
    return harness.minimd_profile(optimized=False)


def test_table2_minimd_blame(benchmark, record):
    res = run_once(benchmark, profile)
    rep = res.report
    measured = {name: rep.blame_of(name) for name in PAPER}

    # Top tier: the two big data structures dominate.
    assert measured["Pos"] > 0.5
    assert measured["Bins"] > 0.5
    # Aliases present with real blame, below the top tier.
    assert 0.05 < measured["RealPos"] < measured["Pos"]
    assert 0.05 < measured["RealCount"] < measured["Bins"]
    # Count tracks its alias RealCount (same writes through the view).
    assert abs(measured["Count"] - measured["RealCount"]) < 0.1
    # binSpace earns blame despite never being assigned in source.
    assert measured["binSpace"] > 0.02
    # All six are in context main (module-level variables).
    for name in PAPER:
        row = rep.row_for(name)
        assert row is not None and row.context == "main"

    rows = [
        [n, rep.row_for(n).type_str, f"{100*measured[n]:.1f}%", f"{100*PAPER[n]:.1f}%"]
        for n in PAPER
    ]
    record(
        "table2_minimd_blame",
        render_table(
            ["Name", "Type", "Blame (measured)", "Blame (paper)"],
            rows,
            title=f"Table II — MiniMD blame ({rep.stats.user_samples} samples)",
            aligns=["l", "l", "r", "r"],
        ),
    )
