"""Multi-locale profiling harness (paper step 3/4 + future work §VI).

The paper's experiments are single-locale, but its pipeline is designed
for more: step 3 is "embarrassingly parallel for multi-locale cases"
and step 4 aggregates per-node results.  This harness simulates an
L-locale run the way an SPMD launcher would: the *same program* runs
once per locale, parameterized by the config constants ``localeId`` and
``numLocales`` (the program partitions its own iteration space, as
Chapel block distributions do), and the per-locale blame reports merge
into one program-wide report.

This is a simulation of the *aggregation* path only — it does not model
inter-locale communication (tracking data through GASNet is the paper's
future work, and ours).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..blame.aggregate import merge_reports
from ..blame.report import BlameReport
from .profiler import ProfileResult, Profiler


@dataclass
class MultiLocaleResult:
    """Per-locale profiles plus the merged program-wide report."""

    per_locale: list[ProfileResult]
    merged: BlameReport

    @property
    def num_locales(self) -> int:
        return len(self.per_locale)


def profile_locales(
    source: str,
    num_locales: int,
    filename: str = "program.chpl",
    config: dict[str, object] | None = None,
    num_threads: int = 12,
    threshold: int = 20011,
    locale_id_config: str = "localeId",
    num_locales_config: str = "numLocales",
) -> MultiLocaleResult:
    """Profiles ``source`` once per locale and merges the reports.

    The program must declare ``config const localeId: int`` and
    ``config const numLocales: int`` (names overridable) and partition
    its own work by them.
    """
    if num_locales < 1:
        raise ValueError("need at least one locale")
    base = dict(config or {})
    per_locale: list[ProfileResult] = []
    reports: list[BlameReport] = []
    for locale in range(num_locales):
        cfg = dict(base)
        cfg[locale_id_config] = locale
        cfg[num_locales_config] = num_locales
        result = Profiler(
            source,
            filename=filename,
            config=cfg,
            num_threads=num_threads,
            threshold=threshold,
        ).profile()
        result.report.locale_id = locale
        per_locale.append(result)
        reports.append(result.report)
    merged = merge_reports(reports, program=filename)
    return MultiLocaleResult(per_locale=per_locale, merged=merged)
