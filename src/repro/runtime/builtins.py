"""Builtin (intrinsic) implementations for the IR interpreter.

Each builtin receives ``(interp, thread, args)`` and returns
``(result, extra_cycles)``.  Math intrinsics and ``writeln`` model the
Chapel runtime-library calls the paper's stack trimming removes from
user call paths.
"""

from __future__ import annotations

import math
from typing import Callable

from .costmodel import CLOCK_HZ
from .values import ArrayValue, RuntimeError_, copy_value, format_value, value_slots


class ProgramHalt(Exception):
    """Raised by the ``halt`` builtin (Chapel's error exit)."""


def _writeln(interp, thread, args):
    text = " ".join(format_value(a) for a in args)
    if interp.output and not interp._last_write_complete:
        interp.output[-1] += text
    else:
        interp.output.append(text)
    interp._last_write_complete = True
    return None, interp.cost_model.writeln_base + 5 * len(args)


def _write(interp, thread, args):
    text = " ".join(format_value(a) for a in args)
    if interp.output and not interp._last_write_complete:
        interp.output[-1] += text
    else:
        interp.output.append(text)
        interp._last_write_complete = False
    return None, interp.cost_model.writeln_base + 5 * len(args)


def _math1(fn: Callable[[float], float]):
    def impl(interp, thread, args):
        try:
            return float(fn(args[0])), interp.cost_model.math_intrinsic
        except ValueError as exc:
            raise RuntimeError_(f"math domain error: {exc}") from exc

    return impl


def _min(interp, thread, args):
    return min(args[0], args[1]), interp.cost_model.int_op * 2


def _max(interp, thread, args):
    return max(args[0], args[1]), interp.cost_model.int_op * 2


def _abs(interp, thread, args):
    return abs(args[0]), interp.cost_model.int_op


def _fmod(interp, thread, args):
    return math.fmod(args[0], args[1]), interp.cost_model.math_intrinsic


def _to_int(interp, thread, args):
    return int(args[0]), interp.cost_model.int_op

def _to_real(interp, thread, args):
    return float(args[0]), interp.cost_model.int_op


def _get_current_time(interp, thread, args):
    """Simulated wall clock in seconds (Chapel's getCurrentTime, used by
    the benchmarks' self-timers). The executing thread's clock is the
    causal "now": tasks carry their virtual time across thread
    migrations, so elapsed differences taken by one task are sound."""
    return thread.clock / CLOCK_HZ, 5


def _max_task_par(interp, thread, args):
    return interp.num_threads, 2


def _halt(interp, thread, args):
    msg = " ".join(format_value(a) for a in args) or "halt reached"
    raise ProgramHalt(msg)


def _assert_true(interp, thread, args):
    if not args:
        raise RuntimeError_("assertTrue needs a condition")
    if not args[0]:
        msg = " ".join(format_value(a) for a in args[1:]) or "assertion failed"
        raise RuntimeError_(f"assertion failed: {msg}")
    return None, 2


def _array_copy(interp, thread, args):
    dst, src = args
    if not isinstance(dst, ArrayValue) or not isinstance(src, ArrayValue):
        raise RuntimeError_("_array_copy needs two arrays")
    if dst.domain.shape != src.domain.shape:
        raise RuntimeError_(
            f"array copy shape mismatch: {dst.domain.shape} vs {src.domain.shape}"
        )
    n = 0
    src_coords = src.domain.iter_coords()
    for dcoords, scoords in zip(dst.domain.iter_coords(), src_coords):
        v = src.data[src.flat_of(scoords)]
        dst.data[dst.flat_of(dcoords)] = copy_value(v)
        n += 1
    return None, interp.cost_model.array_copy_per_elem * max(n, 1)


def _config_get(cast):
    def impl(interp, thread, args):
        name, default = args
        value = interp.config.get(name, default)
        return cast(value), interp.cost_model.config_get

    return impl


BUILTINS: dict[str, Callable] = {
    "writeln": _writeln,
    "write": _write,
    "sqrt": _math1(math.sqrt),
    "cbrt": _math1(lambda x: math.copysign(abs(x) ** (1.0 / 3.0), x)),
    "exp": _math1(math.exp),
    "log": _math1(math.log),
    "sin": _math1(math.sin),
    "cos": _math1(math.cos),
    "floor": _math1(math.floor),
    "ceil": _math1(math.ceil),
    "abs": _abs,
    "min": _min,
    "max": _max,
    "fmod": _fmod,
    "toInt": _to_int,
    "toReal": _to_real,
    "getCurrentTime": _get_current_time,
    "maxTaskPar": _max_task_par,
    "halt": _halt,
    "assertTrue": _assert_true,
    "_array_copy": _array_copy,
    "_config_get_int": _config_get(int),
    "_config_get_real": _config_get(float),
    "_config_get_bool": _config_get(bool),
}
