"""Journaled dataset: checksums, corrupt-tail detection, resume."""

import json

import pytest

from repro.errors import DatasetCorruptError
from repro.sampling.dataset import (
    DatasetHeader,
    DatasetJournal,
    load_journal,
    load_samples,
    scan_journal,
)
from repro.sampling.records import RawSample


def _header():
    return DatasetHeader(
        program="t.chpl", source_sha256="ab" * 32, threshold=997, num_threads=4
    )


def _samples(n):
    return [
        RawSample(
            index=i,
            thread_id=i % 2,
            task_id=0,
            stack=(("f", 10 + i % 3), ("main", 1)),
            leaf_iid=10 + i % 3,
            spawn_tag=None,
            pre_spawn_stack=None,
        )
        for i in range(n)
    ]


class TestRoundtrip:
    def test_write_and_load(self, tmp_path):
        path = str(tmp_path / "run.journal")
        with DatasetJournal(path, _header()) as j:
            j.extend(_samples(100))
        header, samples, scan = load_journal(path)
        assert header.program == "t.chpl" and header.version == 2
        assert samples == _samples(100)
        assert scan.intact and scan.n_good == 100

    def test_load_samples_detects_journal_format(self, tmp_path):
        path = str(tmp_path / "run.journal")
        with DatasetJournal(path, _header()) as j:
            j.extend(_samples(10))
        header, samples = load_samples(path)
        assert len(samples) == 10 and header.threshold == 997

    def test_empty_journal_has_header_only(self, tmp_path):
        path = str(tmp_path / "empty.journal")
        DatasetJournal(path, _header()).close()
        _, samples, scan = load_journal(path)
        assert samples == [] and scan.intact


class TestCorruptTail:
    def _write(self, tmp_path, n=50):
        path = str(tmp_path / "run.journal")
        with DatasetJournal(path, _header()) as j:
            j.extend(_samples(n))
        return path

    def test_torn_final_line_detected(self, tmp_path):
        path = self._write(tmp_path)
        with open(path) as f:
            lines = f.readlines()
        with open(path, "w") as f:
            f.writelines(lines[:-1])
            f.write(lines[-1][: len(lines[-1]) // 2])  # torn write
        samples, scan = scan_journal(path)
        assert len(samples) == 49
        assert scan.n_corrupt == 1 and not scan.intact
        assert scan.error

    def test_bitflip_mid_file_stops_at_damage(self, tmp_path):
        path = self._write(tmp_path)
        with open(path) as f:
            lines = f.readlines()
        # Flip a digit inside record 20's payload (the record whose
        # sample index is 19); locate it rather than hardcode a line.
        k = next(i for i, ln in enumerate(lines) if '"i": 19' in ln or '"i":19' in ln)
        assert k == 20  # header + 19 good records precede it
        lines[k] = lines[k].replace('"i": 19', '"i": 91').replace('"i":19', '"i":91')
        with open(path, "w") as f:
            f.writelines(lines)
        samples, scan = scan_journal(path)
        assert len(samples) == 19  # good prefix only
        assert scan.n_corrupt == 31  # damaged record + everything after

    def test_strict_load_raises_on_damage(self, tmp_path):
        path = self._write(tmp_path)
        with open(path, "a") as f:
            f.write('{"c": 1, "s": {"garbage": true}}\n')
        with pytest.raises(DatasetCorruptError):
            load_journal(path, strict=True)

    def test_damaged_header_is_unrecoverable(self, tmp_path):
        path = self._write(tmp_path)
        with open(path) as f:
            lines = f.readlines()
        lines[0] = lines[0].replace("t.chpl", "x.chpl")
        with open(path, "w") as f:
            f.writelines(lines)
        with pytest.raises(DatasetCorruptError):
            scan_journal(path)


class TestResume:
    def test_resume_after_torn_tail(self, tmp_path):
        path = str(tmp_path / "run.journal")
        first, rest = _samples(80)[:50], _samples(80)[50:]
        with DatasetJournal(path, _header(), flush_every=10) as j:
            j.extend(first)
        # Simulate the kill: tear the last record.
        with open(path, "rb+") as f:
            f.seek(-7, 2)
            f.truncate()
        journal, recovered = DatasetJournal.resume(path)
        assert recovered == first[:49]  # lost exactly the torn record
        journal.extend(rest)
        journal.close()
        _, samples, scan = load_journal(path)
        assert scan.intact
        assert samples == first[:49] + rest

    def test_resume_on_intact_journal_loses_nothing(self, tmp_path):
        path = str(tmp_path / "run.journal")
        with DatasetJournal(path, _header()) as j:
            j.extend(_samples(30))
        journal, recovered = DatasetJournal.resume(path)
        journal.close()
        assert recovered == _samples(30)

    def test_checksum_canonicalization_survives_key_order(self, tmp_path):
        # A record re-serialized with different key order still verifies
        # (the checksum is over a canonical sort_keys dump).
        path = str(tmp_path / "run.journal")
        with DatasetJournal(path, _header()) as j:
            j.extend(_samples(3))
        with open(path) as f:
            lines = f.readlines()
        d = json.loads(lines[1])
        reordered = {"s": d["s"], "c": d["c"]}
        lines[1] = json.dumps(reordered) + "\n"
        with open(path, "w") as f:
            f.writelines(lines)
        _, samples, scan = load_journal(path)
        assert scan.intact and len(samples) == 3
