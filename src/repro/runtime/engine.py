"""Fast-path execution engine: pre-bound per-block dispatch.

The generic interpreter loop pays, per instruction, a ``type(instr)``
dict lookup, a re-raise funnel, operand kind tests in ``_val``, and
cost-model attribute reads.  All of that is static per instruction, so
this engine resolves it once: the first time a basic block runs, it is
compiled into a *plan* — a table of specialized step closures (one per
instruction) with handler, operand accessors, and static base costs
already bound.  Straight-line runs of non-branching, non-calling
instructions then execute without re-entering the scheduler
bookkeeping; the PMU counter is advanced inline and the overflow/skid
machinery (:meth:`Interpreter._pmu_overflow`) is only entered when a
sample is actually due.

Semantics are bit-for-bit those of ``Interpreter._run_quantum_generic``:

* cost arithmetic is unchanged (``pmu_counter += cost`` then a ``>=``
  compare — not a re-associated horizon decrement, which would round
  differently under icache penalties);
* every specialized closure reads all operands before mutating state
  and raises *before* advancing ``frame.index``, so the faulting
  instruction is always ``frame.block.instructions[frame.index]``;
* uncommon instructions (calls, spawns, allocation, domain algebra)
  delegate to the interpreter's generic handlers, which remain the
  single source of truth for their semantics.

The tests in ``tests/runtime/test_engine.py`` assert engine-vs-generic
equality of outputs, cycle counts, and sample streams.
"""

from __future__ import annotations

import operator

from ..chapel.types import IntType, RealType
from ..ir import instructions as I
from .builtins import ProgramHalt
from .interpreter import ExecutionError, IterState, _idiv, _imod, _needs_none
from .values import (
    ArrayValue,
    ClassValue,
    RangeValue,
    RecordValue,
    RuntimeError_,
    TupleValue,
    copy_value,
    default_value,
    value_slots,
)

#: Instructions after which the engine must re-resolve the current
#: task/frame/block (they transfer control or switch tasks).
_TRANSFERS = (I.Call, I.Ret, I.Br, I.CBr, I.SpawnJoin)


def _make_getter(interp, op):
    """Operand accessor closure: ``get(frame) -> value``.

    Pure (no side effects beyond the idempotent lazy creation of a
    global's box), so a step may re-read operands when it punts to a
    generic handler.
    """
    if isinstance(op, I.Constant):
        v = op.value

        def get(frame, _v=v):
            return _v

        return get
    if isinstance(op, I.Register):
        rid = op.rid
        msg = f"register {op} read before definition"

        def get(frame, _rid=rid, _msg=msg):
            try:
                return frame.regs[_rid]
            except KeyError:
                raise RuntimeError_(_msg)

        return get
    if isinstance(op, I.GlobalRef):
        store = interp.globals_store
        name = op.name
        ty = op.type

        def get(frame, _store=store, _name=name, _ty=ty):
            box = _store.get(_name)
            if box is None:
                box = [None] if _needs_none(_ty) else [default_value(_ty)]
                _store[_name] = box
            return (box, 0)

        return get

    def get(frame, _op=op):
        raise RuntimeError_(f"unknown operand kind {type(_op).__name__}")

    return get


_CMP_FNS = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "&&": lambda a, b: a and b,
    "||": lambda a, b: a or b,
}

_ARITH_FNS = {"+": operator.add, "-": operator.sub, "*": operator.mul}


class FastEngine:
    """Per-interpreter plan cache + quantum loop (see module docstring)."""

    def __init__(self, interp) -> None:
        self.interp = interp
        #: id(block) -> (block, steps, transfer_flags).  The block ref
        #: in the value pins the object so ids are never reused while a
        #: plan is live.
        self._plans: dict[int, tuple] = {}
        self._factories = {
            I.Alloca: self._sp_alloca,
            I.Load: self._sp_load,
            I.Store: self._sp_store,
            I.FieldAddr: self._sp_field_addr,
            I.ElemAddr: self._sp_elem_addr,
            I.TupleElemAddr: self._sp_tuple_elem_addr,
            I.BinOp: self._sp_binop,
            I.UnOp: self._sp_unop,
            I.Cast: self._sp_cast,
            I.Br: self._sp_br,
            I.CBr: self._sp_cbr,
            I.MakeRange: self._sp_make_range,
            I.MakeTuple: self._sp_make_tuple,
            I.TupleGet: self._sp_tuple_get,
            I.IterNext: self._sp_iter_next,
            I.IterValue: self._sp_iter_value,
        }

    # -- quantum loop ----------------------------------------------------------

    def run_quantum(self, thread) -> None:
        interp = self.interp
        plans = self._plans
        threshold = interp.sample_threshold
        sampling = threshold is not None and interp.monitor is not None
        has_skid = interp.skid > 0
        overflow = interp._pmu_overflow
        deliver = interp._deliver_skidded
        budget = interp.quantum
        executed = 0
        try:
            task = thread.task
            while budget > 0:
                if task is None:
                    return
                frame = task.frame
                if frame is None:
                    return
                block = frame.block
                plan = plans.get(id(block))
                if plan is None or plan[0] is not block:
                    plan = self._build_plan(block)
                    plans[id(block)] = plan
                steps = plan[1]
                flags = plan[2]
                # The frame (hence its icache penalty) is fixed for the
                # whole straight-line stretch: every frame or block
                # change is a transfer that breaks this loop.
                penalty = frame.penalty
                while budget > 0:
                    i = frame.index
                    executed += 1
                    budget -= 1
                    try:
                        cost = steps[i](thread, task, frame)
                    except ProgramHalt:
                        raise
                    except ExecutionError:
                        raise
                    except RuntimeError_ as exc:
                        raise interp._error(
                            str(exc), frame.block.instructions[frame.index], task
                        ) from exc
                    scaled = cost * penalty
                    thread.clock += scaled
                    thread.busy_cycles += scaled
                    task.last_clock = thread.clock
                    if sampling:
                        pmu = thread.pmu_counter + scaled
                        thread.pmu_counter = pmu
                        if pmu >= threshold:
                            overflow(thread, False)
                    if has_skid:
                        deliver(thread)
                    if flags[i]:
                        # Control transfer / possible task switch: fall
                        # back out to re-resolve task, frame, and plan.
                        task = thread.task
                        break
        finally:
            interp.instructions_executed += executed

    # -- plan construction -----------------------------------------------------

    def _build_plan(self, block) -> tuple:
        steps = []
        flags = []
        for instr in block.instructions:
            factory = self._factories.get(type(instr))
            steps.append(factory(instr) if factory is not None else self._delegate(instr))
            flags.append(isinstance(instr, _TRANSFERS))
        return (block, steps, flags)

    def _delegate(self, instr):
        """Generic-handler fallback for uncommon instructions."""
        interp = self.interp
        handler = interp._dispatch.get(type(instr))
        if handler is None:

            def step(thread, task, frame, _instr=instr, _interp=interp):
                raise _interp._error(f"no handler for {_instr.opname}", _instr, task)

            return step

        def step(thread, task, frame, _h=handler, _instr=instr):
            return _h(thread, task, frame, _instr)

        return step

    # -- specialized steps -----------------------------------------------------
    # Each mirrors the corresponding Interpreter._ex_* handler exactly:
    # same mutations, same costs, same error messages, raising before
    # frame.index advances.

    def _sp_alloca(self, instr):
        rid = instr.result.rid
        cost = self.interp.cost_model.alloca

        def step(thread, task, frame, _rid=rid, _cost=cost):
            frame.regs[_rid] = ([None], 0)
            frame.index += 1
            return _cost

        return step

    def _sp_load(self, instr):
        rid = instr.result.rid
        cost = self.interp.cost_model.load
        addr = instr.addr

        if isinstance(addr, I.Register):
            msg = f"register {addr} read before definition"

            def step(thread, task, frame, _ra=addr.rid, _rid=rid, _cost=cost, _msg=msg):
                regs = frame.regs
                try:
                    lst, i = regs[_ra]
                except KeyError:
                    raise RuntimeError_(_msg)
                regs[_rid] = lst[i]
                frame.index += 1
                return _cost

            return step

        get = _make_getter(self.interp, addr)

        def step(thread, task, frame, _get=get, _rid=rid, _cost=cost):
            lst, i = _get(frame)
            frame.regs[_rid] = lst[i]
            frame.index += 1
            return _cost

        return step

    def _sp_store(self, instr):
        interp = self.interp
        base = interp.cost_model.store
        per_slot = interp.cost_model.copy_per_slot
        val, addr = instr.value, instr.addr

        if isinstance(val, (I.Register, I.Constant)) and isinstance(addr, I.Register):
            vr = val.rid if isinstance(val, I.Register) else None
            vv = val.value if isinstance(val, I.Constant) else None
            vmsg = f"register {val} read before definition"
            amsg = f"register {addr} read before definition"

            def step(
                thread, task, frame, _vr=vr, _vv=vv, _ar=addr.rid,
                _base=base, _ps=per_slot, _vm=vmsg, _am=amsg,
            ):
                regs = frame.regs
                try:
                    value = regs[_vr] if _vr is not None else _vv
                    lst, i = regs[_ar]
                except KeyError:
                    raise RuntimeError_(
                        _vm if _vr is not None and _vr not in regs else _am
                    )
                if isinstance(value, (TupleValue, RecordValue)):
                    cost = _base + _ps * value_slots(value)
                    value = copy_value(value)
                else:
                    cost = _base
                lst[i] = value
                frame.index += 1
                return cost

            return step

        getv = _make_getter(interp, val)
        geta = _make_getter(interp, addr)

        def step(thread, task, frame, _gv=getv, _ga=geta, _base=base, _ps=per_slot):
            value = _gv(frame)
            lst, i = _ga(frame)
            if isinstance(value, (TupleValue, RecordValue)):
                cost = _base + _ps * value_slots(value)
                value = copy_value(value)
            else:
                cost = _base
            lst[i] = value
            frame.index += 1
            return cost

        return step

    def _sp_field_addr(self, instr):
        interp = self.interp
        rid = instr.result.rid
        index = instr.index
        rec_cost = interp.cost_model.field_addr
        cls_cost = rec_cost + interp.cost_model.class_field_extra

        if isinstance(instr.base, I.Register):
            msg = f"register {instr.base} read before definition"

            def step(
                thread, task, frame, _rb=instr.base.rid, _rid=rid, _ix=index,
                _rc=rec_cost, _cc=cls_cost, _msg=msg,
            ):
                regs = frame.regs
                try:
                    base = regs[_rb]
                except KeyError:
                    raise RuntimeError_(_msg)
                if isinstance(base, tuple):
                    obj = base[0][base[1]]
                else:
                    obj = base
                if obj is None:
                    raise RuntimeError_("field access through nil")
                if isinstance(obj, ClassValue):
                    cost = _cc
                elif isinstance(obj, RecordValue):
                    cost = _rc
                else:
                    raise RuntimeError_(
                        f"field access on non-record value {type(obj).__name__}"
                    )
                regs[_rid] = (obj.fields, _ix)
                frame.index += 1
                return cost

            return step

        get = _make_getter(interp, instr.base)

        def step(
            thread, task, frame, _get=get, _rid=rid, _ix=index, _rc=rec_cost, _cc=cls_cost
        ):
            base = _get(frame)
            if isinstance(base, tuple):
                obj = base[0][base[1]]
            else:
                obj = base
            if obj is None:
                raise RuntimeError_("field access through nil")
            if isinstance(obj, ClassValue):
                cost = _cc
            elif isinstance(obj, RecordValue):
                cost = _rc
            else:
                raise RuntimeError_(
                    f"field access on non-record value {type(obj).__name__}"
                )
            frame.regs[_rid] = (obj.fields, _ix)
            frame.index += 1
            return cost

        return step

    def _sp_elem_addr(self, instr):
        interp = self.interp
        cm = interp.cost_model
        getb = _make_getter(interp, instr.base)
        getters = [_make_getter(interp, ix) for ix in instr.indices]
        rid = instr.result.rid
        base_cost = cm.elem_addr
        if any(not isinstance(ix, I.Constant) for ix in instr.indices):
            base_cost += cm.elem_addr_dynamic_extra
        reindex_extra = cm.elem_addr_reindex_extra
        llc = cm.llc_bytes
        stall = cm.mem_stall
        heap = interp.heap

        if len(getters) == 1:
            ix = instr.indices[0]
            if isinstance(instr.base, I.Register) and isinstance(
                ix, (I.Register, I.Constant)
            ):
                bmsg = f"register {instr.base} read before definition"
                imsg = f"register {ix} read before definition"
                ir = ix.rid if isinstance(ix, I.Register) else None
                iv = ix.value if isinstance(ix, I.Constant) else None

                def step(
                    thread,
                    task,
                    frame,
                    _rb=instr.base.rid,
                    _ir=ir,
                    _iv=iv,
                    _rid=rid,
                    _base=base_cost,
                    _re=reindex_extra,
                    _heap=heap,
                    _llc=llc,
                    _stall=stall,
                    _bm=bmsg,
                    _im=imsg,
                ):
                    regs = frame.regs
                    try:
                        arr = regs[_rb]
                    except KeyError:
                        raise RuntimeError_(_bm)
                    if not isinstance(arr, ArrayValue):
                        raise RuntimeError_("indexing a non-array value")
                    try:
                        c = regs[_ir] if _ir is not None else _iv
                    except KeyError:
                        raise RuntimeError_(_im)
                    regs[_rid] = (arr.root.data, arr.flat_of((c,)))
                    frame.index += 1
                    cost = _base
                    if arr.is_reindex:
                        cost += _re
                    if _heap._live_bytes > _llc:
                        cost += _stall
                    return cost

                return step

            g0 = getters[0]

            def step(
                thread,
                task,
                frame,
                _gb=getb,
                _g0=g0,
                _rid=rid,
                _base=base_cost,
                _re=reindex_extra,
                _heap=heap,
                _llc=llc,
                _stall=stall,
            ):
                arr = _gb(frame)
                if not isinstance(arr, ArrayValue):
                    raise RuntimeError_("indexing a non-array value")
                frame.regs[_rid] = (arr.root.data, arr.flat_of((_g0(frame),)))
                frame.index += 1
                cost = _base
                if arr.is_reindex:
                    cost += _re
                if _heap._live_bytes > _llc:
                    cost += _stall
                return cost

            return step

        def step(
            thread,
            task,
            frame,
            _gb=getb,
            _gs=getters,
            _rid=rid,
            _base=base_cost,
            _re=reindex_extra,
            _heap=heap,
            _llc=llc,
            _stall=stall,
        ):
            arr = _gb(frame)
            if not isinstance(arr, ArrayValue):
                raise RuntimeError_("indexing a non-array value")
            coords = tuple(g(frame) for g in _gs)
            frame.regs[_rid] = (arr.root.data, arr.flat_of(coords))
            frame.index += 1
            cost = _base
            if arr.is_reindex:
                cost += _re
            if _heap._live_bytes > _llc:
                cost += _stall
            return cost

        return step

    def _sp_tuple_elem_addr(self, instr):
        interp = self.interp
        getb = _make_getter(interp, instr.base)
        getk = _make_getter(interp, instr.index)
        rid = instr.result.rid
        cost = interp.cost_model.tuple_elem_addr
        if not isinstance(instr.index, I.Constant):
            cost += interp.cost_model.tuple_index_dynamic_extra

        def step(thread, task, frame, _gb=getb, _gk=getk, _rid=rid, _cost=cost):
            lst, i = _gb(frame)
            tup = lst[i]
            if not isinstance(tup, TupleValue):
                raise RuntimeError_("tuple element access on non-tuple")
            k = _gk(frame)
            if not 0 <= k < len(tup.elems):
                raise RuntimeError_(
                    f"tuple index {k} out of range 0..{len(tup.elems) - 1}"
                )
            frame.regs[_rid] = (tup.elems, k)
            frame.index += 1
            return _cost

        return step

    def _sp_binop(self, instr):
        interp = self.interp
        cm = interp.cost_model
        op = instr.op
        lhs, rhs = instr.lhs, instr.rhs
        rid = instr.result.rid
        generic = interp._ex_binop

        if (
            isinstance(lhs, (I.Register, I.Constant))
            and isinstance(rhs, (I.Register, I.Constant))
            and (op in _CMP_FNS or op in _ARITH_FNS or op in ("/", "%", "**"))
        ):
            return self._sp_binop_inline(instr, op, lhs, rhs, rid, generic)

        ga = _make_getter(interp, lhs)
        gb = _make_getter(interp, rhs)

        if op in _CMP_FNS:
            fn = _CMP_FNS[op]
            cost = cm.cmp_op

            def step(
                thread, task, frame, _ga=ga, _gb=gb, _rid=rid, _fn=fn, _cost=cost,
                _gen=generic, _in=instr,
            ):
                a = _ga(frame)
                b = _gb(frame)
                if isinstance(a, TupleValue) or isinstance(b, TupleValue):
                    return _gen(thread, task, frame, _in)
                frame.regs[_rid] = _fn(a, b)
                frame.index += 1
                return _cost

            return step

        if op in _ARITH_FNS:
            fn = _ARITH_FNS[op]
            int_c = cm.int_op
            real_c = cm.real_op

            def step(
                thread, task, frame, _ga=ga, _gb=gb, _rid=rid, _fn=fn,
                _ic=int_c, _rc=real_c, _gen=generic, _in=instr,
            ):
                a = _ga(frame)
                b = _gb(frame)
                if isinstance(a, TupleValue) or isinstance(b, TupleValue):
                    return _gen(thread, task, frame, _in)
                r = _fn(a, b)
                frame.regs[_rid] = r
                frame.index += 1
                return _rc if isinstance(r, float) else _ic

            return step

        if op == "/":
            int_c = cm.int_op
            real_div = cm.real_div

            def step(
                thread, task, frame, _ga=ga, _gb=gb, _rid=rid,
                _ic=int_c, _rd=real_div, _gen=generic, _in=instr,
            ):
                a = _ga(frame)
                b = _gb(frame)
                if isinstance(a, TupleValue) or isinstance(b, TupleValue):
                    return _gen(thread, task, frame, _in)
                if isinstance(a, int) and isinstance(b, int):
                    r = _idiv(a, b)
                    cost = _ic
                else:
                    if b == 0:
                        raise RuntimeError_("division by zero")
                    r = a / b
                    cost = _rd if isinstance(r, float) else _ic
                frame.regs[_rid] = r
                frame.index += 1
                return cost

            return step

        if op == "%":
            int_c = cm.int_op
            real_c = cm.real_op

            def step(
                thread, task, frame, _ga=ga, _gb=gb, _rid=rid,
                _ic=int_c, _rc=real_c, _gen=generic, _in=instr,
            ):
                a = _ga(frame)
                b = _gb(frame)
                if isinstance(a, TupleValue) or isinstance(b, TupleValue):
                    return _gen(thread, task, frame, _in)
                if isinstance(a, int) and isinstance(b, int):
                    r = _imod(a, b)
                    cost = _ic
                else:
                    r = a % b
                    cost = _rc if isinstance(r, float) else _ic
                frame.regs[_rid] = r
                frame.index += 1
                return cost

            return step

        if op == "**":
            pow_c = cm.real_pow

            def step(
                thread, task, frame, _ga=ga, _gb=gb, _rid=rid, _pc=pow_c,
                _gen=generic, _in=instr,
            ):
                a = _ga(frame)
                b = _gb(frame)
                if isinstance(a, TupleValue) or isinstance(b, TupleValue):
                    return _gen(thread, task, frame, _in)
                frame.regs[_rid] = a**b
                frame.index += 1
                return _pc

            return step

        # Unknown operator: the generic handler raises with the right
        # message (and would also own any future operator's costs).
        return self._delegate(instr)

    def _sp_binop_inline(self, instr, op, lhs, rhs, rid, generic):
        """BinOp steps with operand reads inlined (no getter closures).

        Both operands are registers or constants; ``_ra``/``_rb`` hold a
        rid (register read) or None (use the bound constant).  Operands
        are read left-to-right, so the undefined-register message names
        the same operand as the getter-based path.
        """
        cm = self.interp.cost_model
        ra = lhs.rid if isinstance(lhs, I.Register) else None
        va = lhs.value if isinstance(lhs, I.Constant) else None
        rb = rhs.rid if isinstance(rhs, I.Register) else None
        vb = rhs.value if isinstance(rhs, I.Constant) else None
        ma = f"register {lhs} read before definition"
        mb = f"register {rhs} read before definition"

        if op in _CMP_FNS:
            fn = _CMP_FNS[op]
            cost = cm.cmp_op

            def step(
                thread, task, frame, _ra=ra, _va=va, _rb=rb, _vb=vb, _rid=rid,
                _fn=fn, _cost=cost, _gen=generic, _in=instr, _ma=ma, _mb=mb,
            ):
                regs = frame.regs
                try:
                    a = regs[_ra] if _ra is not None else _va
                    b = regs[_rb] if _rb is not None else _vb
                except KeyError:
                    raise RuntimeError_(
                        _ma if _ra is not None and _ra not in regs else _mb
                    )
                if isinstance(a, TupleValue) or isinstance(b, TupleValue):
                    return _gen(thread, task, frame, _in)
                regs[_rid] = _fn(a, b)
                frame.index += 1
                return _cost

            return step

        if op in _ARITH_FNS:
            fn = _ARITH_FNS[op]
            int_c = cm.int_op
            real_c = cm.real_op

            def step(
                thread, task, frame, _ra=ra, _va=va, _rb=rb, _vb=vb, _rid=rid,
                _fn=fn, _ic=int_c, _rc=real_c, _gen=generic, _in=instr, _ma=ma, _mb=mb,
            ):
                regs = frame.regs
                try:
                    a = regs[_ra] if _ra is not None else _va
                    b = regs[_rb] if _rb is not None else _vb
                except KeyError:
                    raise RuntimeError_(
                        _ma if _ra is not None and _ra not in regs else _mb
                    )
                if isinstance(a, TupleValue) or isinstance(b, TupleValue):
                    return _gen(thread, task, frame, _in)
                r = _fn(a, b)
                regs[_rid] = r
                frame.index += 1
                return _rc if isinstance(r, float) else _ic

            return step

        if op == "/":
            int_c = cm.int_op
            real_div = cm.real_div

            def step(
                thread, task, frame, _ra=ra, _va=va, _rb=rb, _vb=vb, _rid=rid,
                _ic=int_c, _rd=real_div, _gen=generic, _in=instr, _ma=ma, _mb=mb,
            ):
                regs = frame.regs
                try:
                    a = regs[_ra] if _ra is not None else _va
                    b = regs[_rb] if _rb is not None else _vb
                except KeyError:
                    raise RuntimeError_(
                        _ma if _ra is not None and _ra not in regs else _mb
                    )
                if isinstance(a, TupleValue) or isinstance(b, TupleValue):
                    return _gen(thread, task, frame, _in)
                if isinstance(a, int) and isinstance(b, int):
                    r = _idiv(a, b)
                    cost = _ic
                else:
                    if b == 0:
                        raise RuntimeError_("division by zero")
                    r = a / b
                    cost = _rd if isinstance(r, float) else _ic
                regs[_rid] = r
                frame.index += 1
                return cost

            return step

        if op == "%":
            int_c = cm.int_op
            real_c = cm.real_op

            def step(
                thread, task, frame, _ra=ra, _va=va, _rb=rb, _vb=vb, _rid=rid,
                _ic=int_c, _rc=real_c, _gen=generic, _in=instr, _ma=ma, _mb=mb,
            ):
                regs = frame.regs
                try:
                    a = regs[_ra] if _ra is not None else _va
                    b = regs[_rb] if _rb is not None else _vb
                except KeyError:
                    raise RuntimeError_(
                        _ma if _ra is not None and _ra not in regs else _mb
                    )
                if isinstance(a, TupleValue) or isinstance(b, TupleValue):
                    return _gen(thread, task, frame, _in)
                if isinstance(a, int) and isinstance(b, int):
                    r = _imod(a, b)
                    cost = _ic
                else:
                    r = a % b
                    cost = _rc if isinstance(r, float) else _ic
                regs[_rid] = r
                frame.index += 1
                return cost

            return step

        pow_c = cm.real_pow

        def step(
            thread, task, frame, _ra=ra, _va=va, _rb=rb, _vb=vb, _rid=rid,
            _pc=pow_c, _gen=generic, _in=instr, _ma=ma, _mb=mb,
        ):
            regs = frame.regs
            try:
                a = regs[_ra] if _ra is not None else _va
                b = regs[_rb] if _rb is not None else _vb
            except KeyError:
                raise RuntimeError_(
                    _ma if _ra is not None and _ra not in regs else _mb
                )
            if isinstance(a, TupleValue) or isinstance(b, TupleValue):
                return _gen(thread, task, frame, _in)
            regs[_rid] = a**b
            frame.index += 1
            return _pc

        return step

    def _sp_unop(self, instr):
        interp = self.interp
        cm = interp.cost_model
        get = _make_getter(interp, instr.operand)
        rid = instr.result.rid

        if instr.op == "-":
            int_c = cm.int_op
            slot_c = cm.tuple_op_per_slot

            def step(thread, task, frame, _g=get, _rid=rid, _ic=int_c, _sc=slot_c):
                v = _g(frame)
                if isinstance(v, TupleValue):
                    out = TupleValue([-x for x in v.elems])
                    cost = _sc * len(v.elems)
                else:
                    out = -v
                    cost = _ic
                frame.regs[_rid] = out
                frame.index += 1
                return cost

            return step

        if instr.op == "!":
            int_c = cm.int_op

            def step(thread, task, frame, _g=get, _rid=rid, _ic=int_c):
                frame.regs[_rid] = not _g(frame)
                frame.index += 1
                return _ic

            return step

        return self._delegate(instr)

    def _sp_cast(self, instr):
        interp = self.interp
        get = _make_getter(interp, instr.value)
        rid = instr.result.rid
        cost = interp.cost_model.int_op
        ty = instr.result.type
        conv = float if isinstance(ty, RealType) else int if isinstance(ty, IntType) else None

        if conv is None:

            def step(thread, task, frame, _g=get, _rid=rid, _cost=cost):
                frame.regs[_rid] = _g(frame)
                frame.index += 1
                return _cost

            return step

        def step(thread, task, frame, _g=get, _rid=rid, _conv=conv, _cost=cost):
            frame.regs[_rid] = _conv(_g(frame))
            frame.index += 1
            return _cost

        return step

    def _sp_br(self, instr):
        target = instr.target
        cost = self.interp.cost_model.br

        def step(thread, task, frame, _t=target, _cost=cost):
            frame.block = _t
            frame.index = 0
            return _cost

        return step

    def _sp_cbr(self, instr):
        cond = instr.cond
        then_block = instr.then_block
        else_block = instr.else_block
        cost = self.interp.cost_model.cbr

        if isinstance(cond, I.Register):
            msg = f"register {cond} read before definition"

            def step(
                thread, task, frame, _rc=cond.rid, _t=then_block, _e=else_block,
                _cost=cost, _msg=msg,
            ):
                try:
                    c = frame.regs[_rc]
                except KeyError:
                    raise RuntimeError_(_msg)
                frame.block = _t if c else _e
                frame.index = 0
                return _cost

            return step

        get = _make_getter(self.interp, cond)

        def step(thread, task, frame, _g=get, _t=then_block, _e=else_block, _cost=cost):
            frame.block = _t if _g(frame) else _e
            frame.index = 0
            return _cost

        return step

    def _sp_make_range(self, instr):
        interp = self.interp
        gl = _make_getter(interp, instr.ops[0])
        gh = _make_getter(interp, instr.ops[1])
        gs = _make_getter(interp, instr.ops[2])
        rid = instr.result.rid
        counted = instr.counted
        cost = interp.cost_model.make_range

        def step(
            thread, task, frame, _gl=gl, _gh=gh, _gs=gs, _rid=rid, _ct=counted, _cost=cost
        ):
            lo = _gl(frame)
            hi = _gh(frame)
            step_ = _gs(frame)
            if _ct:
                hi = lo + (hi - 1) * abs(step_) if step_ != 1 else lo + hi - 1
            frame.regs[_rid] = RangeValue(lo, hi, step_)
            frame.index += 1
            return _cost

        return step

    def _sp_make_tuple(self, instr):
        interp = self.interp
        getters = [_make_getter(interp, e) for e in instr.ops]
        rid = instr.result.rid
        base = interp.cost_model.make_tuple_base
        per_slot = interp.cost_model.make_tuple_per_slot

        def step(thread, task, frame, _gs=getters, _rid=rid, _base=base, _ps=per_slot):
            tup = TupleValue([copy_value(g(frame)) for g in _gs])
            frame.regs[_rid] = tup
            frame.index += 1
            return _base + _ps * value_slots(tup)

        return step

    def _sp_tuple_get(self, instr):
        interp = self.interp
        gt = _make_getter(interp, instr.tup)
        gk = _make_getter(interp, instr.index)
        rid = instr.result.rid
        cost = interp.cost_model.tuple_get
        if not isinstance(instr.index, I.Constant):
            cost += interp.cost_model.tuple_index_dynamic_extra

        def step(thread, task, frame, _gt=gt, _gk=gk, _rid=rid, _cost=cost):
            tup = _gt(frame)
            k = _gk(frame)
            if not isinstance(tup, TupleValue):
                raise RuntimeError_("tuple access on non-tuple value")
            if not 0 <= k < len(tup.elems):
                raise RuntimeError_(f"tuple index {k} out of range")
            frame.regs[_rid] = tup.elems[k]
            frame.index += 1
            return _cost

        return step

    def _sp_iter_next(self, instr):
        interp = self.interp
        cm = interp.cost_model
        get = _make_getter(interp, instr.state)
        rid = instr.result.rid
        costs = {
            "range": cm.iter_next_range,
            "domain": cm.iter_next_domain,
            "array": cm.iter_next_array,
        }
        zip_extra = cm.iter_next_zip_extra

        if isinstance(instr.state, I.Register):
            msg = f"register {instr.state} read before definition"

            def step(
                thread, task, frame, _rs=instr.state.rid, _rid=rid, _costs=costs,
                _zx=zip_extra, _msg=msg,
            ):
                regs = frame.regs
                try:
                    state = regs[_rs]
                except KeyError:
                    raise RuntimeError_(_msg)
                if not isinstance(state, IterState):
                    raise RuntimeError_("iter_next on non-iterator")
                pos = state.pos + 1
                state.pos = pos
                regs[_rid] = pos <= state.end
                frame.index += 1
                if state.zippered:
                    return _costs[state.kind] + _zx
                return _costs[state.kind]

            return step

        def step(thread, task, frame, _g=get, _rid=rid, _costs=costs, _zx=zip_extra):
            state = _g(frame)
            if not isinstance(state, IterState):
                raise RuntimeError_("iter_next on non-iterator")
            pos = state.pos + 1
            state.pos = pos
            frame.regs[_rid] = pos <= state.end
            frame.index += 1
            if state.zippered:
                return _costs[state.kind] + _zx
            return _costs[state.kind]

        return step

    def _sp_iter_value(self, instr):
        interp = self.interp
        cm = interp.cost_model
        get = _make_getter(interp, instr.state)
        rid = instr.result.rid
        base = cm.iter_value
        dom_cost = base + cm.iter_value_domain_extra
        reindex_extra = cm.elem_addr_reindex_extra
        llc = cm.llc_bytes
        stall = cm.mem_stall
        heap = interp.heap

        def step(
            thread,
            task,
            frame,
            _g=get,
            _rid=rid,
            _base=base,
            _dc=dom_cost,
            _re=reindex_extra,
            _heap=heap,
            _llc=llc,
            _stall=stall,
        ):
            state = _g(frame)
            if not isinstance(state, IterState):
                raise RuntimeError_("iter_value on non-iterator")
            kind = state.kind
            if kind == "range":
                frame.regs[_rid] = state.payload.nth(state.pos)
                frame.index += 1
                return _base
            if kind == "domain":
                dom = state.payload
                coords = dom.coords_of(state.pos)
                frame.regs[_rid] = coords[0] if dom.rank == 1 else TupleValue(list(coords))
                frame.index += 1
                return _dc
            arr = state.payload
            coords = arr.domain.coords_of(state.pos)
            frame.regs[_rid] = (arr.root.data, arr.flat_of(coords))
            frame.index += 1
            cost = _dc
            if arr.is_reindex:
                cost += _re
            if _heap._live_bytes > _llc:
                cost += _stall
            return cost

        return step
