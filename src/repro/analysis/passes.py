"""Analysis-pass manager: registry, ordering, and the advisor entry point.

Passes are small stateless objects with a ``run(ctx)`` method returning
:class:`~repro.analysis.diagnostics.Finding` records.  The manager
verifies the module first (:func:`repro.ir.verifier.verify_for_analysis`
— the diagnostics engine refuses IR whose debug info it cannot trust),
then runs the requested passes over a shared :class:`AnalysisContext`.
"""

from __future__ import annotations

from ..errors import AnalysisError
from ..ir.module import Module
from ..ir.verifier import verify_for_analysis
from .context import AnalysisContext
from .diagnostics import Finding, sort_key


class AnalysisPass:
    """Base class: subclasses set ``name`` and implement ``run``."""

    #: Stable pass name (used for --rules selection; defaults to the
    #: rule id the pass emits).
    name: str = "pass"
    description: str = ""

    def run(self, ctx: AnalysisContext) -> list[Finding]:
        raise NotImplementedError(self.name)


#: name → pass class.  Populated by :func:`register_pass`; the advisor
#: modules register themselves on import.
PASS_REGISTRY: dict[str, type[AnalysisPass]] = {}


def register_pass(cls: type[AnalysisPass]) -> type[AnalysisPass]:
    existing = PASS_REGISTRY.get(cls.name)
    if existing is not None and existing is not cls:
        raise AnalysisError(
            f"analysis pass name {cls.name!r} already registered by "
            f"{existing.__module__}.{existing.__qualname__}"
        )
    PASS_REGISTRY[cls.name] = cls
    return cls


def default_passes() -> list[AnalysisPass]:
    """One instance of every registered pass, in registration order
    (advisor passes first, race detector last — its findings are the
    severe ones and sorting puts them on top anyway)."""
    _ensure_registered()
    return [cls() for cls in PASS_REGISTRY.values()]


def _ensure_registered() -> None:
    # Importing the pass modules populates PASS_REGISTRY.
    from . import advisor as _advisor  # noqa: F401
    from . import comm_advisor as _comm_advisor  # noqa: F401
    from . import races as _races  # noqa: F401


def resolve_passes(names: list[str] | None) -> list[AnalysisPass]:
    if names is None:
        return default_passes()
    _ensure_registered()
    out: list[AnalysisPass] = []
    for name in names:
        cls = PASS_REGISTRY.get(name)
        if cls is None:
            known = ", ".join(sorted(PASS_REGISTRY))
            raise KeyError(f"unknown analysis pass {name!r} (known: {known})")
        out.append(cls())
    return out


def analyze_module(
    module: Module,
    passes: list[str] | None = None,
    options: "object | None" = None,
    verify: bool = True,
) -> list[Finding]:
    """Runs the analysis suite over a compiled module.

    ``passes`` selects rules by name (None = all).  ``verify`` runs the
    structural + debug-info verifier first; disable only for tests that
    deliberately construct partial IR.
    """
    if verify:
        verify_for_analysis(module)
    ctx = AnalysisContext(module, options=options)
    findings: list[Finding] = []
    for p in resolve_passes(passes):
        findings.extend(p.run(ctx))
    return sorted(findings, key=sort_key)
