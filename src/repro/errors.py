"""Typed exception hierarchy for the whole pipeline.

Every error the tool raises on purpose derives from :class:`ReproError`
so callers (the multi-locale harness, the CLIs, CI gates) can separate
"the measurement stack degraded" from genuine programming errors.

Several classes also subclass :class:`ValueError` because earlier
versions raised bare ``ValueError`` at the same sites — existing
``except ValueError`` callers keep working.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised deliberately by the tool."""


class AnalysisError(ReproError, ValueError):
    """The static-analysis layer was misconfigured (e.g. two passes
    registered under the same name)."""


class AggregationError(ReproError, ValueError):
    """Cross-locale aggregation failed (no mergeable reports, bad
    locale count, all locales lost)."""


class SampleFormatError(ReproError, ValueError):
    """A sample record or dataset header is malformed or has an
    unsupported version."""


class DebugInfoError(ReproError):
    """An address could not be resolved against the debug info (strict
    resolution only — the tolerant pipeline buckets these instead)."""


class DatasetCorruptError(ReproError):
    """A journaled dataset failed checksum validation beyond its
    recoverable prefix (corrupt header, or strict-mode tail damage)."""


class ArtifactError(ReproError, ValueError):
    """A ``.cbp`` profile artifact is unreadable: bad magic, checksum
    mismatch (bit flip), truncation (missing footer), or a structurally
    invalid section."""


class ArtifactVersionError(ArtifactError):
    """The artifact's format version is not supported by this reader
    (the header is intact — the file comes from a different tool
    generation, not from corruption)."""


class ParallelError(ReproError, ValueError):
    """The parallel collection pipeline was misconfigured (bad worker
    count, unavailable pool backend, or an option that has no faithful
    sharded equivalent, like streaming mode with multiple workers)."""


class LocaleError(ReproError):
    """Base for per-locale failures in the multi-locale harness."""

    def __init__(self, locale_id: int, message: str) -> None:
        super().__init__(message)
        self.locale_id = locale_id


class LocaleCrashError(LocaleError):
    """A locale's run crashed (injected or real)."""


class LocaleTimeoutError(LocaleError):
    """A locale exceeded the per-locale wall-clock budget."""
