"""Cross-locale aggregation (paper step 4 / future-work hook).

The paper runs single-locale experiments but describes step 3 as
"embarrassingly parallel for multi-locale cases" with a final
aggregation across nodes.  This module implements that merge so the
pipeline is plural-ready: per-locale :class:`BlameReport`s combine by
summing per-(context, variable) sample counts against the summed
denominator.

The merge tolerates partial fleets: when locales crashed or timed out,
their ids arrive via ``missing_locales`` and are carried on the merged
report (the views annotate them), instead of failing the whole
aggregation.  Degradation side-channels (unknown buckets, quarantine
counts) sum across locales like any other counter.
"""

from __future__ import annotations

from collections import defaultdict

from ..errors import AggregationError
from .report import UNKNOWN_BUCKET, BlameReport, BlameRow, RunStats


def _merge_reason_counts(reports: list[BlameReport], attr: str) -> dict[str, int]:
    out: dict[str, int] = {}
    for rep in reports:
        for reason, n in getattr(rep, attr).items():
            out[reason] = out.get(reason, 0) + n
    return out


def merge_reports(
    reports: list[BlameReport],
    program: str | None = None,
    missing_locales: tuple[int, ...] = (),
) -> BlameReport:
    """Merges per-locale reports into a whole-program report."""
    if not reports:
        raise AggregationError(
            "no reports to merge"
            + (f" (missing locales: {sorted(set(missing_locales))})" if missing_locales else "")
        )
    if len(reports) == 1 and not missing_locales:
        return reports[0]

    samples: dict[tuple[str, str], int] = defaultdict(int)
    meta: dict[tuple[str, str], BlameRow] = {}
    total_user = 0
    total_unknown = 0
    stats = RunStats()
    # A locale can be reported missing by several siblings (or by the
    # caller AND by an input that is itself a merge) — dedupe, and union
    # in coverage gaps the input reports already carry.
    missing: set[int] = set(missing_locales)
    for rep in reports:
        missing.update(rep.missing_locales)
    for rep in reports:
        total_user += rep.stats.user_samples
        total_unknown += rep.stats.unknown_samples
        stats.total_raw_samples += rep.stats.total_raw_samples
        stats.user_samples += rep.stats.user_samples
        stats.runtime_samples += rep.stats.runtime_samples
        stats.wall_seconds = max(stats.wall_seconds, rep.stats.wall_seconds)
        stats.dataset_bytes += rep.stats.dataset_bytes
        stats.stackwalk_cycles += rep.stats.stackwalk_cycles
        stats.postmortem_seconds += rep.stats.postmortem_seconds
        stats.unknown_samples += rep.stats.unknown_samples
        stats.quarantined_samples += rep.stats.quarantined_samples
        stats.recovered_samples += rep.stats.recovered_samples
        for row in rep.rows:
            if row.name == UNKNOWN_BUCKET:
                continue  # re-derived below from the summed counts
            key = (row.context, row.name)
            samples[key] += row.samples
            meta.setdefault(key, row)

    denominator = total_user + total_unknown
    rows = [
        BlameRow(
            name=meta[key].name,
            type_str=meta[key].type_str,
            blame=(n / denominator if denominator else 0.0),
            context=meta[key].context,
            samples=n,
            is_path=meta[key].is_path,
        )
        for key, n in samples.items()
    ]
    if total_unknown > 0:
        rows.append(
            BlameRow(
                name=UNKNOWN_BUCKET,
                type_str="",
                blame=(total_unknown / denominator if denominator else 0.0),
                context=UNKNOWN_BUCKET,
                samples=total_unknown,
                is_path=False,
            )
        )
    rows.sort(key=lambda r: (-r.samples, r.context, r.name))
    return BlameReport(
        program=program or reports[0].program,
        rows=rows,
        stats=stats,
        locale_id=-1,
        unknown_by_reason=_merge_reason_counts(reports, "unknown_by_reason"),
        quarantine_by_reason=_merge_reason_counts(reports, "quarantine_by_reason"),
        missing_locales=tuple(sorted(missing)),
    )
