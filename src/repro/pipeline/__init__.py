"""Staged profiling pipeline (compile → analyze → collect → post-mortem
→ aggregate → render) with the ``.cbp`` artifact as the contract
between collection and presentation."""

from .stages import (
    VIEWS,
    Collection,
    aggregate_stage,
    analyze_stage,
    attribute_stage,
    collect_stage,
    compile_stage,
    postmortem_stage,
    render_stage,
)

__all__ = [
    "VIEWS",
    "Collection",
    "aggregate_stage",
    "analyze_stage",
    "attribute_stage",
    "collect_stage",
    "compile_stage",
    "postmortem_stage",
    "render_stage",
]
