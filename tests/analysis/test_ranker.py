"""Blame-guided ranker tests: variable ↔ blame-row matching (including
``->name[...]`` path rows) and profile-driven reordering."""

from repro.analysis import Severity, analyze_module, rank_findings
from repro.analysis.diagnostics import Finding
from repro.analysis.ranker import attach_blame, blame_for_variables
from repro.bench.programs import minimd
from repro.blame.report import BlameReport, BlameRow, RunStats
from repro.tooling.profiler import Profiler


def row(name, blame, is_path=False, context="main"):
    return BlameRow(
        name=name,
        type_str="real",
        blame=blame,
        context=context,
        samples=int(blame * 1000),
        is_path=is_path,
    )


def report_of(*rows):
    return BlameReport(program="t.chpl", rows=list(rows), stats=RunStats())


def mk(variables, severity=Severity.WARNING, line=1):
    return Finding(
        rule="zippered-iteration",
        severity=severity,
        message="m",
        file="t.chpl",
        line=line,
        function="main",
        variables=tuple(variables),
    )


class TestMatching:
    def test_exact_name(self):
        rep = report_of(row("Pos", 0.4))
        assert blame_for_variables(rep, ("Pos",)) == 0.4

    def test_path_row_prefix(self):
        rep = report_of(row("->Bins[i].f", 0.3, is_path=True))
        assert blame_for_variables(rep, ("Bins",)) == 0.3

    def test_no_false_prefix_match(self):
        # "Pos" must not match the unrelated variable "Position".
        rep = report_of(row("->Position[i]", 0.9, is_path=True))
        assert blame_for_variables(rep, ("Pos",)) is None

    def test_max_over_variables_and_rows(self):
        rep = report_of(
            row("A", 0.1), row("->A[i]", 0.5, is_path=True), row("B", 0.3)
        )
        assert blame_for_variables(rep, ("A", "B")) == 0.5

    def test_attach_preserves_unmatched(self):
        f = attach_blame(mk(("nope",)), report_of(row("A", 0.5)))
        assert f.blame is None

    def test_attach_without_variables_is_identity(self):
        f = mk(())
        assert attach_blame(f, report_of(row("A", 0.5))) is f


class TestRanking:
    def test_blame_orders_within_severity(self):
        rep = report_of(row("hot", 0.8), row("cold", 0.01))
        low = mk(("cold",), line=1)
        high = mk(("hot",), line=2)
        ranked = rank_findings([low, high], rep)
        assert [f.variables[0] for f in ranked] == ["hot", "cold"]
        assert ranked[0].blame == 0.8

    def test_severity_still_dominates_blame(self):
        rep = report_of(row("hot", 0.9))
        warn = mk(("hot",), severity=Severity.WARNING)
        err = mk((), severity=Severity.ERROR, line=9)
        ranked = rank_findings([warn, err], rep)
        assert ranked[0].severity is Severity.ERROR


class TestEndToEnd:
    def test_minimd_findings_pick_up_measured_blame(self):
        result = Profiler(
            minimd.build_source(optimized=False),
            filename="minimd.chpl",
            num_threads=4,
        ).profile()
        findings = analyze_module(result.module)
        ranked = rank_findings(findings, result.report)
        blamed = [f for f in ranked if f.blame is not None]
        # The zippered/slice findings name RealPos/Bins/Pos, all of
        # which carry measured blame in the paper's Table II analogue.
        assert blamed, "no finding matched a measured blame row"
        assert max(f.blame for f in blamed) > 0.0
