"""Property tests (hypothesis): *any* deterministic contiguous split of
the sample stream, merged through the two-phase evidence protocol,
equals the unsharded post-mortem — clean and under FaultInjector
degradation, shard counts 1–8 and arbitrary uneven splits."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blame.attribution import BlameAttributor, merge_attributions
from repro.blame.postmortem import (
    PostmortemConsumer,
    PostmortemResult,
    ShardEvidence,
)
from repro.pipeline import (
    attribute_stage,
    parallel_postmortem,
    postmortem_stage,
)

from .conftest import FAULT_SPEC, collected

_SERIAL: dict = {}


def serial_baseline(faults):
    if faults not in _SERIAL:
        module, static, samples, _ = collected("minimd", faults)
        pm = postmortem_stage(module, samples, options=static.options)
        _SERIAL[faults] = (pm, attribute_stage(static, pm))
    return _SERIAL[faults]


@settings(max_examples=25, deadline=None)
@given(
    faults=st.sampled_from([None, FAULT_SPEC]),
    fractions=st.lists(st.floats(0.0, 1.0), min_size=0, max_size=7),
)
def test_any_contiguous_split_merges_to_the_serial_result(faults, fractions):
    """The low-level seam: hand-picked (arbitrarily uneven, possibly
    empty) contiguous shards through shard_state → evidence merge →
    resolve_with_evidence reproduce the serial consumer exactly."""
    module, static, samples, _ = collected("minimd", faults)
    cuts = sorted({int(f * len(samples)) for f in fractions})
    bounds = [0] + cuts + [len(samples)]
    shards = [samples[a:b] for a, b in zip(bounds, bounds[1:])]
    assert [s for shard in shards for s in shard] == samples

    states = []
    for shard in shards:
        consumer = PostmortemConsumer(
            module, options=static.options, tolerant=True
        )
        consumer.feed(shard)
        states.append(consumer.shard_state())
    evidence = ShardEvidence.merge([state.evidence for state in states])
    candidates = [c for state in states for c in state.candidates]
    recovered, unknown, n_late = PostmortemConsumer.resolve_with_evidence(
        module, candidates, evidence, options=static.options
    )
    merged = PostmortemResult(
        instances=[i for state in states for i in state.instances]
        + recovered,
        runtime_samples=[
            s for state in states for s in state.runtime_samples
        ],
        n_raw=sum(state.n_raw for state in states),
        unknown=unknown,
        quarantined=[d for state in states for d in state.quarantined],
        n_recovered=sum(state.n_repaired for state in states) + n_late,
        n_runtime=sum(state.n_runtime for state in states),
    )
    serial_pm, serial_attr = serial_baseline(faults)
    assert merged == serial_pm

    attrs = [
        BlameAttributor(static).attribute(state.instances)
        for state in states
    ]
    attrs.append(BlameAttributor(static).attribute(recovered))
    assert merge_attributions(attrs) == serial_attr


@settings(max_examples=16, deadline=None)
@given(
    workers=st.integers(1, 8),
    faults=st.sampled_from([None, FAULT_SPEC]),
)
def test_shard_counts_one_to_eight(workers, faults):
    """The full sharded pipeline at every worker count the benchmark
    sweeps, against the one serial baseline."""
    module, static, samples, wall = collected("minimd", faults)
    serial_pm, serial_attr = serial_baseline(faults)
    par = parallel_postmortem(
        module, static, samples,
        workers=workers, backend="inline", wall_seconds=wall,
    )
    assert par.postmortem == serial_pm
    assert par.attribution == serial_attr
