"""Exit-variable identification (paper §IV.A).

"We define an exit variable as having scope outside of the function.
This includes incoming parameters that are pointers, global variables
used by the function, and return values."

Here: ``ref`` formals, globals the function writes (directly or via
descriptor ops), and the return-value pseudo-variable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.module import Function
from .dataflow import RET_KEY, DataFlow, VarKey, is_pointer_like


@dataclass(frozen=True)
class ExitVars:
    """Exit variables of one function."""

    ref_formals: frozenset[VarKey]
    globals_written: frozenset[VarKey]
    has_return: bool

    def is_exit(self, key: VarKey) -> bool:
        if key.kind == "global":
            return True
        if key == RET_KEY:
            return self.has_return
        return key in self.ref_formals


def compute_exit_vars(function: Function, dataflow: DataFlow) -> ExitVars:
    """ref formals plus pointer-like "in" formals (arrays/classes/
    domains have reference semantics), written globals, return value."""
    ref_formals = frozenset(
        VarKey("formal", p.name)
        for p in function.params
        if p.intent == "ref" or is_pointer_like(p.type)
    )
    globals_written = frozenset(
        key for key in dataflow.writes if key.kind == "global"
    )
    has_return = RET_KEY in dataflow.writes
    return ExitVars(
        ref_formals=ref_formals,
        globals_written=globals_written,
        has_return=has_return,
    )
