"""Hand-written lexer for the mini-Chapel frontend.

Produces a flat list of :class:`~repro.chapel.tokens.Token` with precise
source locations; line numbers feed the IR debug info that the blame
analysis later uses to map samples back to source lines, so location
accuracy here is load-bearing for the whole pipeline.
"""

from __future__ import annotations

from .errors import LexError
from .tokens import KEYWORDS, SourceLocation, Token, TokenKind

_SINGLE_CHAR: dict[str, TokenKind] = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    ",": TokenKind.COMMA,
    ";": TokenKind.SEMI,
    ":": TokenKind.COLON,
    "%": TokenKind.PERCENT,
    "#": TokenKind.HASH,
    "?": TokenKind.QUESTION,
}


class Lexer:
    """Converts mini-Chapel source text into tokens.

    Usage::

        tokens = Lexer(source, filename="prog.chpl").tokenize()
    """

    def __init__(self, source: str, filename: str = "<string>") -> None:
        self.source = source
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.col = 1
        self.tokens: list[Token] = []

    # -- Low-level cursor helpers -------------------------------------------

    def _loc(self) -> SourceLocation:
        return SourceLocation(self.filename, self.line, self.col)

    def _peek(self, offset: int = 0) -> str:
        idx = self.pos + offset
        return self.source[idx] if idx < len(self.source) else ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos < len(self.source):
                if self.source[self.pos] == "\n":
                    self.line += 1
                    self.col = 1
                else:
                    self.col += 1
                self.pos += 1

    def _emit(self, kind: TokenKind, text: str, loc: SourceLocation) -> None:
        self.tokens.append(Token(kind, text, loc))

    # -- Scanners ------------------------------------------------------------

    def _skip_trivia(self) -> None:
        """Skips whitespace and both comment styles (``//`` and ``/* */``)."""
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start = self._loc()
                self._advance(2)
                depth = 1
                while depth > 0:
                    if self.pos >= len(self.source):
                        raise LexError("unterminated block comment", start)
                    if self._peek() == "/" and self._peek(1) == "*":
                        depth += 1
                        self._advance(2)
                    elif self._peek() == "*" and self._peek(1) == "/":
                        depth -= 1
                        self._advance(2)
                    else:
                        self._advance()
            else:
                return

    def _scan_number(self) -> None:
        loc = self._loc()
        start = self.pos
        while self._peek().isdigit() or self._peek() == "_":
            self._advance()
        is_real = False
        # A '.' begins a fraction only if not the start of a '..' range.
        if self._peek() == "." and self._peek(1).isdigit():
            is_real = True
            self._advance()
            while self._peek().isdigit() or self._peek() == "_":
                self._advance()
        if self._peek() in "eE" and (
            self._peek(1).isdigit()
            or (self._peek(1) in "+-" and self._peek(2).isdigit())
        ):
            is_real = True
            self._advance()
            if self._peek() in "+-":
                self._advance()
            while self._peek().isdigit():
                self._advance()
        text = self.source[start : self.pos].replace("_", "")
        self._emit(TokenKind.REAL_LIT if is_real else TokenKind.INT_LIT, text, loc)

    def _scan_ident(self) -> None:
        loc = self._loc()
        start = self.pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self.source[start : self.pos]
        kind = KEYWORDS.get(text, TokenKind.IDENT)
        self._emit(kind, text, loc)

    def _scan_string(self) -> None:
        loc = self._loc()
        quote = self._peek()
        self._advance()
        chars: list[str] = []
        while True:
            if self.pos >= len(self.source) or self._peek() == "\n":
                raise LexError("unterminated string literal", loc)
            ch = self._peek()
            if ch == quote:
                self._advance()
                break
            if ch == "\\":
                self._advance()
                esc = self._peek()
                mapped = {"n": "\n", "t": "\t", "\\": "\\", '"': '"', "'": "'"}.get(esc)
                if mapped is None:
                    raise LexError(f"unknown escape sequence '\\{esc}'", self._loc())
                chars.append(mapped)
                self._advance()
            else:
                chars.append(ch)
                self._advance()
        self._emit(TokenKind.STRING_LIT, "".join(chars), loc)

    def _scan_operator(self) -> None:
        loc = self._loc()
        three = self.source[self.pos : self.pos + 3]
        two = self.source[self.pos : self.pos + 2]
        one = self._peek()
        if three == "..#":
            self._emit(TokenKind.DOTDOTHASH, three, loc)
            self._advance(3)
            return
        two_map = {
            "..": TokenKind.DOTDOT,
            "**": TokenKind.STARSTAR,
            "+=": TokenKind.PLUS_ASSIGN,
            "-=": TokenKind.MINUS_ASSIGN,
            "*=": TokenKind.STAR_ASSIGN,
            "/=": TokenKind.SLASH_ASSIGN,
            "==": TokenKind.EQ,
            "!=": TokenKind.NE,
            "<=": TokenKind.LE,
            ">=": TokenKind.GE,
            "&&": TokenKind.AND,
            "||": TokenKind.OR,
            "=>": TokenKind.ARROW,
        }
        if two in two_map:
            self._emit(two_map[two], two, loc)
            self._advance(2)
            return
        one_map = {
            "+": TokenKind.PLUS,
            "-": TokenKind.MINUS,
            "*": TokenKind.STAR,
            "/": TokenKind.SLASH,
            "=": TokenKind.ASSIGN,
            "<": TokenKind.LT,
            ">": TokenKind.GT,
            "!": TokenKind.NOT,
            ".": TokenKind.DOT,
        }
        if one in one_map:
            self._emit(one_map[one], one, loc)
            self._advance()
            return
        if one in _SINGLE_CHAR:
            self._emit(_SINGLE_CHAR[one], one, loc)
            self._advance()
            return
        raise LexError(f"unexpected character {one!r}", loc)

    # -- Entry point -----------------------------------------------------------

    def tokenize(self) -> list[Token]:
        """Scans the whole source and returns tokens ending with EOF."""
        while True:
            self._skip_trivia()
            if self.pos >= len(self.source):
                break
            ch = self._peek()
            if ch.isdigit():
                self._scan_number()
            elif ch.isalpha() or ch == "_":
                self._scan_ident()
            elif ch in "\"'":
                self._scan_string()
            else:
                self._scan_operator()
        self._emit(TokenKind.EOF, "", self._loc())
        return self.tokens


def tokenize(source: str, filename: str = "<string>") -> list[Token]:
    """Convenience wrapper: lex ``source`` into a token list."""
    return Lexer(source, filename).tokenize()
