"""Merging profile artifacts (per-locale or per-run shards).

The multi-locale harness now aggregates *through* this module: each
locale's run becomes a :class:`~repro.artifact.model.ProfileSnapshot`
(optionally persisted as ``.cbp``), and the program-wide report is the
merge of those snapshots.  The blame math itself is unchanged — row
counts combine exactly as :func:`repro.blame.aggregate.merge_reports`
always combined them — the artifact layer adds the instance streams,
function catalogs, and degradation provenance so the merged profile
still renders every view (including code-centric, which needs
instances) without re-running anything.
"""

from __future__ import annotations

from ..blame.aggregate import merge_reports
from ..errors import ArtifactError
from .model import (
    ArtifactMeta,
    FunctionCatalog,
    ProfileSnapshot,
    SnapshotPostmortem,
)

#: Fault-injection counters every injector version reports; they lead
#: the merged dict in this stable order.  Counters outside this tuple
#: (new injector modes) are preserved and summed too — first-seen order
#: after the known ones — instead of being silently dropped.
_FAULT_COUNTERS = (
    "examined", "dropped", "corrupted", "truncated", "tags_lost", "stripped",
)


def _merge_fault_stats(snaps: list[ProfileSnapshot]) -> dict | None:
    present = [s.fault_stats for s in snaps if s.fault_stats]
    if not present:
        return None
    out: dict = {k: 0 for k in _FAULT_COUNTERS}
    stripped: set[str] = set()
    for fs in present:
        for k, v in fs.items():
            if k == "stripped_functions":
                stripped.update(v or ())
            elif isinstance(v, (int, float)) and not isinstance(v, bool):
                out[k] = out.get(k, 0) + v
            # Non-numeric values (flags, labels) have no meaningful sum;
            # they are dropped as before.
    out["stripped_functions"] = sorted(stripped)
    return out


def merge_snapshots(
    snapshots: list[ProfileSnapshot],
    program: str | None = None,
    missing_locales: tuple[int, ...] = (),
) -> ProfileSnapshot:
    """Merges per-locale/per-run snapshots into one program-wide snapshot.

    ``missing_locales`` (locales that crashed or timed out and produced
    no artifact) is carried onto the merged report exactly as the
    in-memory aggregation always carried it — deduplicated and sorted
    (a locale can both crash and be reported missing by a sibling), and
    unioned with coverage gaps the input snapshots already carry (an
    input that is itself a merge).  A single snapshot with no missing
    locales merges to itself — the single-locale base case stays the
    identity it has always been.

    Snapshots recorded from *different* program sources refuse to merge
    (that is a job for :mod:`repro.artifact.diff`, not aggregation).
    """
    if not snapshots:
        raise ArtifactError(
            "no artifacts to merge"
            + (
                f" (missing locales: {sorted(set(missing_locales))})"
                if missing_locales
                else ""
            )
        )
    digests = {
        s.meta.source_sha256
        for s in snapshots
        if s.meta.source_sha256 is not None
    }
    if len(digests) > 1:
        raise ArtifactError(
            "refusing to merge artifacts recorded from different sources: "
            + ", ".join(sorted(d[:12] + "…" for d in digests))
        )
    if len(snapshots) == 1 and not missing_locales:
        return snapshots[0]

    merged_report = merge_reports(
        [s.report for s in snapshots],
        program=program,
        missing_locales=missing_locales,
    )

    catalog = snapshots[0].catalog
    for s in snapshots[1:]:
        catalog = catalog.union(s.catalog)

    instances = [i for s in snapshots for i in s.postmortem.instances]
    postmortem = SnapshotPostmortem(
        instances=instances,
        n_raw=sum(s.postmortem.n_raw for s in snapshots),
        n_runtime=sum(s.postmortem.n_runtime for s in snapshots),
        n_recovered=sum(s.postmortem.n_recovered for s in snapshots),
        unknown_provenance=[
            p for s in snapshots for p in s.postmortem.unknown_provenance
        ],
        quarantine_provenance=[
            p for s in snapshots for p in s.postmortem.quarantine_provenance
        ],
    )

    first = snapshots[0].meta
    meta = ArtifactMeta(
        program=program or merged_report.program,
        source_sha256=next(iter(digests)) if digests else None,
        threshold=first.threshold,
        num_threads=first.num_threads,
        locale_id=-1,
        kind="merged",
        created_by=first.created_by,
    )
    return ProfileSnapshot(
        meta=meta,
        report=merged_report,
        catalog=catalog,
        postmortem=postmortem,
        fault_stats=_merge_fault_stats(snapshots),
    )
