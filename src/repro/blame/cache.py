"""Content-hash keyed caching for the static blame pipeline.

The static analyses (data flow, slice graphs / blame sets, exit
variables, transfer functions) are pure functions of the function's IR,
the module-wide alias facts, the module's signatures/globals, and the
:class:`~repro.blame.options.BlameOptions` in effect.  Repeated
``Profiler.profile()`` calls — and the benchmark scripts that share the
MiniMD/CLOMP/LULESH modules — therefore reuse prior results, keyed on a
content hash (sha256) of the IR: unchanged IR → cache hit; any in-place
mutation (a compiler pass, a test rewriting an instruction) changes the
fingerprint and transparently invalidates.

Cached results are stored on the IR objects themselves
(``Function.__dict__`` / ``Module.__dict__``), never in a global table:
blame sets are keyed by instruction ids, which are only meaningful for
the exact module object they were computed from, so results can never
leak across distinct modules that happen to share source text.

``STATS`` counts hits/misses for the cache tests and the perf bench.
"""

from __future__ import annotations

import hashlib

from ..ir import instructions as I
from ..ir.module import Function, Module

#: Attribute names used for on-object cache storage.
_FN_ATTR = "_blame_fn_cache"
_MOD_ATTR = "_blame_mod_cache"

#: Per-instruction attributes that are semantically load-bearing but do
#: not appear in the instruction's ``__str__`` rendering.
_EXTRA_ATTRS = ("counted", "zippered", "formal_home")


class CacheStats:
    """Hit/miss counters for the analysis caches."""

    __slots__ = ("module_hits", "module_misses", "function_hits", "function_misses")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.module_hits = 0
        self.module_misses = 0
        self.function_hits = 0
        self.function_misses = 0

    def __repr__(self) -> str:
        return (
            f"<CacheStats module {self.module_hits}h/{self.module_misses}m, "
            f"function {self.function_hits}h/{self.function_misses}m>"
        )


STATS = CacheStats()


def function_fingerprint(fn: Function) -> str:
    """sha256 over the function's rendered IR (signature, blocks,
    instructions with their ids and operands).

    Source locations are deliberately excluded: blame sets do not depend
    on them (line maps are derived live from the function object).
    """
    h = hashlib.sha256()
    w = h.update
    w(f"fn {fn.name} -> {fn.return_type}\n".encode())
    for p in fn.params:
        w(
            f"param {p.name} {p.intent} {p.type} "
            f"%{p.register.rid} {p.is_temp}\n".encode()
        )
    for block in fn.blocks:
        w(f"block {block.label}\n".encode())
        for ins in block.instructions:
            w(f"{ins.iid}: {ins}".encode())
            for attr in _EXTRA_ATTRS:
                if hasattr(ins, attr):
                    w(f" {attr}={getattr(ins, attr)}".encode())
            if isinstance(ins, I.FieldAddr):
                w(f" index={ins.index}".encode())
            w(b"\n")
    return h.hexdigest()


def module_signatures_fingerprint(module: Module) -> str:
    """sha256 over everything a per-function analysis may consult
    *outside* the function body: callee signatures, globals, records."""
    h = hashlib.sha256()
    w = h.update
    for name, fn in module.functions.items():
        params = ",".join(
            f"{p.name}:{p.intent}:{p.type}:%{p.register.rid}" for p in fn.params
        )
        w(
            f"sig {name}({params}) -> {fn.return_type} "
            f"src={fn.source_name} out={fn.outlined_from} "
            f"art={fn.is_artificial}\n".encode()
        )
    for name, g in module.globals.items():
        w(f"global {name}:{g.type} cfg={g.is_config} tmp={g.is_temp}\n".encode())
    for name, rec in module.records.items():
        fields = ",".join(f"{fn_}:{ft}" for fn_, ft in rec.fields)
        w(f"record {name}({fields}) class={rec.is_class}\n".encode())
    return h.hexdigest()


def module_fingerprint(module: Module) -> str:
    """sha256 over the whole module: signatures/globals/records plus
    every function body fingerprint."""
    h = hashlib.sha256()
    h.update(module_signatures_fingerprint(module).encode())
    for name, fn in module.functions.items():
        h.update(f"{name}={function_fingerprint(fn)}\n".encode())
    h.update(
        f"init={module.global_init.name if module.global_init else None} "
        f"main={module.main.name if module.main else None}".encode()
    )
    return h.hexdigest()


def aliases_fingerprint(global_aliases: dict) -> str:
    """Stable digest of the module-wide alias facts fed into phase 2."""
    items = sorted(
        (repr(key), sorted(map(repr, roots)))
        for key, roots in global_aliases.items()
    )
    return hashlib.sha256(repr(items).encode()).hexdigest()


def cached_function_info(fn: Function, key: tuple):
    """Returns the FunctionBlameInfo cached on ``fn`` for ``key``, or
    None.  ``key`` must include the function fingerprint so in-place IR
    edits invalidate."""
    entry = fn.__dict__.get(_FN_ATTR)
    if entry is not None and entry[0] == key:
        STATS.function_hits += 1
        return entry[1]
    STATS.function_misses += 1
    return None


def store_function_info(fn: Function, key: tuple, info) -> None:
    fn.__dict__[_FN_ATTR] = (key, info)


def cached_module_info(module: Module, options, fingerprint: str):
    """Returns the ModuleBlameInfo cached on ``module`` for ``options``
    if its stored fingerprint matches, else None (counting hit/miss)."""
    cache = module.__dict__.setdefault(_MOD_ATTR, {})
    entry = cache.get(options)
    if entry is not None and entry[0] == fingerprint:
        STATS.module_hits += 1
        return entry[1]
    STATS.module_misses += 1
    return None


def store_module_info(module: Module, options, fingerprint: str, info) -> None:
    cache = module.__dict__.setdefault(_MOD_ATTR, {})
    cache[options] = (fingerprint, info)


def cached_module_blame_info(module: Module, options: "object | None" = None):
    """Module-level entry point: returns a (possibly cached)
    :class:`~repro.blame.static_info.ModuleBlameInfo`.

    The cache key is (module content fingerprint, options); a fingerprint
    mismatch — the module's IR changed in place — rebuilds.  Per-function
    results are additionally cached on each Function, so a rebuild after
    editing one function re-analyzes only that function (plus the cheap
    alias fixpoint).
    """
    from .options import FULL
    from .static_info import ModuleBlameInfo

    opts = options or FULL
    fp = module_fingerprint(module)
    info = cached_module_info(module, opts, fp)
    if info is not None:
        return info
    info = ModuleBlameInfo(module, options=opts)
    store_module_info(module, opts, fp, info)
    return info
