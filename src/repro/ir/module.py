"""IR containers: Module, Function, BasicBlock, GlobalVar.

A :class:`Module` is the unit the whole pipeline operates on — the
analogue of an LLVM bitcode file with debug info.  It owns the global
variables (Chapel module-level variables — the ``main`` context of the
paper's blame tables), the record type table, and all functions
(including compiler-outlined parallel-loop bodies, the analogue of
Chapel's ``coforall_fn_chplNN`` functions visible in paper Fig. 4).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..chapel.tokens import SourceLocation
from ..chapel.types import RecordType, Type
from .instructions import Instruction, Register


@dataclass
class GlobalVar:
    """A module-level variable (static storage).

    ``is_config`` marks Chapel ``config`` variables whose initializer may
    be overridden per run.  ``is_temp`` marks compiler-generated globals
    (hidden in reports, tracked in data flow).
    """

    name: str
    type: Type
    loc: SourceLocation
    is_config: bool = False
    is_temp: bool = False


class BasicBlock:
    """A straight-line instruction sequence ending in one terminator."""

    _counter = itertools.count()

    def __init__(self, label: str | None = None) -> None:
        self.label = label or f"bb{next(BasicBlock._counter)}"
        self.instructions: list[Instruction] = []
        self.function: "Function | None" = None

    def append(self, instr: Instruction) -> Instruction:
        self.instructions.append(instr)
        instr.parent = self
        return instr

    @property
    def terminator(self) -> Instruction | None:
        if self.instructions and self.instructions[-1].is_terminator():
            return self.instructions[-1]
        return None

    def successors(self) -> list["BasicBlock"]:
        term = self.terminator
        if term is None:
            return []
        from .instructions import Br, CBr

        if isinstance(term, Br):
            return [term.target]  # type: ignore[list-item]
        if isinstance(term, CBr):
            # A cbr with identical arms has one successor.
            if term.then_block is term.else_block:
                return [term.then_block]  # type: ignore[list-item]
            return [term.then_block, term.else_block]  # type: ignore[list-item]
        return []

    def __str__(self) -> str:
        return self.label

    def __repr__(self) -> str:
        return f"<BasicBlock {self.label}: {len(self.instructions)} instrs>"


@dataclass
class FunctionParam:
    """A formal of an IR function.

    ``intent`` "ref" formals receive an *address*; "in" formals receive
    a value.  Ref formals (plus globals and return values) are the
    paper's *exit variables* — the carriers of interprocedural blame.
    """

    name: str
    type: Type
    intent: str  # "in" or "ref"
    register: Register
    is_temp: bool = False


class Function:
    """One IR function.

    ``source_name`` keeps the user-visible name even when passes rename
    the linkage name (what ``--fast`` does to Chapel functions, breaking
    the source mapping — paper §V footnote 1).  ``outlined_from``
    records, for generated parallel-loop bodies, the function whose
    loop was outlined; post-mortem stack gluing uses it.
    """

    def __init__(
        self,
        name: str,
        params: list[FunctionParam],
        return_type: Type,
        loc: SourceLocation,
        source_name: str | None = None,
        outlined_from: str | None = None,
        is_artificial: bool = False,
    ) -> None:
        self.name = name
        self.params = params
        self.return_type = return_type
        self.loc = loc
        self.source_name = source_name or name
        self.outlined_from = outlined_from
        #: Artificial functions carry no user code (e.g. global init).
        self.is_artificial = is_artificial
        #: For outlined parallel-loop bodies: names of variables named in
        #: a ``with (op reduce x)`` intent clause.  Task bodies write a
        #: private accumulator; only the task-end combine touches the
        #: shared storage — the race detector must not flag it.
        self.reduce_vars: frozenset[str] = frozenset()
        self.blocks: list[BasicBlock] = []

    @property
    def entry(self) -> BasicBlock:
        return self.blocks[0]

    def add_block(self, block: BasicBlock) -> BasicBlock:
        block.function = self
        self.blocks.append(block)
        return block

    def instructions(self):
        """Iterates all instructions in block order."""
        for block in self.blocks:
            yield from block.instructions

    def find_instruction(self, iid: int) -> Instruction | None:
        for instr in self.instructions():
            if instr.iid == iid:
                return instr
        return None

    def __repr__(self) -> str:
        return f"<Function {self.name} ({len(self.blocks)} blocks)>"


class Module:
    """A compiled program: globals, record types, and functions.

    ``global_init`` is the artificial function that runs module-level
    initializers before ``main`` (Chapel's module initialization order).
    """

    def __init__(self, name: str = "module") -> None:
        self.name = name
        self.globals: dict[str, GlobalVar] = {}
        self.records: dict[str, RecordType] = {}
        self.functions: dict[str, Function] = {}
        self.global_init: Function | None = None
        self.main: Function | None = None
        #: Source text by filename, for report snippets.
        self.sources: dict[str, str] = {}

    def add_global(self, g: GlobalVar) -> GlobalVar:
        self.globals[g.name] = g
        return g

    def add_function(self, f: Function) -> Function:
        self.functions[f.name] = f
        return f

    def get_function(self, name: str) -> Function | None:
        return self.functions.get(name)

    def all_instructions(self):
        for f in self.functions.values():
            for instr in f.instructions():
                yield f, instr

    def instruction_index(self) -> dict[int, tuple[Function, Instruction]]:
        """iid → (function, instruction): the "symbol table" that
        post-mortem processing uses to resolve sampled addresses."""
        return {instr.iid: (f, instr) for f, instr in self.all_instructions()}

    def __repr__(self) -> str:
        return (
            f"<Module {self.name}: {len(self.functions)} functions, "
            f"{len(self.globals)} globals>"
        )
