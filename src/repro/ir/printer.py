"""Textual IR dump — the analogue of ``llvm-dis`` output.

Used by tests (golden snippets), by debugging, and by the examples to
show users what the lowered program looks like.
"""

from __future__ import annotations

import io

from .module import Function, Module


def print_function(f: Function, out: io.TextIOBase | None = None) -> str:
    buf = io.StringIO()
    params = ", ".join(
        f"{p.intent + ' ' if p.intent == 'ref' else ''}{p.register}: {p.type}"
        for p in f.params
    )
    tags = []
    if f.outlined_from:
        tags.append(f"outlined from {f.outlined_from}")
    if f.is_artificial:
        tags.append("artificial")
    suffix = f"  ; {', '.join(tags)}" if tags else ""
    buf.write(f"define {f.return_type} {f.name}({params}) {{{suffix}\n")
    for block in f.blocks:
        buf.write(f"{block.label}:\n")
        for instr in block.instructions:
            buf.write(f"  [{instr.iid:>4}] {instr}   ; line {instr.loc.line}\n")
    buf.write("}\n")
    text = buf.getvalue()
    if out is not None:
        out.write(text)
    return text


def print_module(module: Module, out: io.TextIOBase | None = None) -> str:
    buf = io.StringIO()
    buf.write(f"; module {module.name}\n")
    for name, rec in module.records.items():
        fields = ", ".join(f"{fn}: {ft}" for fn, ft in rec.fields)
        buf.write(f"record {name} {{ {fields} }}\n")
    for g in module.globals.values():
        cfg = " config" if g.is_config else ""
        buf.write(f"global @{g.name}: {g.type}{cfg}\n")
    buf.write("\n")
    for f in module.functions.values():
        buf.write(print_function(f))
        buf.write("\n")
    text = buf.getvalue()
    if out is not None:
        out.write(text)
    return text
