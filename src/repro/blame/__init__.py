"""The paper's core contribution: variable blame.

Static side (step 1): :class:`ModuleBlameInfo` — data flow
(:mod:`dataflow`), control dependence (:mod:`control_deps`), backward
slices / BlameSets (:mod:`slices`), exit variables (:mod:`exit_vars`),
transfer functions (:mod:`transfer`).

Dynamic side (step 3): :mod:`postmortem` (stack gluing) and
:mod:`attribution` (isBlamed + interprocedural bubbling), producing a
:class:`BlameReport` (optionally merged across locales by
:mod:`aggregate`).
"""

from .aggregate import merge_reports
from .attribution import (
    AttributionResult,
    BlameAttributor,
    VariableBlame,
    merge_attributions,
)
from .options import ABLATIONS, FULL, BlameOptions
from .dataflow import RET_KEY, DataFlow, VarKey, VarMeta, render_path
from .exit_vars import ExitVars, compute_exit_vars
from .postmortem import (
    Instance,
    PostmortemConsumer,
    PostmortemResult,
    ShardEvidence,
    ShardState,
    process_samples,
)
from .report import BlameReport, BlameRow, RunStats, build_rows, path_type
from .slices import BlameSets, SliceGraph, compute_blame_sets
from .static_info import FunctionBlameInfo, ModuleBlameInfo
from .transfer import TransferFunction, TransferResult

__all__ = [
    "ABLATIONS", "AttributionResult", "BlameAttributor", "BlameOptions", "BlameReport", "BlameRow",
    "BlameSets", "DataFlow", "ExitVars", "FunctionBlameInfo", "Instance",
    "ModuleBlameInfo", "PostmortemConsumer", "PostmortemResult", "RET_KEY", "RunStats",
    "ShardEvidence", "ShardState",
    "FULL", "SliceGraph", "TransferFunction", "TransferResult", "VarKey",
    "VarMeta", "VariableBlame", "build_rows", "compute_blame_sets",
    "compute_exit_vars", "merge_attributions", "merge_reports", "path_type", "process_samples",
    "render_path",
]
