"""Damaged artifacts must be rejected with the typed
:class:`~repro.errors.ArtifactError` — never a traceback from deep
inside the decoder, and never a silently wrong profile."""

from __future__ import annotations

import json
import zlib

import pytest

from repro.artifact import (
    CBP_VERSION,
    read_artifact,
    snapshot_from_result,
    write_artifact,
)
from repro.errors import ArtifactError, ArtifactVersionError, ReproError
from repro.sampling.dataset import crc_line

from .conftest import profile_benchmark


@pytest.fixture(scope="module")
def artifact_path(tmp_path_factory):
    result = profile_benchmark("minimd")
    path = tmp_path_factory.mktemp("cbp") / "base.cbp"
    write_artifact(str(path), snapshot_from_result(result))
    return path


def damaged(tmp_path, lines: list[str]) -> str:
    path = tmp_path / "damaged.cbp"
    path.write_text("\n".join(lines) + "\n" if lines else "")
    return str(path)


class TestFraming:
    def test_error_type_is_typed_and_a_value_error(self):
        assert issubclass(ArtifactError, ReproError)
        assert issubclass(ArtifactError, ValueError)
        assert issubclass(ArtifactVersionError, ArtifactError)

    def test_clean_artifact_reads(self, artifact_path):
        snapshot = read_artifact(str(artifact_path))
        assert snapshot.report.stats.user_samples > 0

    def test_empty_file(self, tmp_path):
        with pytest.raises(ArtifactError, match="empty"):
            read_artifact(damaged(tmp_path, []))

    def test_missing_file(self, tmp_path):
        with pytest.raises(ArtifactError, match="cannot read"):
            read_artifact(str(tmp_path / "nope.cbp"))

    def test_not_an_artifact(self, tmp_path):
        with pytest.raises(ArtifactError):
            read_artifact(damaged(tmp_path, ["just some text", "more text"]))


class TestTruncation:
    def test_missing_footer(self, artifact_path, tmp_path):
        lines = artifact_path.read_text().splitlines()
        with pytest.raises(ArtifactError, match="truncated"):
            read_artifact(damaged(tmp_path, lines[:-1]))

    def test_missing_interior_record(self, artifact_path, tmp_path):
        lines = artifact_path.read_text().splitlines()
        del lines[3]
        with pytest.raises(ArtifactError, match="truncated"):
            read_artifact(damaged(tmp_path, lines))

    def test_header_only(self, artifact_path, tmp_path):
        lines = artifact_path.read_text().splitlines()
        with pytest.raises(ArtifactError, match="truncated"):
            read_artifact(damaged(tmp_path, lines[:1]))


class TestBitFlips:
    def test_every_record_is_crc_protected(self, artifact_path, tmp_path):
        lines = artifact_path.read_text().splitlines()
        for n in range(len(lines)):
            flipped = list(lines)
            # Flip one character inside the payload (past the CRC field).
            line = flipped[n]
            k = line.rindex(":") + 2
            flipped[n] = line[:k] + ("X" if line[k] != "X" else "Y") + line[k + 1:]
            with pytest.raises(ArtifactError):
                read_artifact(damaged(tmp_path, flipped))

    def test_crc_failure_names_the_record(self, artifact_path, tmp_path):
        lines = artifact_path.read_text().splitlines()
        lines[2] = lines[2][:-2] + '"}'
        with pytest.raises(ArtifactError, match="record 3"):
            read_artifact(damaged(tmp_path, lines))


def reframe(kind: str, payload) -> str:
    """A validly-checksummed record with attacker-chosen payload, for
    reaching the structural checks behind the CRC gate."""
    return crc_line(kind, payload)


class TestStructure:
    def header_payload(self, artifact_path) -> dict:
        line = artifact_path.read_text().splitlines()[0]
        rec = json.loads(line)
        assert zlib.crc32(json.dumps(rec["h"], separators=(",", ":"), sort_keys=True).encode()) == rec["c"]
        return rec["h"]

    def test_bad_magic(self, artifact_path, tmp_path):
        lines = artifact_path.read_text().splitlines()
        header = self.header_payload(artifact_path)
        header["magic"] = "not-cbp"
        lines[0] = reframe("h", header)
        with pytest.raises(ArtifactError, match="magic"):
            read_artifact(damaged(tmp_path, lines))

    def test_future_version_is_a_version_error(self, artifact_path, tmp_path):
        lines = artifact_path.read_text().splitlines()
        header = self.header_payload(artifact_path)
        header["version"] = CBP_VERSION + 1
        lines[0] = reframe("h", header)
        with pytest.raises(ArtifactVersionError, match="version"):
            read_artifact(damaged(tmp_path, lines))

    def test_duplicate_record(self, artifact_path, tmp_path):
        lines = artifact_path.read_text().splitlines()
        lines.insert(2, lines[1])
        # Patch the footer count so the duplicate check (not the
        # truncation check) is what fires.
        lines[-1] = reframe("z", {"records": len(lines)})
        with pytest.raises(ArtifactError, match="duplicate"):
            read_artifact(damaged(tmp_path, lines))

    def test_footer_count_mismatch(self, artifact_path, tmp_path):
        lines = artifact_path.read_text().splitlines()
        lines[-1] = reframe("z", {"records": len(lines) + 7})
        with pytest.raises(ArtifactError, match="truncated"):
            read_artifact(damaged(tmp_path, lines))

    def test_dangling_string_index(self, artifact_path, tmp_path):
        lines = artifact_path.read_text().splitlines()
        # Shrink the string table to one entry: everything else dangles.
        lines[1] = reframe("t", ["only-entry"])
        with pytest.raises(ArtifactError):
            read_artifact(damaged(tmp_path, lines))

    def test_inconsistent_instance_columns(self, artifact_path, tmp_path):
        lines = artifact_path.read_text().splitlines()
        bad = {"ix": [0, 1], "th": [0], "st": [], "lo": [], "gl": [], "tg": [], "rc": []}
        for n, line in enumerate(lines):
            if json.loads(line).get("i") is not None:
                lines[n] = reframe("i", bad)
                break
        with pytest.raises(ArtifactError, match="inconsistent"):
            read_artifact(damaged(tmp_path, lines))

    def test_unknown_optional_record_is_ignored(self, artifact_path, tmp_path):
        """Forward-minor tolerance: an extra optional section from a
        newer writer does not break this reader."""
        lines = artifact_path.read_text().splitlines()
        lines.insert(-1, reframe("x", {"some": "future section"}))
        lines[-1] = reframe("z", {"records": len(lines)})
        snapshot = read_artifact(damaged(tmp_path, lines))
        assert snapshot.report.stats.user_samples > 0
