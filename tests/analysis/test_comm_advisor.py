"""Communication-advisor pass tests: the batching / aggregation /
hoisting passes fire on the anti-patterns, stay quiet on the optimized
shapes (pure gathers, CSR-owned outputs, loop-variant indices), and
join per-variable blame through the ranker.  Also covers the pass
registry's duplicate-name guard."""

import pytest

from repro.analysis import (
    AnalysisError,
    AnalysisPass,
    Severity,
    analyze_module,
    rank_findings,
)
from repro.analysis.passes import register_pass
from repro.bench.programs import mttkrp, spmv
from repro.blame.report import BlameReport, BlameRow, RunStats
from repro.compiler.lower import compile_source

COMM_RULES = {
    "remote-access-batching",
    "aggregation-candidate",
    "indirection-hoist",
}


def comm_findings(source, filename="t.chpl"):
    module = compile_source(source, filename)
    return [f for f in analyze_module(module) if f.rule in COMM_RULES]


def rules_of(findings):
    return {f.rule for f in findings}


class TestBatching:
    def test_indirect_read_feeding_arithmetic_fires(self):
        src = """
var D: domain(1) = {1..32};
var idx: [D] int;
var a: [D] real;
var b: [D] real;
proc main() {
  forall i in D {
    b[i] = a[idx[i]] * 2.0;
  }
  writeln(b[1]);
}
"""
        (f,) = comm_findings(src)
        assert f.rule == "remote-access-batching"
        assert f.severity is Severity.WARNING
        assert "a" in f.variables and "idx" in f.variables

    def test_pure_gather_is_quiet(self):
        # The inspector-executor fix itself: indirect loads feeding
        # only stores must not be re-flagged.
        src = """
var D: domain(1) = {1..32};
var idx: [D] int;
var a: [D] real;
var g: [D] real;
proc main() {
  forall i in D {
    g[i] = a[idx[i]];
  }
  writeln(g[1]);
}
"""
        assert comm_findings(src) == []

    def test_serial_indirection_is_quiet(self):
        src = """
var D: domain(1) = {1..32};
var idx: [D] int;
var a: [D] real;
proc main() {
  var s = 0.0;
  for i in D {
    s += a[idx[i]] * 2.0;
  }
  writeln(s);
}
"""
        assert comm_findings(src) == []


class TestAggregation:
    def test_indirect_rmw_fires(self):
        src = """
var D: domain(1) = {1..32};
var dest: [D] int;
var h: [D] real;
proc main() {
  forall i in D {
    h[dest[i]] += 1.0;
  }
  writeln(h[1]);
}
"""
        findings = comm_findings(src)
        assert "aggregation-candidate" in rules_of(findings)
        (agg,) = [f for f in findings if f.rule == "aggregation-candidate"]
        assert "h" in agg.variables and "dest" in agg.variables

    def test_direct_rmw_is_quiet(self):
        # CSR-style: each task owns its output cell.
        src = """
var D: domain(1) = {1..32};
var h: [D] real;
proc main() {
  forall i in D {
    h[i] += 1.0;
  }
  writeln(h[1]);
}
"""
        assert comm_findings(src) == []

    def test_indirect_overwrite_is_not_rmw(self):
        # A plain store through indirection scatters, but there is no
        # read-modify-write to aggregate.
        src = """
var D: domain(1) = {1..32};
var dest: [D] int;
var h: [D] real;
proc main() {
  forall i in D {
    h[dest[i]] = 1.0;
  }
  writeln(h[1]);
}
"""
        assert "aggregation-candidate" not in rules_of(comm_findings(src))


class TestHoist:
    def test_invariant_indirection_in_inner_loop_fires(self):
        src = """
var D: domain(1) = {1..16};
var DO: domain(2) = {1..16, 1..4};
var idx: [D] int;
var o: [DO] real;
proc main() {
  forall e in D {
    for r in 1..4 {
      o[idx[e], r] = 1.0;
    }
  }
  writeln(o[1, 1]);
}
"""
        findings = comm_findings(src)
        assert rules_of(findings) == {"indirection-hoist"}
        (f,) = findings
        assert f.variables == ("idx",)
        assert "hoist" in f.remediation

    def test_loop_variant_index_is_quiet(self):
        # idx[r] changes every inner iteration: nothing to hoist.
        src = """
var D: domain(1) = {1..16};
var Dr: domain(1) = {1..4};
var DO: domain(2) = {1..16, 1..4};
var idx: [Dr] int;
var o: [DO] real;
proc main() {
  forall e in D {
    for r in 1..4 {
      o[idx[r], r] = 1.0;
    }
  }
  writeln(o[1, 1]);
}
"""
        assert comm_findings(src) == []

    def test_hoisted_scalar_is_quiet(self):
        # The fix: load once into a scalar before the inner loop.
        src = """
var D: domain(1) = {1..16};
var DO: domain(2) = {1..16, 1..4};
var idx: [D] int;
var o: [DO] real;
proc main() {
  forall e in D {
    var m = idx[e];
    for r in 1..4 {
      o[m, r] = 1.0;
    }
  }
  writeln(o[1, 1]);
}
"""
        assert comm_findings(src) == []


class TestBenchmarks:
    def test_spmv_original_fires(self):
        findings = comm_findings(spmv.build_source("original"), "spmv.chpl")
        assert rules_of(findings) == {
            "remote-access-batching",
            "aggregation-candidate",
        }
        # Both findings sit on the scatter statement and name the
        # indirection arrays the profile can blame.
        for f in findings:
            assert "row" in f.variables

    @pytest.mark.parametrize("variant", ["optimized", "dense"])
    def test_spmv_rewrites_are_quiet(self, variant):
        assert comm_findings(spmv.build_source(variant), "spmv.chpl") == []

    def test_mttkrp_original_fires_all_three(self):
        findings = comm_findings(
            mttkrp.build_source("original"), "mttkrp.chpl"
        )
        assert rules_of(findings) == COMM_RULES
        (hoist,) = [f for f in findings if f.rule == "indirection-hoist"]
        assert hoist.variables == ("mode1", "mode2", "mode3")

    def test_mttkrp_optimized_is_quiet(self):
        assert (
            comm_findings(mttkrp.build_source("optimized"), "mttkrp.chpl")
            == []
        )

    def test_ranker_joins_blame_to_batching_advice(self):
        module = compile_source(spmv.build_source("original"), "spmv.chpl")
        findings = [
            f for f in analyze_module(module) if f.rule in COMM_RULES
        ]
        report = BlameReport(
            program="spmv.chpl",
            rows=[
                BlameRow("row", "[De] int", 0.4, "main", 40, False),
                BlameRow("x", "[Dn] real", 0.2, "main", 20, False),
            ],
            stats=RunStats(),
        )
        ranked = rank_findings(findings, report)
        by_rule = {f.rule: f for f in ranked}
        # max over each finding's variables: row dominates both.
        assert by_rule["remote-access-batching"].blame == 0.4
        assert by_rule["aggregation-candidate"].blame == 0.4


class TestRegistryGuard:
    def test_duplicate_name_rejected(self):
        with pytest.raises(AnalysisError, match="remote-access-batching"):

            @register_pass
            class Dup(AnalysisPass):  # pragma: no cover - never registered
                name = "remote-access-batching"
                description = "duplicate"

                def run(self, ctx):
                    return []

    def test_reregistering_same_class_is_idempotent(self):
        from repro.analysis.comm_advisor import RemoteAccessBatchingPass

        assert (
            register_pass(RemoteAccessBatchingPass)
            is RemoteAccessBatchingPass
        )

    def test_analysis_error_is_value_error(self):
        assert issubclass(AnalysisError, ValueError)
