"""`forall ... with (op reduce x)` intent tests (Chapel reduction
intents: per-task private accumulators combined at the join)."""

import pytest

from repro.chapel.errors import NameError_, ParseError, TypeError_
from repro.compiler.lower import compile_source

import sys, os
sys.path.insert(0, os.path.dirname(os.path.dirname(__file__)))
from conftest import output_of


class TestReduceIntents:
    def test_sum_reduce(self):
        src = """
proc main() {
  var total = 0;
  forall i in 1..100 with (+ reduce total) {
    total += i;
  }
  writeln(total);
}
"""
        assert output_of(src) == ["5050"]

    def test_result_independent_of_thread_count(self):
        # Float reduction: combine order varies with the chunking (as
        # in Chapel), so compare numerically, not bitwise.
        src = """
proc main() {
  var total = 0.0;
  forall i in 0..199 with (+ reduce total) {
    total += sqrt(i * 1.0);
  }
  writeln(total);
}
"""
        values = [
            float(output_of(src, num_threads=n)[0]) for n in (1, 4, 12)
        ]
        assert max(values) - min(values) < 1e-9 * max(values)

    def test_int_reduction_bitwise_reproducible(self):
        src = """
proc main() {
  var total = 0;
  forall i in 1..500 with (+ reduce total) {
    total += i;
  }
  writeln(total);
}
"""
        outs = {tuple(output_of(src, num_threads=n)) for n in (1, 4, 12)}
        assert outs == {("125250",)}

    def test_multiple_intents(self):
        src = """
proc main() {
  var s = 0;
  var p = 1;
  forall i in 1..6 with (+ reduce s, * reduce p) {
    s += i;
    p *= i;
  }
  writeln(s, p);
}
"""
        assert output_of(src) == ["21 720"]

    def test_min_max_reduce(self):
        src = """
var A: [0..49] real;
proc main() {
  forall i in 0..49 { A[i] = cos(i * 1.0); }
  var lo = 99.0;
  var hi = -99.0;
  forall i in 0..49 with (min reduce lo, max reduce hi) {
    if A[i] < lo then lo = A[i];
    if A[i] > hi then hi = A[i];
  }
  writeln(lo >= -1.0 && lo < -0.9, hi <= 1.0 && hi > 0.9);
}
"""
        assert output_of(src) == ["true true"]

    def test_global_reduce_variable(self):
        src = """
var gsum: int = 100;
proc main() {
  forall i in 1..10 with (+ reduce gsum) {
    gsum += i;
  }
  writeln(gsum);
}
"""
        # existing value participates in the combine
        assert output_of(src) == ["155"]

    def test_coforall_with_reduce(self):
        src = """
proc main() {
  var n = 0;
  coforall t in 0..7 with (+ reduce n) {
    n += 1;
  }
  writeln(n);
}
"""
        assert output_of(src) == ["8"]


class TestReduceIntentErrors:
    def test_with_on_serial_for_rejected(self):
        with pytest.raises(ParseError, match="parallel"):
            compile_source(
                "proc main() { var s = 0; for i in 1..3 with (+ reduce s) { } }"
            )

    def test_unknown_variable(self):
        with pytest.raises(NameError_):
            compile_source(
                "proc main() { forall i in 1..3 with (+ reduce ghost) { } }"
            )

    def test_non_numeric_rejected(self):
        src = """
var D: domain(1) = {0..3};
proc main() {
  forall i in 0..3 with (+ reduce D) { }
}
"""
        with pytest.raises(TypeError_, match="numeric"):
            compile_source(src)

    def test_bad_operator(self):
        with pytest.raises(ParseError):
            compile_source(
                "proc main() { var s = 0; forall i in 1..3 with (xor reduce s) { } }"
            )
