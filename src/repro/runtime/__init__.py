"""Runtime substrate: values, memory, locales, tasking, cost model and
the IR interpreter (the simulated machine the paper's Xeon becomes).
"""

from .builtins import ProgramHalt
from .costmodel import CLOCK_HZ, CostModel, DEFAULT_COST_MODEL
from .interpreter import ExecutionError, Interpreter, RunResult, run_module
from .locales import Locale, single_locale
from .memory import Allocation, Heap
from .tasking import SCHED_YIELD, Frame, Scheduler, SpawnRecord, Task, WorkerThread
from .values import (
    ArrayChunk,
    ArrayValue,
    ClassValue,
    DomainChunk,
    DomainValue,
    RangeValue,
    RecordValue,
    RuntimeError_,
    TupleValue,
    copy_value,
    default_value,
    format_value,
    value_slots,
)

__all__ = [
    "Allocation", "ArrayChunk", "ArrayValue", "CLOCK_HZ", "ClassValue",
    "CostModel", "DEFAULT_COST_MODEL", "DomainChunk", "DomainValue",
    "ExecutionError", "Frame", "Heap", "Interpreter", "Locale",
    "ProgramHalt", "RangeValue", "RecordValue", "RunResult",
    "RuntimeError_", "SCHED_YIELD", "Scheduler", "SpawnRecord", "Task",
    "TupleValue", "WorkerThread", "copy_value", "default_value",
    "format_value", "run_module", "single_locale", "value_slots",
]
