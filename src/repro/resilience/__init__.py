"""Fault injection and degradation-tolerance tooling.

Real Dyninst/PAPI deployments are lossy: stack walks truncate, samples
drop, spawn tags vanish, debug info gets stripped, and locales crash or
straggle.  This package makes those failure modes reproducible —
:mod:`faults` describes *what* to break (deterministic, seedable),
:mod:`inject` breaks it, and :mod:`stability` quantifies how stable the
blame rankings stay under each fault class.
"""

from .faults import FAULT_CLASSES, FaultPlan
from .inject import FaultInjector, InjectionStats
from .stability import compare_reports, kendall_tau, ranking, top_n_overlap

__all__ = [
    "FAULT_CLASSES",
    "FaultInjector",
    "FaultPlan",
    "InjectionStats",
    "compare_reports",
    "kendall_tau",
    "ranking",
    "top_n_overlap",
]
