"""MiniMD — mini molecular dynamics (paper §V.A), mini-Chapel port.

Sandia Mantevo's proxy app: atoms live in spatial *bins*; each timestep
integrates positions, rebuilds ghost/"fluff" bins, and computes
Lennard-Jones-style forces between atoms in neighboring bins.

The port preserves the paper's data-structure cast exactly:

* ``binSpace``   — the bin domain (1-D here; the paper's is 3-D);
* ``DistSpace``  — ``binSpace.expand(1)``: bins plus ghost bins;
* ``Pos``        — per-(bin, slot) positions, ``3*real`` ("v3");
* ``Bins``       — per-(bin, slot) ``atom`` records (velocity + force);
* ``Count``      — atoms per bin (``int(32)``), over ``DistSpace``;
* ``RealPos``/``RealCount`` — *aliasing slices* of ``Pos``/``Count``
  restricted to the non-ghost bins.

Two variants:

* **original** — the hot loops use zippered iteration over per-bin
  array slices and re-derive domains inside loops ("succinct zippered
  iteration expressions to do domain remapping in nested loops"), the
  pattern the paper's profile flags via Pos/Bins blame;
* **optimized** — Johnson's rewrite: direct element indexing, domains
  hoisted, no per-iteration slices (paper Table III: 2.26× w/o --fast).
"""

from __future__ import annotations

from dataclasses import dataclass

# Default problem size: tuned for the interpreter (the paper ran
# 16x16x16 unit cells on a Xeon; the *ratios* are what we reproduce).
DEFAULT_CONFIG: dict[str, object] = {
    "numBins": 10,
    "perBin": 6,
    "steps": 3,
    "neighborEvery": 1,
}

_PRELUDE = """
// MiniMD (mini-Chapel port) -- molecular dynamics proxy app
config const numBins: int = 10;
config const perBin: int = 6;
config const steps: int = 3;
config const neighborEvery: int = 1;
config const cutoff: real = 6.5;
config const dtf: real = 0.004;

record atom {
  var v: 3*real;
  var f: 3*real;
}

var binSpace: domain(1) = {0..numBins-1};
var DistSpace: domain(1) = binSpace.expand(1);
var perBinSpace: domain(1) = {0..perBin-1};
var PosSpace: domain(2) = {0-1..numBins, 0..perBin-1};
var BinSpace2: domain(2) = {0..numBins-1, 0..perBin-1};

var Pos: [PosSpace] 3*real;
var Bins: [BinSpace2] atom;
var Count: [DistSpace] int(32);
var RealCount = Count[binSpace];
var RealPos = Pos[BinSpace2];

proc initAtoms() {
  forall b in binSpace {
    RealCount[b] = perBin;
    for k in 0..perBin-1 {
      Pos[b, k] = (b * 1.0 + k * 0.37, b * 0.51 + k * 0.13, b * 0.25 + k * 0.29);
      Bins[b, k].v = (0.013 * (k + 1), 0.011 * (b + 1), 0.007 * (k + b + 1));
      Bins[b, k].f = (0.0, 0.0, 0.0);
    }
  }
}

proc updateFluff() {
  // exchange ghost ("fluff") bins: periodic images of boundary bins
  Count[0 - 1] = Count[numBins - 1];
  Count[numBins] = Count[0];
  for k in 0..perBin-1 {
    Pos[0 - 1, k] = Pos[numBins - 1, k];
    Pos[numBins, k] = Pos[0, k];
  }
}
"""

_INTEGRATE_ORIGINAL = """
proc integrate() {
  // original: zippered iteration over freshly-sliced per-bin rows of
  // the aliasing views (domain remapping in the hot loop)
  forall b in binSpace {
    var rowDom: domain(2) = {b..b, 0..perBin-1};
    for (p, a) in zip(RealPos[rowDom], Bins[rowDom]) {
      p = p + a.v * dtf + a.f * (dtf * dtf * 0.5);
      a.v = a.v + a.f * dtf;
    }
  }
}
"""

_INTEGRATE_OPTIMIZED = """
proc integrate() {
  // optimized: direct element indexing, no per-iteration slices
  forall b in binSpace {
    var cnt = RealCount[b];
    for k in 0..cnt-1 {
      RealPos[b, k] = RealPos[b, k] + Bins[b, k].v * dtf + Bins[b, k].f * (dtf * dtf * 0.5);
      Bins[b, k].v = Bins[b, k].v + Bins[b, k].f * dtf;
    }
  }
}
"""

_NEIGHBOR_ORIGINAL = """
proc buildNeighbors() {
  // original: per-bin zippered sweeps over remapped slices of the
  // aliasing views; rebins counts and scans per-atom neighborhoods
  forall b in binSpace {
    var rowDom: domain(2) = {b..b, 0..perBin-1};
    RealCount[b] = 0;
    for (p, a) in zip(RealPos[rowDom], Bins[rowDom]) {
      a.f = (0.0, 0.0, 0.0);
      RealCount[b] = RealCount[b] + 1;
      var near = 0;
      for (q, j) in zip(RealPos[rowDom], 0..perBin-1) {
        var d = p - q;
        if d[0]*d[0] + d[1]*d[1] + d[2]*d[2] < cutoff {
          near = near + 1;
        }
      }
      if near > perBin {
        a.v = a.v * 0.5;
      }
    }
  }
}
"""

_NEIGHBOR_OPTIMIZED = """
proc buildNeighbors() {
  // optimized: direct indexing, hoisted domain, no zippering
  forall b in binSpace {
    RealCount[b] = 0;
    for k in 0..perBin-1 {
      Bins[b, k].f = (0.0, 0.0, 0.0);
      RealCount[b] = RealCount[b] + 1;
      var p = RealPos[b, k];
      var near = 0;
      for j in 0..perBin-1 {
        var d = p - RealPos[b, j];
        if d[0]*d[0] + d[1]*d[1] + d[2]*d[2] < cutoff {
          near = near + 1;
        }
      }
      if near > perBin {
        Bins[b, k].v = Bins[b, k].v * 0.5;
      }
    }
  }
}
"""

_FORCE_ORIGINAL = """
proc computeForce() {
  // original: neighbor-bin rows are re-sliced (domain remapping) and
  // traversed with zippered iteration inside the doubly-nested hot loop
  forall b in binSpace {
    var cnt = RealCount[b];
    for k in 0..cnt-1 {
      var p = RealPos[b, k];
      var f = (0.0, 0.0, 0.0);
      // the neighbor sweep walks the whole ghost-expanded bin domain
      // (domain remapping drives the loop) and filters to neighbors
      for nb in binSpace.expand(1) {
        if nb >= b - 1 && nb <= b + 1 {
          var nrowDom: domain(2) = {nb..nb, 0..perBin-1};
          for (q, j) in zip(Pos[nrowDom], 0..perBin-1) {
            var d = p - q;
            var r2 = d[0]*d[0] + d[1]*d[1] + d[2]*d[2];
            if r2 < cutoff && r2 > 0.001 {
              f = f + d * (1.0 / (r2 * r2 + 1.0));
            }
          }
        }
      }
      Bins[b, k].f = f;
    }
  }
}
"""

_FORCE_OPTIMIZED = """
proc computeForce() {
  // optimized: direct global-array indexing into the ghost rows
  forall b in binSpace {
    var cnt = RealCount[b];
    for k in 0..cnt-1 {
      var p = RealPos[b, k];
      var f = (0.0, 0.0, 0.0);
      for nb in b-1..b+1 {
        var ncnt = Count[nb];
        for j in 0..ncnt-1 {
          var d = p - Pos[nb, j];
          var r2 = d[0]*d[0] + d[1]*d[1] + d[2]*d[2];
          if r2 < cutoff && r2 > 0.001 {
            f = f + d * (1.0 / (r2 * r2 + 1.0));
          }
        }
      }
      Bins[b, k].f = f;
    }
  }
}
"""

_MAIN = """
proc energy(): real {
  var e = 0.0;
  for b in 0..numBins-1 {
    for k in 0..perBin-1 {
      var vv = Bins[b, k].v;
      e += vv[0]*vv[0] + vv[1]*vv[1] + vv[2]*vv[2];
    }
  }
  return e;
}

proc run() {
  for step in 1..steps {
    integrate();
    if step % neighborEvery == 0 {
      buildNeighbors();
    }
    updateFluff();
    computeForce();
  }
}

proc main() {
  initAtoms();
  updateFluff();
  var t0 = getCurrentTime();
  run();
  var t1 = getCurrentTime();
  writeln("energy", energy());
  writeln("elapsed", t1 - t0);
}
"""


@dataclass(frozen=True)
class MiniMDVariant:
    """Which rewrites are applied (all three = the paper's optimized)."""

    optimized: bool = False


def build_source(variant: MiniMDVariant | None = None, optimized: bool = False) -> str:
    """Returns mini-Chapel source for the requested MiniMD variant."""
    if variant is not None:
        optimized = variant.optimized
    parts = [_PRELUDE]
    parts.append(_INTEGRATE_OPTIMIZED if optimized else _INTEGRATE_ORIGINAL)
    parts.append(_NEIGHBOR_OPTIMIZED if optimized else _NEIGHBOR_ORIGINAL)
    parts.append(_FORCE_OPTIMIZED if optimized else _FORCE_ORIGINAL)
    parts.append(_MAIN)
    return "\n".join(parts)


def config_for(
    num_bins: int | None = None,
    per_bin: int | None = None,
    steps: int | None = None,
) -> dict[str, object]:
    cfg = dict(DEFAULT_CONFIG)
    if num_bins is not None:
        cfg["numBins"] = num_bins
    if per_bin is not None:
        cfg["perBin"] = per_bin
    if steps is not None:
        cfg["steps"] = steps
    return cfg
