"""Multi-locale degradation: crashes, retries, stragglers, partials."""

import pytest

from repro.errors import AggregationError
from repro.resilience.faults import FaultPlan
from repro.tooling.multilocale import profile_locales
from repro.views.degradation import degradation_lines

SPMD = """
config const localeId: int = 0;
config const numLocales: int = 1;
config const n: int = 120;

var chunk = n / numLocales;
var lo = localeId * chunk;
var hi = lo + chunk - 1;
var A: [0..n-1] real;

proc main() {
  forall i in lo..hi {
    A[i] = sqrt(i * 1.0) + i * 0.5;
  }
  writeln("locale", localeId, "sum", + reduce A);
}
"""


def _profile(**kw):
    kw.setdefault("num_threads", 4)
    kw.setdefault("threshold", 499)
    kw.setdefault("retry_backoff", 0.0)
    return profile_locales(SPMD, **kw)


class TestCrashes:
    def test_crashed_locale_marked_missing_in_partial_merge(self):
        res = _profile(num_locales=3, faults="crash=1")
        assert res.num_locales == 2
        assert res.missing_locales == (1,)
        assert res.merged.missing_locales == (1,)
        assert res.outcomes[1].status == "crashed"
        assert res.outcomes[1].attempts == 3  # initial + 2 retries
        total = sum(r.report.stats.user_samples for r in res.per_locale)
        assert res.merged.stats.user_samples == total

    def test_partial_merge_reported_in_degradation_notes(self):
        res = _profile(num_locales=3, faults="crash=2")
        notes = "\n".join(degradation_lines(res.merged))
        assert "locale" in notes and "2" in notes and "partial" in notes

    def test_allow_partial_off_raises(self):
        with pytest.raises(AggregationError):
            _profile(num_locales=2, faults="crash=0", allow_partial=False)

    def test_all_locales_down_raises(self):
        with pytest.raises(AggregationError, match="all 2 locales failed"):
            _profile(num_locales=2, faults="crash=0;1")

    def test_transient_crash_retried_to_success(self):
        # Seed 3 makes locale 0 crash on attempt 0 but not attempt 1 —
        # a bounded retry turns a transient fault into a clean outcome.
        plan = FaultPlan(seed=3, crash_rate=0.5)
        assert plan.should_crash(0, 0) and not plan.should_crash(0, 1)
        res = _profile(num_locales=1, faults=plan)
        assert res.outcomes[0].status == "ok"
        assert res.outcomes[0].attempts == 2
        assert res.missing_locales == ()


class TestStragglers:
    def test_straggler_flagged_but_kept(self):
        res = _profile(
            num_locales=2,
            faults="straggle=1,straggle-delay=0.05",
            locale_timeout=0.02,
        )
        assert res.stragglers == (1,)
        assert res.outcomes[1].status == "straggler"
        assert res.outcomes[1].succeeded
        assert res.missing_locales == ()
        assert res.num_locales == 2  # its report still merged

    def test_drop_stragglers_marks_missing(self):
        res = _profile(
            num_locales=2,
            faults="straggle=1,straggle-delay=0.05",
            locale_timeout=0.02,
            drop_stragglers=True,
            max_retries=0,
        )
        assert res.outcomes[1].status == "timeout"
        assert res.missing_locales == (1,)
        assert res.merged.missing_locales == (1,)


class TestPerLocaleDecorrelation:
    def test_sample_faults_decorrelated_across_locales(self):
        # The same plan degrades each locale through an independent
        # per-locale seed: locales must not all lose the same samples.
        res = _profile(num_locales=3, faults="drop=0.3,seed=11")
        dropped = [r.fault_stats.dropped for r in res.per_locale]
        assert all(d > 0 for d in dropped)
        assert len(set(dropped)) > 1
