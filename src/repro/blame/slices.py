"""Backward slicing and BlameSet computation (paper §III).

``BlameSet(v, W) = ∪_{w∈W} BackwardsSlice(w)``: the slice closure walks

* operand (use-def) edges,
* memory edges — a ``load`` of variable v depends, flow-insensitively,
  on every ``store`` to v in the function (this is how the paper's
  Table I gives ``c`` both writes to ``a``),
* control-dependence edges — every instruction depends on the branches
  controlling its block *and their condition producers* (Table I's
  line 18 in ``a``'s and ``c``'s blame lines).

The result is inverted into ``iid → {variables}`` so the dynamic side
can answer ``isBlamed(v, s)`` with one set lookup per sample frame.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..ir import instructions as I
from ..ir.module import Function, Module
from .control_deps import instruction_control_deps
from .dataflow import DataFlow, Path, Root, VarKey


def paths_may_alias(a: Path, b: Path) -> bool:
    """Field-sensitive may-alias on access paths: fields must match
    name-for-name, indices match any index, and a prefix aliases an
    extension only when the extension does not cross a class
    dereference ("cfield") — a pointer *slot* is separate memory from
    the pointee's fields.  Keeps ``p.residue`` loads from depending on
    stores to ``p.zoneArray[j].value`` (which would otherwise drag
    CLOMP's whole hot loop into residue's BlameSet)."""
    n = min(len(a), len(b))
    for ea, eb in zip(a, b):
        ka, kb = ea[0], eb[0]
        if (ka == "index") != (kb == "index"):
            return False
        if ka != "index" and (ka != kb or ea[1] != eb[1]):
            return False
    longer = a if len(a) > len(b) else b
    if len(longer) > n and longer[n][0] == "cfield":
        return False
    return True


class SliceGraph:
    """Backward dependency edges (iid → dep iids) for one function."""

    def __init__(self, function: Function, dataflow: DataFlow) -> None:
        self.function = function
        self.df = dataflow
        self.deps: dict[int, set[int]] = {}
        self._slice_cache: dict[frozenset[int], frozenset[int]] = {}
        self._build()

    @property
    def options(self):
        return self.df.options

    @staticmethod
    def _path_head(path: Path):
        """Bucket key for a store's access path: only stores whose head
        is compatible with a load's head can alias it (the first loop
        iteration of :func:`paths_may_alias`), so bucketing by head cuts
        the loads×stores product to compatible pairs.  Index heads match
        any index, so they share one bucket."""
        if not path:
            return ()
        head = path[0]
        if head[0] == "index":
            return ("index",)
        return head

    def _build(self) -> None:
        fn = self.function
        df = self.df
        # Stores to each root variable (for load→store memory edges),
        # bucketed by access-path head for field-sensitive aliasing.
        stores_by_var: dict[VarKey, dict[tuple, list[tuple[Path, int]]]] = {}
        path_head = self._path_head
        for instr in fn.instructions():
            if isinstance(instr, I.Store):
                for key, path in df.roots_of(instr.addr):
                    buckets = stores_by_var.setdefault(key, {})
                    buckets.setdefault(path_head(path), []).append(
                        (path, instr.iid)
                    )

        control = instruction_control_deps(fn)

        for instr in fn.instructions():
            deps = self.deps.setdefault(instr.iid, set())
            # Operand (explicit data) edges.
            for op in instr.operands():
                if isinstance(op, I.Register) and op.producer is not None:
                    deps.add(op.producer.iid)
            # Memory edges: loads depend on the stores to the same root
            # whose paths may alias (flow-insensitive otherwise — the
            # paper's Table I gives c both writes to a).
            if isinstance(instr, I.Load):
                for key, path in df.roots_of(instr.addr):
                    buckets = stores_by_var.get(key)
                    if buckets is None:
                        continue
                    if not path:
                        # An empty load path aliases every store except
                        # those reaching through a class dereference.
                        for hkey, entries in buckets.items():
                            if hkey and hkey[0] == "cfield":
                                continue
                            deps.update(siid for _spath, siid in entries)
                        continue
                    # Same-head stores: tails still need the full check.
                    for spath, siid in buckets.get(path_head(path), ()):
                        if paths_may_alias(path, spath):
                            deps.add(siid)
                    # Empty-path stores (whole-variable writes) alias any
                    # load not crossing a class dereference first.
                    if path[0][0] != "cfield":
                        deps.update(
                            siid for _spath, siid in buckets.get((), ())
                        )
            # Implicit (control) edges: the controlling branches and,
            # through their operand edges, the condition producers.
            if df.options.implicit_control:
                for cbr in control.get(instr.iid, ()):
                    if cbr.iid != instr.iid:
                        deps.add(cbr.iid)

    def backward_slice(self, seeds: set[int]) -> frozenset[int]:
        """Multi-source backward closure from ``seeds``.

        Memoized on the seed set: distinct variables frequently share
        write sets (zippered iterands, ref formals of one callsite), and
        the closure is the hot inner step of blame-set construction.
        """
        key = frozenset(seeds)
        cached = self._slice_cache.get(key)
        if cached is not None:
            return cached
        seen: set[int] = set(seeds)
        queue = deque(seeds)
        while queue:
            iid = queue.popleft()
            for dep in self.deps.get(iid, ()):
                if dep not in seen:
                    seen.add(dep)
                    queue.append(dep)
        result = frozenset(seen)
        self._slice_cache[key] = result
        return result


@dataclass
class BlameSets:
    """Per-function blame sets, both directions.

    ``by_var[(key, path)]`` is the BlameSet (iids) of a variable or a
    hierarchical sub-variable; ``by_iid[iid]`` is the set of roots
    blamed when a sample lands on that instruction.
    """

    by_var: dict[Root, frozenset[int]]
    by_iid: dict[int, frozenset[Root]]

    def blamed_at(self, iid: int) -> frozenset[Root]:
        return self.by_iid.get(iid, frozenset())


def _cbr_iterable_roots(
    cbr: I.CBr, dataflow: DataFlow
) -> frozenset[Root]:
    """Roots of the iterands whose iterator feeds this branch condition
    (chasing through the &&-conjunction of zippered loops)."""
    roots: set[Root] = set()
    stack: list[I.Value] = [cbr.cond]
    seen: set[int] = set()
    while stack:
        v = stack.pop()
        if not isinstance(v, I.Register) or v.rid in seen:
            continue
        seen.add(v.rid)
        producer = v.producer
        if isinstance(producer, I.IterNext):
            for key, _path in dataflow.roots_of(producer.state):
                roots.add((key, ()))
        elif isinstance(producer, I.BinOp) and producer.op in ("&&", "||"):
            stack.extend(producer.operands())
        elif isinstance(producer, I.Load):
            stack.append(producer.addr)
    return frozenset(roots)


def _implicit_iterable_blame(
    function: Function, dataflow: DataFlow
) -> dict[Root, frozenset[int]]:
    """Maps iterand roots to the body instructions they implicitly blame
    (innermost enclosing loop only)."""
    imm = instruction_control_deps(function, transitive=False)
    cbr_roots: dict[int, frozenset[Root]] = {}
    out: dict[Root, set[int]] = {}
    for instr in function.instructions():
        for cbr in imm.get(instr.iid, ()):
            if not isinstance(cbr, I.CBr):
                continue
            roots = cbr_roots.get(cbr.iid)
            if roots is None:
                roots = _cbr_iterable_roots(cbr, dataflow)
                cbr_roots[cbr.iid] = roots
            for root in roots:
                out.setdefault(root, set()).add(instr.iid)
    return {root: frozenset(iids) for root, iids in out.items()}


def compute_blame_sets(function: Function, dataflow: DataFlow) -> BlameSets:
    """BlameSets of every root variable (and materialized field path)
    of one function.

    Deep writes (real stores, returns) contribute their full backward
    slice; shallow writes (ref-arg callsites, descriptor bookkeeping)
    contribute only themselves — the written value is computed in the
    callee / runtime, so the caller-side operand chain is not the work
    that produced it (it is attributed through the callee's own blame
    sets plus the transfer function instead).
    """
    graph = SliceGraph(function, dataflow)
    by_var: dict[Root, frozenset[int]] = {}
    deep = dataflow.deep_write_iids

    def blame_set(writes) -> frozenset[int]:
        deep_seeds = {w.iid for w in writes if w.iid in deep}
        shallow = {w.iid for w in writes if w.iid not in deep}
        if not shallow:
            # The memoized slice is returned as-is (no union copy);
            # callers treat blame sets as immutable.
            return graph.backward_slice(deep_seeds)
        if not deep_seeds:
            return frozenset(shallow)
        return graph.backward_slice(deep_seeds) | shallow

    for key, writes in dataflow.writes.items():
        by_var[(key, ())] = blame_set(writes)
    for root, writes in dataflow.path_writes.items():
        by_var[root] = blame_set(writes)

    # Implicit iterable blame (paper §IV.A): "all variables within the
    # loop body inherit blame from the index variable" — generalized to
    # the domain/array *driving* the loop: instructions in a loop body
    # join the BlameSet of the innermost loop's iterands (how MiniMD's
    # binSpace earns 49 % without a single source-level write).
    if dataflow.options.implicit_iterable:
        iterable_extra = _implicit_iterable_blame(function, dataflow)
        for root, iids in iterable_extra.items():
            by_var[root] = by_var.get(root, frozenset()) | iids

    # Invert, walking each distinct blame set once: variables routinely
    # share one set object (memoized slices, zippered iterands), so
    # grouping by the set first avoids re-walking large slices per root.
    groups: dict[frozenset[int], list[Root]] = {}
    for root, iids in by_var.items():
        groups.setdefault(iids, []).append(root)

    by_iid: dict[int, set[Root]] = {}
    for iids, roots in groups.items():
        for iid in iids:
            by_iid.setdefault(iid, set()).update(roots)

    return BlameSets(
        by_var=by_var,
        by_iid={iid: frozenset(roots) for iid, roots in by_iid.items()},
    )
