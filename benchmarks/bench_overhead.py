"""E11 — Paper §V overhead paragraph, for LULESH:

"the typical cost per stack walk is 0.051 ms while the interval is
about 241 ms (or a total overhead of 0.02 %); the sizes of the datasets
generated during runtime are 6 MB to 20 MB depending on the problem
size; post-processing analysis takes an average of 16 ms to process one
sample."

Reproduced shape: per-stack-walk cost ≪ sampling interval (sub-percent
total overhead); dataset size proportional to samples; post-mortem cost
measured per sample.
"""

from conftest import record_result, run_once

from repro.bench import harness
from repro.runtime.costmodel import CLOCK_HZ
from repro.sampling.monitor import STACKWALK_CYCLES
from repro.views.tables import render_table


def profile():
    return harness.lulesh_profile()


def test_overhead(benchmark, record):
    res = run_once(benchmark, profile)
    mon = res.monitor
    stats = res.report.stats

    n = mon.n_samples
    assert n > 50
    total_cycles = res.run_result.total_cycles
    interval_cycles = total_cycles / n
    walk_cycles = mon.overhead.per_walk()

    # Stack walk ≪ sampling interval (paper: 0.051 ms vs 241 ms).
    assert walk_cycles < interval_cycles / 20
    overhead_fraction = mon.overhead.stackwalk_cycles_total / total_cycles
    # Total sampling overhead is sub-percent (paper: 0.02 %).
    assert overhead_fraction < 0.01

    # Raw dataset scales with samples and is nontrivial.
    dataset = mon.dataset_size_bytes()
    assert dataset > 1000
    per_sample_bytes = dataset / n
    assert 8 <= per_sample_bytes <= 512

    # Post-mortem throughput recorded.
    per_sample_pm = stats.postmortem_seconds / n
    assert per_sample_pm >= 0

    rows = [
        ["samples", str(n), "-"],
        ["stack walk (cycles)", f"{walk_cycles:.0f}", "0.051 ms"],
        ["sampling interval (cycles)", f"{interval_cycles:.0f}", "241 ms"],
        ["total sampling overhead", f"{100*overhead_fraction:.4f}%", "0.02%"],
        ["raw dataset (bytes)", str(dataset), "6-20 MB"],
        ["post-mortem per sample (host s)", f"{per_sample_pm:.6f}", "16 ms"],
    ]
    record(
        "overhead",
        render_table(
            ["Metric", "Measured", "Paper"],
            rows,
            title="Tool overhead (paper §V, LULESH)",
        ),
    )
