"""repro — reproduction of "Data Centric Performance Measurement
Techniques for Chapel Programs" (Zhang & Hollingsworth, 2017).

Public API tour:

* :func:`repro.compile_source` — mini-Chapel source -> IR module;
* :class:`repro.Profiler` (``repro.tooling``) — the four-step pipeline:
  static blame analysis, sampled execution, post-mortem processing,
  presentation;
* :mod:`repro.views` — flat data-centric / code-centric / hybrid views;
* :mod:`repro.baselines` — pprof-style and HPCToolkit-style comparators;
* :mod:`repro.bench` — the paper's three benchmarks (MiniMD, CLOMP,
  LULESH) plus the experiment harness regenerating each table/figure.
"""

from .compiler.lower import compile_source, lower_program
from .tooling.profiler import ProfileResult, Profiler, run_only

__version__ = "1.0.0"

__all__ = ["ProfileResult", "Profiler", "compile_source", "lower_program", "run_only", "__version__"]
