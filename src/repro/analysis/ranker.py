"""Blame-guided ranking: join static findings with a measured profile.

The advisor's static passes say *what* to fix; the blame report says
*what matters*.  :func:`rank_findings` attaches to each finding the
highest blame fraction among its variables — matching both whole-
variable rows (``force``) and hierarchical path rows (``->force[i]``,
``->partArray[i].zoneArray[j].value``) — then re-sorts so, within a
severity, the recommendation touching the most-blamed data comes first.
This reproduces the paper's workflow: the expert scanned Table II/IV/VI
top rows and fixed the code behind them, in order.
"""

from __future__ import annotations

import re

from ..blame.report import BlameReport, BlameRow
from .diagnostics import Finding, sort_key

#: Characters that may follow a variable's own name in a path row
#: (``->name[i]``, ``->name.field``); guards against ``pos`` matching
#: ``->position[i]``.
_PATH_BOUNDARY = re.compile(r"^[.\[]")


def _row_matches(row: BlameRow, variable: str) -> bool:
    if row.name == variable:
        return True
    if row.is_path and row.name.startswith("->" + variable):
        rest = row.name[len(variable) + 2 :]
        return rest == "" or bool(_PATH_BOUNDARY.match(rest))
    return False


def blame_for_variables(
    report: BlameReport, variables: tuple[str, ...]
) -> float | None:
    """Highest blame fraction any of ``variables`` carries in the
    report (path rows included), or None when none appear."""
    best: float | None = None
    for row in report.rows:
        for v in variables:
            if _row_matches(row, v):
                if best is None or row.blame > best:
                    best = row.blame
    return best


def attach_blame(finding: Finding, report: BlameReport) -> Finding:
    """One finding, annotated with its variables' measured blame."""
    if not finding.variables:
        return finding
    return finding.with_blame(blame_for_variables(report, finding.variables))


def rank_findings(
    findings: list[Finding], report: BlameReport
) -> list[Finding]:
    """Annotates every finding with measured blame and re-sorts:
    severity first, then blame (highest first), then source order."""
    annotated = [attach_blame(f, report) for f in findings]
    return sorted(annotated, key=sort_key)
