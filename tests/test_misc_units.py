"""Small-unit coverage: heap accounting, locales, instruction
printing, report assembly helpers."""

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))
from conftest import compile_src

from repro.chapel.tokens import SourceLocation
from repro.runtime.locales import Locale, single_locale
from repro.runtime.memory import BYTES_PER_SLOT, Heap

LOC = SourceLocation("x.chpl", 3, 1)


class TestHeap:
    def test_allocation_accounting(self):
        h = Heap()
        a = h.allocate("array", 100, LOC, "main")
        b = h.allocate("object", 10, LOC, "f")
        assert a.heap_id != b.heap_id
        assert h.total_bytes == 110 * BYTES_PER_SLOT
        assert h.peak_bytes == h.total_bytes
        assert h.allocation_count == 2

    def test_free_reduces_live_not_total(self):
        h = Heap()
        a = h.allocate("array", 1000, LOC, "main")
        h.free(a.heap_id)
        h.allocate("array", 10, LOC, "main")
        assert h.total_bytes == 1010 * BYTES_PER_SLOT
        assert h.peak_bytes == 1000 * BYTES_PER_SLOT
        assert h._live_bytes == 10 * BYTES_PER_SLOT

    def test_free_unknown_id_noop(self):
        h = Heap()
        h.free(12345)  # must not raise

    def test_large_allocations_filter(self):
        h = Heap()
        h.allocate("array", 10, LOC, "main")  # 80 B
        big = h.allocate("array", 1000, LOC, "main")  # 8000 B
        larges = h.large_allocations(4096)
        assert [a.heap_id for a in larges] == [big.heap_id]


class TestLocales:
    def test_single_locale(self):
        loc = single_locale(max_task_par=6)
        assert loc.locale_id == 0
        assert loc.max_task_par == 6
        assert loc.name == "LOCALE0"

    def test_locale_identity(self):
        assert Locale(2).name == "LOCALE2"


class TestInstructionPrinting:
    def test_runtime_instruction_reprs(self):
        src = """
var D: domain(1) = {0..3};
var A: [D] real;
proc main() {
  var S = A[D];
  var E = D.expand(1);
  forall i in D { A[i] = 1.0; }
}
"""
        m = compile_src(src)
        from repro.ir.printer import print_module

        text = print_module(m)
        assert "makedomain" in text
        assert "makearray" in text
        assert "arrayslice" in text
        assert "domainop.expand" in text
        assert "spawnjoin[forall]" in text
        assert "; outlined from main" in text

    def test_record_and_global_printing(self):
        m = compile_src(
            "record R { var a: int; }\nvar g: R = new R(1);\nproc main() { }"
        )
        from repro.ir.printer import print_module

        text = print_module(m)
        assert "record R { a: int }" in text
        assert "global @g: R" in text


class TestReportHelpers:
    def test_build_rows_min_blame_and_temps(self):
        from repro.blame.attribution import AttributionResult, VariableBlame
        from repro.blame.report import build_rows

        rows = {
            ("main", "hot"): VariableBlame("hot", "main", None, False, samples=90),
            ("main", "cold"): VariableBlame("cold", "main", None, False, samples=2),
            ("main", "_tmp"): VariableBlame("_tmp", "main", None, True, samples=50),
        }
        att = AttributionResult(rows=rows, total_samples=100)
        visible = build_rows(att, min_blame=0.05)
        names = [r.name for r in visible]
        assert names == ["hot"]
        with_temps = build_rows(att, min_blame=0.0, include_temps=True)
        assert {r.name for r in with_temps} == {"hot", "cold", "_tmp"}

    def test_blame_of_with_context_filter(self):
        from repro.blame.report import BlameReport, BlameRow, RunStats

        rows = [
            BlameRow("x", "int", 0.5, "f", 5, False),
            BlameRow("x", "int", 0.2, "g", 2, False),
        ]
        rep = BlameReport("p", rows, RunStats(user_samples=10))
        assert rep.blame_of("x", context="g") == pytest.approx(0.2)
        assert rep.blame_of("x") == pytest.approx(0.5)  # first match
        assert rep.blame_of("nope") == 0.0
