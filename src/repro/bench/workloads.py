"""Synthetic workload generators.

Parameterized mini-Chapel program families used by the extension
benches and stress tests.  Each generator returns (source, config,
expectations) where the expectations name the variables a correct
blame profile must surface — so a workload can be used both as a
benchmark input and as an oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Workload:
    """One generated program with its blame oracle."""

    name: str
    source: str
    config: dict[str, object] = field(default_factory=dict)
    #: Variables that must rank in the top tier of the blame profile.
    hot_variables: tuple[str, ...] = ()
    #: Variables that must stay below ~20 % blame.
    cold_variables: tuple[str, ...] = ()


def stencil(n: int = 16, iters: int = 4) -> Workload:
    """2-D Jacobi stencil: two grids, slices as boundary views."""
    source = """
config const n: int = 16;
config const iters: int = 4;
var D: domain(2) = {0..n+1, 0..n+1};
var Inner: domain(2) = {1..n, 1..n};
var Grid: [D] real;
var Next: [D] real;
var Residual: [0..iters] real;

proc sweep(it: int) {
  forall (i, j) in Inner {
    Next[i, j] = (Grid[i-1, j] + Grid[i+1, j] + Grid[i, j-1] + Grid[i, j+1]) * 0.25;
  }
  var r = 0.0;
  forall (i, j) in Inner {
    var d = Next[i, j] - Grid[i, j];
    Grid[i, j] = Next[i, j];
    r += d * d;
  }
  Residual[it] = r;
}

proc main() {
  forall (i, j) in D {
    Grid[i, j] = if i == 0 then 1.0 else 0.0;
  }
  for it in 1..iters { sweep(it); }
  writeln("residual", Residual[iters]);
}
"""
    return Workload(
        name="stencil",
        source=source,
        config={"n": n, "iters": iters},
        hot_variables=("Next", "Grid"),
        cold_variables=("Residual",),
    )


def md_pairs(atoms: int = 48, steps: int = 3) -> Workload:
    """MiniMD-like pairwise force kernel over tuple positions."""
    source = """
config const atoms: int = 48;
config const steps: int = 3;
var pos: [0..atoms-1] 3*real;
var frc: [0..atoms-1] 3*real;
var vel: [0..atoms-1] 3*real;

proc main() {
  forall i in 0..atoms-1 {
    pos[i] = (i * 0.3, i * 0.2, i * 0.1);
  }
  for s in 1..steps {
    forall i in 0..atoms-1 {
      var f = (0.0, 0.0, 0.0);
      for j in 0..atoms-1 {
        var d = pos[i] - pos[j];
        var r2 = d[0]*d[0] + d[1]*d[1] + d[2]*d[2] + 1.0;
        f = f + d * (1.0 / r2);
      }
      frc[i] = f;
    }
    forall i in 0..atoms-1 {
      vel[i] = vel[i] + frc[i] * 0.01;
      pos[i] = pos[i] + vel[i] * 0.01;
    }
  }
  writeln("p0", pos[0][0]);
}
"""
    # pos is mostly *read* in the dominant force loop (reads don't
    # blame), so only frc is guaranteed hot; pos earns its share from
    # the integrate phase.
    return Workload(
        name="md_pairs",
        source=source,
        config={"atoms": atoms, "steps": steps},
        hot_variables=("frc",),
        cold_variables=(),
    )


def nested_structures(rows: int = 24, cols: int = 24) -> Workload:
    """CLOMP-like class/record nest — the hpctk baseline's worst case."""
    source = """
record Cell { var v: real; }
class Row { var total: real; var cells: [?] Cell; }
config const rows: int = 24;
config const cols: int = 24;
var table: [0..rows-1] Row;

proc touch(r: Row) {
  var carry = 1.0;
  for j in 0..cols-1 {
    r.cells[j].v = r.cells[j].v * 0.5 + carry;
    carry = carry * 0.95;
  }
  r.total += carry;
}

proc main() {
  for i in 0..rows-1 {
    var cs: [0..cols-1] Cell;
    table[i] = new Row(0.0, cs);
  }
  for t in 1..4 {
    forall i in 0..rows-1 { touch(table[i]); }
  }
  writeln("t0", table[0].total);
}
"""
    return Workload(
        name="nested_structures",
        source=source,
        config={"rows": rows, "cols": cols},
        hot_variables=("table", "->table[i].cells[j].v"),
        cold_variables=("->table[i].total",),
    )


def reduction_heavy(n: int = 400) -> Workload:
    """Reduction-dominated kernel (the paper's future-work features)."""
    source = """
config const n: int = 400;
var data1: [0..n-1] real;
var partial: [0..3] real;

iter strided(lo: int, hi: int, s: int): int {
  var i = lo;
  while i <= hi {
    yield i;
    i += s;
  }
}

proc main() {
  forall i in 0..n-1 { data1[i] = sin(i * 0.01) + 1.5; }
  for lane in 0..3 {
    var acc = 0.0;
    for i in strided(lane, n - 1, 4) {
      acc += data1[i];
    }
    partial[lane] = acc;
  }
  writeln("sum", + reduce partial);
}
"""
    return Workload(
        name="reduction_heavy",
        source=source,
        config={"n": n},
        hot_variables=("data1",),
        cold_variables=(),
    )


ALL_WORKLOADS = {
    "stencil": stencil,
    "md_pairs": md_pairs,
    "nested_structures": nested_structures,
    "reduction_heavy": reduction_heavy,
}
