"""The sharded parallel pipeline: bit-identity with the serial path.

Two comparison regimes, deliberately distinct:

* **same stream** — serial and parallel consume the *identical*
  collected (possibly degraded) sample list, so the post-mortem and
  attribution results must be ``==`` down to every field;
* **cross run** — two separate ``Profiler`` runs.  Task ids are
  process-global, so raw samples differ across runs even on clean
  streams; what must (and does) match byte-for-byte is everything the
  tool persists and shows: the canonicalized ``.cbp`` artifact and every
  rendered view.
"""

from __future__ import annotations

import pytest

from repro.artifact import (
    artifact_bytes,
    canonicalize_timings,
    merge_snapshots,
    read_artifact,
    snapshot_from_result,
)
from repro.artifact.model import relabel
from repro.errors import ParallelError
from repro.pipeline import (
    VIEWS,
    attribute_stage,
    interpreter_pool_available,
    parallel_analyze,
    parallel_postmortem,
    postmortem_stage,
    render_stage,
    resolve_backend,
)
from repro.tooling.cli import main as cli_main
from repro.tooling.profiler import Profiler

from .conftest import (
    FAULT_SPEC,
    NUM_THREADS,
    THRESHOLD,
    benchmark_setup,
    collected,
)

#: One serial Profiler run per configuration (cross-run baselines).
_SERIAL: dict = {}


def serial_run(name: str, faults: str | None = None):
    key = (name, faults)
    if key not in _SERIAL:
        source, filename, config = benchmark_setup(name)
        _SERIAL[key] = Profiler(
            source,
            filename=filename,
            config=config,
            num_threads=NUM_THREADS,
            threshold=THRESHOLD,
            faults=faults,
        ).profile()
    return _SERIAL[key]


def parallel_run(name: str, workers: int, backend: str = "inline",
                 faults: str | None = None, **kwargs):
    source, filename, config = benchmark_setup(name)
    return Profiler(
        source,
        filename=filename,
        config=config,
        num_threads=NUM_THREADS,
        threshold=THRESHOLD,
        faults=faults,
        workers=workers,
        parallel_backend=backend,
        **kwargs,
    ).profile()


class TestSameStreamEquality:
    """Serial vs sharded over the identical degraded stream."""

    @pytest.mark.parametrize("faults", [None, FAULT_SPEC],
                             ids=["clean", "faulted"])
    @pytest.mark.parametrize("workers", [1, 2, 3, 4, 5, 8])
    def test_postmortem_and_attribution_exact(self, workers, faults):
        module, static, samples, wall = collected("minimd", faults)
        serial_pm = postmortem_stage(module, samples, options=static.options)
        serial_attr = attribute_stage(static, serial_pm)
        par = parallel_postmortem(
            module, static, samples,
            workers=workers, backend="inline", wall_seconds=wall,
        )
        assert par.postmortem == serial_pm
        assert par.attribution == serial_attr
        assert sum(par.shard_sizes) == len(samples)
        assert len(par.shard_snapshots) == workers
        assert par.workers == workers and par.backend == "inline"

    def test_empty_stream_merges_as_identities(self):
        """Surplus/empty shards contribute nothing; no division by the
        zero sample count anywhere in aggregation or rendering."""
        module, static, _, wall = collected("minimd")
        serial_pm = postmortem_stage(module, [], options=static.options)
        serial_attr = attribute_stage(static, serial_pm)
        par = parallel_postmortem(
            module, static, [], workers=4, backend="inline",
            wall_seconds=wall,
        )
        assert par.postmortem == serial_pm
        assert par.attribution == serial_attr
        assert serial_attr.total_samples == 0
        assert par.snapshot.report.stats.total_raw_samples == 0
        assert all(r.blame == 0.0 for r in par.snapshot.report.rows)
        for view in ("data", "code", "hybrid"):
            assert render_stage(par.snapshot, view)

    def test_more_workers_than_samples(self):
        module, static, samples, wall = collected("minimd")
        few = samples[:3]
        serial_pm = postmortem_stage(module, few, options=static.options)
        par = parallel_postmortem(
            module, static, few, workers=8, backend="inline",
            wall_seconds=wall,
        )
        assert par.postmortem == serial_pm
        assert sum(1 for n in par.shard_sizes if n == 0) == 5


class TestCrossRunByteIdentity:
    """Separate serial and parallel runs: artifacts and views match."""

    @pytest.mark.parametrize(
        "name,faults,workers",
        [
            ("lulesh", None, 2),
            ("lulesh", None, 4),
            ("minimd", FAULT_SPEC, 2),
            ("minimd", FAULT_SPEC, 3),
        ],
    )
    def test_artifact_and_views(self, name, faults, workers):
        serial = serial_run(name, faults)
        par = parallel_run(name, workers, faults=faults)
        s_snap = snapshot_from_result(serial, canonical_timings=True)
        p_snap = canonicalize_timings(par.parallel.snapshot)
        assert artifact_bytes(p_snap) == artifact_bytes(s_snap)
        for view in VIEWS:
            assert render_stage(p_snap, view) == render_stage(s_snap, view)

    def test_min_blame_applied_post_merge(self):
        """min_blame is a fraction of the run denominator, so it must be
        applied after the shard merge — serial and sharded agree."""
        source, filename, config = benchmark_setup("minimd")
        serial = Profiler(
            source, filename=filename, config=config,
            num_threads=NUM_THREADS, threshold=THRESHOLD, min_blame=0.05,
        ).profile()
        par = parallel_run("minimd", 3, min_blame=0.05)
        s_snap = snapshot_from_result(serial, canonical_timings=True)
        p_snap = canonicalize_timings(par.parallel.snapshot)
        assert artifact_bytes(p_snap) == artifact_bytes(s_snap)
        assert all(
            r.blame >= 0.05 or r.name == "<unknown>"
            for r in p_snap.report.rows
        )

    def test_process_backend_end_to_end(self):
        """Real pickling + subprocess transport, degraded stream."""
        serial = serial_run("minimd", FAULT_SPEC)
        par = parallel_run("minimd", 2, backend="process", faults=FAULT_SPEC)
        assert par.parallel.backend == "process"
        assert artifact_bytes(
            canonicalize_timings(par.parallel.snapshot)
        ) == artifact_bytes(snapshot_from_result(serial, canonical_timings=True))

    def test_shard_snapshots_remerge_to_the_main_snapshot(self):
        """shard partials + tail are exactly the merge inputs."""
        par = parallel_run("lulesh", 3).parallel
        remerged = merge_snapshots(
            par.shard_snapshots + [par.tail_snapshot],
            program=par.snapshot.meta.program,
        )
        remerged.meta = relabel(remerged.meta, kind="profile", locale_id=0)
        remerged.report.locale_id = 0
        assert artifact_bytes(canonicalize_timings(remerged)) == artifact_bytes(
            canonicalize_timings(par.snapshot)
        )


class TestParallelAnalyze:
    def test_blame_sets_identical_on_cold_caches(self):
        """Per-function fan-out (process backend, real pickling) lands
        on the same blame sets as the serial two-phase analysis."""
        from repro.blame.cache import _FN_ATTR, _MOD_ATTR
        from repro.blame.static_info import ModuleBlameInfo
        from repro.compiler.lower import compile_source

        source, filename, _ = benchmark_setup("minimd")
        module = compile_source(source, filename)
        serial = ModuleBlameInfo(module)
        # Wipe the on-module caches so the parallel path recomputes.
        module.__dict__.pop(_MOD_ATTR, None)
        for fn in module.functions.values():
            fn.__dict__.pop(_FN_ATTR, None)
        par = parallel_analyze(module, workers=3, backend="process")
        assert par.module is module
        assert list(par.functions) == list(module.functions)
        assert par.global_aliases == serial.global_aliases
        for name, a in serial.functions.items():
            b = par.functions[name]
            assert a.blame_sets.by_var == b.blame_sets.by_var, name

    def test_worker_count_one_is_the_serial_path(self):
        module, static, _, _ = collected("minimd")
        info = parallel_analyze(module, options=static.options, workers=1)
        assert info.functions.keys() == static.functions.keys()


class TestBackendsAndGuards:
    def test_resolve_auto_prefers_interpreter(self):
        expected = (
            "interpreter" if interpreter_pool_available() else "process"
        )
        assert resolve_backend("auto") == expected

    def test_resolve_passthrough(self):
        assert resolve_backend("process") == "process"
        assert resolve_backend("inline") == "inline"

    def test_unknown_backend_raises(self):
        with pytest.raises(ParallelError, match="unknown parallel backend"):
            resolve_backend("threads")

    @pytest.mark.skipif(
        interpreter_pool_available(),
        reason="InterpreterPoolExecutor exists on this Python",
    )
    def test_interpreter_backend_gated(self):
        with pytest.raises(ParallelError, match="Python >= 3.14"):
            resolve_backend("interpreter")

    def test_streaming_conflicts_with_workers(self):
        source, filename, config = benchmark_setup("minimd")
        p = Profiler(source, filename=filename, config=config, workers=2,
                     parallel_backend="inline")
        with pytest.raises(ParallelError, match="streaming"):
            p.profile(streaming=True)

    def test_workers_below_one_refused(self):
        source, filename, config = benchmark_setup("minimd")
        with pytest.raises(ParallelError, match="at least one worker"):
            Profiler(source, filename=filename, config=config, workers=0)
        module, static, samples, wall = collected("minimd")
        with pytest.raises(ParallelError, match="at least one worker"):
            parallel_postmortem(module, static, samples, workers=0,
                                backend="inline", wall_seconds=wall)


class TestCLI:
    def _profile(self, tmp_path, capsys, subdir, *extra):
        source, filename, config = benchmark_setup("minimd")
        src = tmp_path / "minimd.chpl"
        src.write_text(source)
        out_dir = tmp_path / subdir
        out_dir.mkdir()
        art = out_dir / "run.cbp"
        rc = cli_main(
            [str(src), "--threads", str(NUM_THREADS),
             "--threshold", str(THRESHOLD),
             "--config"] + [f"{k}={v}" for k, v in config.items()]
            + ["--view", "data", "-o", str(art)] + list(extra)
        )
        assert rc == 0
        captured = capsys.readouterr()
        return art.read_bytes(), captured.out.replace(str(out_dir), "OUT")

    def test_workers_flag_is_byte_identical(self, tmp_path, capsys):
        base_art, base_out = self._profile(tmp_path, capsys, "w1")
        for w, sub in ((2, "w2"), (4, "w4")):
            art, out = self._profile(
                tmp_path, capsys, sub,
                "--workers", str(w), "--parallel-backend", "inline",
            )
            assert art == base_art
            assert out == base_out  # the parallel summary goes to stderr

    def test_faulted_workers_flag_is_byte_identical(self, tmp_path, capsys):
        base_art, base_out = self._profile(
            tmp_path, capsys, "w1", "--inject-faults", FAULT_SPEC
        )
        art, out = self._profile(
            tmp_path, capsys, "w2",
            "--inject-faults", FAULT_SPEC,
            "--workers", "2", "--parallel-backend", "inline",
        )
        assert art == base_art
        assert out == base_out

    def test_shard_artifacts_remerge(self, tmp_path, capsys):
        source, filename, config = benchmark_setup("minimd")
        src = tmp_path / "minimd.chpl"
        src.write_text(source)
        art = tmp_path / "run.cbp"
        shards_dir = tmp_path / "shards"
        rc = cli_main(
            [str(src), "--threads", str(NUM_THREADS),
             "--threshold", str(THRESHOLD),
             "--config"] + [f"{k}={v}" for k, v in config.items()]
            + ["--view", "none", "-o", str(art),
               "--workers", "3", "--parallel-backend", "inline",
               "--shard-artifacts", str(shards_dir)]
        )
        assert rc == 0
        capsys.readouterr()
        parts = [
            read_artifact(str(shards_dir / name))
            for name in ("shard-0.cbp", "shard-1.cbp", "shard-2.cbp",
                         "tail.cbp")
        ]
        remerged = merge_snapshots(parts, program=str(src))
        remerged.meta = relabel(remerged.meta, kind="profile", locale_id=0)
        remerged.report.locale_id = 0
        assert artifact_bytes(remerged) == art.read_bytes()

    def test_shard_artifacts_needs_workers(self, tmp_path, capsys):
        src = tmp_path / "p.chpl"
        src.write_text("proc main() { writeln(1); }\n")
        with pytest.raises(SystemExit):
            cli_main([str(src), "--shard-artifacts", str(tmp_path / "d")])

    def test_streaming_workers_conflict_rejected(self, tmp_path, capsys):
        src = tmp_path / "p.chpl"
        src.write_text("proc main() { writeln(1); }\n")
        with pytest.raises(SystemExit):
            cli_main([str(src), "--streaming", "--workers", "2"])
