"""Tolerant post-mortem: zero-cost clean path, recovery, <unknown>."""

import sys, os

from repro.blame.postmortem import (
    REASON_LOST_TAG,
    REASON_MALFORMED,
    REASON_NO_DEBUG,
    process_samples,
)
from repro.blame.report import UNKNOWN_BUCKET
from repro.resilience.faults import FAULT_CLASSES, FaultPlan
from repro.tooling.profiler import Profiler

sys.path.insert(0, os.path.dirname(os.path.dirname(__file__)))
from conftest import profile_src

PAR = """
var A: [0..199] real;
var B: [0..199] real;
proc kernel() {
  forall i in 0..199 { A[i] = sqrt(i * 1.0) + i * 0.25; }
}
proc other() {
  forall i in 0..199 { B[i] = i * 2.0; }
}
proc main() { kernel(); other(); }
"""


class TestZeroCostCleanPath:
    def test_tolerant_is_bit_identical_on_clean_stream(self):
        res = profile_src(PAR, threshold=211)
        strict = process_samples(
            res.module, res.monitor.samples,
            options=res.static_info.options, tolerant=False,
        )
        tolerant = process_samples(
            res.module, res.monitor.samples,
            options=res.static_info.options, tolerant=True,
        )
        assert strict.instances == tolerant.instances
        assert not tolerant.unknown
        assert not tolerant.quarantined
        assert tolerant.n_recovered == 0

    def test_clean_report_has_no_unknown_row(self):
        res = profile_src(PAR, threshold=211)
        assert all(r.name != UNKNOWN_BUCKET for r in res.report.rows)
        assert res.report.stats.unknown_samples == 0
        assert res.report.unknown_by_reason == {}


class TestDegradedRuns:
    def _profile(self, fault, rate, seed=7):
        return Profiler(
            PAR,
            filename="test.chpl",
            num_threads=4,
            threshold=211,
            faults=FaultPlan(seed=seed).with_rate(fault, rate),
        ).profile()

    def test_every_fault_class_completes(self):
        for fault in FAULT_CLASSES:
            res = self._profile(fault, 0.3)
            assert res.report.rows is not None
            stats = res.report.stats
            assert (
                stats.unknown_samples >= 0
                and stats.quarantined_samples >= 0
                and stats.recovered_samples >= 0
            )

    def test_tagloss_recovered_by_suffix_match(self):
        res = self._profile("tagloss", 0.5)
        assert res.report.stats.recovered_samples > 0
        recovered = [i for i in res.postmortem.instances if i.was_recovered]
        assert recovered
        for inst in recovered:
            assert inst.frames[-1][0] == "main"

    def test_truncate_recovered_or_unknown_never_misattributed(self):
        res = self._profile("truncate", 0.5)
        stats = res.report.stats
        fs = res.fault_stats
        assert fs.truncated > 0
        # Every truncated walk either glued back or is explicitly
        # unknown — none is silently attributed with a partial stack.
        for inst in res.postmortem.instances:
            root = inst.frames[-1][0]
            f = res.module.get_function(root)
            assert root == "main" or (f is not None and f.is_artificial)

    def test_unknown_bucket_row_rendered_with_provenance(self):
        # Corrupt every sample's payload: half get an invalid leaf and
        # are quarantined at validation with a reason.
        res = self._profile("corrupt", 1.0)
        stats = res.report.stats
        assert stats.quarantined_samples > 0
        assert res.report.quarantine_by_reason.get(REASON_MALFORMED)

    def test_unknown_percentages_share_denominator(self):
        res = self._profile("strip", 0.9, seed=2)
        report = res.report
        if report.stats.unknown_samples:
            unknown_rows = [r for r in report.rows if r.name == UNKNOWN_BUCKET]
            assert len(unknown_rows) == 1
            assert unknown_rows[0].samples == report.stats.unknown_samples
            reasons = report.unknown_by_reason
            assert sum(reasons.values()) == report.stats.unknown_samples
            assert set(reasons) <= {
                REASON_NO_DEBUG, REASON_LOST_TAG, "truncated-stack",
            }

    def test_degraded_run_deterministic(self):
        a = self._profile("drop", 0.3)
        b = self._profile("drop", 0.3)
        assert [
            (r.name, r.context, r.samples) for r in a.report.rows
        ] == [(r.name, r.context, r.samples) for r in b.report.rows]
