"""Zero-sample denominators: a run whose every sample was dropped (or
that never crossed the PMU threshold) must render every view and merge
cleanly — no division by the empty denominator anywhere."""

from __future__ import annotations

import pytest

from repro.artifact import merge_snapshots, snapshot_from_result
from repro.blame.attribution import AttributionResult, VariableBlame
from repro.pipeline import VIEWS, render_stage
from repro.tooling.profiler import Profiler

SRC = """
config const n: int = 40;
var A: [0..99] real;
proc main() {
  forall i in 0..n-1 { A[i] = sqrt(i * 1.0); }
}
"""


@pytest.fixture(scope="module")
def dropped_everything():
    return Profiler(SRC, threshold=311, faults="drop=1.0,seed=1").profile()


class TestZeroSamples:
    def test_percentage_guards_the_empty_denominator(self):
        row = VariableBlame(name="A", context="main", type=None, is_temp=False)
        assert row.percentage(0) == 0.0
        empty = AttributionResult(rows={}, total_samples=0)
        assert empty.blame_of("A") == 0.0
        assert empty.sorted_rows() == []

    def test_fully_dropped_run_has_no_rows(self, dropped_everything):
        report = dropped_everything.report
        assert report.stats.user_samples == 0
        assert report.stats.unknown_samples == 0
        assert report.rows == []

    def test_fully_dropped_run_renders_every_view(self, dropped_everything):
        for view in VIEWS:
            assert render_stage(dropped_everything, view)

    def test_zero_sample_snapshots_merge_and_render(self, dropped_everything):
        a = snapshot_from_result(
            dropped_everything, source_sha256="a" * 64, locale_id=0
        )
        b = snapshot_from_result(
            dropped_everything, source_sha256="a" * 64, locale_id=1
        )
        merged = merge_snapshots([a, b], program="drop.chpl")
        assert merged.report.stats.user_samples == 0
        assert all(r.blame == 0.0 for r in merged.report.rows)
        for view in ("data", "code", "hybrid"):
            assert render_stage(merged, view)
