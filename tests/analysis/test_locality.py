"""Locality classification tests: LOCAL / REMOTE / INDIRECT verdicts
on targeted shapes, interprocedural index provenance, and the dynamic
exactness cross-check — no access labeled LOCAL may ever execute with
``executing locale != owning locale`` under the simulated block
distribution."""

import pytest

from repro.analysis import AnalysisContext, Locality
from repro.bench.programs import mttkrp, spmv
from repro.compiler.lower import compile_source
from repro.runtime.locales import LocaleObserver, block_owner


def locality_of(source, filename="t.chpl"):
    module = compile_source(source, filename)
    return module, AnalysisContext(module).locality()


def by_array(loc):
    """array name -> set of Locality verdicts over all its accesses."""
    out = {}
    for acc in loc.accesses.values():
        for name in acc.arrays:
            out.setdefault(name, set()).add(acc.locality)
    return out


def sources_of(loc, array):
    out = set()
    for acc in loc.accesses.values():
        if array in acc.arrays:
            out.update(acc.index_sources)
    return out


class TestClassification:
    def test_aligned_identity_is_local(self):
        src = """
var D: domain(1) = {1..32};
var a: [D] real;
proc main() {
  forall i in D {
    a[i] = 1.0;
  }
  writeln(a[1]);
}
"""
        _, loc = locality_of(src)
        assert Locality.LOCAL in by_array(loc)["a"]

    def test_misaligned_domain_is_remote(self):
        # D2 has the same shape as D but is a different domain object:
        # alignment is never provable.
        src = """
var D: domain(1) = {1..32};
var D2: domain(1) = {1..32};
var b: [D2] real;
proc main() {
  forall i in D {
    b[i] = 1.0;
  }
  writeln(b[1]);
}
"""
        _, loc = locality_of(src)
        assert by_array(loc)["b"] == {Locality.REMOTE}

    def test_anonymous_domain_is_never_local(self):
        src = """
var a: [1..32] real;
proc main() {
  forall i in 1..32 {
    a[i] = 1.0;
  }
  writeln(a[1]);
}
"""
        _, loc = locality_of(src)
        assert Locality.LOCAL not in by_array(loc)["a"]

    def test_shifted_index_is_remote(self):
        src = """
var D: domain(1) = {1..32};
var a: [D] real;
proc main() {
  forall i in 1..31 {
    a[i + 1] = 1.0;
  }
  writeln(a[2]);
}
"""
        _, loc = locality_of(src)
        assert by_array(loc)["a"] == {Locality.REMOTE}

    def test_serial_access_is_remote(self):
        src = """
var D: domain(1) = {1..32};
var a: [D] real;
proc main() {
  for i in D {
    a[i] = 1.0;
  }
  writeln(a[1]);
}
"""
        _, loc = locality_of(src)
        assert by_array(loc)["a"] == {Locality.REMOTE}

    def test_indirection_is_indirect_with_sources(self):
        src = """
var D: domain(1) = {1..32};
var idx: [D] int;
var a: [D] real;
proc main() {
  forall i in D {
    a[idx[i]] = 1.0;
  }
  writeln(a[1]);
}
"""
        _, loc = locality_of(src)
        arrays = by_array(loc)
        assert Locality.INDIRECT in arrays["a"]
        assert sources_of(loc, "a") == {"idx"}
        # The index array itself is identity-accessed: provably local.
        assert arrays["idx"] == {Locality.LOCAL}

    def test_chained_indirection(self):
        src = """
var D: domain(1) = {1..32};
var idx1: [D] int;
var idx2: [D] int;
var a: [D] real;
proc main() {
  forall i in D {
    a[idx1[idx2[i]]] = 1.0;
  }
  writeln(a[1]);
}
"""
        _, loc = locality_of(src)
        arrays = by_array(loc)
        assert Locality.INDIRECT in arrays["a"]
        assert "idx1" in sources_of(loc, "a")
        # idx1 is itself accessed through idx2's contents.
        assert Locality.INDIRECT in arrays["idx1"]
        assert sources_of(loc, "idx1") == {"idx2"}

    def test_induction_cell_window_walk_is_direct(self):
        # ``for j in p[i]..p[i+1]-1`` walks a contiguous counter even
        # though its bounds load array elements: the CSR shape must
        # not read as INDIRECT.
        src = """
var D: domain(1) = {1..8};
var D1: domain(1) = {1..9};
var p: [D1] int;
var v: [D1] real;
proc main() {
  forall i in D {
    var acc = 0.0;
    for j in p[i]..p[i+1]-1 {
      acc += v[j];
    }
    writeln(acc);
  }
}
"""
        _, loc = locality_of(src)
        assert Locality.INDIRECT not in by_array(loc)["v"]

    def test_interprocedural_formal_binding(self):
        # The indirect index flows through a callee formal: the
        # callee's access must still classify INDIRECT.
        src = """
var D: domain(1) = {1..32};
var idx: [D] int;
var a: [D] real;
proc put(k: int) {
  a[k] = 1.0;
}
proc main() {
  forall i in D {
    put(idx[i]);
  }
  writeln(a[1]);
}
"""
        _, loc = locality_of(src)
        assert Locality.INDIRECT in by_array(loc)["a"]
        assert "idx" in sources_of(loc, "a")


class TestBenchmarkClassification:
    def test_spmv_original(self):
        _, loc = locality_of(spmv.build_source("original"), "spmv.chpl")
        arrays = by_array(loc)
        # Streamed COO arrays: identity-accessed over their own domain.
        assert arrays["row"] == {Locality.LOCAL}
        assert arrays["col"] == {Locality.LOCAL}
        assert arrays["Aval"] == {Locality.LOCAL}
        # The gather and the scatter are the indirection.
        assert Locality.INDIRECT in arrays["x"]
        assert Locality.INDIRECT in arrays["y"]
        assert sources_of(loc, "x") == {"col"}
        assert sources_of(loc, "y") == {"row"}

    def test_spmv_optimized_has_no_scatter(self):
        _, loc = locality_of(spmv.build_source("optimized"), "spmv.chpl")
        arrays = by_array(loc)
        # Only the bulk gather of x stays indirect; y is written at
        # the identity index.
        assert Locality.INDIRECT in arrays["x"]
        assert Locality.INDIRECT not in arrays["y"]
        assert Locality.LOCAL in arrays["y"]
        assert Locality.LOCAL in arrays["xg"]

    def test_mttkrp_original(self):
        _, loc = locality_of(mttkrp.build_source("original"), "mttkrp.chpl")
        arrays = by_array(loc)
        assert arrays["mode1"] == {Locality.LOCAL}
        for name in ("B", "C", "outm"):
            assert Locality.INDIRECT in arrays[name], name
        assert sources_of(loc, "B") == {"mode2"}
        assert sources_of(loc, "outm") == {"mode1"}


class TestBlockOwner:
    def test_single_locale(self):
        assert block_owner(100, 3, 1) == 0

    def test_partition_is_contiguous_and_balanced(self):
        for size, locales in ((8, 2), (256, 4), (10, 3)):
            owners = [block_owner(size, p, locales) for p in range(size)]
            assert owners == sorted(owners)  # contiguous blocks
            assert set(owners) == set(range(locales))
            counts = [owners.count(c) for c in range(locales)]
            assert max(counts) - min(counts) <= 1  # balanced

    def test_out_of_range_positions_clamp(self):
        assert block_owner(8, -5, 4) == 0
        assert block_owner(8, 99, 4) == 3
        assert block_owner(0, 0, 4) == 0


class TestExactness:
    """The acceptance gate: LOCAL is exact.  Run each workload under
    the locale-observing interpreter and check that no LOCAL-labeled
    elemaddr ever executed on a locale other than the element's
    owner."""

    CASES = [
        ("spmv-original", spmv, "original"),
        ("spmv-optimized", spmv, "optimized"),
        ("mttkrp-original", mttkrp, "original"),
        ("mttkrp-optimized", mttkrp, "optimized"),
    ]

    @pytest.mark.parametrize("tag,prog,variant", CASES, ids=[c[0] for c in CASES])
    def test_local_accesses_observe_local(self, tag, prog, variant):
        module = compile_source(prog.build_source(variant), f"{tag}.chpl")
        loc = AnalysisContext(module).locality()
        local_iids = {
            iid
            for iid, acc in loc.accesses.items()
            if acc.locality is Locality.LOCAL
        }
        assert local_iids, "workload should have provably-local accesses"
        obs = LocaleObserver(
            module,
            config=prog.config_for(iters=1),
            num_threads=8,
            num_locales=4,
        )
        obs.run()
        exec_locales = set()
        for iid, pairs in obs.observed.items():
            exec_locales.update(e for e, _ in pairs)
            if iid in local_iids:
                assert all(e == o for e, o in pairs), (
                    f"LOCAL access iid={iid} observed remote pairs "
                    f"{[(e, o) for e, o in pairs if e != o][:4]}"
                )
        # Non-vacuous: work really ran on several locales, and some
        # non-LOCAL access really went remote.
        assert len(exec_locales) > 1
        assert any(
            e != o
            for iid, pairs in obs.observed.items()
            if iid not in local_iids
            for e, o in pairs
        )
