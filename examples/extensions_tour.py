"""Tour of the reproduction's extensions beyond the paper:

1. user-defined serial iterators (`iter`/`yield`, paper future work);
2. PMU skid + PEBS-style compensation (paper future work);
3. saving raw samples and re-analyzing them offline (the real tool's
   two-process step-2 → step-3 hand-off);
4. ablation switches on the blame mechanisms.

Run:  python examples/extensions_tour.py
"""

import os
import tempfile

from repro.blame.options import FULL
from repro.compiler.lower import compile_source
from repro.sampling.dataset import DatasetHeader, save_samples, source_digest
from repro.tooling.analyze import analyze_dataset
from repro.tooling.profiler import Profiler
from repro.views import render_data_centric

SOURCE = """
// A histogramming kernel driven by a user-defined iterator.
config const n: int = 300;
var samples: [0..n-1] real;
var histogram: [0..9] int;

iter bucketed(lo: int, hi: int): int {
  for i in lo..hi {
    var b = toInt(samples[i] * 10.0) % 10;
    yield b;
  }
}

proc main() {
  forall i in 0..n-1 {
    samples[i] = fmod(sin(i * 0.37) * 0.5 + 0.5, 1.0);
  }
  for b in bucketed(0, n - 1) {
    histogram[b] += 1;
  }
  writeln("histogram", histogram);
}
"""


def main() -> None:
    module = compile_source(SOURCE, "hist.chpl", fresh_ids=True)

    print("=" * 72)
    print("1) Iterators: blame attributes the iterator's work in main")
    print("=" * 72)
    res = Profiler(module, num_threads=8, threshold=809).profile()
    print(render_data_centric(res.report, top=8, min_blame=0.02))

    print()
    print("=" * 72)
    print("2) Skid: attribution under a sloppy PMU, then compensated")
    print("=" * 72)
    for tag, kw in [
        ("precise", {}),
        ("skid=12", {"skid": 12}),
        ("skid=12 + compensation", {"skid": 12, "skid_compensation": True}),
    ]:
        r = Profiler(module, num_threads=8, threshold=809, **kw).profile()
        print(
            f"  {tag:24s} histogram={100*r.report.blame_of('histogram'):5.1f}%  "
            f"samples(var)={100*r.report.blame_of('samples'):5.1f}%"
        )

    print()
    print("=" * 72)
    print("3) Offline analysis: save the dataset, analyze elsewhere")
    print("=" * 72)
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "run.jsonl")
        header = DatasetHeader(
            program="hist.chpl",
            source_sha256=source_digest(SOURCE),
            threshold=809,
            num_threads=8,
        )
        save_samples(path, header, res.monitor.samples)
        print(f"  saved {res.monitor.n_samples} samples "
              f"({os.path.getsize(path)} bytes)")
        _module, _pm, report = analyze_dataset(path, SOURCE, "hist.chpl")
        print(
            f"  offline blame(histogram) = "
            f"{100*report.blame_of('histogram'):.1f}%  "
            f"(online: {100*res.report.blame_of('histogram'):.1f}%)"
        )

    print()
    print("=" * 72)
    print("4) Ablations: turn mechanisms off and watch rows vanish")
    print("=" * 72)
    for tag, opts in [
        ("full", None),
        ("no implicit iterable", FULL.without(implicit_iterable=False)),
        ("no implicit control", FULL.without(implicit_control=False)),
    ]:
        r = Profiler(
            module, num_threads=8, threshold=809, blame_options=opts
        ).profile()
        print(
            f"  {tag:22s} samples(var)={100*r.report.blame_of('samples'):5.1f}%  "
            f"histogram={100*r.report.blame_of('histogram'):5.1f}%"
        )


if __name__ == "__main__":
    main()
