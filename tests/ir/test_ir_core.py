"""IR core tests: instructions, builder, module containers, printer,
debug info."""

import pytest

from repro.chapel.tokens import SourceLocation
from repro.chapel.types import BOOL, INT, REAL, VOID
from repro.ir import (
    BasicBlock,
    Constant,
    Function,
    FunctionParam,
    GlobalVar,
    IRBuilder,
    LineTable,
    Module,
    Register,
    collect_variables,
    print_function,
    print_module,
)
from repro.ir import instructions as I

LOC = SourceLocation("t.chpl", 10, 1)
LOC2 = SourceLocation("t.chpl", 11, 1)


def make_fn(name="f"):
    return Function(name, [], VOID, LOC)


class TestValues:
    def test_registers_are_unique(self):
        a, b = Register(INT), Register(INT)
        assert a.rid != b.rid

    def test_constant_repr(self):
        assert str(Constant(INT, 7)) == "7"

    def test_register_producer_backlink(self):
        fn = make_fn()
        b = IRBuilder(fn)
        b.set_block(b.new_block("entry"))
        r = b.binop(LOC, "+", Constant(INT, 1), Constant(INT, 2), INT)
        assert isinstance(r.producer, I.BinOp)


class TestBuilder:
    def test_emits_in_order_with_unique_iids(self):
        fn = make_fn()
        b = IRBuilder(fn)
        b.set_block(b.new_block("entry"))
        addr = b.alloca(LOC, INT, "x")
        b.store(LOC, Constant(INT, 1), addr)
        v = b.load(LOC2, addr, INT)
        b.ret(LOC2)
        iids = [i.iid for i in fn.entry.instructions]
        assert iids == sorted(iids)
        assert len(set(iids)) == len(iids)

    def test_emit_after_terminator_opens_dead_block(self):
        fn = make_fn()
        b = IRBuilder(fn)
        b.set_block(b.new_block("entry"))
        b.ret(LOC)
        b.store(LOC, Constant(INT, 1), b.alloca(LOC, INT, "x"))
        # the stray instructions landed in a fresh block, not after ret
        assert isinstance(fn.entry.instructions[-1], I.Ret)
        assert len(fn.blocks) > 1

    def test_cbr_successors(self):
        fn = make_fn()
        b = IRBuilder(fn)
        entry = b.new_block("entry")
        t1, t2 = b.new_block("t"), b.new_block("e")
        b.set_block(entry)
        b.cbr(LOC, Constant(BOOL, True), t1, t2)
        assert entry.successors() == [t1, t2]

    def test_cbr_same_target_single_successor(self):
        fn = make_fn()
        b = IRBuilder(fn)
        entry = b.new_block("entry")
        t = b.new_block("t")
        b.set_block(entry)
        b.cbr(LOC, Constant(BOOL, True), t, t)
        assert entry.successors() == [t]


class TestModule:
    def test_instruction_index(self):
        m = Module("m")
        fn = make_fn()
        m.add_function(fn)
        b = IRBuilder(fn)
        b.set_block(b.new_block("entry"))
        r = b.binop(LOC, "+", Constant(INT, 1), Constant(INT, 2), INT)
        b.ret(LOC)
        idx = m.instruction_index()
        got_fn, got_instr = idx[r.producer.iid]
        assert got_fn is fn and got_instr is r.producer

    def test_globals(self):
        m = Module()
        m.add_global(GlobalVar("Pos", REAL, LOC))
        assert "Pos" in m.globals

    def test_find_instruction(self):
        fn = make_fn()
        b = IRBuilder(fn)
        b.set_block(b.new_block("entry"))
        b.ret(LOC)
        iid = fn.entry.instructions[0].iid
        assert fn.find_instruction(iid) is fn.entry.instructions[0]
        assert fn.find_instruction(-5) is None


class TestReplaceOperand:
    def test_binop_replace(self):
        fn = make_fn()
        b = IRBuilder(fn)
        b.set_block(b.new_block("entry"))
        r = b.binop(LOC, "+", Constant(INT, 1), Constant(INT, 2), INT)
        r2 = b.binop(LOC, "*", r, Constant(INT, 3), INT)
        new = Constant(INT, 3)
        r2.producer.replace_operand(r, new)
        assert r2.producer.lhs is new


class TestPrinter:
    def test_print_function_contains_instructions(self):
        fn = make_fn("myfunc")
        b = IRBuilder(fn)
        b.set_block(b.new_block("entry"))
        addr = b.alloca(LOC, INT, "counter")
        b.store(LOC, Constant(INT, 0), addr)
        b.ret(LOC)
        text = print_function(fn)
        assert "myfunc" in text
        assert "alloca" in text and "counter" in text
        assert "line 10" in text

    def test_print_module(self):
        m = Module("prog")
        m.add_global(GlobalVar("G", INT, LOC, is_config=True))
        fn = make_fn()
        b = IRBuilder(fn)
        b.set_block(b.new_block("entry"))
        b.ret(LOC)
        m.add_function(fn)
        text = print_module(m)
        assert "global @G: int config" in text


class TestDebugInfo:
    def test_line_table_resolution(self):
        m = Module()
        fn = make_fn()
        m.add_function(fn)
        b = IRBuilder(fn)
        b.set_block(b.new_block("entry"))
        r = b.binop(LOC2, "+", Constant(INT, 1), Constant(INT, 1), INT)
        b.ret(LOC2)
        lt = LineTable(m)
        assert lt.resolve(r.producer.iid).line == 11
        assert lt.function_of(r.producer.iid) == "f"
        assert lt.resolve(999999) is None

    def test_collect_variables(self):
        m = Module()
        m.add_global(GlobalVar("G", INT, LOC))
        fn = make_fn()
        m.add_function(fn)
        b = IRBuilder(fn)
        b.set_block(b.new_block("entry"))
        b.alloca(LOC, REAL, "local_x")
        b.alloca(LOC, REAL, "_tmp", is_temp=True)
        b.ret(LOC)
        vars_ = collect_variables(m)
        names = {v.name: v for v in vars_}
        assert names["G"].is_global and names["G"].context == "main"
        assert names["local_x"].context == "f"
        assert names["_tmp"].is_temp
