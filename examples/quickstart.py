"""Quickstart: profile a mini-Chapel program with variable blame.

Run:  python examples/quickstart.py

Writes a small data-parallel program, runs it under the four-step blame
pipeline (static analysis → sampled execution → post-mortem →
presentation), and prints the three views of paper §IV.D.
"""

from repro.tooling import Profiler
from repro.views import render_code_centric, render_data_centric, render_hybrid

SOURCE = """
// A toy simulation: positions updated from forces, energies reduced.
config const n: int = 120;
config const steps: int = 5;

var D: domain(1) = {0..n-1};
var pos: [D] 3*real;
var vel: [D] 3*real;
var force: [D] 3*real;

proc applyForces(dt: real) {
  forall i in D {
    vel[i] = vel[i] + force[i] * dt;
    pos[i] = pos[i] + vel[i] * dt;
  }
}

proc computeForces() {
  forall i in D {
    var r = pos[i];
    var r2 = r[0]*r[0] + r[1]*r[1] + r[2]*r[2] + 1.0;
    force[i] = r * (0.0 - 1.0 / r2);
  }
}

proc energy(): real {
  var e = 0.0;
  for i in D {
    var v = vel[i];
    e += v[0]*v[0] + v[1]*v[1] + v[2]*v[2];
  }
  return e;
}

proc main() {
  forall i in D {
    pos[i] = (i * 0.1, i * 0.05, i * 0.01);
  }
  for s in 1..steps {
    computeForces();
    applyForces(0.01);
  }
  writeln("kinetic energy:", energy());
}
"""


def main() -> None:
    profiler = Profiler(
        SOURCE,
        filename="quickstart.chpl",
        num_threads=8,       # the simulated SMP width
        threshold=2003,      # PMU overflow threshold (prime)
    )
    result = profiler.profile()

    print("program output:")
    for line in result.run_result.output:
        print("  ", line)
    print()
    print(render_data_centric(result.report, top=12, min_blame=0.01))
    print()
    print(render_code_centric(result.module, result.postmortem, top=8))
    print()
    print(render_hybrid(result.report, min_blame=0.05))
    print()
    print(
        f"[{result.monitor.n_samples} samples, "
        f"{result.report.stats.user_samples} in user code, "
        f"simulated wall {result.run_result.wall_seconds:.5f}s]"
    )


if __name__ == "__main__":
    main()
