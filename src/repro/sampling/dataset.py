"""Raw-sample dataset persistence.

The real tool writes the step-2 artifact ("the sizes of the datasets
generated during runtime are 6 MB to 20 MB") to disk and runs step 3
post-mortem, possibly elsewhere — it is "embarrassingly parallel for
multi-locale cases".  This module serializes a monitor's sample stream
to JSONL with a header recording the program identity (source SHA-256)
and sampling configuration, so a separate process can re-do the
analysis: recompile the source with fresh deterministic instruction
ids, check the hash, and attribute.

Two formats:

* **v1** (``save_samples``/``load_samples``): plain JSONL — line 1 is a
  header object; each further line is one sample.  Whole-file writes,
  no integrity protection.
* **v2 journal** (:class:`DatasetJournal`): append-only, every line
  (header included) carries a CRC-32 of its payload.  A run interrupted
  mid-stream loses at most the unflushed tail: :func:`scan_journal`
  detects the corrupt tail, :func:`load_journal` returns the good
  prefix, and :meth:`DatasetJournal.resume` truncates to the last good
  record and continues appending.
"""

from __future__ import annotations

import hashlib
import json
import os
import zlib
from dataclasses import dataclass, field

from ..errors import DatasetCorruptError, SampleFormatError
from .records import RawSample

FORMAT_VERSION = 1
JOURNAL_VERSION = 2


def source_digest(source: str) -> str:
    return hashlib.sha256(source.encode()).hexdigest()


@dataclass(frozen=True)
class DatasetHeader:
    """Identity and configuration of a recorded run."""

    program: str
    source_sha256: str
    threshold: int
    num_threads: int
    locale_id: int = 0
    version: int = FORMAT_VERSION

    def to_json(self) -> dict:
        return {
            "version": self.version,
            "program": self.program,
            "source_sha256": self.source_sha256,
            "threshold": self.threshold,
            "num_threads": self.num_threads,
            "locale_id": self.locale_id,
        }

    @classmethod
    def from_json(cls, d: dict) -> "DatasetHeader":
        if d.get("version") not in (FORMAT_VERSION, JOURNAL_VERSION):
            raise SampleFormatError(
                f"unsupported dataset version {d.get('version')!r}"
            )
        return cls(
            program=d["program"],
            source_sha256=d["source_sha256"],
            threshold=d["threshold"],
            num_threads=d["num_threads"],
            locale_id=d.get("locale_id", 0),
            version=d["version"],
        )


def _sample_to_json(s: RawSample) -> dict:
    out = {
        "i": s.index,
        "t": s.thread_id,
        "k": s.task_id,
        "s": [[f, iid] for f, iid in s.stack],
        "ip": s.leaf_iid,
    }
    if s.is_idle:
        out["idle"] = True
    if s.spawn_tag is not None:
        out["tag"] = s.spawn_tag
        out["pre"] = [[f, iid] for f, iid in (s.pre_spawn_stack or ())]
    return out


def _sample_from_json(d: dict) -> RawSample:
    try:
        return RawSample(
            index=d["i"],
            thread_id=d["t"],
            task_id=d["k"],
            stack=tuple((f, iid) for f, iid in d["s"]),
            leaf_iid=d["ip"],
            spawn_tag=d.get("tag"),
            pre_spawn_stack=(
                tuple((f, iid) for f, iid in d["pre"]) if "tag" in d else None
            ),
            is_idle=d.get("idle", False),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SampleFormatError(f"malformed sample record: {exc!r}") from exc


def save_samples(
    path: str, header: DatasetHeader, samples: list[RawSample]
) -> None:
    """Writes a run's raw samples as JSONL (header line + one per sample)."""
    with open(path, "w") as f:
        f.write(json.dumps(header.to_json()) + "\n")
        for s in samples:
            f.write(json.dumps(_sample_to_json(s)) + "\n")


def load_samples(path: str) -> tuple[DatasetHeader, list[RawSample]]:
    """Reads a dataset back: (header, samples).  Accepts both the plain
    v1 format and the v2 journal (strict: corrupt journals raise)."""
    with open(path) as f:
        first = f.readline()
        if not first:
            raise SampleFormatError(f"{path}: empty dataset")
        d = json.loads(first)
        if "h" in d and "c" in d:
            header, samples, _scan = load_journal(path, strict=True)
            return header, samples
        header = DatasetHeader.from_json(d)
        samples = [_sample_from_json(json.loads(line)) for line in f if line.strip()]
    return header, samples


# -- v2: append-only journal with per-record checksums ----------------------


def crc_line(kind: str, payload: dict | list) -> str:
    """One CRC-framed record line: ``{"c": <crc32>, "<kind>": <payload>}``.

    Shared framing: the v2 sample journal and the ``.cbp`` profile
    artifact (:mod:`repro.artifact.format`) both use it, so one reader
    (:func:`check_line`) detects bit flips in either."""
    body = json.dumps(payload, separators=(",", ":"), sort_keys=True)
    return json.dumps(
        {"c": zlib.crc32(body.encode())}, separators=(",", ":")
    )[:-1] + f',"{kind}":{body}}}'


def check_line(line: str) -> tuple[str, dict | list]:
    """Parses and checksum-verifies one framed line → (kind, payload).

    Raises :class:`DatasetCorruptError` on any damage."""
    try:
        d = json.loads(line)
    except json.JSONDecodeError as exc:
        raise DatasetCorruptError(f"unparseable journal line: {exc}") from exc
    if not isinstance(d, dict) or "c" not in d:
        raise DatasetCorruptError("journal line missing checksum")
    kinds = [k for k in d if k != "c"]
    if len(kinds) != 1:
        raise DatasetCorruptError("journal line has no single payload")
    kind = kinds[0]
    body = json.dumps(d[kind], separators=(",", ":"), sort_keys=True)
    if zlib.crc32(body.encode()) != d["c"]:
        raise DatasetCorruptError(f"checksum mismatch on {kind!r} record")
    return kind, d[kind]


@dataclass
class JournalScan:
    """Outcome of scanning a journal for its recoverable prefix."""

    header: DatasetHeader
    n_good: int  # sample records that verified
    good_bytes: int  # file offset just past the last good record
    n_corrupt: int  # lines lost to the corrupt tail
    error: str | None = None  # first corruption encountered

    @property
    def intact(self) -> bool:
        return self.n_corrupt == 0


class DatasetJournal:
    """Append-only sample journal: survives interrupted runs.

    Every record (header included) is a checksummed line, flushed every
    ``flush_every`` appends, so a simulated kill loses at most the
    unflushed tail and :meth:`resume` continues from the last good
    record.
    """

    def __init__(
        self, path: str, header: DatasetHeader, flush_every: int = 64
    ) -> None:
        self.path = path
        self.header = DatasetHeader(
            program=header.program,
            source_sha256=header.source_sha256,
            threshold=header.threshold,
            num_threads=header.num_threads,
            locale_id=header.locale_id,
            version=JOURNAL_VERSION,
        )
        self.flush_every = max(1, flush_every)
        self.n_appended = 0
        self._f = open(path, "w")
        self._f.write(crc_line("h", self.header.to_json()) + "\n")
        self._f.flush()

    @classmethod
    def resume(cls, path: str) -> tuple["DatasetJournal", list[RawSample]]:
        """Reopens an interrupted journal: truncates the corrupt tail
        and returns (journal positioned to append, recovered samples)."""
        header, samples, scan = load_journal(path, strict=False)
        with open(path, "r+") as f:
            f.truncate(scan.good_bytes)
        journal = cls.__new__(cls)
        journal.path = path
        journal.header = header
        journal.flush_every = 64
        journal.n_appended = scan.n_good
        journal._f = open(path, "a")
        return journal, samples

    def append(self, sample: RawSample) -> None:
        self._f.write(crc_line("s", _sample_to_json(sample)) + "\n")
        self.n_appended += 1
        if self.n_appended % self.flush_every == 0:
            self._f.flush()
            os.fsync(self._f.fileno())

    def extend(self, samples: list[RawSample]) -> None:
        for s in samples:
            self.append(s)

    def flush(self) -> None:
        self._f.flush()
        os.fsync(self._f.fileno())

    def close(self) -> None:
        if not self._f.closed:
            self.flush()
            self._f.close()

    def __enter__(self) -> "DatasetJournal":
        return self

    def __exit__(self, *exc) -> None:
        # On an exception (the simulated kill) the tail past the last
        # explicit flush may be lost; close() flushes what it can.
        self.close()


def scan_journal(path: str) -> tuple[list[RawSample], JournalScan]:
    """Walks a journal, verifying checksums, until damage or EOF."""
    samples: list[RawSample] = []
    with open(path, "rb") as f:
        raw_lines = f.read().split(b"\n")
    first = raw_lines[0].decode("utf-8", errors="replace") if raw_lines else ""
    if not first.strip():
        raise DatasetCorruptError(f"{path}: empty journal")
    kind, payload = check_line(first)  # header damage is unrecoverable
    if kind != "h":
        raise DatasetCorruptError(f"{path}: first record is not a header")
    header = DatasetHeader.from_json(payload)

    file_size = sum(len(r) for r in raw_lines) + len(raw_lines) - 1
    offset = len(raw_lines[0]) + 1
    n_corrupt = 0
    error: str | None = None
    for i, raw in enumerate(raw_lines[1:], start=1):
        line = raw.decode("utf-8", errors="replace")
        if not line.strip():
            offset += len(raw) + 1
            continue
        try:
            kind, payload = check_line(line)
            if kind != "s":
                raise DatasetCorruptError(f"unexpected record kind {kind!r}")
            samples.append(_sample_from_json(payload))
        except (DatasetCorruptError, SampleFormatError, KeyError, TypeError) as exc:
            # Append-only: everything past the first bad record is the
            # interrupted tail; count it and stop.
            error = str(exc)
            n_corrupt = sum(1 for r in raw_lines[i:] if r.strip())
            break
        offset += len(raw) + 1
    # A good final record without its trailing newline would put the
    # offset one past EOF; clamp so resume() never zero-extends.
    offset = min(offset, file_size)
    return samples, JournalScan(
        header=header,
        n_good=len(samples),
        good_bytes=offset,
        n_corrupt=n_corrupt,
        error=error,
    )


def load_journal(
    path: str, strict: bool = False
) -> tuple[DatasetHeader, list[RawSample], JournalScan]:
    """Reads a journal back; in strict mode a corrupt tail raises."""
    samples, scan = scan_journal(path)
    if strict and not scan.intact:
        raise DatasetCorruptError(
            f"{path}: corrupt tail after {scan.n_good} good records "
            f"({scan.error})"
        )
    return scan.header, samples, scan


# Back-compat aliases for the pre-artifact private names.
_crc_line = crc_line
_check_line = check_line
