"""Stress / scale tests: deeper programs, larger structures, many
functions — confidence the pipeline holds beyond toy sizes."""

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))
from conftest import compile_src, output_of, profile_src


class TestScale:
    def test_many_functions(self):
        parts = []
        for k in range(40):
            parts.append(
                f"proc f{k}(x: real): real {{ return x + {k}.0; }}"
            )
        calls = " + ".join(f"f{k}(1.0)" for k in range(40))
        parts.append(f"proc main() {{ writeln({calls}); }}")
        src = "\n".join(parts)
        # sum over k of (1+k) = 40 + 780
        assert output_of(src) == ["820.0"]

    def test_deep_call_chain(self):
        parts = ["proc f0(x: int): int { return x + 1; }"]
        for k in range(1, 30):
            parts.append(
                f"proc f{k}(x: int): int {{ return f{k-1}(x) + 1; }}"
            )
        parts.append("proc main() { writeln(f29(0)); }")
        assert output_of("\n".join(parts)) == ["30"]

    def test_deep_recursion(self):
        src = """
proc depth(n: int): int {
  if n == 0 then return 0;
  return depth(n - 1) + 1;
}
proc main() { writeln(depth(300)); }
"""
        assert output_of(src) == ["300"]

    def test_wide_record(self):
        fields = "\n".join(f"  var f{k}: real;" for k in range(24))
        src = f"""
record Wide {{
{fields}
}}
var w: Wide = new Wide();
proc main() {{
  w.f23 = 9.5;
  w.f0 = w.f23 * 2.0;
  writeln(w.f0);
}}
"""
        assert output_of(src) == ["19.0"]

    def test_3d_domain(self):
        src = """
var D: domain(3) = {0..3, 0..3, 0..3};
var V: [D] real;
proc main() {
  forall (i, j, k) in D {
    V[i, j, k] = i * 16.0 + j * 4.0 + k;
  }
  writeln(+ reduce V);
}
"""
        # sum of 0..63
        assert output_of(src) == ["2016.0"]

    def test_profile_of_bigger_program_terminates_quickly(self):
        src = """
var A: [0..999] real;
var B: [0..999] real;
proc phase1() {
  forall i in 0..999 { A[i] = sqrt(i * 1.0); }
}
proc phase2() {
  forall i in 0..999 { B[i] = A[i] * 2.0 + 1.0; }
}
proc main() {
  for t in 1..3 { phase1(); phase2(); }
  writeln(+ reduce B > 0.0);
}
"""
        res = profile_src(src, threshold=4999, num_threads=12)
        assert res.run_result.output == ["true"]
        assert res.report.blame_of("B") > 0.2
        assert res.report.blame_of("A") > 0.2

    def test_static_analysis_scales_to_benchmark_modules(self):
        from repro.bench.programs import lulesh
        from repro.blame.static_info import ModuleBlameInfo

        m = compile_src(lulesh.build_source())
        info = ModuleBlameInfo(m)
        # every function analyzed, none empty
        assert len(info.functions) == len(m.functions)
        big = info.functions["CalcElemFBHourglassForce"]
        assert big.blame_sets.by_var
