"""Data-flow edge-path tests: behavior with ``alias_tracking`` off and
path truncation at ``MAX_PATH_DEPTH``."""

from repro.blame.dataflow import MAX_PATH_DEPTH, DataFlow, VarKey
from repro.blame.options import ABLATIONS, FULL

import sys, os
sys.path.insert(0, os.path.dirname(os.path.dirname(__file__)))
from conftest import compile_src


def df_of(src, fn="main", options=None):
    m = compile_src(src)
    return m, DataFlow(m.functions[fn], m, options=options)


SLICE_SRC = """
var A: [0..99] real;
proc main() {
  var V = A[0..50];
  V[1] = 2.0;
}
"""


class TestAliasTrackingOff:
    def test_full_options_follow_the_view_to_its_base(self):
        m, df = df_of(SLICE_SRC, options=FULL)
        assert VarKey("global", "A") in df.writes

    def test_disabled_stops_at_the_view(self):
        from repro.ir import instructions as I

        m, df = df_of(SLICE_SRC, options=ABLATIONS["no-alias-tracking"])
        # The write is still seen on the local view variable...
        local_keys = [k for k in df.writes if k.kind == "local"]
        assert local_keys, "write through the view must root at V"
        # ...but the element *store* never propagates to the sliced
        # base array — A keeps only the slice's descriptor write.
        a_writes = df.writes.get(VarKey("global", "A"), set())
        assert not any(isinstance(w, I.Store) for w in a_writes)
        assert (VarKey("global", "A"), (("index",),)) not in df.path_writes

    def test_disabled_blocks_stored_root_propagation(self):
        m, df = df_of(SLICE_SRC, options=ABLATIONS["no-alias-tracking"])
        assert df.stored_roots == {}

    def test_option_object_flag_survives(self):
        m, df = df_of(SLICE_SRC, options=ABLATIONS["no-alias-tracking"])
        assert df.options.alias_tracking is False


DEEP_SRC = """
record L0 { var x: real; }
record L1 { var a: L0; }
record L2 { var b: L1; }
record L3 { var c: L2; }
record L4 { var d: L3; }
var r: L4;
proc main() {
  r.d.c.b.a.x = 1.0;
}
"""


class TestMaxPathDepthTruncation:
    def test_no_path_exceeds_the_bound(self):
        m, df = df_of(DEEP_SRC)
        for key, path in df.path_writes:
            assert len(path) <= MAX_PATH_DEPTH

    def test_deep_write_lands_on_truncated_prefix(self):
        m, df = df_of(DEEP_SRC)
        key = VarKey("global", "r")
        assert key in df.writes
        truncated = (
            ("field", "d"),
            ("field", "c"),
            ("field", "b"),
            ("field", "a"),
        )
        assert (key, truncated) in df.path_writes
        # The fifth element (.x) fell off the end of the bounded path.
        assert not any(
            len(path) > len(truncated) for k, path in df.path_writes if k == key
        )

    def test_shallow_paths_unaffected(self):
        src = """
record P { var x: real; }
var p: P;
proc main() {
  p.x = 1.0;
}
"""
        m, df = df_of(src)
        key = VarKey("global", "p")
        assert (key, (("field", "x"),)) in df.path_writes
