"""Transfer functions: interprocedural blame communication (paper §IV.A).

For each call site (including SpawnJoin — the tasking-layer "call" of an
outlined parallel-loop body), the static side records which caller roots
each callee ``ref`` formal binds to.  At post-mortem time, when a
sample's callee frame blames an exit variable, :meth:`map_up` translates
it into caller roots: "we use the transfer function to match the blamed
exit variable(s) from the callee to the blamed parameter(s) in the
caller".
"""

from __future__ import annotations

from dataclasses import dataclass

from .dataflow import RET_KEY, DataFlow, Root, VarKey


@dataclass(frozen=True)
class TransferResult:
    """Outcome of bubbling one frame up."""

    caller_roots: frozenset[Root]
    #: True when any exit variable (incl. return) was blamed — the
    #: condition under which callsite-dependent caller variables also
    #: take blame.
    any_exit_blamed: bool


class TransferFunction:
    """Per-function map: callsite iid → formal-name → caller roots."""

    def __init__(self, dataflow: DataFlow) -> None:
        self._by_callsite = dataflow.call_arg_roots

    def map_up(
        self,
        callsite_iid: int,
        blamed_exit_formals: frozenset[Root],
        return_blamed: bool,
    ) -> TransferResult:
        """``blamed_exit_formals`` carries (formal key, path-within-the-
        formal) pairs; paths compose onto the caller's argument roots, so
        a callee write to ``p.zoneArray[j].value`` surfaces in the caller
        as ``partArray[i].zoneArray[j].value`` (paper Table IV)."""
        from .dataflow import MAX_PATH_DEPTH

        arg_map = self._by_callsite.get(callsite_iid, {})
        roots: set[Root] = set()
        for key, inner_path in blamed_exit_formals:
            if key.kind != "formal":
                continue
            for base_key, base_path in arg_map.get(key.ident, ()):
                composed = (base_path + inner_path)[:MAX_PATH_DEPTH]
                roots.add((base_key, composed))
        any_exit = bool(blamed_exit_formals) or return_blamed
        return TransferResult(
            caller_roots=frozenset(roots), any_exit_blamed=any_exit
        )
