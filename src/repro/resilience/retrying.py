"""Bounded retry with exponential backoff, shared across layers.

Two call sites ride on this module: the multi-locale harness
(:mod:`repro.tooling.multilocale`) retries whole locale runs, and the
shard supervisor (:mod:`repro.pipeline.supervisor`) retries individual
pool tasks.  Both want the same arithmetic — attempt ``k`` (0-based)
waits ``backoff * 2**(k-1)`` seconds before running, attempt 0 runs
immediately, and the total attempt budget is ``max_retries + 1`` — so
it lives here once, pinned by the existing multilocale tests and the
supervisor's own.

The generator form (:func:`backoff_attempts`) sleeps inline, matching
the historical multilocale loop; :class:`RetryPolicy` exposes the same
schedule non-blockingly for the supervisor's event loop, which must
keep draining other futures while a failed task waits out its backoff.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterator
from dataclasses import dataclass


@dataclass(frozen=True)
class RetryPolicy:
    """Retry budget + exponential-backoff schedule.

    ``max_retries`` is the number of *re*-tries: a task gets
    ``max_retries + 1`` total attempts.  ``backoff`` is the delay before
    the first retry; each further retry doubles it.
    """

    max_retries: int = 2
    backoff: float = 0.01

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0 (got {self.max_retries})"
            )
        if self.backoff < 0.0:
            raise ValueError(f"backoff must be >= 0 (got {self.backoff})")

    @property
    def max_attempts(self) -> int:
        return self.max_retries + 1

    def delay(self, attempt: int) -> float:
        """Seconds to wait before 0-based ``attempt`` (0 for the first)."""
        if attempt <= 0:
            return 0.0
        return self.backoff * (2 ** (attempt - 1))

    def allows(self, failures: int) -> bool:
        """May another attempt run after ``failures`` failed ones?"""
        return failures < self.max_attempts


def backoff_attempts(
    max_retries: int,
    backoff: float,
    sleep: Callable[[float], None] = time.sleep,
) -> Iterator[int]:
    """Yields 0-based attempt numbers, sleeping the backoff between
    them: ``0`` immediately, then ``k`` after ``backoff * 2**(k-1)``
    seconds, up to ``max_retries + 1`` attempts total.

    The caller breaks out on success; exhausting the iterator means the
    retry budget is spent.  ``sleep`` is injectable for tests.
    """
    policy = RetryPolicy(max_retries=max_retries, backoff=backoff)
    for attempt in range(policy.max_attempts):
        d = policy.delay(attempt)
        if d > 0.0:
            sleep(d)
        yield attempt
