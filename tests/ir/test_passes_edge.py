"""Extra edge-case tests for the optimization passes over hand-crafted
and compiled IR."""

import pytest

from repro.compiler.lower import compile_source
from repro.compiler.passes.constant_fold import constant_fold
from repro.compiler.passes.dce import dead_code_eliminate
from repro.compiler.passes.simplify_cfg import simplify_cfg
from repro.ir import instructions as I
from repro.ir.verifier import verify_module
from repro.runtime.interpreter import Interpreter


def run(m, config=None):
    return Interpreter(m, config=config, num_threads=2).run()


class TestSimplifyCFGEdges:
    def test_entry_block_never_merged_away(self):
        m = compile_source("proc main() { if true { writeln(1); } }")
        constant_fold(m)
        simplify_cfg(m)
        verify_module(m)
        assert m.functions["main"].entry is m.functions["main"].blocks[0]
        assert run(m).output == ["1"]

    def test_self_loop_not_merged(self):
        # while true { } has a self-edge; the merger must skip it.
        m = compile_source(
            "proc main() { var i = 0; while i < 3 { i += 1; } writeln(i); }"
        )
        simplify_cfg(m)
        verify_module(m)
        assert run(m).output == ["3"]

    def test_select_chain_simplifies_under_constants(self):
        m = compile_source(
            """
proc main() {
  var x = 2;
  select x {
    when 1 { writeln("one"); }
    when 2 { writeln("two"); }
    otherwise { writeln("other"); }
  }
}
"""
        )
        from repro.compiler.passes import run_fast_pipeline

        run_fast_pipeline(m)
        verify_module(m)
        assert run(m).output == ["two"]


class TestDCEEdges:
    def test_keeps_makearray_that_escapes(self):
        m = compile_source(
            """
var A: [0..3] real;
proc main() { A[0] = 1.0; writeln(A[0]); }
"""
        )
        dead_code_eliminate(m)
        verify_module(m)
        assert run(m).output == ["1.0"]

    def test_removes_unobserved_allocation(self):
        m = compile_source(
            "proc main() { var t: [0..99] real; writeln(5); }"
        )
        before = sum(
            1
            for i in m.functions["main"].instructions()
            if isinstance(i, I.MakeArray)
        )
        dead_code_eliminate(m)
        after = sum(
            1
            for i in m.functions["main"].instructions()
            if isinstance(i, I.MakeArray)
        )
        assert before == 1 and after == 0
        assert run(m).output == ["5"]

    def test_spawnjoin_never_removed(self):
        m = compile_source(
            """
var A: [0..7] real;
proc main() {
  forall i in 0..7 { A[i] = 1.0; }
  writeln(+ reduce A);
}
"""
        )
        dead_code_eliminate(m)
        verify_module(m)
        assert run(m).output == ["8.0"]


class TestConstantFoldEdges:
    def test_fold_cascades_through_chains(self):
        m = compile_source("proc main() { writeln(((1 + 2) * (3 + 4)) - 21); }")
        constant_fold(m)
        dead_code_eliminate(m)
        binops = [
            i for i in m.functions["main"].instructions() if isinstance(i, I.BinOp)
        ]
        assert not binops
        assert run(m).output == ["0"]

    def test_fold_preserves_branch_semantics(self):
        m = compile_source(
            """
proc main() {
  if 2 < 1 { writeln("impossible"); } else { writeln("sane"); }
}
"""
        )
        constant_fold(m)
        simplify_cfg(m)
        verify_module(m)
        assert run(m).output == ["sane"]

    def test_bool_ops_fold(self):
        m = compile_source("proc main() { var a = true; writeln(!a); }")
        constant_fold(m)
        verify_module(m)
        assert run(m).output == ["false"]
