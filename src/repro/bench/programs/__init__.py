"""The paper's benchmark programs, ported to mini-Chapel: MiniMD,
CLOMP, LULESH (original + optimized variants), and the Fig. 1 example.
"""

from . import clomp, example_fig1, lulesh, minimd

__all__ = ["clomp", "example_fig1", "lulesh", "minimd"]
