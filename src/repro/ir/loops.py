"""Natural-loop discovery over the CFG/dominator substrate.

The optimization-advisor passes reason about *where* an instruction
executes: a slice rebuilt inside a loop is a per-iteration cost (the
MiniMD domain-remap finding), the same slice at module init is free.
This module finds natural loops the classic way — back edges ``a → h``
where ``h`` dominates ``a`` — and derives a per-block nesting depth.

Note the lowering shape: ``forall``/``coforall`` bodies are outlined
into their own functions, whose body is a serial chunk loop.  Code
"inside a forall" therefore shows up at loop depth ≥ 1 *of the outlined
function*; callers combine :func:`loop_depths` with the call graph
(:func:`loop_resident_functions`) to see through calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .cfg import CFG
from .dominators import DominatorTree, dominator_tree
from .instructions import Call, SpawnJoin
from .module import BasicBlock, Function, Module


@dataclass
class Loop:
    """One natural loop: ``header`` plus every block in its body."""

    header: BasicBlock
    blocks: set[BasicBlock] = field(default_factory=set)

    def __contains__(self, block: BasicBlock) -> bool:
        return block in self.blocks


def natural_loops(cfg: CFG, domtree: DominatorTree | None = None) -> list[Loop]:
    """All natural loops of ``cfg``; loops sharing a header are merged
    (the standard treatment of multiple back edges)."""
    dt = domtree or dominator_tree(cfg)
    reachable = cfg.reachable()
    by_header: dict[BasicBlock, Loop] = {}
    for a in cfg.blocks:
        if a not in reachable:
            continue
        for h in cfg.succs[a]:
            if not dt.dominates(h, a):
                continue
            loop = by_header.setdefault(h, Loop(header=h, blocks={h}))
            # Walk predecessors backwards from the latch until the
            # header fences the search off.
            stack = [a]
            while stack:
                b = stack.pop()
                if b in loop.blocks:
                    continue
                loop.blocks.add(b)
                stack.extend(p for p in cfg.preds.get(b, []) if p in reachable)
    return list(by_header.values())


def loop_depths(cfg: CFG, domtree: DominatorTree | None = None) -> dict[BasicBlock, int]:
    """Block → number of natural loops containing it (0 = straight-line)."""
    depths: dict[BasicBlock, int] = {b: 0 for b in cfg.blocks}
    for loop in natural_loops(cfg, domtree):
        for b in loop.blocks:
            depths[b] += 1
    return depths


def loop_resident_functions(
    module: Module, depths_of: dict[str, dict[BasicBlock, int]]
) -> set[str]:
    """Function names that can execute inside some loop.

    A function is loop-resident when a callsite (``call`` or
    ``spawnjoin``) targeting it sits in a loop block, when its caller is
    itself loop-resident, or when it is an outlined parallel-loop body
    (its serial chunk loop runs per task, and the spawn repeats per
    visit).  This is the advisor's "charged per iteration" predicate —
    LULESH's ``CalcVolumeForceForElems`` allocates at loop depth 0 but
    is loop-resident via ``main``'s timestep loop.
    """
    callees: dict[str, set[str]] = {name: set() for name in module.functions}
    resident: set[str] = set()
    for fname, f in module.functions.items():
        depths = depths_of.get(fname, {})
        for block in f.blocks:
            in_loop = depths.get(block, 0) > 0
            for instr in block.instructions:
                target = None
                if isinstance(instr, Call) and not instr.is_builtin:
                    target = instr.callee
                elif isinstance(instr, SpawnJoin):
                    target = instr.outlined
                if target is None or target not in callees:
                    continue
                callees[fname].add(target)
                if in_loop:
                    resident.add(target)
        if f.outlined_from is not None:
            resident.add(fname)
    # Propagate: everything a loop-resident function calls is resident.
    work = list(resident)
    while work:
        fname = work.pop()
        for callee in callees.get(fname, ()):
            if callee not in resident:
                resident.add(callee)
                work.append(callee)
    return resident
