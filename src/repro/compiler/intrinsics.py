"""Builtin (intrinsic) function registry for the mini-Chapel compiler.

Calls to these names lower to ``Call`` instructions with
``is_builtin=True``; the runtime's builtin table executes them.  The
signature policy is intentionally loose (numeric args auto-promote);
strict checking happens for arity and gross type mismatches only.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..chapel.types import BOOL, INT, REAL, STRING, VOID, Type


@dataclass(frozen=True)
class Intrinsic:
    """Descriptor of one builtin."""

    name: str
    arity: int | None  # None = variadic
    return_type: Type
    #: True when numeric args are promoted to real before the call.
    numeric: bool = False


INTRINSICS: dict[str, Intrinsic] = {
    i.name: i
    for i in [
        # I/O
        Intrinsic("writeln", None, VOID),
        Intrinsic("write", None, VOID),
        # math
        Intrinsic("sqrt", 1, REAL, numeric=True),
        Intrinsic("cbrt", 1, REAL, numeric=True),
        Intrinsic("abs", 1, REAL, numeric=True),
        Intrinsic("exp", 1, REAL, numeric=True),
        Intrinsic("log", 1, REAL, numeric=True),
        Intrinsic("sin", 1, REAL, numeric=True),
        Intrinsic("cos", 1, REAL, numeric=True),
        Intrinsic("floor", 1, REAL, numeric=True),
        Intrinsic("ceil", 1, REAL, numeric=True),
        Intrinsic("min", 2, REAL, numeric=True),
        Intrinsic("max", 2, REAL, numeric=True),
        Intrinsic("fmod", 2, REAL, numeric=True),
        # conversions
        Intrinsic("toInt", 1, INT),
        Intrinsic("toReal", 1, REAL),
        # runtime queries / control
        Intrinsic("getCurrentTime", 0, REAL),
        Intrinsic("maxTaskPar", 0, INT),
        Intrinsic("halt", None, VOID),
        Intrinsic("assertTrue", None, VOID),
        # internal (emitted by the compiler, not user-callable)
        Intrinsic("_array_copy", 2, VOID),
        Intrinsic("_config_get_int", 2, INT),
        Intrinsic("_config_get_real", 2, REAL),
        Intrinsic("_config_get_bool", 2, BOOL),
    ]
}

#: min/max keep int type when both args are ints; handled in lowering.
POLYMORPHIC_NUMERIC = {"min", "max", "abs"}

#: Names the user may not call directly.
INTERNAL_ONLY = {"_array_copy", "_config_get_int", "_config_get_real", "_config_get_bool"}


def is_intrinsic(name: str) -> bool:
    return name in INTRINSICS


def get_intrinsic(name: str) -> Intrinsic:
    return INTRINSICS[name]
