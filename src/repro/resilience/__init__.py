"""Fault injection and degradation-tolerance tooling.

Real Dyninst/PAPI deployments are lossy: stack walks truncate, samples
drop, spawn tags vanish, debug info gets stripped, and locales crash or
straggle.  This package makes those failure modes reproducible —
:mod:`faults` describes *what* to break (deterministic, seedable),
:mod:`inject` breaks it, :mod:`transport` breaks the worker-pool seam
(crashes, hangs, corrupted result payloads — supervised by
:mod:`repro.pipeline.supervisor`), :mod:`retrying` is the shared
bounded-retry/backoff schedule, and :mod:`stability` quantifies how
stable the blame rankings stay under each fault class.
"""

from .faults import FAULT_CLASSES, FaultPlan
from .inject import FaultInjector, InjectionStats
from .retrying import RetryPolicy, backoff_attempts
from .stability import compare_reports, kendall_tau, ranking, top_n_overlap
from .transport import TaskDirectives, directives_for, seal, unseal

__all__ = [
    "FAULT_CLASSES",
    "FaultInjector",
    "FaultPlan",
    "InjectionStats",
    "RetryPolicy",
    "TaskDirectives",
    "backoff_attempts",
    "compare_reports",
    "directives_for",
    "kendall_tau",
    "ranking",
    "seal",
    "top_n_overlap",
    "unseal",
]
