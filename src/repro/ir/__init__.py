"""LLVM-like IR substrate: instructions, containers, CFG, dominators,
debug info, printing, verification.

See DESIGN.md §2: this replaces LLVM bitcode + DWARF in the paper's
pipeline while exposing the same analysis surface (stores, use-def
chains, control flow, instruction→line and storage→variable maps).
"""

from .builder import IRBuilder
from .cfg import CFG
from .debug_info import LineTable, VariableInfo, collect_variables
from .dominators import DominatorTree, control_dependence, dominator_tree, postdominator_tree
from .instructions import (
    Alloca,
    ArrayReindex,
    ArraySlice,
    BinOp,
    Br,
    Call,
    Cast,
    CBr,
    Constant,
    DomainOp,
    ElemAddr,
    FieldAddr,
    GlobalRef,
    Instruction,
    IterInit,
    IterNext,
    IterValue,
    Load,
    MakeArray,
    MakeDomain,
    MakeRange,
    MakeTuple,
    NewObject,
    Register,
    Ret,
    SpawnJoin,
    Store,
    TupleElemAddr,
    TupleGet,
    UnOp,
    Value,
)
from .module import BasicBlock, Function, FunctionParam, GlobalVar, Module
from .printer import print_function, print_module
from .verifier import VerificationError, verify_function, verify_module

__all__ = [
    "Alloca", "ArrayReindex", "ArraySlice", "BasicBlock", "BinOp", "Br",
    "CBr", "CFG", "Call", "Cast", "Constant", "DomainOp", "DominatorTree",
    "ElemAddr", "FieldAddr", "Function", "FunctionParam", "GlobalRef",
    "GlobalVar", "IRBuilder", "Instruction", "IterInit", "IterNext",
    "IterValue", "LineTable", "Load", "MakeArray", "MakeDomain", "MakeRange",
    "MakeTuple", "Module", "NewObject", "Register", "Ret", "SpawnJoin",
    "Store", "TupleElemAddr", "TupleGet", "UnOp", "Value", "VariableInfo",
    "VerificationError", "collect_variables", "control_dependence",
    "dominator_tree", "postdominator_tree", "print_function", "print_module",
    "verify_function", "verify_module",
]
