"""End-to-end integration tests: source → compile → sampled run →
post-mortem → blame report, on scenarios that cross every module."""

import pytest

from repro.baselines.hpctk import HpctkAttributor
from repro.baselines.pprof import build_pprof_profile
from repro.blame.aggregate import merge_reports
from repro.tooling.profiler import Profiler
from repro.views.code_centric import render_code_centric
from repro.views.data_centric import render_data_centric
from repro.views.hybrid import render_hybrid

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
from conftest import compile_src, profile_src


class TestStencilScenario:
    """A 2-D Jacobi-style stencil: domains, slices, forall, reductions."""

    SRC = """
config const n: int = 14;
config const iters: int = 4;
var D: domain(2) = {0..n+1, 0..n+1};
var Inner: domain(2) = {1..n, 1..n};
var Grid: [D] real;
var Next: [D] real;

proc sweep() {
  forall (i, j) in Inner {
    Next[i, j] = (Grid[i-1, j] + Grid[i+1, j] + Grid[i, j-1] + Grid[i, j+1]) * 0.25;
  }
  forall (i, j) in Inner {
    Grid[i, j] = Next[i, j];
  }
}

proc main() {
  forall (i, j) in D { Grid[i, j] = if i == 0 then 1.0 else 0.0; }
  for it in 1..iters { sweep(); }
  writeln(+ reduce Grid);
}
"""

    @pytest.fixture(scope="class")
    def res(self):
        return profile_src(self.SRC, threshold=499, num_threads=8)

    def test_runs_and_converges(self, res):
        total = float(res.run_result.output[0])
        assert total > 0

    def test_blame_names_the_grids(self, res):
        assert res.report.blame_of("Next") > 0.2
        assert res.report.blame_of("Grid") > 0.2

    def test_all_views_render(self, res):
        assert "Next" in render_data_centric(res.report, top=10)
        assert "sweep" in render_code_centric(res.module, res.postmortem)
        assert "main" in render_hybrid(res.report)


class TestDeepCallChain:
    SRC = """
var OUT: [0..19] real;
proc leaf(x: real): real {
  var acc = 0.0;
  for k in 1..24 { acc += sqrt(x + k); }
  return acc;
}
proc mid(x: real): real { return leaf(x) * 2.0; }
proc top(x: real): real { return mid(x) + 1.0; }
proc main() {
  forall i in 0..19 { OUT[i] = top(i * 1.0); }
}
"""

    def test_return_chain_bubbles_to_out(self):
        res = profile_src(self.SRC, threshold=211)
        assert res.report.blame_of("OUT") > 0.3

    def test_leaf_local_reported_in_leaf_context(self):
        res = profile_src(self.SRC, threshold=211)
        row = res.report.row_for("acc")
        assert row is not None and row.context == "leaf"


class TestFastVsPlainProfile:
    SRC = """
var A: [0..39] real;
proc main() {
  forall i in 0..39 {
    var t = i * 2.0;
    A[i] = t + sqrt(t + 1.0);
  }
}
"""

    def test_fast_degrades_variable_visibility(self):
        plain = profile_src(self.SRC, threshold=311)
        fast = Profiler(self.SRC, threshold=311, fast=True).profile()
        plain_names = {r.name for r in plain.report.rows}
        fast_names = {r.name for r in fast.report.rows}
        # --fast optimizes the local t away (copy-prop + dce), so blame
        # can no longer name it — the paper's §V footnote phenomenon.
        assert "t" in plain_names
        assert "t" not in fast_names

    def test_fast_still_attributes_globals(self):
        fast = Profiler(self.SRC, threshold=311, fast=True).profile()
        assert fast.report.blame_of("A") > 0.3


class TestBaselinesAgreeOnSamples:
    SRC = """
var BIG: [0..1999] real;
proc hot() {
  forall i in 0..1999 { BIG[i] = BIG[i] * 0.5 + 1.0; }
}
proc main() { for t in 1..3 { hot(); } }
"""

    @pytest.fixture(scope="class")
    def res(self):
        return profile_src(self.SRC, threshold=997, num_threads=8)

    def test_three_tools_one_sample_stream(self, res):
        # blame
        assert res.report.blame_of("BIG") > 0.5
        # pprof: raw frames
        pprof_rows = build_pprof_profile(res.monitor.samples)
        assert sum(r.flat for r in pprof_rows) == res.monitor.n_samples
        # hpctk: the big array is plainly indexed → partially attributed
        att = HpctkAttributor(res.module, res.interpreter)
        out = att.attribute(res.monitor.samples)
        assert out.total == len([s for s in res.monitor.samples if not s.is_idle])
        assert out.fraction_of("BIG") > 0.05

    def test_blame_beats_hpctk_attribution(self, res):
        """The paper's core claim: blame attributes what allocation-
        based data-centric tools leave as 'unknown data'."""
        att = HpctkAttributor(res.module, res.interpreter)
        out = att.attribute(res.monitor.samples)
        assert res.report.blame_of("BIG") > out.fraction_of("BIG")


class TestMultiLocaleAggregation:
    def test_merge_two_simulated_locales(self):
        src = """
var V: [0..29] real;
proc main() {
  forall i in 0..29 { V[i] = sqrt(i * 1.0); }
}
"""
        r1 = profile_src(src, threshold=311).report
        r2 = profile_src(src, threshold=311).report
        r2.locale_id = 1
        merged = merge_reports([r1, r2], program="two-locales")
        assert merged.stats.user_samples == r1.stats.user_samples + r2.stats.user_samples
        assert merged.blame_of("V") == pytest.approx(r1.blame_of("V"), rel=0.2)


class TestErrorPropagation:
    def test_profiling_a_crashing_program_raises_cleanly(self):
        from repro.runtime.interpreter import ExecutionError

        src = """
var A: [0..3] real;
proc main() { A[99] = 1.0; }
"""
        with pytest.raises(ExecutionError, match="out of bounds"):
            profile_src(src)

    def test_compile_errors_surface(self):
        from repro.chapel.errors import NameError_

        with pytest.raises(NameError_):
            profile_src("proc main() { ghost(); }")
