"""On-disk layout of the ``.cbp`` profile artifact.

Line-oriented, append-written, and self-describing.  Every line is a
CRC-32-framed JSON record — the same framing the v2 sample journal uses
(:func:`repro.sampling.dataset.crc_line`), so a single bit flip anywhere
is detected on read.  Records appear in a fixed order:

====  ======================================================
kind  payload
====  ======================================================
``h``  header: magic ``"cbp"``, format version, run metadata
``t``  interned string table (all names/types/contexts/files)
``f``  function catalog, columnar over string indices
``k``  interned stack table (distinct frame tuples)
``l``  interned location table (distinct (file, line) tuples)
``i``  instances, columnar (stack/location ids per sample)
``p``  degradation provenance + raw/runtime/recovered counts
``s``  run statistics (:class:`~repro.blame.report.RunStats`)
``b``  blame report: locale, missing locales, columnar rows
``d``  fault-injection summary (optional; degraded runs only)
``a``  adaptive decision trail (optional; adaptive runs only)
``z``  footer: total record count (truncation sentinel)
====  ======================================================

Readers reject, with the typed :class:`~repro.errors.ArtifactError`:
a missing/invalid magic, a checksum mismatch (bit flip), a missing or
inconsistent footer (truncation), and any structurally invalid section.
A valid header whose ``version`` this reader does not speak raises the
:class:`~repro.errors.ArtifactVersionError` subclass — that file is
from another tool generation, not corrupt.

Compatibility rules: the version bumps on any change that would alter
the meaning of existing records; unknown *optional* record kinds are
ignored within a version (forward-minor tolerance), mandatory kinds are
closed-world.
"""

from __future__ import annotations

from ..blame.postmortem import Instance
from ..blame.report import BlameReport, BlameRow, RunStats
from ..errors import ArtifactError, ArtifactVersionError, DatasetCorruptError
from ..sampling.dataset import check_line, crc_line
from .model import (
    ArtifactMeta,
    CatalogFunction,
    FunctionCatalog,
    ProfileSnapshot,
    SnapshotPostmortem,
)

CBP_MAGIC = "cbp"
CBP_VERSION = 1

#: Record kinds a version-1 artifact must contain, in writing order.
_MANDATORY = ("h", "t", "f", "k", "l", "i", "p", "s", "b", "z")


class _Interner:
    """Append-only string pool: first occurrence assigns the index."""

    def __init__(self) -> None:
        self.strings: list[str] = []
        self._index: dict[str, int] = {}

    def add(self, s: str) -> int:
        ix = self._index.get(s)
        if ix is None:
            ix = len(self.strings)
            self._index[s] = ix
            self.strings.append(s)
        return ix


class _TupleInterner:
    """Pool of encoded tuples (stacks, location lists)."""

    def __init__(self) -> None:
        self.rows: list[list] = []
        self._index: dict[tuple, int] = {}

    def add(self, key: tuple, encoded: list) -> int:
        ix = self._index.get(key)
        if ix is None:
            ix = len(self.rows)
            self._index[key] = ix
            self.rows.append(encoded)
        return ix


def _encode(snapshot: ProfileSnapshot) -> list[str]:
    """Serializes a snapshot to its record lines (without newlines)."""
    meta = snapshot.meta
    strings = _Interner()
    stacks = _TupleInterner()
    locs = _TupleInterner()

    # Function catalog (name-sorted: deterministic bytes).
    fn_cols: dict[str, list] = {"nm": [], "sn": [], "of": [], "ar": []}
    for f in snapshot.catalog.entries():
        fn_cols["nm"].append(strings.add(f.name))
        fn_cols["sn"].append(strings.add(f.source_name))
        fn_cols["of"].append(
            -1 if f.outlined_from is None else strings.add(f.outlined_from)
        )
        fn_cols["ar"].append(1 if f.is_artificial else 0)

    # Instances, columnar over interned stack/location ids.
    inst_cols: dict[str, list] = {
        "ix": [], "th": [], "st": [], "lo": [], "gl": [], "tg": [], "rc": [],
    }
    for inst in snapshot.postmortem.instances:
        stack_enc = [[strings.add(fn), iid] for fn, iid in inst.frames]
        loc_enc = [[strings.add(fname), line] for fname, line in inst.locations]
        inst_cols["ix"].append(inst.index)
        inst_cols["th"].append(inst.thread_id)
        inst_cols["st"].append(stacks.add(inst.frames, stack_enc))
        inst_cols["lo"].append(locs.add(inst.locations, loc_enc))
        inst_cols["gl"].append(1 if inst.was_glued else 0)
        inst_cols["tg"].append(inst.spawn_tag)
        inst_cols["rc"].append(1 if inst.was_recovered else 0)

    pm = snapshot.postmortem
    provenance = {
        "n_raw": pm.n_raw,
        "n_runtime": pm.n_runtime,
        "n_recovered": pm.n_recovered,
        "u": [[strings.add(r), ix] for r, ix in pm.unknown_provenance],
        "q": [[strings.add(r), ix] for r, ix in pm.quarantine_provenance],
    }

    st = snapshot.report.stats
    stats = {
        "total_raw_samples": st.total_raw_samples,
        "user_samples": st.user_samples,
        "runtime_samples": st.runtime_samples,
        "wall_seconds": st.wall_seconds,
        "dataset_bytes": st.dataset_bytes,
        "stackwalk_cycles": st.stackwalk_cycles,
        "postmortem_seconds": st.postmortem_seconds,
        "unknown_samples": st.unknown_samples,
        "quarantined_samples": st.quarantined_samples,
        "recovered_samples": st.recovered_samples,
    }

    report = snapshot.report
    row_cols: dict[str, list] = {
        "nm": [], "ty": [], "cx": [], "sm": [], "bl": [], "pa": [],
    }
    for row in report.rows:
        row_cols["nm"].append(strings.add(row.name))
        row_cols["ty"].append(strings.add(row.type_str))
        row_cols["cx"].append(strings.add(row.context))
        row_cols["sm"].append(row.samples)
        row_cols["bl"].append(row.blame)
        row_cols["pa"].append(1 if row.is_path else 0)
    report_rec = {
        "program": report.program,
        "locale_id": report.locale_id,
        "missing": list(report.missing_locales),
        "unknown_by_reason": report.unknown_by_reason,
        "quarantine_by_reason": report.quarantine_by_reason,
        "rows": row_cols,
    }

    header = {
        "magic": CBP_MAGIC,
        "version": CBP_VERSION,
        "program": meta.program,
        "source_sha256": meta.source_sha256,
        "threshold": meta.threshold,
        "num_threads": meta.num_threads,
        "locale_id": meta.locale_id,
        "kind": meta.kind,
        "created_by": meta.created_by,
    }

    lines = [
        crc_line("h", header),
        crc_line("t", strings.strings),
        crc_line("f", fn_cols),
        crc_line("k", stacks.rows),
        crc_line("l", locs.rows),
        crc_line("i", inst_cols),
        crc_line("p", provenance),
        crc_line("s", stats),
        crc_line("b", report_rec),
    ]
    if snapshot.fault_stats is not None:
        lines.append(crc_line("d", snapshot.fault_stats))
    if snapshot.adaptive is not None:
        lines.append(crc_line("a", snapshot.adaptive))
    lines.append(crc_line("z", {"records": len(lines) + 1}))
    return lines


def write_artifact(path: str, snapshot: ProfileSnapshot) -> str:
    """Writes a snapshot as a ``.cbp`` artifact; returns ``path``."""
    with open(path, "w") as f:
        for line in _encode(snapshot):
            f.write(line + "\n")
    return path


def artifact_bytes(snapshot: ProfileSnapshot) -> bytes:
    """The exact bytes :func:`write_artifact` would emit (for tests and
    throughput accounting)."""
    return ("\n".join(_encode(snapshot)) + "\n").encode()


# -- reading ----------------------------------------------------------------


def _string(table: list[str], ix: int, what: str) -> str:
    try:
        return table[ix]
    except (IndexError, TypeError) as exc:
        raise ArtifactError(f"dangling string index {ix!r} in {what}") from exc


def read_artifact(path: str) -> ProfileSnapshot:
    """Loads and validates a ``.cbp`` artifact.

    Raises :class:`~repro.errors.ArtifactError` on truncation, bit
    flips, or structural damage, and
    :class:`~repro.errors.ArtifactVersionError` on an intact artifact of
    an unsupported format version.
    """
    try:
        with open(path) as f:
            raw_lines = [ln for ln in f.read().split("\n") if ln.strip()]
    except OSError as exc:
        raise ArtifactError(f"{path}: cannot read artifact: {exc}") from exc
    if not raw_lines:
        raise ArtifactError(f"{path}: empty artifact")

    records: list[tuple[str, object]] = []
    for n, line in enumerate(raw_lines, start=1):
        try:
            records.append(check_line(line))
        except DatasetCorruptError as exc:
            raise ArtifactError(f"{path}: record {n}: {exc}") from exc

    kind0, header = records[0]
    if kind0 != "h" or not isinstance(header, dict):
        raise ArtifactError(f"{path}: first record is not an artifact header")
    if header.get("magic") != CBP_MAGIC:
        raise ArtifactError(f"{path}: not a .cbp artifact (bad magic)")
    if header.get("version") != CBP_VERSION:
        raise ArtifactVersionError(
            f"{path}: unsupported .cbp version {header.get('version')!r} "
            f"(this reader speaks {CBP_VERSION})"
        )

    by_kind: dict[str, object] = {}
    for kind, payload in records:
        if kind in by_kind:
            raise ArtifactError(f"{path}: duplicate {kind!r} record")
        by_kind[kind] = payload

    kind_last, footer = records[-1]
    if kind_last != "z":
        raise ArtifactError(f"{path}: truncated artifact (missing footer)")
    if not isinstance(footer, dict) or footer.get("records") != len(records):
        raise ArtifactError(
            f"{path}: truncated artifact (footer records "
            f"{footer.get('records') if isinstance(footer, dict) else '?'} "
            f"!= {len(records)} present)"
        )
    missing = [k for k in _MANDATORY if k not in by_kind]
    if missing:
        raise ArtifactError(
            f"{path}: truncated artifact (missing section(s) {missing})"
        )

    try:
        return _decode(by_kind)
    except ArtifactError:
        raise
    except (KeyError, IndexError, TypeError, ValueError) as exc:
        raise ArtifactError(f"{path}: malformed artifact section: {exc!r}") from exc


def _decode(by_kind: dict[str, object]) -> ProfileSnapshot:
    header = by_kind["h"]
    strings = by_kind["t"]
    if not isinstance(strings, list):
        raise ArtifactError("string table is not a list")

    meta = ArtifactMeta(
        program=header["program"],
        source_sha256=header.get("source_sha256"),
        threshold=header.get("threshold", 0),
        num_threads=header.get("num_threads", 0),
        locale_id=header.get("locale_id", 0),
        kind=header.get("kind", "profile"),
        created_by=header.get("created_by", ""),
    )

    fn_cols = by_kind["f"]
    catalog = FunctionCatalog(
        [
            CatalogFunction(
                name=_string(strings, nm, "function catalog"),
                source_name=_string(strings, sn, "function catalog"),
                outlined_from=(
                    None if of < 0 else _string(strings, of, "function catalog")
                ),
                is_artificial=bool(ar),
            )
            for nm, sn, of, ar in zip(
                fn_cols["nm"], fn_cols["sn"], fn_cols["of"], fn_cols["ar"]
            )
        ]
    )

    stack_table = [
        tuple((_string(strings, fn, "stack table"), iid) for fn, iid in stack)
        for stack in by_kind["k"]
    ]
    loc_table = [
        tuple((_string(strings, fi, "location table"), line) for fi, line in loc)
        for loc in by_kind["l"]
    ]

    ic = by_kind["i"]
    cols = (ic["ix"], ic["th"], ic["st"], ic["lo"], ic["gl"], ic["tg"], ic["rc"])
    if len({len(c) for c in cols}) > 1:
        raise ArtifactError("instance columns have inconsistent lengths")
    instances = [
        Instance(
            index=ix,
            thread_id=th,
            frames=stack_table[st],
            locations=loc_table[lo],
            was_glued=bool(gl),
            spawn_tag=tg,
            was_recovered=bool(rc),
        )
        for ix, th, st, lo, gl, tg, rc in zip(*cols)
    ]

    prov = by_kind["p"]
    postmortem = SnapshotPostmortem(
        instances=instances,
        n_raw=prov["n_raw"],
        n_runtime=prov["n_runtime"],
        n_recovered=prov["n_recovered"],
        unknown_provenance=[
            (_string(strings, r, "provenance"), ix) for r, ix in prov["u"]
        ],
        quarantine_provenance=[
            (_string(strings, r, "provenance"), ix) for r, ix in prov["q"]
        ],
    )

    sc = by_kind["s"]
    stats = RunStats(
        total_raw_samples=sc["total_raw_samples"],
        user_samples=sc["user_samples"],
        runtime_samples=sc["runtime_samples"],
        wall_seconds=sc["wall_seconds"],
        dataset_bytes=sc["dataset_bytes"],
        stackwalk_cycles=sc["stackwalk_cycles"],
        postmortem_seconds=sc["postmortem_seconds"],
        unknown_samples=sc["unknown_samples"],
        quarantined_samples=sc["quarantined_samples"],
        recovered_samples=sc["recovered_samples"],
    )

    rep = by_kind["b"]
    rc_cols = rep["rows"]
    rows = [
        BlameRow(
            name=_string(strings, nm, "report rows"),
            type_str=_string(strings, ty, "report rows"),
            blame=bl,
            context=_string(strings, cx, "report rows"),
            samples=sm,
            is_path=bool(pa),
        )
        for nm, ty, cx, sm, bl, pa in zip(
            rc_cols["nm"], rc_cols["ty"], rc_cols["cx"],
            rc_cols["sm"], rc_cols["bl"], rc_cols["pa"],
        )
    ]
    report = BlameReport(
        program=rep["program"],
        rows=rows,
        stats=stats,
        locale_id=rep.get("locale_id", 0),
        unknown_by_reason=dict(rep.get("unknown_by_reason", {})),
        quarantine_by_reason=dict(rep.get("quarantine_by_reason", {})),
        missing_locales=tuple(rep.get("missing", [])),
    )

    return ProfileSnapshot(
        meta=meta,
        report=report,
        catalog=catalog,
        postmortem=postmortem,
        fault_stats=by_kind.get("d"),
        adaptive=by_kind.get("a"),
    )
