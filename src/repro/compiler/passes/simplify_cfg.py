"""CFG simplification: constant-branch threading, unreachable-block
removal, and linear block merging."""

from __future__ import annotations

from ...ir import instructions as I
from ...ir.module import Function, Module


def _thread_constant_branches(fn: Function) -> bool:
    changed = False
    for block in fn.blocks:
        term = block.terminator
        if isinstance(term, I.CBr) and isinstance(term.cond, I.Constant):
            target = term.then_block if term.cond.value else term.else_block
            br = I.Br(term.loc, target)
            block.instructions[-1] = br
            br.parent = block
            changed = True
    return changed


def _remove_unreachable(fn: Function) -> bool:
    reachable = set()
    stack = [fn.entry]
    while stack:
        b = stack.pop()
        if b in reachable:
            continue
        reachable.add(b)
        stack.extend(b.successors())
    if len(reachable) == len(fn.blocks):
        return False
    fn.blocks = [b for b in fn.blocks if b in reachable]
    return True


def _merge_linear_blocks(fn: Function) -> bool:
    """Folds B into A when A ends in `br B` and B has A as sole pred."""
    changed = False
    while True:
        preds: dict[object, list[object]] = {b: [] for b in fn.blocks}
        for b in fn.blocks:
            for s in b.successors():
                preds[s].append(b)
        merged = False
        for a in fn.blocks:
            term = a.terminator
            if not isinstance(term, I.Br):
                continue
            b = term.target
            if b is a or b not in preds or len(preds[b]) != 1:
                continue
            if b is fn.entry:
                continue
            # Fold: drop A's br, append B's instructions.
            a.instructions.pop()
            for instr in b.instructions:  # type: ignore[union-attr]
                a.instructions.append(instr)
                instr.parent = a
            fn.blocks.remove(b)  # type: ignore[arg-type]
            merged = True
            changed = True
            break
        if not merged:
            return changed


def simplify_cfg(module: Module) -> bool:
    changed = False
    for fn in module.functions.values():
        c1 = _thread_constant_branches(fn)
        c2 = _remove_unreachable(fn)
        c3 = _merge_linear_blocks(fn)
        changed = changed or c1 or c2 or c3
    return changed
