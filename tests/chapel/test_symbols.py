"""Scope / symbol table tests."""

import pytest

from repro.chapel.errors import NameError_
from repro.chapel.symbols import Scope, Symbol
from repro.chapel.types import INT, REAL


def sym(name, kind="var", **kw):
    return Symbol(name, INT, kind, **kw)


class TestScope:
    def test_define_and_lookup(self):
        s = Scope()
        s.define(sym("x"))
        assert s.lookup("x") is not None
        assert s.lookup("y") is None

    def test_duplicate_rejected(self):
        s = Scope()
        s.define(sym("x"))
        with pytest.raises(NameError_):
            s.define(sym("x"))

    def test_shadowing_in_child(self):
        outer = Scope()
        outer.define(sym("x"))
        inner = outer.child()
        inner.define(Symbol("x", REAL, "var"))
        assert inner.lookup("x").type == REAL
        assert outer.lookup("x").type == INT

    def test_resolve_raises(self):
        with pytest.raises(NameError_):
            Scope().resolve("missing")

    def test_chain_lookup(self):
        a = Scope()
        a.define(sym("g"))
        c = a.child().child().child()
        assert c.lookup("g") is not None

    def test_iter_local_excludes_parent(self):
        outer = Scope()
        outer.define(sym("a"))
        inner = outer.child()
        inner.define(sym("b"))
        assert [s.name for s in inner.iter_local()] == ["b"]


class TestSymbolFlags:
    def test_global(self):
        assert Symbol("g", INT, "global").is_global
        assert not Symbol("l", INT, "var").is_global

    def test_ref_formal(self):
        assert Symbol("p", INT, "formal", intent="ref").is_ref_formal
        assert not Symbol("p", INT, "formal", intent="in").is_ref_formal
        assert not Symbol("p", INT, "var", intent="ref").is_ref_formal
