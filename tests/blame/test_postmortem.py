"""Post-mortem processing tests: stack gluing, trimming, instances."""

import pytest

from repro.blame.postmortem import process_samples
from repro.sampling.records import RawSample

import sys, os
sys.path.insert(0, os.path.dirname(os.path.dirname(__file__)))
from conftest import compile_src, profile_src

PAR = """
var A: [0..49] real;
proc kernel() {
  forall i in 0..49 { A[i] = sqrt(i * 1.0) + i * 0.25; }
}
proc main() { kernel(); }
"""


class TestGluing:
    def test_worker_stacks_glued_to_main(self):
        res = profile_src(PAR, threshold=211)
        glued = [i for i in res.postmortem.instances if i.was_glued]
        assert glued
        for inst in glued:
            funcs = [f for f, _ in inst.frames]
            assert funcs[-1] == "main"
            assert "kernel" in funcs
            assert any(f.startswith("forall_fn") for f in funcs)

    def test_spawn_site_is_frame_between_worker_and_spawner(self):
        res = profile_src(PAR, threshold=211)
        m = res.module
        for inst in res.postmortem.instances:
            if not inst.was_glued:
                continue
            funcs = [f for f, _ in inst.frames]
            k = next(
                i for i, f in enumerate(funcs) if f.startswith("forall_fn")
            )
            # the frame right above the outlined body is its spawner
            outlined = m.get_function(funcs[k])
            assert funcs[k + 1] == outlined.outlined_from

    def test_main_task_samples_not_glued(self):
        src = """
proc main() {
  var s = 0.0;
  for i in 1..800 { s += i * 1.0; }
  writeln(s);
}
"""
        res = profile_src(src, threshold=211)
        assert res.postmortem.instances
        assert all(not i.was_glued for i in res.postmortem.instances)

    def test_locations_resolved(self):
        res = profile_src(PAR, threshold=211)
        for inst in res.postmortem.instances:
            assert len(inst.locations) == len(inst.frames)
            for fname, line in inst.locations:
                assert fname == "test.chpl" and line >= 1


class TestTrimming:
    def test_idle_samples_become_runtime(self):
        res = profile_src(PAR, threshold=211, num_threads=12)
        pm = res.postmortem
        assert pm.n_raw == len(pm.instances) + len(pm.runtime_samples)
        assert all(s.is_idle for s in pm.runtime_samples)

    def test_synthetic_frames_removed_from_instances(self):
        res = profile_src(PAR, threshold=211, num_threads=12)
        for inst in res.postmortem.instances:
            assert all(not f.startswith("__sched") for f, _ in inst.frames)

    def test_module_init_samples_kept_as_user_context(self):
        # Big global initialization: samples land in __module_init and
        # must remain attributable (MiniMD's globals live there).
        src = "var BIG: [0..5000] real;\nproc main() { }"
        res = profile_src(src, threshold=211)
        init_insts = [
            i
            for i in res.postmortem.instances
            if i.frames[0][0] == "__module_init"
        ]
        assert init_insts


class TestSyntheticRecords:
    def test_empty_stack_sample_is_runtime(self):
        m = compile_src("proc main() { }")
        s = RawSample(
            index=0,
            thread_id=0,
            task_id=-1,
            stack=(("__sched_yield", -1),),
            leaf_iid=-1,
            spawn_tag=None,
            pre_spawn_stack=None,
            is_idle=True,
        )
        pm = process_samples(m, [s])
        assert pm.n_user == 0 and len(pm.runtime_samples) == 1

    def test_unknown_function_sample_is_runtime(self):
        m = compile_src("proc main() { }")
        s = RawSample(
            index=0,
            thread_id=0,
            task_id=1,
            stack=(("libc_internal", 123456),),
            leaf_iid=123456,
            spawn_tag=None,
            pre_spawn_stack=None,
        )
        pm = process_samples(m, [s])
        assert pm.n_user == 0 and len(pm.runtime_samples) == 1
