"""E1 — Paper Fig. 1 + Table I: the variable→blame-lines map of the
five-line example, and the hand-computed blame percentages.

Paper: a={16,18,19}, b={17}, c={16,17,18,19,20}; with 4 samples on
lines 17–20: a=50 %, b=25 %, c=100 %.  (Our analysis follows the
paper's *formal* definition, which adds line 17 to a's set — see
EXPERIMENTS.md E1.)
"""

from conftest import record_result, run_once

from repro.bench.programs import example_fig1
from repro.blame.static_info import ModuleBlameInfo
from repro.compiler.lower import compile_source
from repro.views.tables import render_table


def compute_table_i():
    m = compile_source(example_fig1.build_source(), "fig1.chpl")
    info = ModuleBlameInfo(m)
    vlm = info.variable_lines_map("main")
    return {
        k: {ln for ln in v if 16 <= ln <= 20}
        for k, v in vlm.items()
        if k in ("a", "b", "c")
    }


def test_table1_blame_lines(benchmark, record):
    measured = run_once(benchmark, compute_table_i)

    # b and c match the paper cell-for-cell; a follows the formal
    # definition (paper's printed set plus line 17).
    assert measured["b"] == example_fig1.PAPER_TABLE_I["b"]
    assert measured["c"] == example_fig1.PAPER_TABLE_I["c"]
    assert measured["a"] == example_fig1.FORMAL_TABLE_I["a"]
    assert measured["a"] >= example_fig1.PAPER_TABLE_I["a"]

    fr = example_fig1.blamed_fractions(
        example_fig1.PAPER_SAMPLE_LINES, measured
    )
    assert fr["b"] == 0.25
    assert fr["c"] == 1.0
    assert fr["a"] in (0.5, 0.75)

    rows = [
        [v, ",".join(map(str, sorted(measured[v]))),
         ",".join(map(str, sorted(example_fig1.PAPER_TABLE_I[v])))]
        for v in ("a", "b", "c")
    ]
    record(
        "table1_example",
        render_table(
            ["Variable", "Blame lines (measured)", "Blame lines (paper)"],
            rows,
            title="Table I — variable-lines map for the Fig. 1 example",
        ),
    )
