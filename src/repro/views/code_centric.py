"""Code-centric view — the GUI's second window (paper §IV.D).

"A traditional code-centric view that attributes samples to different
functions instead of variables.  Because we have all the context
sensitive samples, we can obtain this view with almost no overhead."

Unlike the pprof *baseline* (``repro.baselines.pprof``), this view works
on *consolidated* instances: worker stacks are glued, so outlined
parallel-loop frames merge into the user functions that spawned them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..blame.postmortem import PostmortemResult
from ..ir.module import Module
from .tables import pct, render_table


@dataclass
class FunctionProfile:
    """flat = samples with this function at the leaf; cumulative =
    samples with it anywhere on the (glued) stack."""

    name: str
    flat: int = 0
    cumulative: int = 0


def _display_name(module: Module, func: str) -> str:
    """Outlined frames display as the user function that spawned them."""
    seen = set()
    name = func
    while name not in seen:
        seen.add(name)
        f = module.get_function(name)
        if f is None or f.outlined_from is None:
            break
        name = f.outlined_from
    f = module.get_function(name)
    if f is not None and f.is_artificial:
        return "<module init>"
    return f.source_name if f is not None else name


def build_code_centric(
    module: Module, postmortem: PostmortemResult
) -> list[FunctionProfile]:
    profiles: dict[str, FunctionProfile] = {}

    def get(name: str) -> FunctionProfile:
        p = profiles.get(name)
        if p is None:
            p = FunctionProfile(name)
            profiles[name] = p
        return p

    for inst in postmortem.instances:
        leaf = _display_name(module, inst.frames[0][0])
        get(leaf).flat += 1
        seen: set[str] = set()
        for func, _iid in inst.frames:
            name = _display_name(module, func)
            if name not in seen:
                seen.add(name)
                get(name).cumulative += 1
    out = list(profiles.values())
    out.sort(key=lambda p: (-p.flat, -p.cumulative, p.name))
    return out


def render_code_centric(
    module: Module, postmortem: PostmortemResult, top: int | None = None
) -> str:
    profiles = build_code_centric(module, postmortem)
    total = postmortem.n_user or 1
    rows = []
    for p in profiles[: top or len(profiles)]:
        rows.append(
            [
                str(p.flat),
                pct(p.flat / total),
                str(p.cumulative),
                pct(p.cumulative / total),
                p.name,
            ]
        )
    return render_table(
        ["Flat", "Flat%", "Cum", "Cum%", "Function"],
        rows,
        title=f"Code-centric view ({total} user samples, stacks glued)",
        aligns=["r", "r", "r", "r", "l"],
    )
