"""Ablation switches for the blame analysis.

The paper's technique composes several mechanisms; DESIGN.md calls for
ablation benches showing what each one buys.  Every switch defaults to
the full technique; turning one off reproduces a strictly weaker tool:

* ``implicit_control`` — control-dependence edges in slices (paper
  §IV.A's implicit transfer; off → Table I's line 18 vanishes from a/c);
* ``implicit_iterable`` — loop bodies blaming the driving domain/array
  (off → MiniMD's binSpace drops to ~0);
* ``alias_tracking`` — slice/reindex alias propagation (off → writes
  through RealPos no longer blame Pos);
* ``descriptor_writes`` — slice/expand/iterator bookkeeping as writes
  (off → Count/binSpace lose their "written at the llvm level" blame);
* ``hierarchical_paths`` — the ``->field`` sub-variable rows (off →
  CLOMP's Table IV collapses to whole-variable rows);
* ``stack_gluing`` — pre/post-spawn stack consolidation (off → worker
  samples dead-end in outlined frames, as in the pprof baseline);
* ``interprocedural`` — exit-variable bubbling via transfer functions
  (off → blame stays in the leaf frame; LULESH's b_x loses its
  IntegrateStressForElems attribution).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class BlameOptions:
    """Feature switches for the blame pipeline (all on = the paper)."""

    implicit_control: bool = True
    implicit_iterable: bool = True
    alias_tracking: bool = True
    descriptor_writes: bool = True
    hierarchical_paths: bool = True
    stack_gluing: bool = True
    interprocedural: bool = True

    def without(self, **flags: bool) -> "BlameOptions":
        """Convenience: ``FULL.without(alias_tracking=False)``."""
        return replace(self, **flags)


FULL = BlameOptions()

#: The named ablations the benches sweep.
ABLATIONS: dict[str, BlameOptions] = {
    "full": FULL,
    "no-implicit-control": FULL.without(implicit_control=False),
    "no-implicit-iterable": FULL.without(implicit_iterable=False),
    "no-alias-tracking": FULL.without(alias_tracking=False),
    "no-descriptor-writes": FULL.without(descriptor_writes=False),
    "no-hierarchy": FULL.without(hierarchical_paths=False),
    "no-stack-gluing": FULL.without(stack_gluing=False),
    "no-interprocedural": FULL.without(interprocedural=False),
    # Both sources of "no source-level write" blame off at once — the
    # mechanism pair behind MiniMD's binSpace/Count rows.
    "no-descriptor-no-iterable": FULL.without(
        descriptor_writes=False, implicit_iterable=False
    ),
}
