"""Constant folding: evaluates BinOp/UnOp/Cast over constants.

Part of the --fast pipeline.  Folded instructions vanish (via DCE), so
the registers they defined — and any blame edges through them — are
gone from the IR, one ingredient of the paper's "--fast makes mapping
nearly impossible" observation.
"""

from __future__ import annotations

from ...chapel.types import BoolType, IntType, RealType
from ...ir import instructions as I
from ...ir.module import Module


def _fold_binop(op: str, a, b):
    try:
        if op == "+":
            return a + b
        if op == "-":
            return a - b
        if op == "*":
            return a * b
        if op == "/":
            if isinstance(a, int) and isinstance(b, int):
                if b == 0:
                    return None
                q = abs(a) // abs(b)
                return q if (a >= 0) == (b >= 0) else -q
            if b == 0:
                return None
            return a / b
        if op == "%":
            if b == 0:
                return None
            return a % b
        if op == "**":
            return a**b
        if op == "==":
            return a == b
        if op == "!=":
            return a != b
        if op == "<":
            return a < b
        if op == "<=":
            return a <= b
        if op == ">":
            return a > b
        if op == ">=":
            return a >= b
        if op == "&&":
            return a and b
        if op == "||":
            return a or b
    except (OverflowError, ValueError):
        return None
    return None


def constant_fold(module: Module) -> bool:
    """Folds constant expressions throughout the module (to fixpoint:
    folding one instruction can make its users foldable)."""
    changed = False
    while _fold_once(module):
        changed = True
    return changed


def _fold_once(module: Module) -> bool:
    changed = False
    for fn in module.functions.values():
        replacements: dict[int, I.Constant] = {}
        for block in fn.blocks:
            for instr in block.instructions:
                if instr.result is None:
                    continue
                const: object | None = None
                if isinstance(instr, I.BinOp):
                    a, b = instr.lhs, instr.rhs
                    if isinstance(a, I.Constant) and isinstance(b, I.Constant):
                        const = _fold_binop(instr.op, a.value, b.value)
                elif isinstance(instr, I.UnOp):
                    v = instr.operand
                    if isinstance(v, I.Constant):
                        const = (not v.value) if instr.op == "!" else -v.value
                elif isinstance(instr, I.Cast):
                    v = instr.value
                    if isinstance(v, I.Constant):
                        ty = instr.result.type
                        if isinstance(ty, RealType):
                            const = float(v.value)
                        elif isinstance(ty, IntType):
                            const = int(v.value)
                if const is not None:
                    replacements[instr.result.rid] = I.Constant(
                        instr.result.type, const
                    )
        if not replacements:
            continue
        changed = True
        for block in fn.blocks:
            for instr in block.instructions:
                for op in list(instr.operands()):
                    if isinstance(op, I.Register) and op.rid in replacements:
                        instr.replace_operand(op, replacements[op.rid])
            # Drop the folded (pure) instructions so the fixpoint loop
            # terminates and DCE has less to do.
            block.instructions = [
                i
                for i in block.instructions
                if i.result is None or i.result.rid not in replacements
            ]
    return changed
