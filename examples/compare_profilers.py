"""Three profilers, one sample stream (the paper's §II argument):

* pprof-style code-centric — functions only, unglued stacks;
* HPCToolkit-style data-centric — allocation tracking, which leaves
  Chapel programs ~95 % "unknown data" (paper §II.B);
* variable blame — this paper's contribution.

Run:  python examples/compare_profilers.py
"""

from repro.baselines.hpctk import HpctkAttributor, render_hpctk
from repro.baselines.pprof import render_pprof
from repro.tooling import Profiler
from repro.views import render_data_centric

SOURCE = """
// Nested dynamic structures, CLOMP-style: the case allocation-based
// data-centric tools cannot attribute.
record Cell { var value: real; }
class Row { var sum: real; var cells: [?] Cell; }
config const rows: int = 48;
config const cols: int = 24;
var table: [0..rows-1] Row;

proc updateRow(r: Row, dep: real) {
  var carry = dep;
  for j in 0..cols-1 {
    r.cells[j].value = r.cells[j].value * 0.5 + carry;
    carry = carry * 0.9;
  }
  r.sum = r.sum + carry;
}

proc main() {
  for i in 0..rows-1 {
    var cs: [0..cols-1] Cell;
    table[i] = new Row(0.0, cs);
  }
  for t in 1..6 {
    forall i in 0..rows-1 {
      updateRow(table[i], 1.0 / t);
    }
  }
  writeln("checksum:", table[0].sum);
}
"""


def main() -> None:
    result = Profiler(
        SOURCE, filename="nested.chpl", num_threads=8, threshold=1009
    ).profile()

    print("=" * 72)
    print("1) pprof-style code-centric (raw stacks)")
    print("=" * 72)
    print(render_pprof(result.monitor.samples, binary_name="nested", top=8))

    print()
    print("=" * 72)
    print("2) HPCToolkit-style data-centric (allocation tracking)")
    print("=" * 72)
    att = HpctkAttributor(result.module, result.interpreter)
    hp = att.attribute(result.monitor.samples)
    print(render_hpctk(hp, "nested.chpl"))
    print()
    print(
        f"-> {100*hp.unknown_fraction:.1f}% of samples are 'unknown data'\n"
        "   (the class-field chains defeat allocation tracking; the paper\n"
        "   reports 96.88% for CLOMP and 95.1% for LULESH)."
    )

    print()
    print("=" * 72)
    print("3) Variable blame (this paper)")
    print("=" * 72)
    print(render_data_centric(result.report, top=10, min_blame=0.02))
    print()
    top = result.report.rows[0]
    print(
        f"-> blame names {top.name} ({100*top.blame:.0f}%) with its full\n"
        "   field hierarchy, from the same samples."
    )


if __name__ == "__main__":
    main()
