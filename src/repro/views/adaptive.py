"""Shared adaptive-stopping annotations for the report views.

Mirrors :mod:`repro.views.degradation`: every view appends the same
short footer when (and only when) the run used confidence-driven
collection, rendered from the decision trail's JSON-stable dict form
(:meth:`repro.sampling.adaptive.AdaptiveTrail.as_dict`) — the same
payload the artifact's ``a`` record stores, which is what keeps live
and replayed renders byte-identical.  Non-adaptive runs produce no
lines, so their output is byte-for-byte what it was before adaptive
mode existed.
"""

from __future__ import annotations


def adaptive_lines(trail: dict | None) -> list[str]:
    """Human-readable footer lines; empty when the run was not adaptive."""
    if not trail:
        return []
    rounds = trail.get("rounds", [])
    n_rounds = len(rounds)
    verdict = (
        "stopped early" if trail.get("stopped_early") else "ran to completion"
    )
    out = [
        f"~ adaptive: {verdict} after {n_rounds} round"
        f"{'' if n_rounds == 1 else 's'} "
        f"({trail.get('samples_collected', 0)} samples, "
        f"{trail.get('stop_reason', '?')})"
    ]
    if rounds:
        last = rounds[-1]
        confidence = trail.get("confidence", 0.95)
        out.append(
            f"~ final checkpoint: max CI half-width "
            f"{last['max_half_width']:.4f} at {100 * confidence:g}% "
            f"confidence, top-{trail.get('top_n', 5)} overlap "
            f"{last['top_overlap']:.2f}, tau {last['tau']:.2f}"
        )
        if last.get("degraded"):
            out.append(
                f"~ {last['degraded']} degraded samples widened the "
                f"intervals at the stopping point"
            )
    total = trail.get("samples_total")
    if total:
        collected = trail.get("samples_collected", 0)
        out.append(
            f"~ saved {total - collected} of {total} samples "
            f"({100 * (total - collected) / total:.1f}%) vs the full run"
        )
    return out
