"""Runtime checkpoint/resume: the snapshottable-scheduler layer under
sliced parallel collection (checkpoint format, safe-point invariant,
SliceStop unwinding) plus the module-state regressions it depends on
(S1: no process-global counters; S2: build_run_result edge cases)."""

import ast
import pathlib
import pickle

import pytest

from repro.compiler.lower import compile_source
from repro.runtime.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointError,
    RuntimeCheckpoint,
    SliceStop,
    capture_checkpoints,
    count_stream,
    plan_slices,
)
from repro.runtime.interpreter import Interpreter
from repro.runtime.values import RuntimeError_
from repro.sampling.monitor import Monitor
from repro.sampling.pmu import PMUConfig, counters_drained

THRESHOLD = 997
THREADS = 4

SRC = """
config const n = 160;
var A: [0..n-1] real;
proc main() {
  forall i in 0..n-1 {
    var acc = 0.0;
    for j in 0..7 { acc += i * 1.0 + j; }
    A[i] = acc;
  }
  var total = 0.0;
  for i in 0..n-1 { total += A[i]; }
  writeln(total);
}
"""


def _module():
    return compile_source(SRC, "ckpt.chpl")


def _serial(module):
    monitor = Monitor(PMUConfig(threshold=THRESHOLD))
    interp = Interpreter(
        module,
        num_threads=THREADS,
        monitor=monitor,
        sample_threshold=THRESHOLD,
    )
    return monitor, interp.run()


class TestCheckpointRoundTrip:
    def test_resume_reproduces_the_serial_tail(self):
        module = _module()
        serial_monitor, serial_result = _serial(module)
        total = serial_monitor.n_accepted
        assert total > 10

        cut = total // 2
        [(actual, blob)] = capture_checkpoints(
            module, [cut], num_threads=THREADS, threshold=THRESHOLD
        )
        assert actual >= cut

        head = Monitor(PMUConfig(threshold=THRESHOLD))
        interp = Interpreter(
            module,
            num_threads=THREADS,
            monitor=head,
            sample_threshold=THRESHOLD,
        )
        assert interp.run_sliced(actual) is None  # stopped, not finished

        tail = Monitor(PMUConfig(threshold=THRESHOLD), index_base=actual)
        resumed = Interpreter.resume(
            blob, monitor=tail, sample_threshold=THRESHOLD
        )
        result = resumed.continue_sliced(None)

        assert (
            head.sealed_stream() + tail.sealed_stream()
            == serial_monitor.sealed_stream()
        )
        assert result.output == serial_result.output
        assert result.wall_seconds == serial_result.wall_seconds
        assert result.total_cycles == serial_result.total_cycles
        assert result.instructions_executed == serial_result.instructions_executed

    def test_checkpoint_is_a_versioned_pickle(self):
        module = _module()
        [(_, blob)] = capture_checkpoints(
            module, [5], num_threads=THREADS, threshold=THRESHOLD
        )
        ckpt = pickle.loads(blob)
        assert isinstance(ckpt, RuntimeCheckpoint)
        assert ckpt.version == CHECKPOINT_VERSION
        assert ckpt.num_threads == THREADS
        # The captured state sits at a safe point: all counters drained.
        assert counters_drained(
            [t.pmu_counter for t in ckpt.scheduler.threads], THRESHOLD
        )

    def test_restore_rejects_garbage_and_wrong_version(self):
        with pytest.raises(CheckpointError):
            Interpreter.resume(pickle.dumps("nonsense"))
        module = _module()
        [(_, blob)] = capture_checkpoints(
            module, [5], num_threads=THREADS, threshold=THRESHOLD
        )
        ckpt = pickle.loads(blob)
        ckpt.version = CHECKPOINT_VERSION + 1
        with pytest.raises(CheckpointError):
            Interpreter.resume(pickle.dumps(ckpt))

    def test_snapshot_requires_a_started_run(self):
        interp = Interpreter(_module(), num_threads=THREADS)
        with pytest.raises(CheckpointError):
            interp.checkpoint()

    def test_slice_stop_is_not_a_program_error(self):
        # StopSampling-style unwinding: SliceStop must never be caught
        # by the interpreter's RuntimeError_ handlers on its way out.
        assert not issubclass(SliceStop, RuntimeError_)


class TestCensus:
    def test_count_stream_matches_a_monitored_run(self):
        module = _module()
        serial_monitor, _ = _serial(module)
        assert (
            count_stream(module, num_threads=THREADS, threshold=THRESHOLD)
            == serial_monitor.n_accepted
        )

    def test_coincident_cuts_collapse(self):
        module = _module()
        got = capture_checkpoints(
            module, [10, 10, 10], num_threads=THREADS, threshold=THRESHOLD
        )
        assert len(got) == 1

    def test_plan_slices_caches_per_module_and_knobs(self):
        module = _module()
        cold = plan_slices(
            module, 3, num_threads=THREADS, threshold=THRESHOLD
        )
        warm = plan_slices(
            module, 3, num_threads=THREADS, threshold=THRESHOLD
        )
        assert not cold.cache_hit and warm.cache_hit
        assert warm.census_seconds == 0.0
        assert warm.starts == cold.starts and warm.stops == cold.stops
        other = plan_slices(
            module, 4, num_threads=THREADS, threshold=THRESHOLD
        )
        assert not other.cache_hit


class TestRunResultEdges:
    """S2: build_run_result on runs that never (or barely) executed."""

    def test_fresh_interpreter_builds_a_zeroed_result(self):
        # The adaptive driver may unwind before the first quantum; the
        # result must reflect "nothing ran", not raise.
        interp = Interpreter(_module(), num_threads=THREADS)
        result = interp.build_run_result()
        assert result.wall_seconds == 0.0
        assert result.total_cycles == 0.0
        assert result.idle_cycles == 0.0
        assert result.busy_cycles == 0.0
        assert result.output == []

    def test_no_threads_builds_a_zeroed_result(self):
        interp = Interpreter(_module(), num_threads=THREADS)
        interp.scheduler.threads = []
        result = interp.build_run_result()
        assert result.wall_seconds == 0.0
        assert result.cpu_utilization == 1.0


RUNTIME_DIR = (
    pathlib.Path(__file__).resolve().parents[2] / "src" / "repro" / "runtime"
)

#: Module-level names in src/repro/runtime that are allowed to hold
#: container values.  Everything here is write-once (built at import,
#: only ever read) — a new entry needs the same justification.
ALLOWED_MODULE_CONTAINERS = {
    ("__init__.py", "__all__"),
    ("builtins.py", "BUILTINS"),
    ("engine.py", "_TRANSFERS"),
    ("engine.py", "_CMP_FNS"),
    ("engine.py", "_ARITH_FNS"),
    # Bounded census-plan cache, deliberately process-global (that is
    # what makes re-profiling the same module cheap); keyed by module
    # identity + every collection knob, so hits are exact replays.
    ("checkpoint.py", "_PLAN_CACHE"),
}


class TestRuntimeModuleState:
    """S1: the runtime package holds no hidden cross-run state."""

    def test_no_unexpected_module_level_containers(self):
        offenders = []
        for path in sorted(RUNTIME_DIR.glob("*.py")):
            tree = ast.parse(path.read_text())
            for node in tree.body:
                if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                    continue
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                value = node.value
                if value is None or isinstance(value, ast.Constant):
                    continue
                for tgt in targets:
                    name = getattr(tgt, "id", None)
                    if name is None:
                        continue
                    if isinstance(
                        value,
                        (ast.List, ast.Dict, ast.Set, ast.Tuple, ast.Call),
                    ) and (path.name, name) not in ALLOWED_MODULE_CONTAINERS:
                        # Calls to immutable constructors are fine.
                        if (
                            isinstance(value, ast.Call)
                            and getattr(value.func, "id", "")
                            in ("frozenset", "CostModel", "attrgetter")
                        ):
                            continue
                        offenders.append(f"{path.name}:{node.lineno} {name}")
        assert offenders == []

    def test_default_cost_model_is_immutable(self):
        from repro.runtime.costmodel import DEFAULT_COST_MODEL

        with pytest.raises(Exception):
            DEFAULT_COST_MODEL.store = 999  # type: ignore[misc]

    def test_id_counters_are_per_scheduler(self):
        from repro.runtime.tasking import Scheduler

        a, b = Scheduler(num_threads=2), Scheduler(num_threads=2)
        assert a.next_task_id() == b.next_task_id()
        assert a.next_spawn_tag() == b.next_spawn_tag()

    def test_collection_twice_in_one_process_is_byte_identical(self):
        # The end-to-end S1 regression: with per-instance counters,
        # repeating a collection inside one process reproduces the
        # stream byte for byte (task ids and all).
        module = _module()
        first, first_result = _serial(module)
        second, second_result = _serial(module)
        assert first.sealed_stream() == second.sealed_stream()
        assert first_result.output == second_result.output
        assert (
            first_result.instructions_executed
            == second_result.instructions_executed
        )
